// Formatting library for C++ - the base API for char/UTF-8
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_BASE_H_
#define FMT_BASE_H_

#if defined(FMT_IMPORT_STD) && !defined(FMT_MODULE)
#  define FMT_MODULE
#endif

#ifndef FMT_MODULE
#  include <limits.h>  // CHAR_BIT
#  include <stdio.h>   // FILE
#  include <string.h>  // memcmp

#  include <type_traits>  // std::enable_if
#endif

// The fmt library version in the form major * 10000 + minor * 100 + patch.
#define FMT_VERSION 120100

// Detect compiler versions.
#if defined(__clang__) && !defined(__ibmxl__)
#  define FMT_CLANG_VERSION (__clang_major__ * 100 + __clang_minor__)
#else
#  define FMT_CLANG_VERSION 0
#endif
#if defined(__GNUC__) && !defined(__clang__) && !defined(__INTEL_COMPILER)
#  define FMT_GCC_VERSION (__GNUC__ * 100 + __GNUC_MINOR__)
#else
#  define FMT_GCC_VERSION 0
#endif
#if defined(__ICL)
#  define FMT_ICC_VERSION __ICL
#elif defined(__INTEL_COMPILER)
#  define FMT_ICC_VERSION __INTEL_COMPILER
#else
#  define FMT_ICC_VERSION 0
#endif
#if defined(_MSC_VER)
#  define FMT_MSC_VERSION _MSC_VER
#else
#  define FMT_MSC_VERSION 0
#endif

// Detect standard library versions.
#ifdef _GLIBCXX_RELEASE
#  define FMT_GLIBCXX_RELEASE _GLIBCXX_RELEASE
#else
#  define FMT_GLIBCXX_RELEASE 0
#endif
#ifdef _LIBCPP_VERSION
#  define FMT_LIBCPP_VERSION _LIBCPP_VERSION
#else
#  define FMT_LIBCPP_VERSION 0
#endif

#ifdef _MSVC_LANG
#  define FMT_CPLUSPLUS _MSVC_LANG
#else
#  define FMT_CPLUSPLUS __cplusplus
#endif

// Detect __has_*.
#ifdef __has_feature
#  define FMT_HAS_FEATURE(x) __has_feature(x)
#else
#  define FMT_HAS_FEATURE(x) 0
#endif
#ifdef __has_include
#  define FMT_HAS_INCLUDE(x) __has_include(x)
#else
#  define FMT_HAS_INCLUDE(x) 0
#endif
#ifdef __has_builtin
#  define FMT_HAS_BUILTIN(x) __has_builtin(x)
#else
#  define FMT_HAS_BUILTIN(x) 0
#endif
#ifdef __has_cpp_attribute
#  define FMT_HAS_CPP_ATTRIBUTE(x) __has_cpp_attribute(x)
#else
#  define FMT_HAS_CPP_ATTRIBUTE(x) 0
#endif

#define FMT_HAS_CPP14_ATTRIBUTE(attribute) \
  (FMT_CPLUSPLUS >= 201402L && FMT_HAS_CPP_ATTRIBUTE(attribute))

#define FMT_HAS_CPP17_ATTRIBUTE(attribute) \
  (FMT_CPLUSPLUS >= 201703L && FMT_HAS_CPP_ATTRIBUTE(attribute))

// Detect C++14 relaxed constexpr.
#ifdef FMT_USE_CONSTEXPR
// Use the provided definition.
#elif FMT_GCC_VERSION >= 702 && FMT_CPLUSPLUS >= 201402L
// GCC only allows constexpr member functions in non-literal types since 7.2:
// https://gcc.gnu.org/bugzilla/show_bug.cgi?id=66297.
#  define FMT_USE_CONSTEXPR 1
#elif FMT_ICC_VERSION
#  define FMT_USE_CONSTEXPR 0  // https://github.com/fmtlib/fmt/issues/1628
#elif FMT_HAS_FEATURE(cxx_relaxed_constexpr) || FMT_MSC_VERSION >= 1912
#  define FMT_USE_CONSTEXPR 1
#else
#  define FMT_USE_CONSTEXPR 0
#endif
#if FMT_USE_CONSTEXPR
#  define FMT_CONSTEXPR constexpr
#else
#  define FMT_CONSTEXPR
#endif

// Detect consteval, C++20 constexpr extensions and std::is_constant_evaluated.
#ifdef FMT_USE_CONSTEVAL
// Use the provided definition.
#elif !defined(__cpp_lib_is_constant_evaluated)
#  define FMT_USE_CONSTEVAL 0
#elif FMT_CPLUSPLUS < 201709L
#  define FMT_USE_CONSTEVAL 0
#elif FMT_GLIBCXX_RELEASE && FMT_GLIBCXX_RELEASE < 10
#  define FMT_USE_CONSTEVAL 0
#elif FMT_LIBCPP_VERSION && FMT_LIBCPP_VERSION < 10000
#  define FMT_USE_CONSTEVAL 0
#elif defined(__apple_build_version__) && __apple_build_version__ < 14000029L
#  define FMT_USE_CONSTEVAL 0  // consteval is broken in Apple clang < 14.
#elif FMT_MSC_VERSION && FMT_MSC_VERSION < 1929
#  define FMT_USE_CONSTEVAL 0  // consteval is broken in MSVC VS2019 < 16.10.
#elif defined(__cpp_consteval)
#  define FMT_USE_CONSTEVAL 1
#elif FMT_GCC_VERSION >= 1002 || FMT_CLANG_VERSION >= 1101
#  define FMT_USE_CONSTEVAL 1
#else
#  define FMT_USE_CONSTEVAL 0
#endif
#if FMT_USE_CONSTEVAL
#  define FMT_CONSTEVAL consteval
#  define FMT_CONSTEXPR20 constexpr
#else
#  define FMT_CONSTEVAL
#  define FMT_CONSTEXPR20
#endif

// Check if exceptions are disabled.
#ifdef FMT_USE_EXCEPTIONS
// Use the provided definition.
#elif defined(__GNUC__) && !defined(__EXCEPTIONS)
#  define FMT_USE_EXCEPTIONS 0
#elif defined(__clang__) && !defined(__cpp_exceptions)
#  define FMT_USE_EXCEPTIONS 0
#elif FMT_MSC_VERSION && !_HAS_EXCEPTIONS
#  define FMT_USE_EXCEPTIONS 0
#else
#  define FMT_USE_EXCEPTIONS 1
#endif
#if FMT_USE_EXCEPTIONS
#  define FMT_TRY try
#  define FMT_CATCH(x) catch (x)
#else
#  define FMT_TRY if (true)
#  define FMT_CATCH(x) if (false)
#endif

#ifdef FMT_NO_UNIQUE_ADDRESS
// Use the provided definition.
#elif FMT_CPLUSPLUS < 202002L
// Not supported.
#elif FMT_HAS_CPP_ATTRIBUTE(no_unique_address)
#  define FMT_NO_UNIQUE_ADDRESS [[no_unique_address]]
// VS2019 v16.10 and later except clang-cl (https://reviews.llvm.org/D110485).
#elif FMT_MSC_VERSION >= 1929 && !FMT_CLANG_VERSION
#  define FMT_NO_UNIQUE_ADDRESS [[msvc::no_unique_address]]
#endif
#ifndef FMT_NO_UNIQUE_ADDRESS
#  define FMT_NO_UNIQUE_ADDRESS
#endif

#if FMT_HAS_CPP17_ATTRIBUTE(fallthrough)
#  define FMT_FALLTHROUGH [[fallthrough]]
#elif defined(__clang__)
#  define FMT_FALLTHROUGH [[clang::fallthrough]]
#elif FMT_GCC_VERSION >= 700 && \
    (!defined(__EDG_VERSION__) || __EDG_VERSION__ >= 520)
#  define FMT_FALLTHROUGH [[gnu::fallthrough]]
#else
#  define FMT_FALLTHROUGH
#endif

// Disable [[noreturn]] on MSVC/NVCC because of bogus unreachable code warnings.
#if FMT_HAS_CPP_ATTRIBUTE(noreturn) && !FMT_MSC_VERSION && !defined(__NVCC__)
#  define FMT_NORETURN [[noreturn]]
#else
#  define FMT_NORETURN
#endif

#ifdef FMT_NODISCARD
// Use the provided definition.
#elif FMT_HAS_CPP17_ATTRIBUTE(nodiscard)
#  define FMT_NODISCARD [[nodiscard]]
#else
#  define FMT_NODISCARD
#endif

#if FMT_GCC_VERSION || FMT_CLANG_VERSION
#  define FMT_VISIBILITY(value) __attribute__((visibility(value)))
#else
#  define FMT_VISIBILITY(value)
#endif

// Detect pragmas.
#define FMT_PRAGMA_IMPL(x) _Pragma(#x)
#if FMT_GCC_VERSION >= 504 && !defined(__NVCOMPILER)
// Workaround a _Pragma bug https://gcc.gnu.org/bugzilla/show_bug.cgi?id=59884
// and an nvhpc warning: https://github.com/fmtlib/fmt/pull/2582.
#  define FMT_PRAGMA_GCC(x) FMT_PRAGMA_IMPL(GCC x)
#else
#  define FMT_PRAGMA_GCC(x)
#endif
#if FMT_CLANG_VERSION
#  define FMT_PRAGMA_CLANG(x) FMT_PRAGMA_IMPL(clang x)
#else
#  define FMT_PRAGMA_CLANG(x)
#endif
#if FMT_MSC_VERSION
#  define FMT_MSC_WARNING(...) __pragma(warning(__VA_ARGS__))
#else
#  define FMT_MSC_WARNING(...)
#endif

// Enable minimal optimizations for more compact code in debug mode.
FMT_PRAGMA_GCC(push_options)
#if !defined(__OPTIMIZE__) && !defined(__CUDACC__) && !defined(FMT_MODULE)
FMT_PRAGMA_GCC(optimize("Og"))
#  define FMT_GCC_OPTIMIZED
#endif
FMT_PRAGMA_CLANG(diagnostic push)
FMT_PRAGMA_GCC(diagnostic push)

#ifdef FMT_ALWAYS_INLINE
// Use the provided definition.
#elif FMT_GCC_VERSION || FMT_CLANG_VERSION
#  define FMT_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#  define FMT_ALWAYS_INLINE inline
#endif
// A version of FMT_ALWAYS_INLINE to prevent code bloat in debug mode.
#if defined(NDEBUG) || defined(FMT_GCC_OPTIMIZED)
#  define FMT_INLINE FMT_ALWAYS_INLINE
#else
#  define FMT_INLINE inline
#endif

#ifndef FMT_BEGIN_NAMESPACE
#  define FMT_BEGIN_NAMESPACE \
    namespace fmt {           \
    inline namespace v12 {
#  define FMT_END_NAMESPACE \
    }                       \
    }
#endif

#ifndef FMT_EXPORT
#  define FMT_EXPORT
#  define FMT_BEGIN_EXPORT
#  define FMT_END_EXPORT
#endif

#ifdef _WIN32
#  define FMT_WIN32 1
#else
#  define FMT_WIN32 0
#endif

#if !defined(FMT_HEADER_ONLY) && FMT_WIN32
#  if defined(FMT_LIB_EXPORT)
#    define FMT_API __declspec(dllexport)
#  elif defined(FMT_SHARED)
#    define FMT_API __declspec(dllimport)
#  endif
#elif defined(FMT_LIB_EXPORT) || defined(FMT_SHARED)
#  define FMT_API FMT_VISIBILITY("default")
#endif
#ifndef FMT_API
#  define FMT_API
#endif

#ifndef FMT_OPTIMIZE_SIZE
#  define FMT_OPTIMIZE_SIZE 0
#endif

// FMT_BUILTIN_TYPE=0 may result in smaller library size at the cost of higher
// per-call binary size by passing built-in types through the extension API.
#ifndef FMT_BUILTIN_TYPES
#  define FMT_BUILTIN_TYPES 1
#endif

#define FMT_APPLY_VARIADIC(expr) \
  using unused = int[];          \
  (void)unused { 0, (expr, 0)... }

FMT_BEGIN_NAMESPACE

// Implementations of enable_if_t and other metafunctions for older systems.
template <bool B, typename T = void>
using enable_if_t = typename std::enable_if<B, T>::type;
template <bool B, typename T, typename F>
using conditional_t = typename std::conditional<B, T, F>::type;
template <bool B> using bool_constant = std::integral_constant<bool, B>;
template <typename T>
using remove_reference_t = typename std::remove_reference<T>::type;
template <typename T>
using remove_const_t = typename std::remove_const<T>::type;
template <typename T>
using remove_cvref_t = typename std::remove_cv<remove_reference_t<T>>::type;
template <typename T>
using make_unsigned_t = typename std::make_unsigned<T>::type;
template <typename T>
using underlying_t = typename std::underlying_type<T>::type;
template <typename T> using decay_t = typename std::decay<T>::type;
using nullptr_t = decltype(nullptr);

#if (FMT_GCC_VERSION && FMT_GCC_VERSION < 500) || FMT_MSC_VERSION
// A workaround for gcc 4.9 & MSVC v141 to make void_t work in a SFINAE context.
template <typename...> struct void_t_impl {
  using type = void;
};
template <typename... T> using void_t = typename void_t_impl<T...>::type;
#else
template <typename...> using void_t = void;
#endif

struct monostate {
  constexpr monostate() {}
};

// An enable_if helper to be used in template parameters which results in much
// shorter symbols: https://godbolt.org/z/sWw4vP. Extra parentheses are needed
// to workaround a bug in MSVC 2019 (see #1140 and #1186).
#ifdef FMT_DOC
#  define FMT_ENABLE_IF(...)
#else
#  define FMT_ENABLE_IF(...) fmt::enable_if_t<(__VA_ARGS__), int> = 0
#endif

template <typename T> constexpr auto min_of(T a, T b) -> T {
  return a < b ? a : b;
}
template <typename T> constexpr auto max_of(T a, T b) -> T {
  return a > b ? a : b;
}

FMT_NORETURN FMT_API void assert_fail(const char* file, int line,
                                      const char* message);

namespace detail {
// Suppresses "unused variable" warnings with the method described in
// https://herbsutter.com/2009/10/18/mailbag-shutting-up-compiler-warnings/.
// (void)var does not work on many Intel compilers.
template <typename... T> FMT_CONSTEXPR void ignore_unused(const T&...) {}

constexpr auto is_constant_evaluated(bool default_value = false) noexcept
    -> bool {
// Workaround for incompatibility between clang 14 and libstdc++ consteval-based
// std::is_constant_evaluated: https://github.com/fmtlib/fmt/issues/3247.
#if FMT_CPLUSPLUS >= 202002L && FMT_GLIBCXX_RELEASE >= 12 && \
    (FMT_CLANG_VERSION >= 1400 && FMT_CLANG_VERSION < 1500)
  ignore_unused(default_value);
  return __builtin_is_constant_evaluated();
#elif defined(__cpp_lib_is_constant_evaluated)
  ignore_unused(default_value);
  return std::is_constant_evaluated();
#else
  return default_value;
#endif
}

// Suppresses "conditional expression is constant" warnings.
template <typename T> FMT_ALWAYS_INLINE constexpr auto const_check(T val) -> T {
  return val;
}

FMT_NORETURN FMT_API void assert_fail(const char* file, int line,
                                      const char* message);

#if defined(FMT_ASSERT)
// Use the provided definition.
#elif defined(NDEBUG)
// FMT_ASSERT is not empty to avoid -Wempty-body.
#  define FMT_ASSERT(condition, message) \
    fmt::detail::ignore_unused((condition), (message))
#else
#  define FMT_ASSERT(condition, message)                                    \
    ((condition) /* void() fails with -Winvalid-constexpr on clang 4.0.1 */ \
         ? (void)0                                                          \
         : ::fmt::assert_fail(__FILE__, __LINE__, (message)))
#endif

#ifdef FMT_USE_INT128
// Use the provided definition.
#elif defined(__SIZEOF_INT128__) && !defined(__NVCC__) && \
    !(FMT_CLANG_VERSION && FMT_MSC_VERSION)
#  define FMT_USE_INT128 1
using int128_opt = __int128_t;  // An optional native 128-bit integer.
using uint128_opt = __uint128_t;
inline auto map(int128_opt x) -> int128_opt { return x; }
inline auto map(uint128_opt x) -> uint128_opt { return x; }
#else
#  define FMT_USE_INT128 0
#endif
#if !FMT_USE_INT128
enum class int128_opt {};
enum class uint128_opt {};
// Reduce template instantiations.
inline auto map(int128_opt) -> monostate { return {}; }
inline auto map(uint128_opt) -> monostate { return {}; }
#endif

#ifdef FMT_USE_BITINT
// Use the provided definition.
#elif FMT_CLANG_VERSION >= 1500 && !defined(__CUDACC__)
#  define FMT_USE_BITINT 1
#else
#  define FMT_USE_BITINT 0
#endif

#if FMT_USE_BITINT
FMT_PRAGMA_CLANG(diagnostic ignored "-Wbit-int-extension")
template <int N> using bitint = _BitInt(N);
template <int N> using ubitint = unsigned _BitInt(N);
#else
template <int N> struct bitint {};
template <int N> struct ubitint {};
#endif  // FMT_USE_BITINT

// Casts a nonnegative integer to unsigned.
template <typename Int>
FMT_CONSTEXPR auto to_unsigned(Int value) -> make_unsigned_t<Int> {
  FMT_ASSERT(std::is_unsigned<Int>::value || value >= 0, "negative value");
  return static_cast<make_unsigned_t<Int>>(value);
}

template <typename Char>
using unsigned_char = conditional_t<sizeof(Char) == 1, unsigned char, unsigned>;

// A heuristic to detect std::string and std::[experimental::]string_view.
// It is mainly used to avoid dependency on <[experimental/]string_view>.
template <typename T, typename Enable = void>
struct is_std_string_like : std::false_type {};
template <typename T>
struct is_std_string_like<T, void_t<decltype(std::declval<T>().find_first_of(
                                 typename T::value_type(), 0))>>
    : std::is_convertible<decltype(std::declval<T>().data()),
                          const typename T::value_type*> {};

// Check if the literal encoding is UTF-8.
enum { is_utf8_enabled = "\u00A7"[1] == '\xA7' };
enum { use_utf8 = !FMT_WIN32 || is_utf8_enabled };

#ifndef FMT_UNICODE
#  define FMT_UNICODE 1
#endif

static_assert(!FMT_UNICODE || use_utf8,
              "Unicode support requires compiling with /utf-8");

template <typename T> constexpr auto narrow(T*) -> char* { return nullptr; }
constexpr FMT_ALWAYS_INLINE auto narrow(const char* s) -> const char* {
  return s;
}

template <typename Char>
FMT_CONSTEXPR auto compare(const Char* s1, const Char* s2, size_t n) -> int {
  if (!is_constant_evaluated() && sizeof(Char) == 1) return memcmp(s1, s2, n);
  for (; n != 0; ++s1, ++s2, --n) {
    if (*s1 < *s2) return -1;
    if (*s1 > *s2) return 1;
  }
  return 0;
}

namespace adl {
using namespace std;

template <typename Container>
auto invoke_back_inserter()
    -> decltype(back_inserter(std::declval<Container&>()));
}  // namespace adl

template <typename It, typename Enable = std::true_type>
struct is_back_insert_iterator : std::false_type {};

template <typename It>
struct is_back_insert_iterator<
    It, bool_constant<std::is_same<
            decltype(adl::invoke_back_inserter<typename It::container_type>()),
            It>::value>> : std::true_type {};

// Extracts a reference to the container from *insert_iterator.
template <typename OutputIt>
inline FMT_CONSTEXPR20 auto get_container(OutputIt it) ->
    typename OutputIt::container_type& {
  struct accessor : OutputIt {
    FMT_CONSTEXPR20 accessor(OutputIt base) : OutputIt(base) {}
    using OutputIt::container;
  };
  return *accessor(it).container;
}
}  // namespace detail

// Parsing-related public API and forward declarations.
FMT_BEGIN_EXPORT

/**
 * An implementation of `std::basic_string_view` for pre-C++17. It provides a
 * subset of the API. `fmt::basic_string_view` is used for format strings even
 * if `std::basic_string_view` is available to prevent issues when a library is
 * compiled with a different `-std` option than the client code (which is not
 * recommended).
 */
template <typename Char> class basic_string_view {
 private:
  const Char* data_;
  size_t size_;

 public:
  using value_type = Char;
  using iterator = const Char*;

  constexpr basic_string_view() noexcept : data_(nullptr), size_(0) {}

  /// Constructs a string view object from a C string and a size.
  constexpr basic_string_view(const Char* s, size_t count) noexcept
      : data_(s), size_(count) {}

  constexpr basic_string_view(nullptr_t) = delete;

  /// Constructs a string view object from a C string.
#if FMT_GCC_VERSION
  FMT_ALWAYS_INLINE
#endif
  FMT_CONSTEXPR20 basic_string_view(const Char* s) : data_(s) {
#if FMT_HAS_BUILTIN(__builtin_strlen) || FMT_GCC_VERSION || FMT_CLANG_VERSION
    if (std::is_same<Char, char>::value && !detail::is_constant_evaluated()) {
      size_ = __builtin_strlen(detail::narrow(s));  // strlen is not constexpr.
      return;
    }
#endif
    size_t len = 0;
    while (*s++) ++len;
    size_ = len;
  }

  /// Constructs a string view from a `std::basic_string` or a
  /// `std::basic_string_view` object.
  template <typename S,
            FMT_ENABLE_IF(detail::is_std_string_like<S>::value&& std::is_same<
                          typename S::value_type, Char>::value)>
  FMT_CONSTEXPR basic_string_view(const S& s) noexcept
      : data_(s.data()), size_(s.size()) {}

  /// Returns a pointer to the string data.
  constexpr auto data() const noexcept -> const Char* { return data_; }

  /// Returns the string size.
  constexpr auto size() const noexcept -> size_t { return size_; }

  constexpr auto begin() const noexcept -> iterator { return data_; }
  constexpr auto end() const noexcept -> iterator { return data_ + size_; }

  constexpr auto operator[](size_t pos) const noexcept -> const Char& {
    return data_[pos];
  }

  FMT_CONSTEXPR void remove_prefix(size_t n) noexcept {
    data_ += n;
    size_ -= n;
  }

  FMT_CONSTEXPR auto starts_with(basic_string_view<Char> sv) const noexcept
      -> bool {
    return size_ >= sv.size_ && detail::compare(data_, sv.data_, sv.size_) == 0;
  }
  FMT_CONSTEXPR auto starts_with(Char c) const noexcept -> bool {
    return size_ >= 1 && *data_ == c;
  }
  FMT_CONSTEXPR auto starts_with(const Char* s) const -> bool {
    return starts_with(basic_string_view<Char>(s));
  }

  FMT_CONSTEXPR auto compare(basic_string_view other) const -> int {
    int result =
        detail::compare(data_, other.data_, min_of(size_, other.size_));
    if (result != 0) return result;
    return size_ == other.size_ ? 0 : (size_ < other.size_ ? -1 : 1);
  }

  FMT_CONSTEXPR friend auto operator==(basic_string_view lhs,
                                       basic_string_view rhs) -> bool {
    return lhs.compare(rhs) == 0;
  }
  friend auto operator!=(basic_string_view lhs, basic_string_view rhs) -> bool {
    return lhs.compare(rhs) != 0;
  }
  friend auto operator<(basic_string_view lhs, basic_string_view rhs) -> bool {
    return lhs.compare(rhs) < 0;
  }
  friend auto operator<=(basic_string_view lhs, basic_string_view rhs) -> bool {
    return lhs.compare(rhs) <= 0;
  }
  friend auto operator>(basic_string_view lhs, basic_string_view rhs) -> bool {
    return lhs.compare(rhs) > 0;
  }
  friend auto operator>=(basic_string_view lhs, basic_string_view rhs) -> bool {
    return lhs.compare(rhs) >= 0;
  }
};

using string_view = basic_string_view<char>;

template <typename T> class basic_appender;
using appender = basic_appender<char>;

// Checks whether T is a container with contiguous storage.
template <typename T> struct is_contiguous : std::false_type {};

class context;
template <typename OutputIt, typename Char> class generic_context;
template <typename Char> class parse_context;

// Longer aliases for C++20 compatibility.
template <typename Char> using basic_format_parse_context = parse_context<Char>;
using format_parse_context = parse_context<char>;
template <typename OutputIt, typename Char>
using basic_format_context =
    conditional_t<std::is_same<OutputIt, appender>::value, context,
                  generic_context<OutputIt, Char>>;
using format_context = context;

template <typename Char>
using buffered_context =
    conditional_t<std::is_same<Char, char>::value, context,
                  generic_context<basic_appender<Char>, Char>>;

template <typename Context> class basic_format_arg;
template <typename Context> class basic_format_args;

// A separate type would result in shorter symbols but break ABI compatibility
// between clang and gcc on ARM (#1919).
using format_args = basic_format_args<context>;

// A formatter for objects of type T.
template <typename T, typename Char = char, typename Enable = void>
struct formatter {
  // A deleted default constructor indicates a disabled formatter.
  formatter() = delete;
};

/// Reports a format error at compile time or, via a `format_error` exception,
/// at runtime.
// This function is intentionally not constexpr to give a compile-time error.
FMT_NORETURN FMT_API void report_error(const char* message);

enum class presentation_type : unsigned char {
  // Common specifiers:
  none = 0,
  debug = 1,   // '?'
  string = 2,  // 's' (string, bool)

  // Integral, bool and character specifiers:
  dec = 3,  // 'd'
  hex,      // 'x' or 'X'
  oct,      // 'o'
  bin,      // 'b' or 'B'
  chr,      // 'c'

  // String and pointer specifiers:
  pointer = 3,  // 'p'

  // Floating-point specifiers:
  exp = 1,  // 'e' or 'E' (1 since there is no FP debug presentation)
  fixed,    // 'f' or 'F'
  general,  // 'g' or 'G'
  hexfloat  // 'a' or 'A'
};

enum class align { none, left, right, center, numeric };
enum class sign { none, minus, plus, space };
enum class arg_id_kind { none, index, name };

// Basic format specifiers for built-in and string types.
class basic_specs {
 private:
  // Data is arranged as follows:
  //
  //  0                   1                   2                   3
  //  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
  // +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
  // |type |align| w | p | s |u|#|L|  f  |          unused           |
  // +-----+-----+---+---+---+-+-+-+-----+---------------------------+
  //
  //   w - dynamic width info
  //   p - dynamic precision info
  //   s - sign
  //   u - uppercase (e.g. 'X' for 'x')
  //   # - alternate form ('#')
  //   L - localized
  //   f - fill size
  //
  // Bitfields are not used because of compiler bugs such as gcc bug 61414.
  enum : unsigned {
    type_mask = 0x00007,
    align_mask = 0x00038,
    width_mask = 0x000C0,
    precision_mask = 0x00300,
    sign_mask = 0x00C00,
    uppercase_mask = 0x01000,
    alternate_mask = 0x02000,
    localized_mask = 0x04000,
    fill_size_mask = 0x38000,

    align_shift = 3,
    width_shift = 6,
    precision_shift = 8,
    sign_shift = 10,
    fill_size_shift = 15,

    max_fill_size = 4
  };

  unsigned data_ = 1 << fill_size_shift;
  static_assert(sizeof(basic_specs::data_) * CHAR_BIT >= 18, "");

  // Character (code unit) type is erased to prevent template bloat.
  char fill_data_[max_fill_size] = {' '};

  FMT_CONSTEXPR void set_fill_size(size_t size) {
    data_ = (data_ & ~fill_size_mask) |
            (static_cast<unsigned>(size) << fill_size_shift);
  }

 public:
  constexpr auto type() const -> presentation_type {
    return static_cast<presentation_type>(data_ & type_mask);
  }
  FMT_CONSTEXPR void set_type(presentation_type t) {
    data_ = (data_ & ~type_mask) | static_cast<unsigned>(t);
  }

  constexpr auto align() const -> align {
    return static_cast<fmt::align>((data_ & align_mask) >> align_shift);
  }
  FMT_CONSTEXPR void set_align(fmt::align a) {
    data_ = (data_ & ~align_mask) | (static_cast<unsigned>(a) << align_shift);
  }

  constexpr auto dynamic_width() const -> arg_id_kind {
    return static_cast<arg_id_kind>((data_ & width_mask) >> width_shift);
  }
  FMT_CONSTEXPR void set_dynamic_width(arg_id_kind w) {
    data_ = (data_ & ~width_mask) | (static_cast<unsigned>(w) << width_shift);
  }

  FMT_CONSTEXPR auto dynamic_precision() const -> arg_id_kind {
    return static_cast<arg_id_kind>((data_ & precision_mask) >>
                                    precision_shift);
  }
  FMT_CONSTEXPR void set_dynamic_precision(arg_id_kind p) {
    data_ = (data_ & ~precision_mask) |
            (static_cast<unsigned>(p) << precision_shift);
  }

  constexpr auto dynamic() const -> bool {
    return (data_ & (width_mask | precision_mask)) != 0;
  }

  constexpr auto sign() const -> sign {
    return static_cast<fmt::sign>((data_ & sign_mask) >> sign_shift);
  }
  FMT_CONSTEXPR void set_sign(fmt::sign s) {
    data_ = (data_ & ~sign_mask) | (static_cast<unsigned>(s) << sign_shift);
  }

  constexpr auto upper() const -> bool { return (data_ & uppercase_mask) != 0; }
  FMT_CONSTEXPR void set_upper() { data_ |= uppercase_mask; }

  constexpr auto alt() const -> bool { return (data_ & alternate_mask) != 0; }
  FMT_CONSTEXPR void set_alt() { data_ |= alternate_mask; }
  FMT_CONSTEXPR void clear_alt() { data_ &= ~alternate_mask; }

  constexpr auto localized() const -> bool {
    return (data_ & localized_mask) != 0;
  }
  FMT_CONSTEXPR void set_localized() { data_ |= localized_mask; }

  constexpr auto fill_size() const -> size_t {
    return (data_ & fill_size_mask) >> fill_size_shift;
  }

  template <typename Char, FMT_ENABLE_IF(std::is_same<Char, char>::value)>
  constexpr auto fill() const -> const Char* {
    return fill_data_;
  }
  template <typename Char, FMT_ENABLE_IF(!std::is_same<Char, char>::value)>
  constexpr auto fill() const -> const Char* {
    return nullptr;
  }

  template <typename Char> constexpr auto fill_unit() const -> Char {
    using uchar = unsigned char;
    return static_cast<Char>(static_cast<uchar>(fill_data_[0]) |
                             (static_cast<uchar>(fill_data_[1]) << 8) |
                             (static_cast<uchar>(fill_data_[2]) << 16));
  }

  FMT_CONSTEXPR void set_fill(char c) {
    fill_data_[0] = c;
    set_fill_size(1);
  }

  template <typename Char>
  FMT_CONSTEXPR void set_fill(basic_string_view<Char> s) {
    auto size = s.size();
    set_fill_size(size);
    if (size == 1) {
      unsigned uchar = static_cast<detail::unsigned_char<Char>>(s[0]);
      fill_data_[0] = static_cast<char>(uchar);
      fill_data_[1] = static_cast<char>(uchar >> 8);
      fill_data_[2] = static_cast<char>(uchar >> 16);
      return;
    }
    FMT_ASSERT(size <= max_fill_size, "invalid fill");
    for (size_t i = 0; i < size; ++i)
      fill_data_[i & 3] = static_cast<char>(s[i]);
  }

  FMT_CONSTEXPR void copy_fill_from(const basic_specs& specs) {
    set_fill_size(specs.fill_size());
    for (size_t i = 0; i < max_fill_size; ++i)
      fill_data_[i] = specs.fill_data_[i];
  }
};

// Format specifiers for built-in and string types.
struct format_specs : basic_specs {
  int width;
  int precision;

  constexpr format_specs() : width(0), precision(-1) {}
};

/**
 * Parsing context consisting of a format string range being parsed and an
 * argument counter for automatic indexing.
 */
template <typename Char = char> class parse_context {
 private:
  basic_string_view<Char> fmt_;
  int next_arg_id_;

  enum { use_constexpr_cast = !FMT_GCC_VERSION || FMT_GCC_VERSION >= 1200 };

  FMT_CONSTEXPR void do_check_arg_id(int arg_id);

 public:
  using char_type = Char;
  using iterator = const Char*;

  constexpr explicit parse_context(basic_string_view<Char> fmt,
                                   int next_arg_id = 0)
      : fmt_(fmt), next_arg_id_(next_arg_id) {}

  /// Returns an iterator to the beginning of the format string range being
  /// parsed.
  constexpr auto begin() const noexcept -> iterator { return fmt_.begin(); }

  /// Returns an iterator past the end of the format string range being parsed.
  constexpr auto end() const noexcept -> iterator { return fmt_.end(); }

  /// Advances the begin iterator to `it`.
  FMT_CONSTEXPR void advance_to(iterator it) {
    fmt_.remove_prefix(detail::to_unsigned(it - begin()));
  }

  /// Reports an error if using the manual argument indexing; otherwise returns
  /// the next argument index and switches to the automatic indexing.
  FMT_CONSTEXPR auto next_arg_id() -> int {
    if (next_arg_id_ < 0) {
      report_error("cannot switch from manual to automatic argument indexing");
      return 0;
    }
    int id = next_arg_id_++;
    do_check_arg_id(id);
    return id;
  }

  /// Reports an error if using the automatic argument indexing; otherwise
  /// switches to the manual indexing.
  FMT_CONSTEXPR void check_arg_id(int id) {
    if (next_arg_id_ > 0) {
      report_error("cannot switch from automatic to manual argument indexing");
      return;
    }
    next_arg_id_ = -1;
    do_check_arg_id(id);
  }
  FMT_CONSTEXPR void check_arg_id(basic_string_view<Char>) {
    next_arg_id_ = -1;
  }
  FMT_CONSTEXPR void check_dynamic_spec(int arg_id);
};

#ifndef FMT_USE_LOCALE
#  define FMT_USE_LOCALE (FMT_OPTIMIZE_SIZE <= 1)
#endif

// A type-erased reference to std::locale to avoid the heavy <locale> include.
class locale_ref {
#if FMT_USE_LOCALE
 private:
  const void* locale_;  // A type-erased pointer to std::locale.

 public:
  constexpr locale_ref() : locale_(nullptr) {}

  template <typename Locale, FMT_ENABLE_IF(sizeof(Locale::collate) != 0)>
  locale_ref(const Locale& loc) : locale_(&loc) {
    // Check if std::isalpha is found via ADL to reduce the chance of misuse.
    isalpha('x', loc);
  }

  inline explicit operator bool() const noexcept { return locale_ != nullptr; }
#endif  // FMT_USE_LOCALE

 public:
  template <typename Locale> auto get() const -> Locale;
};

FMT_END_EXPORT

namespace detail {

// Specifies if `T` is a code unit type.
template <typename T> struct is_code_unit : std::false_type {};
template <> struct is_code_unit<char> : std::true_type {};
template <> struct is_code_unit<wchar_t> : std::true_type {};
template <> struct is_code_unit<char16_t> : std::true_type {};
template <> struct is_code_unit<char32_t> : std::true_type {};
#ifdef __cpp_char8_t
template <> struct is_code_unit<char8_t> : bool_constant<is_utf8_enabled> {};
#endif

// Constructs fmt::basic_string_view<Char> from types implicitly convertible
// to it, deducing Char. Explicitly convertible types such as the ones returned
// from FMT_STRING are intentionally excluded.
template <typename Char, FMT_ENABLE_IF(is_code_unit<Char>::value)>
constexpr auto to_string_view(const Char* s) -> basic_string_view<Char> {
  return s;
}
template <typename T, FMT_ENABLE_IF(is_std_string_like<T>::value)>
constexpr auto to_string_view(const T& s)
    -> basic_string_view<typename T::value_type> {
  return s;
}
template <typename Char>
constexpr auto to_string_view(basic_string_view<Char> s)
    -> basic_string_view<Char> {
  return s;
}

template <typename T, typename Enable = void>
struct has_to_string_view : std::false_type {};
// detail:: is intentional since to_string_view is not an extension point.
template <typename T>
struct has_to_string_view<
    T, void_t<decltype(detail::to_string_view(std::declval<T>()))>>
    : std::true_type {};

/// String's character (code unit) type. detail:: is intentional to prevent ADL.
template <typename S,
          typename V = decltype(detail::to_string_view(std::declval<S>()))>
using char_t = typename V::value_type;

enum class type {
  none_type,
  // Integer types should go first,
  int_type,
  uint_type,
  long_long_type,
  ulong_long_type,
  int128_type,
  uint128_type,
  bool_type,
  char_type,
  last_integer_type = char_type,
  // followed by floating-point types.
  float_type,
  double_type,
  long_double_type,
  last_numeric_type = long_double_type,
  cstring_type,
  string_type,
  pointer_type,
  custom_type
};

// Maps core type T to the corresponding type enum constant.
template <typename T, typename Char>
struct type_constant : std::integral_constant<type, type::custom_type> {};

#define FMT_TYPE_CONSTANT(Type, constant) \
  template <typename Char>                \
  struct type_constant<Type, Char>        \
      : std::integral_constant<type, type::constant> {}

FMT_TYPE_CONSTANT(int, int_type);
FMT_TYPE_CONSTANT(unsigned, uint_type);
FMT_TYPE_CONSTANT(long long, long_long_type);
FMT_TYPE_CONSTANT(unsigned long long, ulong_long_type);
FMT_TYPE_CONSTANT(int128_opt, int128_type);
FMT_TYPE_CONSTANT(uint128_opt, uint128_type);
FMT_TYPE_CONSTANT(bool, bool_type);
FMT_TYPE_CONSTANT(Char, char_type);
FMT_TYPE_CONSTANT(float, float_type);
FMT_TYPE_CONSTANT(double, double_type);
FMT_TYPE_CONSTANT(long double, long_double_type);
FMT_TYPE_CONSTANT(const Char*, cstring_type);
FMT_TYPE_CONSTANT(basic_string_view<Char>, string_type);
FMT_TYPE_CONSTANT(const void*, pointer_type);

constexpr auto is_integral_type(type t) -> bool {
  return t > type::none_type && t <= type::last_integer_type;
}
constexpr auto is_arithmetic_type(type t) -> bool {
  return t > type::none_type && t <= type::last_numeric_type;
}

constexpr auto set(type rhs) -> int { return 1 << static_cast<int>(rhs); }
constexpr auto in(type t, int set) -> bool {
  return ((set >> static_cast<int>(t)) & 1) != 0;
}

// Bitsets of types.
enum {
  sint_set =
      set(type::int_type) | set(type::long_long_type) | set(type::int128_type),
  uint_set = set(type::uint_type) | set(type::ulong_long_type) |
             set(type::uint128_type),
  bool_set = set(type::bool_type),
  char_set = set(type::char_type),
  float_set = set(type::float_type) | set(type::double_type) |
              set(type::long_double_type),
  string_set = set(type::string_type),
  cstring_set = set(type::cstring_type),
  pointer_set = set(type::pointer_type)
};

struct view {};

template <typename T, typename Enable = std::true_type>
struct is_view : std::false_type {};
template <typename T>
struct is_view<T, bool_constant<sizeof(T) != 0>> : std::is_base_of<view, T> {};

template <typename Char, typename T> struct named_arg;
template <typename T> struct is_named_arg : std::false_type {};
template <typename T> struct is_static_named_arg : std::false_type {};

template <typename Char, typename T>
struct is_named_arg<named_arg<Char, T>> : std::true_type {};

template <typename Char, typename T> struct named_arg : view {
  const Char* name;
  const T& value;

  named_arg(const Char* n, const T& v) : name(n), value(v) {}
  static_assert(!is_named_arg<T>::value, "nested named arguments");
};

template <bool B = false> constexpr auto count() -> int { return B ? 1 : 0; }
template <bool B1, bool B2, bool... Tail> constexpr auto count() -> int {
  return (B1 ? 1 : 0) + count<B2, Tail...>();
}

template <typename... T> constexpr auto count_named_args() -> int {
  return count<is_named_arg<T>::value...>();
}
template <typename... T> constexpr auto count_static_named_args() -> int {
  return count<is_static_named_arg<T>::value...>();
}

template <typename Char> struct named_arg_info {
  const Char* name;
  int id;
};

// named_args is non-const to suppress a bogus -Wmaybe-uninitialized in gcc 13.
template <typename Char>
FMT_CONSTEXPR void check_for_duplicate(named_arg_info<Char>* named_args,
                                       int named_arg_index,
                                       basic_string_view<Char> arg_name) {
  for (int i = 0; i < named_arg_index; ++i) {
    if (named_args[i].name == arg_name) report_error("duplicate named arg");
  }
}

template <typename Char, typename T, FMT_ENABLE_IF(!is_named_arg<T>::value)>
void init_named_arg(named_arg_info<Char>*, int& arg_index, int&, const T&) {
  ++arg_index;
}
template <typename Char, typename T, FMT_ENABLE_IF(is_named_arg<T>::value)>
void init_named_arg(named_arg_info<Char>* named_args, int& arg_index,
                    int& named_arg_index, const T& arg) {
  check_for_duplicate<Char>(named_args, named_arg_index, arg.name);
  named_args[named_arg_index++] = {arg.name, arg_index++};
}

template <typename T, typename Char,
          FMT_ENABLE_IF(!is_static_named_arg<T>::value)>
FMT_CONSTEXPR void init_static_named_arg(named_arg_info<Char>*, int& arg_index,
                                         int&) {
  ++arg_index;
}
template <typename T, typename Char,
          FMT_ENABLE_IF(is_static_named_arg<T>::value)>
FMT_CONSTEXPR void init_static_named_arg(named_arg_info<Char>* named_args,
                                         int& arg_index, int& named_arg_index) {
  check_for_duplicate<Char>(named_args, named_arg_index, T::name);
  named_args[named_arg_index++] = {T::name, arg_index++};
}

// To minimize the number of types we need to deal with, long is translated
// either to int or to long long depending on its size.
enum { long_short = sizeof(long) == sizeof(int) && FMT_BUILTIN_TYPES };
using long_type = conditional_t<long_short, int, long long>;
using ulong_type = conditional_t<long_short, unsigned, unsigned long long>;

template <typename T>
using format_as_result =
    remove_cvref_t<decltype(format_as(std::declval<const T&>()))>;
template <typename T>
using format_as_member_result =
    remove_cvref_t<decltype(formatter<T>::format_as(std::declval<const T&>()))>;

template <typename T, typename Enable = std::true_type>
struct use_format_as : std::false_type {};
// format_as member is only used to avoid injection into the std namespace.
template <typename T, typename Enable = std::true_type>
struct use_format_as_member : std::false_type {};

// Only map owning types because mapping views can be unsafe.
template <typename T>
struct use_format_as<
    T, bool_constant<std::is_arithmetic<format_as_result<T>>::value>>
    : std::true_type {};
template <typename T>
struct use_format_as_member<
    T, bool_constant<std::is_arithmetic<format_as_member_result<T>>::value>>
    : std::true_type {};

template <typename T, typename U = remove_const_t<T>>
using use_formatter =
    bool_constant<(std::is_class<T>::value || std::is_enum<T>::value ||
                   std::is_union<T>::value || std::is_array<T>::value) &&
                  !has_to_string_view<T>::value && !is_named_arg<T>::value &&
                  !use_format_as<T>::value && !use_format_as_member<U>::value>;

template <typename Char, typename T, typename U = remove_const_t<T>>
auto has_formatter_impl(T* p, buffered_context<Char>* ctx = nullptr)
    -> decltype(formatter<U, Char>().format(*p, *ctx), std::true_type());
template <typename Char> auto has_formatter_impl(...) -> std::false_type;

// T can be const-qualified to check if it is const-formattable.
template <typename T, typename Char> constexpr auto has_formatter() -> bool {
  return decltype(has_formatter_impl<Char>(static_cast<T*>(nullptr)))::value;
}

// Maps formatting argument types to natively supported types or user-defined
// types with formatters. Returns void on errors to be SFINAE-friendly.
template <typename Char> struct type_mapper {
  static auto map(signed char) -> int;
  static auto map(unsigned char) -> unsigned;
  static auto map(short) -> int;
  static auto map(unsigned short) -> unsigned;
  static auto map(int) -> int;
  static auto map(unsigned) -> unsigned;
  static auto map(long) -> long_type;
  static auto map(unsigned long) -> ulong_type;
  static auto map(long long) -> long long;
  static auto map(unsigned long long) -> unsigned long long;
  static auto map(int128_opt) -> int128_opt;
  static auto map(uint128_opt) -> uint128_opt;
  static auto map(bool) -> bool;

  template <int N>
  static auto map(bitint<N>) -> conditional_t<N <= 64, long long, void>;
  template <int N>
  static auto map(ubitint<N>)
      -> conditional_t<N <= 64, unsigned long long, void>;

  template <typename T, FMT_ENABLE_IF(is_code_unit<T>::value)>
  static auto map(T) -> conditional_t<
      std::is_same<T, char>::value || std::is_same<T, Char>::value, Char, void>;

  static auto map(float) -> float;
  static auto map(double) -> double;
  static auto map(long double) -> long double;

  static auto map(Char*) -> const Char*;
  static auto map(const Char*) -> const Char*;
  template <typename T, typename C = char_t<T>,
            FMT_ENABLE_IF(!std::is_pointer<T>::value)>
  static auto map(const T&) -> conditional_t<std::is_same<C, Char>::value,
                                             basic_string_view<C>, void>;

  static auto map(void*) -> const void*;
  static auto map(const void*) -> const void*;
  static auto map(volatile void*) -> const void*;
  static auto map(const volatile void*) -> const void*;
  static auto map(nullptr_t) -> const void*;
  template <typename T, FMT_ENABLE_IF(std::is_pointer<T>::value ||
                                      std::is_member_pointer<T>::value)>
  static auto map(const T&) -> void;

  template <typename T, FMT_ENABLE_IF(use_format_as<T>::value)>
  static auto map(const T& x) -> decltype(map(format_as(x)));
  template <typename T, FMT_ENABLE_IF(use_format_as_member<T>::value)>
  static auto map(const T& x) -> decltype(map(formatter<T>::format_as(x)));

  template <typename T, FMT_ENABLE_IF(use_formatter<T>::value)>
  static auto map(T&) -> conditional_t<has_formatter<T, Char>(), T&, void>;

  template <typename T, FMT_ENABLE_IF(is_named_arg<T>::value)>
  static auto map(const T& named_arg) -> decltype(map(named_arg.value));
};

// detail:: is used to workaround a bug in MSVC 2017.
template <typename T, typename Char>
using mapped_t = decltype(detail::type_mapper<Char>::map(std::declval<T&>()));

// A type constant after applying type_mapper.
template <typename T, typename Char = char>
using mapped_type_constant = type_constant<mapped_t<T, Char>, Char>;

template <typename T, typename Context,
          type TYPE =
              mapped_type_constant<T, typename Context::char_type>::value>
using stored_type_constant = std::integral_constant<
    type, Context::builtin_types || TYPE == type::int_type ? TYPE
                                                           : type::custom_type>;
// A parse context with extra data used only in compile-time checks.
template <typename Char>
class compile_parse_context : public parse_context<Char> {
 private:
  int num_args_;
  const type* types_;
  using base = parse_context<Char>;

 public:
  FMT_CONSTEXPR explicit compile_parse_context(basic_string_view<Char> fmt,
                                               int num_args, const type* types,
                                               int next_arg_id = 0)
      : base(fmt, next_arg_id), num_args_(num_args), types_(types) {}

  constexpr auto num_args() const -> int { return num_args_; }
  constexpr auto arg_type(int id) const -> type { return types_[id]; }

  FMT_CONSTEXPR auto next_arg_id() -> int {
    int id = base::next_arg_id();
    if (id >= num_args_) report_error("argument not found");
    return id;
  }

  FMT_CONSTEXPR void check_arg_id(int id) {
    base::check_arg_id(id);
    if (id >= num_args_) report_error("argument not found");
  }
  using base::check_arg_id;

  FMT_CONSTEXPR void check_dynamic_spec(int arg_id) {
    ignore_unused(arg_id);
    if (arg_id < num_args_ && types_ && !is_integral_type(types_[arg_id]))
      report_error("width/precision is not integer");
  }
};

// An argument reference.
template <typename Char> union arg_ref {
  FMT_CONSTEXPR arg_ref(int idx = 0) : index(idx) {}
  FMT_CONSTEXPR arg_ref(basic_string_view<Char> n) : name(n) {}

  int index;
  basic_string_view<Char> name;
};

// Format specifiers with width and precision resolved at formatting rather
// than parsing time to allow reusing the same parsed specifiers with
// different sets of arguments (precompilation of format strings).
template <typename Char = char> struct dynamic_format_specs : format_specs {
  arg_ref<Char> width_ref;
  arg_ref<Char> precision_ref;
};

// Converts a character to ASCII. Returns '\0' on conversion failure.
template <typename Char, FMT_ENABLE_IF(std::is_integral<Char>::value)>
constexpr auto to_ascii(Char c) -> char {
  return c <= 0xff ? static_cast<char>(c) : '\0';
}

// Returns the number of code units in a code point or 1 on error.
template <typename Char>
FMT_CONSTEXPR auto code_point_length(const Char* begin) -> int {
  if (const_check(sizeof(Char) != 1)) return 1;
  auto c = static_cast<unsigned char>(*begin);
  return static_cast<int>((0x3a55000000000000ull >> (2 * (c >> 3))) & 3) + 1;
}

// Parses the range [begin, end) as an unsigned integer. This function assumes
// that the range is non-empty and the first character is a digit.
template <typename Char>
FMT_CONSTEXPR auto parse_nonnegative_int(const Char*& begin, const Char* end,
                                         int error_value) noexcept -> int {
  FMT_ASSERT(begin != end && '0' <= *begin && *begin <= '9', "");
  unsigned value = 0, prev = 0;
  auto p = begin;
  do {
    prev = value;
    value = value * 10 + unsigned(*p - '0');
    ++p;
  } while (p != end && '0' <= *p && *p <= '9');
  auto num_digits = p - begin;
  begin = p;
  int digits10 = static_cast<int>(sizeof(int) * CHAR_BIT * 3 / 10);
  if (num_digits <= digits10) return static_cast<int>(value);
  // Check for overflow.
  unsigned max = INT_MAX;
  return num_digits == digits10 + 1 &&
                 prev * 10ull + unsigned(p[-1] - '0') <= max
             ? static_cast<int>(value)
             : error_value;
}

FMT_CONSTEXPR inline auto parse_align(char c) -> align {
  switch (c) {
  case '<': return align::left;
  case '>': return align::right;
  case '^': return align::center;
  }
  return align::none;
}

template <typename Char> constexpr auto is_name_start(Char c) -> bool {
  return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c == '_';
}

template <typename Char, typename Handler>
FMT_CONSTEXPR auto parse_arg_id(const Char* begin, const Char* end,
                                Handler&& handler) -> const Char* {
  Char c = *begin;
  if (c >= '0' && c <= '9') {
    int index = 0;
    if (c != '0')
      index = parse_nonnegative_int(begin, end, INT_MAX);
    else
      ++begin;
    if (begin == end || (*begin != '}' && *begin != ':'))
      report_error("invalid format string");
    else
      handler.on_index(index);
    return begin;
  }
  if (FMT_OPTIMIZE_SIZE > 1 || !is_name_start(c)) {
    report_error("invalid format string");
    return begin;
  }
  auto it = begin;
  do {
    ++it;
  } while (it != end && (is_name_start(*it) || ('0' <= *it && *it <= '9')));
  handler.on_name({begin, to_unsigned(it - begin)});
  return it;
}

template <typename Char> struct dynamic_spec_handler {
  parse_context<Char>& ctx;
  arg_ref<Char>& ref;
  arg_id_kind& kind;

  FMT_CONSTEXPR void on_index(int id) {
    ref = id;
    kind = arg_id_kind::index;
    ctx.check_arg_id(id);
    ctx.check_dynamic_spec(id);
  }
  FMT_CONSTEXPR void on_name(basic_string_view<Char> id) {
    ref = id;
    kind = arg_id_kind::name;
    ctx.check_arg_id(id);
  }
};

template <typename Char> struct parse_dynamic_spec_result {
  const Char* end;
  arg_id_kind kind;
};

// Parses integer | "{" [arg_id] "}".
template <typename Char>
FMT_CONSTEXPR auto parse_dynamic_spec(const Char* begin, const Char* end,
                                      int& value, arg_ref<Char>& ref,
                                      parse_context<Char>& ctx)
    -> parse_dynamic_spec_result<Char> {
  FMT_ASSERT(begin != end, "");
  auto kind = arg_id_kind::none;
  if ('0' <= *begin && *begin <= '9') {
    int val = parse_nonnegative_int(begin, end, -1);
    if (val == -1) report_error("number is too big");
    value = val;
  } else {
    if (*begin == '{') {
      ++begin;
      if (begin != end) {
        Char c = *begin;
        if (c == '}' || c == ':') {
          int id = ctx.next_arg_id();
          ref = id;
          kind = arg_id_kind::index;
          ctx.check_dynamic_spec(id);
        } else {
          begin = parse_arg_id(begin, end,
                               dynamic_spec_handler<Char>{ctx, ref, kind});
        }
      }
      if (begin != end && *begin == '}') return {++begin, kind};
    }
    report_error("invalid format string");
  }
  return {begin, kind};
}

template <typename Char>
FMT_CONSTEXPR auto parse_width(const Char* begin, const Char* end,
                               format_specs& specs, arg_ref<Char>& width_ref,
                               parse_context<Char>& ctx) -> const Char* {
  auto result = parse_dynamic_spec(begin, end, specs.width, width_ref, ctx);
  specs.set_dynamic_width(result.kind);
  return result.end;
}

template <typename Char>
FMT_CONSTEXPR auto parse_precision(const Char* begin, const Char* end,
                                   format_specs& specs,
                                   arg_ref<Char>& precision_ref,
                                   parse_context<Char>& ctx) -> const Char* {
  ++begin;
  if (begin == end) {
    report_error("invalid precision");
    return begin;
  }
  auto result =
      parse_dynamic_spec(begin, end, specs.precision, precision_ref, ctx);
  specs.set_dynamic_precision(result.kind);
  return result.end;
}

enum class state { start, align, sign, hash, zero, width, precision, locale };

// Parses standard format specifiers.
template <typename Char>
FMT_CONSTEXPR auto parse_format_specs(const Char* begin, const Char* end,
                                      dynamic_format_specs<Char>& specs,
                                      parse_context<Char>& ctx, type arg_type)
    -> const Char* {
  auto c = '\0';
  if (end - begin > 1) {
    auto next = to_ascii(begin[1]);
    c = parse_align(next) == align::none ? to_ascii(*begin) : '\0';
  } else {
    if (begin == end) return begin;
    c = to_ascii(*begin);
  }

  struct {
    state current_state = state::start;
    FMT_CONSTEXPR void operator()(state s, bool valid = true) {
      if (current_state >= s || !valid)
        report_error("invalid format specifier");
      current_state = s;
    }
  } enter_state;

  using pres = presentation_type;
  constexpr auto integral_set = sint_set | uint_set | bool_set | char_set;
  struct {
    const Char*& begin;
    format_specs& specs;
    type arg_type;

    FMT_CONSTEXPR auto operator()(pres pres_type, int set) -> const Char* {
      if (!in(arg_type, set)) report_error("invalid format specifier");
      specs.set_type(pres_type);
      return begin + 1;
    }
  } parse_presentation_type{begin, specs, arg_type};

  for (;;) {
    switch (c) {
    case '<':
    case '>':
    case '^':
      enter_state(state::align);
      specs.set_align(parse_align(c));
      ++begin;
      break;
    case '+':
    case ' ':
      specs.set_sign(c == ' ' ? sign::space : sign::plus);
      FMT_FALLTHROUGH;
    case '-':
      enter_state(state::sign, in(arg_type, sint_set | float_set));
      ++begin;
      break;
    case '#':
      enter_state(state::hash, is_arithmetic_type(arg_type));
      specs.set_alt();
      ++begin;
      break;
    case '0':
      enter_state(state::zero);
      if (!is_arithmetic_type(arg_type))
        report_error("format specifier requires numeric argument");
      if (specs.align() == align::none) {
        // Ignore 0 if align is specified for compatibility with std::format.
        specs.set_align(align::numeric);
        specs.set_fill('0');
      }
      ++begin;
      break;
      // clang-format off
    case '1': case '2': case '3': case '4': case '5':
    case '6': case '7': case '8': case '9': case '{':
      // clang-format on
      enter_state(state::width);
      begin = parse_width(begin, end, specs, specs.width_ref, ctx);
      break;
    case '.':
      enter_state(state::precision,
                  in(arg_type, float_set | string_set | cstring_set));
      begin = parse_precision(begin, end, specs, specs.precision_ref, ctx);
      break;
    case 'L':
      enter_state(state::locale, is_arithmetic_type(arg_type));
      specs.set_localized();
      ++begin;
      break;
    case 'd': return parse_presentation_type(pres::dec, integral_set);
    case 'X': specs.set_upper(); FMT_FALLTHROUGH;
    case 'x': return parse_presentation_type(pres::hex, integral_set);
    case 'o': return parse_presentation_type(pres::oct, integral_set);
    case 'B': specs.set_upper(); FMT_FALLTHROUGH;
    case 'b': return parse_presentation_type(pres::bin, integral_set);
    case 'E': specs.set_upper(); FMT_FALLTHROUGH;
    case 'e': return parse_presentation_type(pres::exp, float_set);
    case 'F': specs.set_upper(); FMT_FALLTHROUGH;
    case 'f': return parse_presentation_type(pres::fixed, float_set);
    case 'G': specs.set_upper(); FMT_FALLTHROUGH;
    case 'g': return parse_presentation_type(pres::general, float_set);
    case 'A': specs.set_upper(); FMT_FALLTHROUGH;
    case 'a': return parse_presentation_type(pres::hexfloat, float_set);
    case 'c':
      if (arg_type == type::bool_type) report_error("invalid format specifier");
      return parse_presentation_type(pres::chr, integral_set);
    case 's':
      return parse_presentation_type(pres::string,
                                     bool_set | string_set | cstring_set);
    case 'p':
      return parse_presentation_type(pres::pointer, pointer_set | cstring_set);
    case '?':
      return parse_presentation_type(pres::debug,
                                     char_set | string_set | cstring_set);
    case '}': return begin;
    default:  {
      if (*begin == '}') return begin;
      // Parse fill and alignment.
      auto fill_end = begin + code_point_length(begin);
      if (end - fill_end <= 0) {
        report_error("invalid format specifier");
        return begin;
      }
      if (*begin == '{') {
        report_error("invalid fill character '{'");
        return begin;
      }
      auto alignment = parse_align(to_ascii(*fill_end));
      enter_state(state::align, alignment != align::none);
      specs.set_fill(
          basic_string_view<Char>(begin, to_unsigned(fill_end - begin)));
      specs.set_align(alignment);
      begin = fill_end + 1;
    }
    }
    if (begin == end) return begin;
    c = to_ascii(*begin);
  }
}

template <typename Char, typename Handler>
FMT_CONSTEXPR FMT_INLINE auto parse_replacement_field(const Char* begin,
                                                      const Char* end,
                                                      Handler&& handler)
    -> const Char* {
  ++begin;
  if (begin == end) {
    handler.on_error("invalid format string");
    return end;
  }
  int arg_id = 0;
  switch (*begin) {
  case '}':
    handler.on_replacement_field(handler.on_arg_id(), begin);
    return begin + 1;
  case '{': handler.on_text(begin, begin + 1); return begin + 1;
  case ':': arg_id = handler.on_arg_id(); break;
  default:  {
    struct id_adapter {
      Handler& handler;
      int arg_id;

      FMT_CONSTEXPR void on_index(int id) { arg_id = handler.on_arg_id(id); }
      FMT_CONSTEXPR void on_name(basic_string_view<Char> id) {
        arg_id = handler.on_arg_id(id);
      }
    } adapter = {handler, 0};
    begin = parse_arg_id(begin, end, adapter);
    arg_id = adapter.arg_id;
    Char c = begin != end ? *begin : Char();
    if (c == '}') {
      handler.on_replacement_field(arg_id, begin);
      return begin + 1;
    }
    if (c != ':') {
      handler.on_error("missing '}' in format string");
      return end;
    }
    break;
  }
  }
  begin = handler.on_format_specs(arg_id, begin + 1, end);
  if (begin == end || *begin != '}')
    return handler.on_error("unknown format specifier"), end;
  return begin + 1;
}

template <typename Char, typename Handler>
FMT_CONSTEXPR void parse_format_string(basic_string_view<Char> fmt,
                                       Handler&& handler) {
  auto begin = fmt.data(), end = begin + fmt.size();
  auto p = begin;
  while (p != end) {
    auto c = *p++;
    if (c == '{') {
      handler.on_text(begin, p - 1);
      begin = p = parse_replacement_field(p - 1, end, handler);
    } else if (c == '}') {
      if (p == end || *p != '}')
        return handler.on_error("unmatched '}' in format string");
      handler.on_text(begin, p);
      begin = ++p;
    }
  }
  handler.on_text(begin, end);
}

// Checks char specs and returns true iff the presentation type is char-like.
FMT_CONSTEXPR inline auto check_char_specs(const format_specs& specs) -> bool {
  auto type = specs.type();
  if (type != presentation_type::none && type != presentation_type::chr &&
      type != presentation_type::debug) {
    return false;
  }
  if (specs.align() == align::numeric || specs.sign() != sign::none ||
      specs.alt()) {
    report_error("invalid format specifier for char");
  }
  return true;
}

// A base class for compile-time strings.
struct compile_string {};

template <typename T, typename Char>
FMT_VISIBILITY("hidden")  // Suppress an ld warning on macOS (#3769).
FMT_CONSTEXPR auto invoke_parse(parse_context<Char>& ctx) -> const Char* {
  using mapped_type = remove_cvref_t<mapped_t<T, Char>>;
  constexpr bool formattable =
      std::is_constructible<formatter<mapped_type, Char>>::value;
  if (!formattable) return ctx.begin();  // Error is reported in the value ctor.
  using formatted_type = conditional_t<formattable, mapped_type, int>;
  return formatter<formatted_type, Char>().parse(ctx);
}

template <typename... T> struct arg_pack {};

template <typename Char, int NUM_ARGS, int NUM_NAMED_ARGS, bool DYNAMIC_NAMES>
class format_string_checker {
 private:
  type types_[max_of<size_t>(1, NUM_ARGS)];
  named_arg_info<Char> named_args_[max_of<size_t>(1, NUM_NAMED_ARGS)];
  compile_parse_context<Char> context_;

  using parse_func = auto (*)(parse_context<Char>&) -> const Char*;
  parse_func parse_funcs_[max_of<size_t>(1, NUM_ARGS)];

 public:
  template <typename... T>
  FMT_CONSTEXPR explicit format_string_checker(basic_string_view<Char> fmt,
                                               arg_pack<T...>)
      : types_{mapped_type_constant<T, Char>::value...},
        named_args_{},
        context_(fmt, NUM_ARGS, types_),
        parse_funcs_{&invoke_parse<T, Char>...} {
    int arg_index = 0, named_arg_index = 0;
    FMT_APPLY_VARIADIC(
        init_static_named_arg<T>(named_args_, arg_index, named_arg_index));
    ignore_unused(arg_index, named_arg_index);
  }

  FMT_CONSTEXPR void on_text(const Char*, const Char*) {}

  FMT_CONSTEXPR auto on_arg_id() -> int { return context_.next_arg_id(); }
  FMT_CONSTEXPR auto on_arg_id(int id) -> int {
    context_.check_arg_id(id);
    return id;
  }
  FMT_CONSTEXPR auto on_arg_id(basic_string_view<Char> id) -> int {
    for (int i = 0; i < NUM_NAMED_ARGS; ++i) {
      if (named_args_[i].name == id) return named_args_[i].id;
    }
    if (!DYNAMIC_NAMES) on_error("argument not found");
    return -1;
  }

  FMT_CONSTEXPR void on_replacement_field(int id, const Char* begin) {
    on_format_specs(id, begin, begin);  // Call parse() on empty specs.
  }

  FMT_CONSTEXPR auto on_format_specs(int id, const Char* begin, const Char* end)
      -> const Char* {
    context_.advance_to(begin);
    if (id >= 0 && id < NUM_ARGS) return parse_funcs_[id](context_);

    // If id is out of range, it means we do not know the type and cannot parse
    // the format at compile time. Instead, skip over content until we finish
    // the format spec, accounting for any nested replacements.
    for (int bracket_count = 0;
         begin != end && (bracket_count > 0 || *begin != '}'); ++begin) {
      if (*begin == '{')
        ++bracket_count;
      else if (*begin == '}')
        --bracket_count;
    }
    return begin;
  }

  FMT_NORETURN FMT_CONSTEXPR void on_error(const char* message) {
    report_error(message);
  }
};

/// A contiguous memory buffer with an optional growing ability. It is an
/// internal class and shouldn't be used directly, only via `memory_buffer`.
template <typename T> class buffer {
 private:
  T* ptr_;
  size_t size_;
  size_t capacity_;

  using grow_fun = void (*)(buffer& buf, size_t capacity);
  grow_fun grow_;

 protected:
  // Don't initialize ptr_ since it is not accessed to save a few cycles.
  FMT_MSC_WARNING(suppress : 26495)
  FMT_CONSTEXPR buffer(grow_fun grow, size_t sz) noexcept
      : size_(sz), capacity_(sz), grow_(grow) {}

  constexpr buffer(grow_fun grow, T* p = nullptr, size_t sz = 0,
                   size_t cap = 0) noexcept
      : ptr_(p), size_(sz), capacity_(cap), grow_(grow) {}

  FMT_CONSTEXPR20 ~buffer() = default;
  buffer(buffer&&) = default;

  /// Sets the buffer data and capacity.
  FMT_CONSTEXPR void set(T* buf_data, size_t buf_capacity) noexcept {
    ptr_ = buf_data;
    capacity_ = buf_capacity;
  }

 public:
  using value_type = T;
  using const_reference = const T&;

  buffer(const buffer&) = delete;
  void operator=(const buffer&) = delete;

  auto begin() noexcept -> T* { return ptr_; }
  auto end() noexcept -> T* { return ptr_ + size_; }

  auto begin() const noexcept -> const T* { return ptr_; }
  auto end() const noexcept -> const T* { return ptr_ + size_; }

  /// Returns the size of this buffer.
  constexpr auto size() const noexcept -> size_t { return size_; }

  /// Returns the capacity of this buffer.
  constexpr auto capacity() const noexcept -> size_t { return capacity_; }

  /// Returns a pointer to the buffer data (not null-terminated).
  FMT_CONSTEXPR auto data() noexcept -> T* { return ptr_; }
  FMT_CONSTEXPR auto data() const noexcept -> const T* { return ptr_; }

  /// Clears this buffer.
  FMT_CONSTEXPR void clear() { size_ = 0; }

  // Tries resizing the buffer to contain `count` elements. If T is a POD type
  // the new elements may not be initialized.
  FMT_CONSTEXPR void try_resize(size_t count) {
    try_reserve(count);
    size_ = min_of(count, capacity_);
  }

  // Tries increasing the buffer capacity to `new_capacity`. It can increase the
  // capacity by a smaller amount than requested but guarantees there is space
  // for at least one additional element either by increasing the capacity or by
  // flushing the buffer if it is full.
  FMT_CONSTEXPR void try_reserve(size_t new_capacity) {
    if (new_capacity > capacity_) grow_(*this, new_capacity);
  }

  FMT_CONSTEXPR void push_back(const T& value) {
    try_reserve(size_ + 1);
    ptr_[size_++] = value;
  }

  /// Appends data to the end of the buffer.
  template <typename U>
// Workaround for MSVC2019 to fix error C2893: Failed to specialize function
// template 'void fmt::v11::detail::buffer<T>::append(const U *,const U *)'.
#if !FMT_MSC_VERSION || FMT_MSC_VERSION >= 1940
  FMT_CONSTEXPR20
#endif
      void
      append(const U* begin, const U* end) {
    while (begin != end) {
      auto size = size_;
      auto free_cap = capacity_ - size;
      auto count = to_unsigned(end - begin);
      if (free_cap < count) {
        grow_(*this, size + count);
        size = size_;
        free_cap = capacity_ - size;
        count = count < free_cap ? count : free_cap;
      }
      // A loop is faster than memcpy on small sizes.
      T* out = ptr_ + size;
      for (size_t i = 0; i < count; ++i) out[i] = begin[i];
      size_ += count;
      begin += count;
    }
  }

  template <typename Idx> FMT_CONSTEXPR auto operator[](Idx index) -> T& {
    return ptr_[index];
  }
  template <typename Idx>
  FMT_CONSTEXPR auto operator[](Idx index) const -> const T& {
    return ptr_[index];
  }
};

struct buffer_traits {
  constexpr explicit buffer_traits(size_t) {}
  constexpr auto count() const -> size_t { return 0; }
  constexpr auto limit(size_t size) const -> size_t { return size; }
};

class fixed_buffer_traits {
 private:
  size_t count_ = 0;
  size_t limit_;

 public:
  constexpr explicit fixed_buffer_traits(size_t limit) : limit_(limit) {}
  constexpr auto count() const -> size_t { return count_; }
  FMT_CONSTEXPR auto limit(size_t size) -> size_t {
    size_t n = limit_ > count_ ? limit_ - count_ : 0;
    count_ += size;
    return min_of(size, n);
  }
};

// A buffer that writes to an output iterator when flushed.
template <typename OutputIt, typename T, typename Traits = buffer_traits>
class iterator_buffer : public Traits, public buffer<T> {
 private:
  OutputIt out_;
  enum { buffer_size = 256 };
  T data_[buffer_size];

  static FMT_CONSTEXPR void grow(buffer<T>& buf, size_t) {
    if (buf.size() == buffer_size) static_cast<iterator_buffer&>(buf).flush();
  }

  void flush() {
    auto size = this->size();
    this->clear();
    const T* begin = data_;
    const T* end = begin + this->limit(size);
    while (begin != end) *out_++ = *begin++;
  }

 public:
  explicit iterator_buffer(OutputIt out, size_t n = buffer_size)
      : Traits(n), buffer<T>(grow, data_, 0, buffer_size), out_(out) {}
  iterator_buffer(iterator_buffer&& other) noexcept
      : Traits(other),
        buffer<T>(grow, data_, 0, buffer_size),
        out_(other.out_) {}
  ~iterator_buffer() {
    // Don't crash if flush fails during unwinding.
    FMT_TRY { flush(); }
    FMT_CATCH(...) {}
  }

  auto out() -> OutputIt {
    flush();
    return out_;
  }
  auto count() const -> size_t { return Traits::count() + this->size(); }
};

template <typename T>
class iterator_buffer<T*, T, fixed_buffer_traits> : public fixed_buffer_traits,
                                                    public buffer<T> {
 private:
  T* out_;
  enum { buffer_size = 256 };
  T data_[buffer_size];

  static FMT_CONSTEXPR void grow(buffer<T>& buf, size_t) {
    if (buf.size() == buf.capacity())
      static_cast<iterator_buffer&>(buf).flush();
  }

  void flush() {
    size_t n = this->limit(this->size());
    if (this->data() == out_) {
      out_ += n;
      this->set(data_, buffer_size);
    }
    this->clear();
  }

 public:
  explicit iterator_buffer(T* out, size_t n = buffer_size)
      : fixed_buffer_traits(n), buffer<T>(grow, out, 0, n), out_(out) {}
  iterator_buffer(iterator_buffer&& other) noexcept
      : fixed_buffer_traits(other),
        buffer<T>(static_cast<iterator_buffer&&>(other)),
        out_(other.out_) {
    if (this->data() != out_) {
      this->set(data_, buffer_size);
      this->clear();
    }
  }
  ~iterator_buffer() { flush(); }

  auto out() -> T* {
    flush();
    return out_;
  }
  auto count() const -> size_t {
    return fixed_buffer_traits::count() + this->size();
  }
};

template <typename T> class iterator_buffer<T*, T> : public buffer<T> {
 public:
  explicit iterator_buffer(T* out, size_t = 0)
      : buffer<T>([](buffer<T>&, size_t) {}, out, 0, ~size_t()) {}

  auto out() -> T* { return &*this->end(); }
};

template <typename Container>
class container_buffer : public buffer<typename Container::value_type> {
 private:
  using value_type = typename Container::value_type;

  static FMT_CONSTEXPR void grow(buffer<value_type>& buf, size_t capacity) {
    auto& self = static_cast<container_buffer&>(buf);
    self.container.resize(capacity);
    self.set(&self.container[0], capacity);
  }

 public:
  Container& container;

  explicit container_buffer(Container& c)
      : buffer<value_type>(grow, c.size()), container(c) {}
};

// A buffer that writes to a container with the contiguous storage.
template <typename OutputIt>
class iterator_buffer<
    OutputIt,
    enable_if_t<is_back_insert_iterator<OutputIt>::value &&
                    is_contiguous<typename OutputIt::container_type>::value,
                typename OutputIt::container_type::value_type>>
    : public container_buffer<typename OutputIt::container_type> {
 private:
  using base = container_buffer<typename OutputIt::container_type>;

 public:
  explicit iterator_buffer(typename OutputIt::container_type& c) : base(c) {}
  explicit iterator_buffer(OutputIt out, size_t = 0)
      : base(get_container(out)) {}

  auto out() -> OutputIt { return OutputIt(this->container); }
};

// A buffer that counts the number of code units written discarding the output.
template <typename T = char> class counting_buffer : public buffer<T> {
 private:
  enum { buffer_size = 256 };
  T data_[buffer_size];
  size_t count_ = 0;

  static FMT_CONSTEXPR void grow(buffer<T>& buf, size_t) {
    if (buf.size() != buffer_size) return;
    static_cast<counting_buffer&>(buf).count_ += buf.size();
    buf.clear();
  }

 public:
  FMT_CONSTEXPR counting_buffer() : buffer<T>(grow, data_, 0, buffer_size) {}

  constexpr auto count() const noexcept -> size_t {
    return count_ + this->size();
  }
};

template <typename T>
struct is_back_insert_iterator<basic_appender<T>> : std::true_type {};

template <typename OutputIt, typename InputIt, typename = void>
struct has_back_insert_iterator_container_append : std::false_type {};
template <typename OutputIt, typename InputIt>
struct has_back_insert_iterator_container_append<
    OutputIt, InputIt,
    void_t<decltype(get_container(std::declval<OutputIt>())
                        .append(std::declval<InputIt>(),
                                std::declval<InputIt>()))>> : std::true_type {};

template <typename OutputIt, typename InputIt, typename = void>
struct has_back_insert_iterator_container_insert_at_end : std::false_type {};

template <typename OutputIt, typename InputIt>
struct has_back_insert_iterator_container_insert_at_end<
    OutputIt, InputIt,
    void_t<decltype(get_container(std::declval<OutputIt>())
                        .insert(get_container(std::declval<OutputIt>()).end(),
                                std::declval<InputIt>(),
                                std::declval<InputIt>()))>> : std::true_type {};

// An optimized version of std::copy with the output value type (T).
template <typename T, typename InputIt, typename OutputIt,
          FMT_ENABLE_IF(is_back_insert_iterator<OutputIt>::value&&
                            has_back_insert_iterator_container_append<
                                OutputIt, InputIt>::value)>
FMT_CONSTEXPR20 auto copy(InputIt begin, InputIt end, OutputIt out)
    -> OutputIt {
  get_container(out).append(begin, end);
  return out;
}

template <typename T, typename InputIt, typename OutputIt,
          FMT_ENABLE_IF(is_back_insert_iterator<OutputIt>::value &&
                        !has_back_insert_iterator_container_append<
                            OutputIt, InputIt>::value &&
                        has_back_insert_iterator_container_insert_at_end<
                            OutputIt, InputIt>::value)>
FMT_CONSTEXPR20 auto copy(InputIt begin, InputIt end, OutputIt out)
    -> OutputIt {
  auto& c = get_container(out);
  c.insert(c.end(), begin, end);
  return out;
}

template <typename T, typename InputIt, typename OutputIt,
          FMT_ENABLE_IF(!(is_back_insert_iterator<OutputIt>::value &&
                          (has_back_insert_iterator_container_append<
                               OutputIt, InputIt>::value ||
                           has_back_insert_iterator_container_insert_at_end<
                               OutputIt, InputIt>::value)))>
FMT_CONSTEXPR auto copy(InputIt begin, InputIt end, OutputIt out) -> OutputIt {
  while (begin != end) *out++ = static_cast<T>(*begin++);
  return out;
}

template <typename T, typename V, typename OutputIt>
FMT_CONSTEXPR auto copy(basic_string_view<V> s, OutputIt out) -> OutputIt {
  return copy<T>(s.begin(), s.end(), out);
}

template <typename It, typename Enable = std::true_type>
struct is_buffer_appender : std::false_type {};
template <typename It>
struct is_buffer_appender<
    It, bool_constant<
            is_back_insert_iterator<It>::value &&
            std::is_base_of<buffer<typename It::container_type::value_type>,
                            typename It::container_type>::value>>
    : std::true_type {};

// Maps an output iterator to a buffer.
template <typename T, typename OutputIt,
          FMT_ENABLE_IF(!is_buffer_appender<OutputIt>::value)>
auto get_buffer(OutputIt out) -> iterator_buffer<OutputIt, T> {
  return iterator_buffer<OutputIt, T>(out);
}
template <typename T, typename OutputIt,
          FMT_ENABLE_IF(is_buffer_appender<OutputIt>::value)>
auto get_buffer(OutputIt out) -> buffer<T>& {
  return get_container(out);
}

template <typename Buf, typename OutputIt>
auto get_iterator(Buf& buf, OutputIt) -> decltype(buf.out()) {
  return buf.out();
}
template <typename T, typename OutputIt>
auto get_iterator(buffer<T>&, OutputIt out) -> OutputIt {
  return out;
}

// This type is intentionally undefined, only used for errors.
template <typename T, typename Char> struct type_is_unformattable_for;

template <typename Char> struct string_value {
  const Char* data;
  size_t size;
  auto str() const -> basic_string_view<Char> { return {data, size}; }
};

template <typename Context> struct custom_value {
  using char_type = typename Context::char_type;
  void* value;
  void (*format)(void* arg, parse_context<char_type>& parse_ctx, Context& ctx);
};

template <typename Char> struct named_arg_value {
  const named_arg_info<Char>* data;
  size_t size;
};

struct custom_tag {};

#if !FMT_BUILTIN_TYPES
#  define FMT_BUILTIN , monostate
#else
#  define FMT_BUILTIN
#endif

// A formatting argument value.
template <typename Context> class value {
 public:
  using char_type = typename Context::char_type;

  union {
    monostate no_value;
    int int_value;
    unsigned uint_value;
    long long long_long_value;
    unsigned long long ulong_long_value;
    int128_opt int128_value;
    uint128_opt uint128_value;
    bool bool_value;
    char_type char_value;
    float float_value;
    double double_value;
    long double long_double_value;
    const void* pointer;
    string_value<char_type> string;
    custom_value<Context> custom;
    named_arg_value<char_type> named_args;
  };

  constexpr FMT_INLINE value() : no_value() {}
  constexpr FMT_INLINE value(signed char x) : int_value(x) {}
  constexpr FMT_INLINE value(unsigned char x FMT_BUILTIN) : uint_value(x) {}
  constexpr FMT_INLINE value(signed short x) : int_value(x) {}
  constexpr FMT_INLINE value(unsigned short x FMT_BUILTIN) : uint_value(x) {}
  constexpr FMT_INLINE value(int x) : int_value(x) {}
  constexpr FMT_INLINE value(unsigned x FMT_BUILTIN) : uint_value(x) {}
  FMT_CONSTEXPR FMT_INLINE value(long x FMT_BUILTIN) : value(long_type(x)) {}
  FMT_CONSTEXPR FMT_INLINE value(unsigned long x FMT_BUILTIN)
      : value(ulong_type(x)) {}
  constexpr FMT_INLINE value(long long x FMT_BUILTIN) : long_long_value(x) {}
  constexpr FMT_INLINE value(unsigned long long x FMT_BUILTIN)
      : ulong_long_value(x) {}
  FMT_INLINE value(int128_opt x FMT_BUILTIN) : int128_value(x) {}
  FMT_INLINE value(uint128_opt x FMT_BUILTIN) : uint128_value(x) {}
  constexpr FMT_INLINE value(bool x FMT_BUILTIN) : bool_value(x) {}

  template <int N>
  constexpr FMT_INLINE value(bitint<N> x FMT_BUILTIN) : long_long_value(x) {
    static_assert(N <= 64, "unsupported _BitInt");
  }
  template <int N>
  constexpr FMT_INLINE value(ubitint<N> x FMT_BUILTIN) : ulong_long_value(x) {
    static_assert(N <= 64, "unsupported _BitInt");
  }

  template <typename T, FMT_ENABLE_IF(is_code_unit<T>::value)>
  constexpr FMT_INLINE value(T x FMT_BUILTIN) : char_value(x) {
    static_assert(
        std::is_same<T, char>::value || std::is_same<T, char_type>::value,
        "mixing character types is disallowed");
  }

  constexpr FMT_INLINE value(float x FMT_BUILTIN) : float_value(x) {}
  constexpr FMT_INLINE value(double x FMT_BUILTIN) : double_value(x) {}
  FMT_INLINE value(long double x FMT_BUILTIN) : long_double_value(x) {}

  FMT_CONSTEXPR FMT_INLINE value(char_type* x FMT_BUILTIN) {
    string.data = x;
    if (is_constant_evaluated()) string.size = 0;
  }
  FMT_CONSTEXPR FMT_INLINE value(const char_type* x FMT_BUILTIN) {
    string.data = x;
    if (is_constant_evaluated()) string.size = 0;
  }
  template <typename T, typename C = char_t<T>,
            FMT_ENABLE_IF(!std::is_pointer<T>::value)>
  FMT_CONSTEXPR value(const T& x FMT_BUILTIN) {
    static_assert(std::is_same<C, char_type>::value,
                  "mixing character types is disallowed");
    auto sv = to_string_view(x);
    string.data = sv.data();
    string.size = sv.size();
  }
  FMT_INLINE value(void* x FMT_BUILTIN) : pointer(x) {}
  FMT_INLINE value(const void* x FMT_BUILTIN) : pointer(x) {}
  FMT_INLINE value(volatile void* x FMT_BUILTIN)
      : pointer(const_cast<const void*>(x)) {}
  FMT_INLINE value(const volatile void* x FMT_BUILTIN)
      : pointer(const_cast<const void*>(x)) {}
  FMT_INLINE value(nullptr_t) : pointer(nullptr) {}

  template <typename T, FMT_ENABLE_IF(std::is_pointer<T>::value ||
                                      std::is_member_pointer<T>::value)>
  value(const T&) {
    // Formatting of arbitrary pointers is disallowed. If you want to format a
    // pointer cast it to `void*` or `const void*`. In particular, this forbids
    // formatting of `[const] volatile char*` printed as bool by iostreams.
    static_assert(sizeof(T) == 0,
                  "formatting of non-void pointers is disallowed");
  }

  template <typename T, FMT_ENABLE_IF(use_format_as<T>::value)>
  value(const T& x) : value(format_as(x)) {}
  template <typename T, FMT_ENABLE_IF(use_format_as_member<T>::value)>
  value(const T& x) : value(formatter<T>::format_as(x)) {}

  template <typename T, FMT_ENABLE_IF(is_named_arg<T>::value)>
  value(const T& named_arg) : value(named_arg.value) {}

  template <typename T,
            FMT_ENABLE_IF(use_formatter<T>::value || !FMT_BUILTIN_TYPES)>
  FMT_CONSTEXPR20 FMT_INLINE value(T& x) : value(x, custom_tag()) {}

  FMT_ALWAYS_INLINE value(const named_arg_info<char_type>* args, size_t size)
      : named_args{args, size} {}

 private:
  template <typename T, FMT_ENABLE_IF(has_formatter<T, char_type>())>
  FMT_CONSTEXPR value(T& x, custom_tag) {
    using value_type = remove_const_t<T>;
    // T may overload operator& e.g. std::vector<bool>::reference in libc++.
    if (!is_constant_evaluated()) {
      custom.value =
          const_cast<char*>(&reinterpret_cast<const volatile char&>(x));
    } else {
      custom.value = nullptr;
#if defined(__cpp_if_constexpr)
      if constexpr (std::is_same<decltype(&x), remove_reference_t<T>*>::value)
        custom.value = const_cast<value_type*>(&x);
#endif
    }
    custom.format = format_custom<value_type>;
  }

  template <typename T, FMT_ENABLE_IF(!has_formatter<T, char_type>())>
  FMT_CONSTEXPR value(const T&, custom_tag) {
    // Cannot format an argument; to make type T formattable provide a
    // formatter<T> specialization: https://fmt.dev/latest/api.html#udt.
    type_is_unformattable_for<T, char_type> _;
  }

  // Formats an argument of a custom type, such as a user-defined class.
  template <typename T>
  static void format_custom(void* arg, parse_context<char_type>& parse_ctx,
                            Context& ctx) {
    auto f = formatter<T, char_type>();
    parse_ctx.advance_to(f.parse(parse_ctx));
    using qualified_type =
        conditional_t<has_formatter<const T, char_type>(), const T, T>;
    // format must be const for compatibility with std::format and compilation.
    const auto& cf = f;
    ctx.advance_to(cf.format(*static_cast<qualified_type*>(arg), ctx));
  }
};

enum { packed_arg_bits = 4 };
// Maximum number of arguments with packed types.
enum { max_packed_args = 62 / packed_arg_bits };
enum : unsigned long long { is_unpacked_bit = 1ULL << 63 };
enum : unsigned long long { has_named_args_bit = 1ULL << 62 };

template <typename It, typename T, typename Enable = void>
struct is_output_iterator : std::false_type {};

template <> struct is_output_iterator<appender, char> : std::true_type {};

template <typename It, typename T>
struct is_output_iterator<
    It, T,
    enable_if_t<std::is_assignable<decltype(*std::declval<decay_t<It>&>()++),
                                   T>::value>> : std::true_type {};

template <typename> constexpr auto encode_types() -> unsigned long long {
  return 0;
}

template <typename Context, typename First, typename... T>
constexpr auto encode_types() -> unsigned long long {
  return static_cast<unsigned>(stored_type_constant<First, Context>::value) |
         (encode_types<Context, T...>() << packed_arg_bits);
}

template <typename Context, typename... T, size_t NUM_ARGS = sizeof...(T)>
constexpr auto make_descriptor() -> unsigned long long {
  return NUM_ARGS <= max_packed_args ? encode_types<Context, T...>()
                                     : is_unpacked_bit | NUM_ARGS;
}

template <typename Context, int NUM_ARGS>
using arg_t = conditional_t<NUM_ARGS <= max_packed_args, value<Context>,
                            basic_format_arg<Context>>;

template <typename Context, int NUM_ARGS, int NUM_NAMED_ARGS,
          unsigned long long DESC>
struct named_arg_store {
  // args_[0].named_args points to named_args to avoid bloating format_args.
  arg_t<Context, NUM_ARGS> args[1u + NUM_ARGS];
  named_arg_info<typename Context::char_type>
      named_args[static_cast<size_t>(NUM_NAMED_ARGS)];

  template <typename... T>
  FMT_CONSTEXPR FMT_ALWAYS_INLINE named_arg_store(T&... values)
      : args{{named_args, NUM_NAMED_ARGS}, values...} {
    int arg_index = 0, named_arg_index = 0;
    FMT_APPLY_VARIADIC(
        init_named_arg(named_args, arg_index, named_arg_index, values));
  }

  named_arg_store(named_arg_store&& rhs) {
    args[0] = {named_args, NUM_NAMED_ARGS};
    for (size_t i = 1; i < sizeof(args) / sizeof(*args); ++i)
      args[i] = rhs.args[i];
    for (size_t i = 0; i < NUM_NAMED_ARGS; ++i)
      named_args[i] = rhs.named_args[i];
  }

  named_arg_store(const named_arg_store& rhs) = delete;
  auto operator=(const named_arg_store& rhs) -> named_arg_store& = delete;
  auto operator=(named_arg_store&& rhs) -> named_arg_store& = delete;
  operator const arg_t<Context, NUM_ARGS>*() const { return args + 1; }
};

// An array of references to arguments. It can be implicitly converted to
// `basic_format_args` for passing into type-erased formatting functions
// such as `vformat`. It is a plain struct to reduce binary size in debug mode.
template <typename Context, int NUM_ARGS, int NUM_NAMED_ARGS,
          unsigned long long DESC>
struct format_arg_store {
  // +1 to workaround a bug in gcc 7.5 that causes duplicated-branches warning.
  using type =
      conditional_t<NUM_NAMED_ARGS == 0,
                    arg_t<Context, NUM_ARGS>[max_of<size_t>(1, NUM_ARGS)],
                    named_arg_store<Context, NUM_ARGS, NUM_NAMED_ARGS, DESC>>;
  type args;
};

// TYPE can be different from type_constant<T>, e.g. for __float128.
template <typename T, typename Char, type TYPE> struct native_formatter {
 private:
  dynamic_format_specs<Char> specs_;

 public:
  using nonlocking = void;

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    if (ctx.begin() == ctx.end() || *ctx.begin() == '}') return ctx.begin();
    auto end = parse_format_specs(ctx.begin(), ctx.end(), specs_, ctx, TYPE);
    if (const_check(TYPE == type::char_type)) check_char_specs(specs_);
    return end;
  }

  template <type U = TYPE,
            FMT_ENABLE_IF(U == type::string_type || U == type::cstring_type ||
                          U == type::char_type)>
  FMT_CONSTEXPR void set_debug_format(bool set = true) {
    specs_.set_type(set ? presentation_type::debug : presentation_type::none);
  }

  FMT_PRAGMA_CLANG(diagnostic ignored "-Wundefined-inline")
  template <typename FormatContext>
  FMT_CONSTEXPR auto format(const T& val, FormatContext& ctx) const
      -> decltype(ctx.out());
};

template <typename T, typename Enable = void>
struct locking
    : bool_constant<mapped_type_constant<T>::value == type::custom_type> {};
template <typename T>
struct locking<T, void_t<typename formatter<remove_cvref_t<T>>::nonlocking>>
    : std::false_type {};

template <typename T = int> FMT_CONSTEXPR inline auto is_locking() -> bool {
  return locking<T>::value;
}
template <typename T1, typename T2, typename... Tail>
FMT_CONSTEXPR inline auto is_locking() -> bool {
  return locking<T1>::value || is_locking<T2, Tail...>();
}

FMT_API void vformat_to(buffer<char>& buf, string_view fmt, format_args args,
                        locale_ref loc = {});

#if FMT_WIN32
FMT_API void vprint_mojibake(FILE*, string_view, format_args, bool);
#else  // format_args is passed by reference since it is defined later.
inline void vprint_mojibake(FILE*, string_view, const format_args&, bool) {}
#endif
}  // namespace detail

// The main public API.

template <typename Char>
FMT_CONSTEXPR void parse_context<Char>::do_check_arg_id(int arg_id) {
  // Argument id is only checked at compile time during parsing because
  // formatting has its own validation.
  if (detail::is_constant_evaluated() && use_constexpr_cast) {
    auto ctx = static_cast<detail::compile_parse_context<Char>*>(this);
    if (arg_id >= ctx->num_args()) report_error("argument not found");
  }
}

template <typename Char>
FMT_CONSTEXPR void parse_context<Char>::check_dynamic_spec(int arg_id) {
  using detail::compile_parse_context;
  if (detail::is_constant_evaluated() && use_constexpr_cast)
    static_cast<compile_parse_context<Char>*>(this)->check_dynamic_spec(arg_id);
}

FMT_BEGIN_EXPORT

// An output iterator that appends to a buffer. It is used instead of
// back_insert_iterator to reduce symbol sizes and avoid <iterator> dependency.
template <typename T> class basic_appender {
 protected:
  detail::buffer<T>* container;

 public:
  using container_type = detail::buffer<T>;

  FMT_CONSTEXPR basic_appender(detail::buffer<T>& buf) : container(&buf) {}

  FMT_CONSTEXPR20 auto operator=(T c) -> basic_appender& {
    container->push_back(c);
    return *this;
  }
  FMT_CONSTEXPR20 auto operator*() -> basic_appender& { return *this; }
  FMT_CONSTEXPR20 auto operator++() -> basic_appender& { return *this; }
  FMT_CONSTEXPR20 auto operator++(int) -> basic_appender { return *this; }
};

// A formatting argument. Context is a template parameter for the compiled API
// where output can be unbuffered.
template <typename Context> class basic_format_arg {
 private:
  detail::value<Context> value_;
  detail::type type_;

  friend class basic_format_args<Context>;

  using char_type = typename Context::char_type;

 public:
  class handle {
   private:
    detail::custom_value<Context> custom_;

   public:
    explicit handle(detail::custom_value<Context> custom) : custom_(custom) {}

    void format(parse_context<char_type>& parse_ctx, Context& ctx) const {
      custom_.format(custom_.value, parse_ctx, ctx);
    }
  };

  constexpr basic_format_arg() : type_(detail::type::none_type) {}
  basic_format_arg(const detail::named_arg_info<char_type>* args, size_t size)
      : value_(args, size) {}
  template <typename T>
  basic_format_arg(T&& val)
      : value_(val), type_(detail::stored_type_constant<T, Context>::value) {}

  constexpr explicit operator bool() const noexcept {
    return type_ != detail::type::none_type;
  }
  auto type() const -> detail::type { return type_; }

  /**
   * Visits an argument dispatching to the appropriate visit method based on
   * the argument type. For example, if the argument type is `double` then
   * `vis(value)` will be called with the value of type `double`.
   */
  template <typename Visitor>
  FMT_CONSTEXPR FMT_INLINE auto visit(Visitor&& vis) const -> decltype(vis(0)) {
    using detail::map;
    switch (type_) {
    case detail::type::none_type:        break;
    case detail::type::int_type:         return vis(value_.int_value);
    case detail::type::uint_type:        return vis(value_.uint_value);
    case detail::type::long_long_type:   return vis(value_.long_long_value);
    case detail::type::ulong_long_type:  return vis(value_.ulong_long_value);
    case detail::type::int128_type:      return vis(map(value_.int128_value));
    case detail::type::uint128_type:     return vis(map(value_.uint128_value));
    case detail::type::bool_type:        return vis(value_.bool_value);
    case detail::type::char_type:        return vis(value_.char_value);
    case detail::type::float_type:       return vis(value_.float_value);
    case detail::type::double_type:      return vis(value_.double_value);
    case detail::type::long_double_type: return vis(value_.long_double_value);
    case detail::type::cstring_type:     return vis(value_.string.data);
    case detail::type::string_type:      return vis(value_.string.str());
    case detail::type::pointer_type:     return vis(value_.pointer);
    case detail::type::custom_type:      return vis(handle(value_.custom));
    }
    return vis(monostate());
  }

  auto format_custom(const char_type* parse_begin,
                     parse_context<char_type>& parse_ctx, Context& ctx)
      -> bool {
    if (type_ != detail::type::custom_type) return false;
    parse_ctx.advance_to(parse_begin);
    value_.custom.format(value_.custom.value, parse_ctx, ctx);
    return true;
  }
};

/**
 * A view of a collection of formatting arguments. To avoid lifetime issues it
 * should only be used as a parameter type in type-erased functions such as
 * `vformat`:
 *
 *     void vlog(fmt::string_view fmt, fmt::format_args args);  // OK
 *     fmt::format_args args = fmt::make_format_args();  // Dangling reference
 */
template <typename Context> class basic_format_args {
 private:
  // A descriptor that contains information about formatting arguments.
  // If the number of arguments is less or equal to max_packed_args then
  // argument types are passed in the descriptor. This reduces binary code size
  // per formatting function call.
  unsigned long long desc_;
  union {
    // If is_packed() returns true then argument values are stored in values_;
    // otherwise they are stored in args_. This is done to improve cache
    // locality and reduce compiled code size since storing larger objects
    // may require more code (at least on x86-64) even if the same amount of
    // data is actually copied to stack. It saves ~10% on the bloat test.
    const detail::value<Context>* values_;
    const basic_format_arg<Context>* args_;
  };

  constexpr auto is_packed() const -> bool {
    return (desc_ & detail::is_unpacked_bit) == 0;
  }
  constexpr auto has_named_args() const -> bool {
    return (desc_ & detail::has_named_args_bit) != 0;
  }

  FMT_CONSTEXPR auto type(int index) const -> detail::type {
    int shift = index * detail::packed_arg_bits;
    unsigned mask = (1 << detail::packed_arg_bits) - 1;
    return static_cast<detail::type>((desc_ >> shift) & mask);
  }

  template <int NUM_ARGS, int NUM_NAMED_ARGS, unsigned long long DESC>
  using store =
      detail::format_arg_store<Context, NUM_ARGS, NUM_NAMED_ARGS, DESC>;

 public:
  using format_arg = basic_format_arg<Context>;

  constexpr basic_format_args() : desc_(0), args_(nullptr) {}

  /// Constructs a `basic_format_args` object from `format_arg_store`.
  template <int NUM_ARGS, int NUM_NAMED_ARGS, unsigned long long DESC,
            FMT_ENABLE_IF(NUM_ARGS <= detail::max_packed_args)>
  constexpr FMT_ALWAYS_INLINE basic_format_args(
      const store<NUM_ARGS, NUM_NAMED_ARGS, DESC>& s)
      : desc_(DESC | (NUM_NAMED_ARGS != 0 ? +detail::has_named_args_bit : 0)),
        values_(s.args) {}

  template <int NUM_ARGS, int NUM_NAMED_ARGS, unsigned long long DESC,
            FMT_ENABLE_IF(NUM_ARGS > detail::max_packed_args)>
  constexpr basic_format_args(const store<NUM_ARGS, NUM_NAMED_ARGS, DESC>& s)
      : desc_(DESC | (NUM_NAMED_ARGS != 0 ? +detail::has_named_args_bit : 0)),
        args_(s.args) {}

  /// Constructs a `basic_format_args` object from a dynamic list of arguments.
  constexpr basic_format_args(const format_arg* args, int count,
                              bool has_named = false)
      : desc_(detail::is_unpacked_bit | detail::to_unsigned(count) |
              (has_named ? +detail::has_named_args_bit : 0)),
        args_(args) {}

  /// Returns the argument with the specified id.
  FMT_CONSTEXPR auto get(int id) const -> format_arg {
    auto arg = format_arg();
    if (!is_packed()) {
      if (id < max_size()) arg = args_[id];
      return arg;
    }
    if (static_cast<unsigned>(id) >= detail::max_packed_args) return arg;
    arg.type_ = type(id);
    if (arg.type_ != detail::type::none_type) arg.value_ = values_[id];
    return arg;
  }

  template <typename Char>
  auto get(basic_string_view<Char> name) const -> format_arg {
    int id = get_id(name);
    return id >= 0 ? get(id) : format_arg();
  }

  template <typename Char>
  FMT_CONSTEXPR auto get_id(basic_string_view<Char> name) const -> int {
    if (!has_named_args()) return -1;
    const auto& named_args =
        (is_packed() ? values_[-1] : args_[-1].value_).named_args;
    for (size_t i = 0; i < named_args.size; ++i) {
      if (named_args.data[i].name == name) return named_args.data[i].id;
    }
    return -1;
  }

  auto max_size() const -> int {
    unsigned long long max_packed = detail::max_packed_args;
    return static_cast<int>(is_packed() ? max_packed
                                        : desc_ & ~detail::is_unpacked_bit);
  }
};

// A formatting context.
class context {
 private:
  appender out_;
  format_args args_;
  FMT_NO_UNIQUE_ADDRESS locale_ref loc_;

 public:
  using char_type = char;  ///< The character type for the output.
  using iterator = appender;
  using format_arg = basic_format_arg<context>;
  enum { builtin_types = FMT_BUILTIN_TYPES };

  /// Constructs a `context` object. References to the arguments are stored
  /// in the object so make sure they have appropriate lifetimes.
  FMT_CONSTEXPR context(iterator out, format_args args, locale_ref loc = {})
      : out_(out), args_(args), loc_(loc) {}
  context(context&&) = default;
  context(const context&) = delete;
  void operator=(const context&) = delete;

  FMT_CONSTEXPR auto arg(int id) const -> format_arg { return args_.get(id); }
  inline auto arg(string_view name) const -> format_arg {
    return args_.get(name);
  }
  FMT_CONSTEXPR auto arg_id(string_view name) const -> int {
    return args_.get_id(name);
  }
  auto args() const -> const format_args& { return args_; }

  // Returns an iterator to the beginning of the output range.
  FMT_CONSTEXPR auto out() const -> iterator { return out_; }

  // Advances the begin iterator to `it`.
  FMT_CONSTEXPR void advance_to(iterator) {}

  FMT_CONSTEXPR auto locale() const -> locale_ref { return loc_; }
};

template <typename Char = char> struct runtime_format_string {
  basic_string_view<Char> str;
};

/**
 * Creates a runtime format string.
 *
 * **Example**:
 *
 *     // Check format string at runtime instead of compile-time.
 *     fmt::print(fmt::runtime("{:d}"), "I am not a number");
 */
inline auto runtime(string_view s) -> runtime_format_string<> { return {{s}}; }

/// A compile-time format string. Use `format_string` in the public API to
/// prevent type deduction.
template <typename... T> struct fstring {
 private:
  static constexpr int num_static_named_args =
      detail::count_static_named_args<T...>();

  using checker = detail::format_string_checker<
      char, static_cast<int>(sizeof...(T)), num_static_named_args,
      num_static_named_args != detail::count_named_args<T...>()>;

  using arg_pack = detail::arg_pack<T...>;

 public:
  string_view str;
  using t = fstring;

  // Reports a compile-time error if S is not a valid format string for T.
  template <size_t N>
  FMT_CONSTEVAL FMT_ALWAYS_INLINE fstring(const char (&s)[N]) : str(s, N - 1) {
    using namespace detail;
    static_assert(count<(is_view<remove_cvref_t<T>>::value &&
                         std::is_reference<T>::value)...>() == 0,
                  "passing views as lvalues is disallowed");
    if (FMT_USE_CONSTEVAL) parse_format_string<char>(s, checker(s, arg_pack()));
#ifdef FMT_ENFORCE_COMPILE_STRING
    static_assert(
        FMT_USE_CONSTEVAL && sizeof(s) != 0,
        "FMT_ENFORCE_COMPILE_STRING requires format strings to use FMT_STRING");
#endif
  }
  template <typename S,
            FMT_ENABLE_IF(std::is_convertible<const S&, string_view>::value)>
  FMT_CONSTEVAL FMT_ALWAYS_INLINE fstring(const S& s) : str(s) {
    auto sv = string_view(str);
    if (FMT_USE_CONSTEVAL)
      detail::parse_format_string<char>(sv, checker(sv, arg_pack()));
#ifdef FMT_ENFORCE_COMPILE_STRING
    static_assert(
        FMT_USE_CONSTEVAL && sizeof(s) != 0,
        "FMT_ENFORCE_COMPILE_STRING requires format strings to use FMT_STRING");
#endif
  }
  template <typename S,
            FMT_ENABLE_IF(std::is_base_of<detail::compile_string, S>::value&&
                              std::is_same<typename S::char_type, char>::value)>
  FMT_ALWAYS_INLINE fstring(const S&) : str(S()) {
    FMT_CONSTEXPR auto sv = string_view(S());
    FMT_CONSTEXPR int unused =
        (parse_format_string(sv, checker(sv, arg_pack())), 0);
    detail::ignore_unused(unused);
  }
  fstring(runtime_format_string<> fmt) : str(fmt.str) {}

  // Returning by reference generates better code in debug mode.
  FMT_ALWAYS_INLINE operator const string_view&() const { return str; }
  auto get() const -> string_view { return str; }
};

template <typename... T> using format_string = typename fstring<T...>::t;

template <typename T, typename Char = char>
using is_formattable = bool_constant<!std::is_same<
    detail::mapped_t<conditional_t<std::is_void<T>::value, int*, T>, Char>,
    void>::value>;
#ifdef __cpp_concepts
template <typename T, typename Char = char>
concept formattable = is_formattable<remove_reference_t<T>, Char>::value;
#endif

// A formatter specialization for natively supported types.
template <typename T, typename Char>
struct formatter<T, Char,
                 enable_if_t<detail::type_constant<T, Char>::value !=
                             detail::type::custom_type>>
    : detail::native_formatter<T, Char, detail::type_constant<T, Char>::value> {
};

/**
 * Constructs an object that stores references to arguments and can be
 * implicitly converted to `format_args`. `Context` can be omitted in which case
 * it defaults to `context`. See `arg` for lifetime considerations.
 */
// Take arguments by lvalue references to avoid some lifetime issues, e.g.
//   auto args = make_format_args(std::string());
template <typename Context = context, typename... T,
          int NUM_ARGS = sizeof...(T),
          int NUM_NAMED_ARGS = detail::count_named_args<T...>(),
          unsigned long long DESC = detail::make_descriptor<Context, T...>()>
constexpr FMT_ALWAYS_INLINE auto make_format_args(T&... args)
    -> detail::format_arg_store<Context, NUM_ARGS, NUM_NAMED_ARGS, DESC> {
  // Suppress warnings for pathological types convertible to detail::value.
  FMT_PRAGMA_GCC(diagnostic ignored "-Wconversion")
  return {{args...}};
}

template <typename... T>
using vargs =
    detail::format_arg_store<context, sizeof...(T),
                             detail::count_named_args<T...>(),
                             detail::make_descriptor<context, T...>()>;

/**
 * Returns a named argument to be used in a formatting function.
 * It should only be used in a call to a formatting function.
 *
 * **Example**:
 *
 *     fmt::print("The answer is {answer}.", fmt::arg("answer", 42));
 */
template <typename Char, typename T>
inline auto arg(const Char* name, const T& arg) -> detail::named_arg<Char, T> {
  return {name, arg};
}

/// Formats a string and writes the output to `out`.
template <typename OutputIt,
          FMT_ENABLE_IF(detail::is_output_iterator<remove_cvref_t<OutputIt>,
                                                   char>::value)>
auto vformat_to(OutputIt&& out, string_view fmt, format_args args)
    -> remove_cvref_t<OutputIt> {
  auto&& buf = detail::get_buffer<char>(out);
  detail::vformat_to(buf, fmt, args, {});
  return detail::get_iterator(buf, out);
}

/**
 * Formats `args` according to specifications in `fmt`, writes the result to
 * the output iterator `out` and returns the iterator past the end of the output
 * range. `format_to` does not append a terminating null character.
 *
 * **Example**:
 *
 *     auto out = std::vector<char>();
 *     fmt::format_to(std::back_inserter(out), "{}", 42);
 */
template <typename OutputIt, typename... T,
          FMT_ENABLE_IF(detail::is_output_iterator<remove_cvref_t<OutputIt>,
                                                   char>::value)>
FMT_INLINE auto format_to(OutputIt&& out, format_string<T...> fmt, T&&... args)
    -> remove_cvref_t<OutputIt> {
  return vformat_to(out, fmt.str, vargs<T...>{{args...}});
}

template <typename OutputIt> struct format_to_n_result {
  /// Iterator past the end of the output range.
  OutputIt out;
  /// Total (not truncated) output size.
  size_t size;
};

template <typename OutputIt, typename... T,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, char>::value)>
auto vformat_to_n(OutputIt out, size_t n, string_view fmt, format_args args)
    -> format_to_n_result<OutputIt> {
  using traits = detail::fixed_buffer_traits;
  auto buf = detail::iterator_buffer<OutputIt, char, traits>(out, n);
  detail::vformat_to(buf, fmt, args, {});
  return {buf.out(), buf.count()};
}

/**
 * Formats `args` according to specifications in `fmt`, writes up to `n`
 * characters of the result to the output iterator `out` and returns the total
 * (not truncated) output size and the iterator past the end of the output
 * range. `format_to_n` does not append a terminating null character.
 */
template <typename OutputIt, typename... T,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, char>::value)>
FMT_INLINE auto format_to_n(OutputIt out, size_t n, format_string<T...> fmt,
                            T&&... args) -> format_to_n_result<OutputIt> {
  return vformat_to_n(out, n, fmt.str, vargs<T...>{{args...}});
}

struct format_to_result {
  /// Pointer to just after the last successful write in the array.
  char* out;
  /// Specifies if the output was truncated.
  bool truncated;

  FMT_CONSTEXPR operator char*() const {
    // Report truncation to prevent silent data loss.
    if (truncated) report_error("output is truncated");
    return out;
  }
};

template <size_t N>
auto vformat_to(char (&out)[N], string_view fmt, format_args args)
    -> format_to_result {
  auto result = vformat_to_n(out, N, fmt, args);
  return {result.out, result.size > N};
}

template <size_t N, typename... T>
FMT_INLINE auto format_to(char (&out)[N], format_string<T...> fmt, T&&... args)
    -> format_to_result {
  auto result = vformat_to_n(out, N, fmt.str, vargs<T...>{{args...}});
  return {result.out, result.size > N};
}

/// Returns the number of chars in the output of `format(fmt, args...)`.
template <typename... T>
FMT_NODISCARD FMT_INLINE auto formatted_size(format_string<T...> fmt,
                                             T&&... args) -> size_t {
  auto buf = detail::counting_buffer<>();
  detail::vformat_to(buf, fmt.str, vargs<T...>{{args...}}, {});
  return buf.count();
}

FMT_API void vprint(string_view fmt, format_args args);
FMT_API void vprint(FILE* f, string_view fmt, format_args args);
FMT_API void vprintln(FILE* f, string_view fmt, format_args args);
FMT_API void vprint_buffered(FILE* f, string_view fmt, format_args args);

/**
 * Formats `args` according to specifications in `fmt` and writes the output
 * to `stdout`.
 *
 * **Example**:
 *
 *     fmt::print("The answer is {}.", 42);
 */
template <typename... T>
FMT_INLINE void print(format_string<T...> fmt, T&&... args) {
  vargs<T...> va = {{args...}};
  if (detail::const_check(!detail::use_utf8))
    return detail::vprint_mojibake(stdout, fmt.str, va, false);
  return detail::is_locking<T...>() ? vprint_buffered(stdout, fmt.str, va)
                                    : vprint(fmt.str, va);
}

/**
 * Formats `args` according to specifications in `fmt` and writes the
 * output to the file `f`.
 *
 * **Example**:
 *
 *     fmt::print(stderr, "Don't {}!", "panic");
 */
template <typename... T>
FMT_INLINE void print(FILE* f, format_string<T...> fmt, T&&... args) {
  vargs<T...> va = {{args...}};
  if (detail::const_check(!detail::use_utf8))
    return detail::vprint_mojibake(f, fmt.str, va, false);
  return detail::is_locking<T...>() ? vprint_buffered(f, fmt.str, va)
                                    : vprint(f, fmt.str, va);
}

/// Formats `args` according to specifications in `fmt` and writes the output
/// to the file `f` followed by a newline.
template <typename... T>
FMT_INLINE void println(FILE* f, format_string<T...> fmt, T&&... args) {
  vargs<T...> va = {{args...}};
  return detail::const_check(detail::use_utf8)
             ? vprintln(f, fmt.str, va)
             : detail::vprint_mojibake(f, fmt.str, va, true);
}

/// Formats `args` according to specifications in `fmt` and writes the output
/// to `stdout` followed by a newline.
template <typename... T>
FMT_INLINE void println(format_string<T...> fmt, T&&... args) {
  return fmt::println(stdout, fmt, static_cast<T&&>(args)...);
}

FMT_PRAGMA_GCC(diagnostic pop)
FMT_PRAGMA_CLANG(diagnostic pop)
FMT_PRAGMA_GCC(pop_options)
FMT_END_EXPORT
FMT_END_NAMESPACE

#ifdef FMT_HEADER_ONLY
#  include "format.h"
#endif
#endif  // FMT_BASE_H_
