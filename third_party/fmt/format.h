/*
  Formatting library for C++

  Copyright (c) 2012 - present, Victor Zverovich

  Permission is hereby granted, free of charge, to any person obtaining
  a copy of this software and associated documentation files (the
  "Software"), to deal in the Software without restriction, including
  without limitation the rights to use, copy, modify, merge, publish,
  distribute, sublicense, and/or sell copies of the Software, and to
  permit persons to whom the Software is furnished to do so, subject to
  the following conditions:

  The above copyright notice and this permission notice shall be
  included in all copies or substantial portions of the Software.

  THE SOFTWARE IS PROVIDED "AS IS", WITHOUT WARRANTY OF ANY KIND,
  EXPRESS OR IMPLIED, INCLUDING BUT NOT LIMITED TO THE WARRANTIES OF
  MERCHANTABILITY, FITNESS FOR A PARTICULAR PURPOSE AND
  NONINFRINGEMENT. IN NO EVENT SHALL THE AUTHORS OR COPYRIGHT HOLDERS BE
  LIABLE FOR ANY CLAIM, DAMAGES OR OTHER LIABILITY, WHETHER IN AN ACTION
  OF CONTRACT, TORT OR OTHERWISE, ARISING FROM, OUT OF OR IN CONNECTION
  WITH THE SOFTWARE OR THE USE OR OTHER DEALINGS IN THE SOFTWARE.

  --- Optional exception to the license ---

  As an exception, if, as a result of your compiling your source code, portions
  of this Software are embedded into a machine-executable object form of such
  source code, you may redistribute such embedded portions in such object form
  without including the above copyright and permission notices.
 */

#ifndef FMT_FORMAT_H_
#define FMT_FORMAT_H_

#ifndef _LIBCPP_REMOVE_TRANSITIVE_INCLUDES
#  define _LIBCPP_REMOVE_TRANSITIVE_INCLUDES
#  define FMT_REMOVE_TRANSITIVE_INCLUDES
#endif

#include "base.h"

// libc++ supports string_view in pre-c++17.
#if FMT_HAS_INCLUDE(<string_view>) && \
    (FMT_CPLUSPLUS >= 201703L || defined(_LIBCPP_VERSION))
#  define FMT_USE_STRING_VIEW
#endif

#ifndef FMT_MODULE
#  include <stdlib.h>  // malloc, free

#  include <cmath>    // std::signbit
#  include <cstddef>  // std::byte
#  include <cstdint>  // uint32_t
#  include <cstring>  // std::memcpy
#  include <limits>   // std::numeric_limits
#  include <new>      // std::bad_alloc
#  if defined(__GLIBCXX__) && !defined(_GLIBCXX_USE_DUAL_ABI)
// Workaround for pre gcc 5 libstdc++.
#    include <memory>  // std::allocator_traits
#  endif
#  include <stdexcept>     // std::runtime_error
#  include <string>        // std::string
#  include <system_error>  // std::system_error

// Check FMT_CPLUSPLUS to avoid a warning in MSVC.
#  if FMT_HAS_INCLUDE(<bit>) && FMT_CPLUSPLUS > 201703L
#    include <bit>  // std::bit_cast
#  endif

#  if defined(FMT_USE_STRING_VIEW)
#    include <string_view>
#  endif

#  if FMT_MSC_VERSION
#    include <intrin.h>  // _BitScanReverse[64], _umul128
#  endif
#endif  // FMT_MODULE

#if defined(FMT_USE_NONTYPE_TEMPLATE_ARGS)
// Use the provided definition.
#elif defined(__NVCOMPILER)
#  define FMT_USE_NONTYPE_TEMPLATE_ARGS 0
#elif FMT_GCC_VERSION >= 903 && FMT_CPLUSPLUS >= 201709L
#  define FMT_USE_NONTYPE_TEMPLATE_ARGS 1
#elif defined(__cpp_nontype_template_args) && \
    __cpp_nontype_template_args >= 201911L
#  define FMT_USE_NONTYPE_TEMPLATE_ARGS 1
#elif FMT_CLANG_VERSION >= 1200 && FMT_CPLUSPLUS >= 202002L
#  define FMT_USE_NONTYPE_TEMPLATE_ARGS 1
#else
#  define FMT_USE_NONTYPE_TEMPLATE_ARGS 0
#endif

#if defined __cpp_inline_variables && __cpp_inline_variables >= 201606L
#  define FMT_INLINE_VARIABLE inline
#else
#  define FMT_INLINE_VARIABLE
#endif

// Check if RTTI is disabled.
#ifdef FMT_USE_RTTI
// Use the provided definition.
#elif defined(__GXX_RTTI) || FMT_HAS_FEATURE(cxx_rtti) || defined(_CPPRTTI) || \
    defined(__INTEL_RTTI__) || defined(__RTTI)
// __RTTI is for EDG compilers. _CPPRTTI is for MSVC.
#  define FMT_USE_RTTI 1
#else
#  define FMT_USE_RTTI 0
#endif

// Visibility when compiled as a shared library/object.
#if defined(FMT_LIB_EXPORT) || defined(FMT_SHARED)
#  define FMT_SO_VISIBILITY(value) FMT_VISIBILITY(value)
#else
#  define FMT_SO_VISIBILITY(value)
#endif

#if FMT_GCC_VERSION || FMT_CLANG_VERSION
#  define FMT_NOINLINE __attribute__((noinline))
#else
#  define FMT_NOINLINE
#endif

#ifdef FMT_DEPRECATED
// Use the provided definition.
#elif FMT_HAS_CPP14_ATTRIBUTE(deprecated)
#  define FMT_DEPRECATED [[deprecated]]
#else
#  define FMT_DEPRECATED /* deprecated */
#endif

// Detect constexpr std::string.
#if !FMT_USE_CONSTEVAL
#  define FMT_USE_CONSTEXPR_STRING 0
#elif defined(__cpp_lib_constexpr_string) && \
    __cpp_lib_constexpr_string >= 201907L
#  if FMT_CLANG_VERSION && FMT_GLIBCXX_RELEASE
// clang + libstdc++ are able to work only starting with gcc13.3
// https://gcc.gnu.org/bugzilla/show_bug.cgi?id=113294
#    if FMT_GLIBCXX_RELEASE < 13
#      define FMT_USE_CONSTEXPR_STRING 0
#    elif FMT_GLIBCXX_RELEASE == 13 && __GLIBCXX__ < 20240521
#      define FMT_USE_CONSTEXPR_STRING 0
#    else
#      define FMT_USE_CONSTEXPR_STRING 1
#    endif
#  else
#    define FMT_USE_CONSTEXPR_STRING 1
#  endif
#else
#  define FMT_USE_CONSTEXPR_STRING 0
#endif
#if FMT_USE_CONSTEXPR_STRING
#  define FMT_CONSTEXPR_STRING constexpr
#else
#  define FMT_CONSTEXPR_STRING
#endif

// GCC 4.9 doesn't support qualified names in specializations.
namespace std {
template <typename T> struct iterator_traits<fmt::basic_appender<T>> {
  using iterator_category = output_iterator_tag;
  using value_type = T;
  using difference_type =
      decltype(static_cast<int*>(nullptr) - static_cast<int*>(nullptr));
  using pointer = void;
  using reference = void;
};
}  // namespace std

#ifdef FMT_THROW
// Use the provided definition.
#elif FMT_USE_EXCEPTIONS
#  define FMT_THROW(x) throw x
#else
#  define FMT_THROW(x) ::fmt::assert_fail(__FILE__, __LINE__, (x).what())
#endif

#ifdef __clang_analyzer__
#  define FMT_CLANG_ANALYZER 1
#else
#  define FMT_CLANG_ANALYZER 0
#endif

// Defining FMT_REDUCE_INT_INSTANTIATIONS to 1, will reduce the number of
// integer formatter template instantiations to just one by only using the
// largest integer type. This results in a reduction in binary size but will
// cause a decrease in integer formatting performance.
#if !defined(FMT_REDUCE_INT_INSTANTIATIONS)
#  define FMT_REDUCE_INT_INSTANTIATIONS 0
#endif

FMT_BEGIN_NAMESPACE

template <typename Char, typename Traits, typename Allocator>
struct is_contiguous<std::basic_string<Char, Traits, Allocator>>
    : std::true_type {};

namespace detail {

// __builtin_clz is broken in clang with Microsoft codegen:
// https://github.com/fmtlib/fmt/issues/519.
#if !FMT_MSC_VERSION
#  if FMT_HAS_BUILTIN(__builtin_clz) || FMT_GCC_VERSION || FMT_ICC_VERSION
#    define FMT_BUILTIN_CLZ(n) __builtin_clz(n)
#  endif
#  if FMT_HAS_BUILTIN(__builtin_clzll) || FMT_GCC_VERSION || FMT_ICC_VERSION
#    define FMT_BUILTIN_CLZLL(n) __builtin_clzll(n)
#  endif
#endif

// Some compilers masquerade as both MSVC and GCC but otherwise support
// __builtin_clz and __builtin_clzll, so only define FMT_BUILTIN_CLZ using the
// MSVC intrinsics if the clz and clzll builtins are not available.
#if FMT_MSC_VERSION && !defined(FMT_BUILTIN_CLZLL)
// Avoid Clang with Microsoft CodeGen's -Wunknown-pragmas warning.
#  ifndef __clang__
#    pragma intrinsic(_BitScanReverse)
#    ifdef _WIN64
#      pragma intrinsic(_BitScanReverse64)
#    endif
#  endif

inline auto clz(uint32_t x) -> int {
  FMT_ASSERT(x != 0, "");
  FMT_MSC_WARNING(suppress : 6102)  // Suppress a bogus static analysis warning.
  unsigned long r = 0;
  _BitScanReverse(&r, x);
  return 31 ^ static_cast<int>(r);
}
#  define FMT_BUILTIN_CLZ(n) detail::clz(n)

inline auto clzll(uint64_t x) -> int {
  FMT_ASSERT(x != 0, "");
  FMT_MSC_WARNING(suppress : 6102)  // Suppress a bogus static analysis warning.
  unsigned long r = 0;
#  ifdef _WIN64
  _BitScanReverse64(&r, x);
#  else
  // Scan the high 32 bits.
  if (_BitScanReverse(&r, static_cast<uint32_t>(x >> 32)))
    return 63 ^ static_cast<int>(r + 32);
  // Scan the low 32 bits.
  _BitScanReverse(&r, static_cast<uint32_t>(x));
#  endif
  return 63 ^ static_cast<int>(r);
}
#  define FMT_BUILTIN_CLZLL(n) detail::clzll(n)
#endif  // FMT_MSC_VERSION && !defined(FMT_BUILTIN_CLZLL)

FMT_CONSTEXPR inline void abort_fuzzing_if(bool condition) {
  ignore_unused(condition);
#ifdef FMT_FUZZ
  if (condition) throw std::runtime_error("fuzzing limit reached");
#endif
}

#if defined(FMT_USE_STRING_VIEW)
template <typename Char> using std_string_view = std::basic_string_view<Char>;
#else
template <typename Char> struct std_string_view {
  operator basic_string_view<Char>() const;
};
#endif

template <typename Char, Char... C> struct string_literal {
  static constexpr Char value[sizeof...(C)] = {C...};
  constexpr operator basic_string_view<Char>() const {
    return {value, sizeof...(C)};
  }
};
#if FMT_CPLUSPLUS < 201703L
template <typename Char, Char... C>
constexpr Char string_literal<Char, C...>::value[sizeof...(C)];
#endif

// Implementation of std::bit_cast for pre-C++20.
template <typename To, typename From, FMT_ENABLE_IF(sizeof(To) == sizeof(From))>
FMT_CONSTEXPR20 auto bit_cast(const From& from) -> To {
#ifdef __cpp_lib_bit_cast
  if (is_constant_evaluated()) return std::bit_cast<To>(from);
#endif
  auto to = To();
  // The cast suppresses a bogus -Wclass-memaccess on GCC.
  std::memcpy(static_cast<void*>(&to), &from, sizeof(to));
  return to;
}

inline auto is_big_endian() -> bool {
#ifdef _WIN32
  return false;
#elif defined(__BIG_ENDIAN__)
  return true;
#elif defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__;
#else
  struct bytes {
    char data[sizeof(int)];
  };
  return bit_cast<bytes>(1).data[0] == 0;
#endif
}

class uint128_fallback {
 private:
  uint64_t lo_, hi_;

 public:
  constexpr uint128_fallback(uint64_t hi, uint64_t lo) : lo_(lo), hi_(hi) {}
  constexpr uint128_fallback(uint64_t value = 0) : lo_(value), hi_(0) {}

  constexpr auto high() const noexcept -> uint64_t { return hi_; }
  constexpr auto low() const noexcept -> uint64_t { return lo_; }

  template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
  constexpr explicit operator T() const {
    return static_cast<T>(lo_);
  }

  friend constexpr auto operator==(const uint128_fallback& lhs,
                                   const uint128_fallback& rhs) -> bool {
    return lhs.hi_ == rhs.hi_ && lhs.lo_ == rhs.lo_;
  }
  friend constexpr auto operator!=(const uint128_fallback& lhs,
                                   const uint128_fallback& rhs) -> bool {
    return !(lhs == rhs);
  }
  friend constexpr auto operator>(const uint128_fallback& lhs,
                                  const uint128_fallback& rhs) -> bool {
    return lhs.hi_ != rhs.hi_ ? lhs.hi_ > rhs.hi_ : lhs.lo_ > rhs.lo_;
  }
  friend constexpr auto operator|(const uint128_fallback& lhs,
                                  const uint128_fallback& rhs)
      -> uint128_fallback {
    return {lhs.hi_ | rhs.hi_, lhs.lo_ | rhs.lo_};
  }
  friend constexpr auto operator&(const uint128_fallback& lhs,
                                  const uint128_fallback& rhs)
      -> uint128_fallback {
    return {lhs.hi_ & rhs.hi_, lhs.lo_ & rhs.lo_};
  }
  friend constexpr auto operator~(const uint128_fallback& n)
      -> uint128_fallback {
    return {~n.hi_, ~n.lo_};
  }
  friend FMT_CONSTEXPR auto operator+(const uint128_fallback& lhs,
                                      const uint128_fallback& rhs)
      -> uint128_fallback {
    auto result = uint128_fallback(lhs);
    result += rhs;
    return result;
  }
  friend FMT_CONSTEXPR auto operator*(const uint128_fallback& lhs, uint32_t rhs)
      -> uint128_fallback {
    FMT_ASSERT(lhs.hi_ == 0, "");
    uint64_t hi = (lhs.lo_ >> 32) * rhs;
    uint64_t lo = (lhs.lo_ & ~uint32_t()) * rhs;
    uint64_t new_lo = (hi << 32) + lo;
    return {(hi >> 32) + (new_lo < lo ? 1 : 0), new_lo};
  }
  friend constexpr auto operator-(const uint128_fallback& lhs, uint64_t rhs)
      -> uint128_fallback {
    return {lhs.hi_ - (lhs.lo_ < rhs ? 1 : 0), lhs.lo_ - rhs};
  }
  FMT_CONSTEXPR auto operator>>(int shift) const -> uint128_fallback {
    if (shift == 64) return {0, hi_};
    if (shift > 64) return uint128_fallback(0, hi_) >> (shift - 64);
    return {hi_ >> shift, (hi_ << (64 - shift)) | (lo_ >> shift)};
  }
  FMT_CONSTEXPR auto operator<<(int shift) const -> uint128_fallback {
    if (shift == 64) return {lo_, 0};
    if (shift > 64) return uint128_fallback(lo_, 0) << (shift - 64);
    return {hi_ << shift | (lo_ >> (64 - shift)), (lo_ << shift)};
  }
  FMT_CONSTEXPR auto operator>>=(int shift) -> uint128_fallback& {
    return *this = *this >> shift;
  }
  FMT_CONSTEXPR void operator+=(uint128_fallback n) {
    uint64_t new_lo = lo_ + n.lo_;
    uint64_t new_hi = hi_ + n.hi_ + (new_lo < lo_ ? 1 : 0);
    FMT_ASSERT(new_hi >= hi_, "");
    lo_ = new_lo;
    hi_ = new_hi;
  }
  FMT_CONSTEXPR void operator&=(uint128_fallback n) {
    lo_ &= n.lo_;
    hi_ &= n.hi_;
  }

  FMT_CONSTEXPR20 auto operator+=(uint64_t n) noexcept -> uint128_fallback& {
    if (is_constant_evaluated()) {
      lo_ += n;
      hi_ += (lo_ < n ? 1 : 0);
      return *this;
    }
#if FMT_HAS_BUILTIN(__builtin_addcll) && !defined(__ibmxl__)
    unsigned long long carry;
    lo_ = __builtin_addcll(lo_, n, 0, &carry);
    hi_ += carry;
#elif FMT_HAS_BUILTIN(__builtin_ia32_addcarryx_u64) && !defined(__ibmxl__)
    unsigned long long result;
    auto carry = __builtin_ia32_addcarryx_u64(0, lo_, n, &result);
    lo_ = result;
    hi_ += carry;
#elif defined(_MSC_VER) && defined(_M_X64)
    auto carry = _addcarry_u64(0, lo_, n, &lo_);
    _addcarry_u64(carry, hi_, 0, &hi_);
#else
    lo_ += n;
    hi_ += (lo_ < n ? 1 : 0);
#endif
    return *this;
  }
};

using uint128_t = conditional_t<FMT_USE_INT128, uint128_opt, uint128_fallback>;

#ifdef UINTPTR_MAX
using uintptr_t = ::uintptr_t;
#else
using uintptr_t = uint128_t;
#endif

// Returns the largest possible value for type T. Same as
// std::numeric_limits<T>::max() but shorter and not affected by the max macro.
template <typename T> constexpr auto max_value() -> T {
  return (std::numeric_limits<T>::max)();
}
template <typename T> constexpr auto num_bits() -> int {
  return std::numeric_limits<T>::digits;
}
// std::numeric_limits<T>::digits may return 0 for 128-bit ints.
template <> constexpr auto num_bits<int128_opt>() -> int { return 128; }
template <> constexpr auto num_bits<uint128_opt>() -> int { return 128; }
template <> constexpr auto num_bits<uint128_fallback>() -> int { return 128; }

// A heterogeneous bit_cast used for converting 96-bit long double to uint128_t
// and 128-bit pointers to uint128_fallback.
template <typename To, typename From, FMT_ENABLE_IF(sizeof(To) > sizeof(From))>
inline auto bit_cast(const From& from) -> To {
  constexpr auto size = static_cast<int>(sizeof(From) / sizeof(unsigned short));
  struct data_t {
    unsigned short value[static_cast<unsigned>(size)];
  } data = bit_cast<data_t>(from);
  auto result = To();
  if (const_check(is_big_endian())) {
    for (int i = 0; i < size; ++i)
      result = (result << num_bits<unsigned short>()) | data.value[i];
  } else {
    for (int i = size - 1; i >= 0; --i)
      result = (result << num_bits<unsigned short>()) | data.value[i];
  }
  return result;
}

template <typename UInt>
FMT_CONSTEXPR20 inline auto countl_zero_fallback(UInt n) -> int {
  int lz = 0;
  constexpr UInt msb_mask = static_cast<UInt>(1) << (num_bits<UInt>() - 1);
  for (; (n & msb_mask) == 0; n <<= 1) lz++;
  return lz;
}

FMT_CONSTEXPR20 inline auto countl_zero(uint32_t n) -> int {
#ifdef FMT_BUILTIN_CLZ
  if (!is_constant_evaluated()) return FMT_BUILTIN_CLZ(n);
#endif
  return countl_zero_fallback(n);
}

FMT_CONSTEXPR20 inline auto countl_zero(uint64_t n) -> int {
#ifdef FMT_BUILTIN_CLZLL
  if (!is_constant_evaluated()) return FMT_BUILTIN_CLZLL(n);
#endif
  return countl_zero_fallback(n);
}

FMT_INLINE void assume(bool condition) {
  (void)condition;
#if FMT_HAS_BUILTIN(__builtin_assume) && !FMT_ICC_VERSION
  __builtin_assume(condition);
#elif FMT_GCC_VERSION
  if (!condition) __builtin_unreachable();
#endif
}

// Attempts to reserve space for n extra characters in the output range.
// Returns a pointer to the reserved range or a reference to it.
template <typename OutputIt,
          FMT_ENABLE_IF(is_back_insert_iterator<OutputIt>::value&&
                            is_contiguous<typename OutputIt::container>::value)>
#if FMT_CLANG_VERSION >= 307 && !FMT_ICC_VERSION
__attribute__((no_sanitize("undefined")))
#endif
FMT_CONSTEXPR20 inline auto
reserve(OutputIt it, size_t n) -> typename OutputIt::value_type* {
  auto& c = get_container(it);
  size_t size = c.size();
  c.resize(size + n);
  return &c[size];
}

template <typename T>
FMT_CONSTEXPR20 inline auto reserve(basic_appender<T> it, size_t n)
    -> basic_appender<T> {
  buffer<T>& buf = get_container(it);
  buf.try_reserve(buf.size() + n);
  return it;
}

template <typename Iterator>
constexpr auto reserve(Iterator& it, size_t) -> Iterator& {
  return it;
}

template <typename OutputIt>
using reserve_iterator =
    remove_reference_t<decltype(reserve(std::declval<OutputIt&>(), 0))>;

template <typename T, typename OutputIt>
constexpr auto to_pointer(OutputIt, size_t) -> T* {
  return nullptr;
}
template <typename T> FMT_CONSTEXPR auto to_pointer(T*& ptr, size_t n) -> T* {
  T* begin = ptr;
  ptr += n;
  return begin;
}
template <typename T>
FMT_CONSTEXPR20 auto to_pointer(basic_appender<T> it, size_t n) -> T* {
  buffer<T>& buf = get_container(it);
  buf.try_reserve(buf.size() + n);
  auto size = buf.size();
  if (buf.capacity() < size + n) return nullptr;
  buf.try_resize(size + n);
  return buf.data() + size;
}

template <typename OutputIt,
          FMT_ENABLE_IF(is_back_insert_iterator<OutputIt>::value&&
                            is_contiguous<typename OutputIt::container>::value)>
inline auto base_iterator(OutputIt it,
                          typename OutputIt::container_type::value_type*)
    -> OutputIt {
  return it;
}

template <typename Iterator>
constexpr auto base_iterator(Iterator, Iterator it) -> Iterator {
  return it;
}

// <algorithm> is spectacularly slow to compile in C++20 so use a simple fill_n
// instead (#1998).
template <typename OutputIt, typename Size, typename T>
FMT_CONSTEXPR auto fill_n(OutputIt out, Size count, const T& value)
    -> OutputIt {
  for (Size i = 0; i < count; ++i) *out++ = value;
  return out;
}
template <typename T, typename Size>
FMT_CONSTEXPR20 auto fill_n(T* out, Size count, char value) -> T* {
  if (is_constant_evaluated()) return fill_n<T*, Size, T>(out, count, value);
  static_assert(sizeof(T) == 1,
                "sizeof(T) must be 1 to use char for initialization");
  std::memset(out, value, to_unsigned(count));
  return out + count;
}

template <typename OutChar, typename InputIt, typename OutputIt>
FMT_CONSTEXPR FMT_NOINLINE auto copy_noinline(InputIt begin, InputIt end,
                                              OutputIt out) -> OutputIt {
  return copy<OutChar>(begin, end, out);
}

// A public domain branchless UTF-8 decoder by Christopher Wellons:
// https://github.com/skeeto/branchless-utf8
/* Decode the next character, c, from s, reporting errors in e.
 *
 * Since this is a branchless decoder, four bytes will be read from the
 * buffer regardless of the actual length of the next character. This
 * means the buffer _must_ have at least three bytes of zero padding
 * following the end of the data stream.
 *
 * Errors are reported in e, which will be non-zero if the parsed
 * character was somehow invalid: invalid byte sequence, non-canonical
 * encoding, or a surrogate half.
 *
 * The function returns a pointer to the next character. When an error
 * occurs, this pointer will be a guess that depends on the particular
 * error, but it will always advance at least one byte.
 */
FMT_CONSTEXPR inline auto utf8_decode(const char* s, uint32_t* c, int* e)
    -> const char* {
  constexpr int masks[] = {0x00, 0x7f, 0x1f, 0x0f, 0x07};
  constexpr uint32_t mins[] = {4194304, 0, 128, 2048, 65536};
  constexpr int shiftc[] = {0, 18, 12, 6, 0};
  constexpr int shifte[] = {0, 6, 4, 2, 0};

  int len = "\1\1\1\1\1\1\1\1\1\1\1\1\1\1\1\1\0\0\0\0\0\0\0\0\2\2\2\2\3\3\4"
      [static_cast<unsigned char>(*s) >> 3];
  // Compute the pointer to the next character early so that the next
  // iteration can start working on the next character. Neither Clang
  // nor GCC figure out this reordering on their own.
  const char* next = s + len + !len;

  using uchar = unsigned char;

  // Assume a four-byte character and load four bytes. Unused bits are
  // shifted out.
  *c = uint32_t(uchar(s[0]) & masks[len]) << 18;
  *c |= uint32_t(uchar(s[1]) & 0x3f) << 12;
  *c |= uint32_t(uchar(s[2]) & 0x3f) << 6;
  *c |= uint32_t(uchar(s[3]) & 0x3f) << 0;
  *c >>= shiftc[len];

  // Accumulate the various error conditions.
  *e = (*c < mins[len]) << 6;       // non-canonical encoding
  *e |= ((*c >> 11) == 0x1b) << 7;  // surrogate half?
  *e |= (*c > 0x10FFFF) << 8;       // out of range?
  *e |= (uchar(s[1]) & 0xc0) >> 2;
  *e |= (uchar(s[2]) & 0xc0) >> 4;
  *e |= uchar(s[3]) >> 6;
  *e ^= 0x2a;  // top two bits of each tail byte correct?
  *e >>= shifte[len];

  return next;
}

constexpr FMT_INLINE_VARIABLE uint32_t invalid_code_point = ~uint32_t();

// Invokes f(cp, sv) for every code point cp in s with sv being the string view
// corresponding to the code point. cp is invalid_code_point on error.
template <typename F>
FMT_CONSTEXPR void for_each_codepoint(string_view s, F f) {
  auto decode = [f](const char* buf_ptr, const char* ptr) {
    auto cp = uint32_t();
    auto error = 0;
    auto end = utf8_decode(buf_ptr, &cp, &error);
    bool result = f(error ? invalid_code_point : cp,
                    string_view(ptr, error ? 1 : to_unsigned(end - buf_ptr)));
    return result ? (error ? buf_ptr + 1 : end) : nullptr;
  };

  auto p = s.data();
  const size_t block_size = 4;  // utf8_decode always reads blocks of 4 chars.
  if (s.size() >= block_size) {
    for (auto end = p + s.size() - block_size + 1; p < end;) {
      p = decode(p, p);
      if (!p) return;
    }
  }
  auto num_chars_left = to_unsigned(s.data() + s.size() - p);
  if (num_chars_left == 0) return;

  // Suppress bogus -Wstringop-overflow.
  if (FMT_GCC_VERSION) num_chars_left &= 3;
  char buf[2 * block_size - 1] = {};
  copy<char>(p, p + num_chars_left, buf);
  const char* buf_ptr = buf;
  do {
    auto end = decode(buf_ptr, p);
    if (!end) return;
    p += end - buf_ptr;
    buf_ptr = end;
  } while (buf_ptr < buf + num_chars_left);
}

FMT_CONSTEXPR inline auto display_width_of(uint32_t cp) noexcept -> size_t {
  return to_unsigned(
      1 + (cp >= 0x1100 &&
           (cp <= 0x115f ||  // Hangul Jamo init. consonants
            cp == 0x2329 ||  // LEFT-POINTING ANGLE BRACKET
            cp == 0x232a ||  // RIGHT-POINTING ANGLE BRACKET
            // CJK ... Yi except IDEOGRAPHIC HALF FILL SPACE:
            (cp >= 0x2e80 && cp <= 0xa4cf && cp != 0x303f) ||
            (cp >= 0xac00 && cp <= 0xd7a3) ||    // Hangul Syllables
            (cp >= 0xf900 && cp <= 0xfaff) ||    // CJK Compatibility Ideographs
            (cp >= 0xfe10 && cp <= 0xfe19) ||    // Vertical Forms
            (cp >= 0xfe30 && cp <= 0xfe6f) ||    // CJK Compatibility Forms
            (cp >= 0xff00 && cp <= 0xff60) ||    // Fullwidth Forms
            (cp >= 0xffe0 && cp <= 0xffe6) ||    // Fullwidth Forms
            (cp >= 0x20000 && cp <= 0x2fffd) ||  // CJK
            (cp >= 0x30000 && cp <= 0x3fffd) ||
            // Miscellaneous Symbols and Pictographs + Emoticons:
            (cp >= 0x1f300 && cp <= 0x1f64f) ||
            // Supplemental Symbols and Pictographs:
            (cp >= 0x1f900 && cp <= 0x1f9ff))));
}

template <typename T> struct is_integral : std::is_integral<T> {};
template <> struct is_integral<int128_opt> : std::true_type {};
template <> struct is_integral<uint128_t> : std::true_type {};

template <typename T>
using is_signed =
    std::integral_constant<bool, std::numeric_limits<T>::is_signed ||
                                     std::is_same<T, int128_opt>::value>;

template <typename T>
using is_integer =
    bool_constant<is_integral<T>::value && !std::is_same<T, bool>::value &&
                  !std::is_same<T, char>::value &&
                  !std::is_same<T, wchar_t>::value>;

#if defined(FMT_USE_FLOAT128)
// Use the provided definition.
#elif FMT_CLANG_VERSION >= 309 && FMT_HAS_INCLUDE(<quadmath.h>)
#  define FMT_USE_FLOAT128 1
#elif FMT_GCC_VERSION && defined(_GLIBCXX_USE_FLOAT128) && \
    !defined(__STRICT_ANSI__)
#  define FMT_USE_FLOAT128 1
#else
#  define FMT_USE_FLOAT128 0
#endif
#if FMT_USE_FLOAT128
using float128 = __float128;
#else
struct float128 {};
#endif

template <typename T> using is_float128 = std::is_same<T, float128>;

template <typename T> struct is_floating_point : std::is_floating_point<T> {};
template <> struct is_floating_point<float128> : std::true_type {};

template <typename T, bool = is_floating_point<T>::value>
struct is_fast_float : bool_constant<std::numeric_limits<T>::is_iec559 &&
                                     sizeof(T) <= sizeof(double)> {};
template <typename T> struct is_fast_float<T, false> : std::false_type {};

template <typename T>
using fast_float_t = conditional_t<sizeof(T) == sizeof(double), double, float>;

template <typename T>
using is_double_double = bool_constant<std::numeric_limits<T>::digits == 106>;

#ifndef FMT_USE_FULL_CACHE_DRAGONBOX
#  define FMT_USE_FULL_CACHE_DRAGONBOX 0
#endif

// An allocator that uses malloc/free to allow removing dependency on the C++
// standard libary runtime. std::decay is used for back_inserter to be found by
// ADL when applied to memory_buffer.
template <typename T> struct allocator : private std::decay<void> {
  using value_type = T;

  auto allocate(size_t n) -> T* {
    FMT_ASSERT(n <= max_value<size_t>() / sizeof(T), "");
    T* p = static_cast<T*>(malloc(n * sizeof(T)));
    if (!p) FMT_THROW(std::bad_alloc());
    return p;
  }

  void deallocate(T* p, size_t) { free(p); }

  constexpr friend auto operator==(allocator, allocator) noexcept -> bool {
    return true;  // All instances of this allocator are equivalent.
  }
  constexpr friend auto operator!=(allocator, allocator) noexcept -> bool {
    return false;
  }
};

template <typename Formatter>
FMT_CONSTEXPR auto maybe_set_debug_format(Formatter& f, bool set)
    -> decltype(f.set_debug_format(set)) {
  f.set_debug_format(set);
}
template <typename Formatter>
FMT_CONSTEXPR void maybe_set_debug_format(Formatter&, ...) {}

}  // namespace detail

FMT_BEGIN_EXPORT

// The number of characters to store in the basic_memory_buffer object itself
// to avoid dynamic memory allocation.
enum { inline_buffer_size = 500 };

/**
 * A dynamically growing memory buffer for trivially copyable/constructible
 * types with the first `SIZE` elements stored in the object itself. Most
 * commonly used via the `memory_buffer` alias for `char`.
 *
 * **Example**:
 *
 *     auto out = fmt::memory_buffer();
 *     fmt::format_to(std::back_inserter(out), "The answer is {}.", 42);
 *
 * This will append "The answer is 42." to `out`. The buffer content can be
 * converted to `std::string` with `to_string(out)`.
 */
template <typename T, size_t SIZE = inline_buffer_size,
          typename Allocator = detail::allocator<T>>
class basic_memory_buffer : public detail::buffer<T> {
 private:
  T store_[SIZE];

  // Don't inherit from Allocator to avoid generating type_info for it.
  FMT_NO_UNIQUE_ADDRESS Allocator alloc_;

  // Deallocate memory allocated by the buffer.
  FMT_CONSTEXPR20 void deallocate() {
    T* data = this->data();
    if (data != store_) alloc_.deallocate(data, this->capacity());
  }

  static FMT_CONSTEXPR20 void grow(detail::buffer<T>& buf, size_t size) {
    detail::abort_fuzzing_if(size > 5000);
    auto& self = static_cast<basic_memory_buffer&>(buf);
    const size_t max_size =
        std::allocator_traits<Allocator>::max_size(self.alloc_);
    size_t old_capacity = buf.capacity();
    size_t new_capacity = old_capacity + old_capacity / 2;
    if (size > new_capacity)
      new_capacity = size;
    else if (new_capacity > max_size)
      new_capacity = max_of(size, max_size);
    T* old_data = buf.data();
    T* new_data = self.alloc_.allocate(new_capacity);
    // Suppress a bogus -Wstringop-overflow in gcc 13.1 (#3481).
    detail::assume(buf.size() <= new_capacity);
    // The following code doesn't throw, so the raw pointer above doesn't leak.
    memcpy(new_data, old_data, buf.size() * sizeof(T));
    self.set(new_data, new_capacity);
    // deallocate must not throw according to the standard, but even if it does,
    // the buffer already uses the new storage and will deallocate it in
    // destructor.
    if (old_data != self.store_) self.alloc_.deallocate(old_data, old_capacity);
  }

 public:
  using value_type = T;
  using const_reference = const T&;

  FMT_CONSTEXPR explicit basic_memory_buffer(
      const Allocator& alloc = Allocator())
      : detail::buffer<T>(grow), alloc_(alloc) {
    this->set(store_, SIZE);
    if (detail::is_constant_evaluated()) detail::fill_n(store_, SIZE, T());
  }
  FMT_CONSTEXPR20 ~basic_memory_buffer() { deallocate(); }

 private:
  template <typename Alloc = Allocator,
            FMT_ENABLE_IF(std::allocator_traits<Alloc>::
                              propagate_on_container_move_assignment::value)>
  FMT_CONSTEXPR20 auto move_alloc(basic_memory_buffer& other) -> bool {
    alloc_ = std::move(other.alloc_);
    return true;
  }
  // If the allocator does not propagate then copy the data from other.
  template <typename Alloc = Allocator,
            FMT_ENABLE_IF(!std::allocator_traits<Alloc>::
                              propagate_on_container_move_assignment::value)>
  FMT_CONSTEXPR20 auto move_alloc(basic_memory_buffer& other) -> bool {
    T* data = other.data();
    if (alloc_ == other.alloc_ || data == other.store_) return true;
    size_t size = other.size();
    // Perform copy operation, allocators are different.
    this->resize(size);
    detail::copy<T>(data, data + size, this->data());
    return false;
  }

  // Move data from other to this buffer.
  FMT_CONSTEXPR20 void move(basic_memory_buffer& other) {
    T* data = other.data();
    size_t size = other.size(), capacity = other.capacity();
    if (!move_alloc(other)) return;
    if (data == other.store_) {
      this->set(store_, capacity);
      detail::copy<T>(other.store_, other.store_ + size, store_);
    } else {
      this->set(data, capacity);
      // Set pointer to the inline array so that delete is not called
      // when deallocating.
      other.set(other.store_, 0);
      other.clear();
    }
    this->resize(size);
  }

 public:
  /// Constructs a `basic_memory_buffer` object moving the content of the other
  /// object to it.
  FMT_CONSTEXPR20 basic_memory_buffer(basic_memory_buffer&& other) noexcept
      : detail::buffer<T>(grow) {
    move(other);
  }

  /// Moves the content of the other `basic_memory_buffer` object to this one.
  auto operator=(basic_memory_buffer&& other) noexcept -> basic_memory_buffer& {
    FMT_ASSERT(this != &other, "");
    deallocate();
    move(other);
    return *this;
  }

  // Returns a copy of the allocator associated with this buffer.
  auto get_allocator() const -> Allocator { return alloc_; }

  /// Resizes the buffer to contain `count` elements. If T is a POD type new
  /// elements may not be initialized.
  FMT_CONSTEXPR void resize(size_t count) { this->try_resize(count); }

  /// Increases the buffer capacity to `new_capacity`.
  void reserve(size_t new_capacity) { this->try_reserve(new_capacity); }

  using detail::buffer<T>::append;
  template <typename ContiguousRange>
  FMT_CONSTEXPR20 void append(const ContiguousRange& range) {
    append(range.data(), range.data() + range.size());
  }
};

using memory_buffer = basic_memory_buffer<char>;

template <size_t SIZE>
FMT_NODISCARD auto to_string(const basic_memory_buffer<char, SIZE>& buf)
    -> std::string {
  auto size = buf.size();
  detail::assume(size < std::string().max_size());
  return {buf.data(), size};
}

// A writer to a buffered stream. It doesn't own the underlying stream.
class writer {
 private:
  detail::buffer<char>* buf_;

  // We cannot create a file buffer in advance because any write to a FILE may
  // invalidate it.
  FILE* file_;

 public:
  inline writer(FILE* f) : buf_(nullptr), file_(f) {}
  inline writer(detail::buffer<char>& buf) : buf_(&buf) {}

  /// Formats `args` according to specifications in `fmt` and writes the
  /// output to the file.
  template <typename... T> void print(format_string<T...> fmt, T&&... args) {
    if (buf_)
      fmt::format_to(appender(*buf_), fmt, std::forward<T>(args)...);
    else
      fmt::print(file_, fmt, std::forward<T>(args)...);
  }
};

class string_buffer {
 private:
  std::string str_;
  detail::container_buffer<std::string> buf_;

 public:
  inline string_buffer() : buf_(str_) {}

  inline operator writer() { return buf_; }
  inline auto str() -> std::string& { return str_; }
};

template <typename T, size_t SIZE, typename Allocator>
struct is_contiguous<basic_memory_buffer<T, SIZE, Allocator>> : std::true_type {
};

// Suppress a misleading warning in older versions of clang.
FMT_PRAGMA_CLANG(diagnostic ignored "-Wweak-vtables")

/// An error reported from a formatting function.
class FMT_SO_VISIBILITY("default") format_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class loc_value;

FMT_END_EXPORT
namespace detail {
FMT_API auto write_console(int fd, string_view text) -> bool;
FMT_API void print(FILE*, string_view);
}  // namespace detail

namespace detail {
template <typename Char, size_t N> struct fixed_string {
  FMT_CONSTEXPR20 fixed_string(const Char (&s)[N]) {
    detail::copy<Char, const Char*, Char*>(static_cast<const Char*>(s), s + N,
                                           data);
  }
  Char data[N] = {};
};

// Converts a compile-time string to basic_string_view.
FMT_EXPORT template <typename Char, size_t N>
constexpr auto compile_string_to_view(const Char (&s)[N])
    -> basic_string_view<Char> {
  // Remove trailing NUL character if needed. Won't be present if this is used
  // with a raw character array (i.e. not defined as a string).
  return {s, N - (std::char_traits<Char>::to_int_type(s[N - 1]) == 0 ? 1 : 0)};
}
FMT_EXPORT template <typename Char>
constexpr auto compile_string_to_view(basic_string_view<Char> s)
    -> basic_string_view<Char> {
  return s;
}

// Returns true if value is negative, false otherwise.
// Same as `value < 0` but doesn't produce warnings if T is an unsigned type.
template <typename T, FMT_ENABLE_IF(is_signed<T>::value)>
constexpr auto is_negative(T value) -> bool {
  return value < 0;
}
template <typename T, FMT_ENABLE_IF(!is_signed<T>::value)>
constexpr auto is_negative(T) -> bool {
  return false;
}

// Smallest of uint32_t, uint64_t, uint128_t that is large enough to
// represent all values of an integral type T.
template <typename T>
using uint32_or_64_or_128_t =
    conditional_t<num_bits<T>() <= 32 && !FMT_REDUCE_INT_INSTANTIATIONS,
                  uint32_t,
                  conditional_t<num_bits<T>() <= 64, uint64_t, uint128_t>>;
template <typename T>
using uint64_or_128_t = conditional_t<num_bits<T>() <= 64, uint64_t, uint128_t>;

#define FMT_POWERS_OF_10(factor)                                  \
  factor * 10, (factor) * 100, (factor) * 1000, (factor) * 10000, \
      (factor) * 100000, (factor) * 1000000, (factor) * 10000000, \
      (factor) * 100000000, (factor) * 1000000000

// Converts value in the range [0, 100) to a string.
// GCC generates slightly better code when value is pointer-size.
inline auto digits2(size_t value) -> const char* {
  // Align data since unaligned access may be slower when crossing a
  // hardware-specific boundary.
  alignas(2) static const char data[] =
      "0001020304050607080910111213141516171819"
      "2021222324252627282930313233343536373839"
      "4041424344454647484950515253545556575859"
      "6061626364656667686970717273747576777879"
      "8081828384858687888990919293949596979899";
  return &data[value * 2];
}

template <typename Char> constexpr auto getsign(sign s) -> Char {
  return static_cast<char>(((' ' << 24) | ('+' << 16) | ('-' << 8)) >>
                           (static_cast<int>(s) * 8));
}

template <typename T> FMT_CONSTEXPR auto count_digits_fallback(T n) -> int {
  int count = 1;
  for (;;) {
    // Integer division is slow so do it for a group of four digits instead
    // of for every digit. The idea comes from the talk by Alexandrescu
    // "Three Optimization Tips for C++". See speed-test for a comparison.
    if (n < 10) return count;
    if (n < 100) return count + 1;
    if (n < 1000) return count + 2;
    if (n < 10000) return count + 3;
    n /= 10000u;
    count += 4;
  }
}
#if FMT_USE_INT128
FMT_CONSTEXPR inline auto count_digits(uint128_opt n) -> int {
  return count_digits_fallback(n);
}
#endif

#ifdef FMT_BUILTIN_CLZLL
// It is a separate function rather than a part of count_digits to workaround
// the lack of static constexpr in constexpr functions.
inline auto do_count_digits(uint64_t n) -> int {
  // This has comparable performance to the version by Kendall Willets
  // (https://github.com/fmtlib/format-benchmark/blob/master/digits10)
  // but uses smaller tables.
  // Maps bsr(n) to ceil(log10(pow(2, bsr(n) + 1) - 1)).
  static constexpr uint8_t bsr2log10[] = {
      1,  1,  1,  2,  2,  2,  3,  3,  3,  4,  4,  4,  4,  5,  5,  5,
      6,  6,  6,  7,  7,  7,  7,  8,  8,  8,  9,  9,  9,  10, 10, 10,
      10, 11, 11, 11, 12, 12, 12, 13, 13, 13, 13, 14, 14, 14, 15, 15,
      15, 16, 16, 16, 16, 17, 17, 17, 18, 18, 18, 19, 19, 19, 19, 20};
  auto t = bsr2log10[FMT_BUILTIN_CLZLL(n | 1) ^ 63];
  static constexpr uint64_t zero_or_powers_of_10[] = {
      0, 0, FMT_POWERS_OF_10(1U), FMT_POWERS_OF_10(1000000000ULL),
      10000000000000000000ULL};
  return t - (n < zero_or_powers_of_10[t]);
}
#endif

// Returns the number of decimal digits in n. Leading zeros are not counted
// except for n == 0 in which case count_digits returns 1.
FMT_CONSTEXPR20 inline auto count_digits(uint64_t n) -> int {
#ifdef FMT_BUILTIN_CLZLL
  if (!is_constant_evaluated() && !FMT_OPTIMIZE_SIZE) return do_count_digits(n);
#endif
  return count_digits_fallback(n);
}

// Counts the number of digits in n. BITS = log2(radix).
template <int BITS, typename UInt>
FMT_CONSTEXPR auto count_digits(UInt n) -> int {
#ifdef FMT_BUILTIN_CLZ
  if (!is_constant_evaluated() && num_bits<UInt>() == 32)
    return (FMT_BUILTIN_CLZ(static_cast<uint32_t>(n) | 1) ^ 31) / BITS + 1;
#endif
  // Lambda avoids unreachable code warnings from NVHPC.
  return [](UInt m) {
    int num_digits = 0;
    do {
      ++num_digits;
    } while ((m >>= BITS) != 0);
    return num_digits;
  }(n);
}

#ifdef FMT_BUILTIN_CLZ
// It is a separate function rather than a part of count_digits to workaround
// the lack of static constexpr in constexpr functions.
FMT_INLINE auto do_count_digits(uint32_t n) -> int {
// An optimization by Kendall Willets from https://bit.ly/3uOIQrB.
// This increments the upper 32 bits (log10(T) - 1) when >= T is added.
#  define FMT_INC(T) (((sizeof(#T) - 1ull) << 32) - T)
  static constexpr uint64_t table[] = {
      FMT_INC(0),          FMT_INC(0),          FMT_INC(0),           // 8
      FMT_INC(10),         FMT_INC(10),         FMT_INC(10),          // 64
      FMT_INC(100),        FMT_INC(100),        FMT_INC(100),         // 512
      FMT_INC(1000),       FMT_INC(1000),       FMT_INC(1000),        // 4096
      FMT_INC(10000),      FMT_INC(10000),      FMT_INC(10000),       // 32k
      FMT_INC(100000),     FMT_INC(100000),     FMT_INC(100000),      // 256k
      FMT_INC(1000000),    FMT_INC(1000000),    FMT_INC(1000000),     // 2048k
      FMT_INC(10000000),   FMT_INC(10000000),   FMT_INC(10000000),    // 16M
      FMT_INC(100000000),  FMT_INC(100000000),  FMT_INC(100000000),   // 128M
      FMT_INC(1000000000), FMT_INC(1000000000), FMT_INC(1000000000),  // 1024M
      FMT_INC(1000000000), FMT_INC(1000000000)                        // 4B
  };
  auto inc = table[FMT_BUILTIN_CLZ(n | 1) ^ 31];
  return static_cast<int>((n + inc) >> 32);
}
#endif

// Optional version of count_digits for better performance on 32-bit platforms.
FMT_CONSTEXPR20 inline auto count_digits(uint32_t n) -> int {
#ifdef FMT_BUILTIN_CLZ
  if (!is_constant_evaluated() && !FMT_OPTIMIZE_SIZE) return do_count_digits(n);
#endif
  return count_digits_fallback(n);
}

template <typename Int> constexpr auto digits10() noexcept -> int {
  return std::numeric_limits<Int>::digits10;
}
template <> constexpr auto digits10<int128_opt>() noexcept -> int { return 38; }
template <> constexpr auto digits10<uint128_t>() noexcept -> int { return 38; }

template <typename Char> struct thousands_sep_result {
  std::string grouping;
  Char thousands_sep;
};

template <typename Char>
FMT_API auto thousands_sep_impl(locale_ref loc) -> thousands_sep_result<Char>;
template <typename Char>
inline auto thousands_sep(locale_ref loc) -> thousands_sep_result<Char> {
  auto result = thousands_sep_impl<char>(loc);
  return {result.grouping, Char(result.thousands_sep)};
}
template <>
inline auto thousands_sep(locale_ref loc) -> thousands_sep_result<wchar_t> {
  return thousands_sep_impl<wchar_t>(loc);
}

template <typename Char>
FMT_API auto decimal_point_impl(locale_ref loc) -> Char;
template <typename Char> inline auto decimal_point(locale_ref loc) -> Char {
  return Char(decimal_point_impl<char>(loc));
}
template <> inline auto decimal_point(locale_ref loc) -> wchar_t {
  return decimal_point_impl<wchar_t>(loc);
}

#ifndef FMT_HEADER_ONLY
FMT_BEGIN_EXPORT
extern template FMT_API auto thousands_sep_impl<char>(locale_ref)
    -> thousands_sep_result<char>;
extern template FMT_API auto thousands_sep_impl<wchar_t>(locale_ref)
    -> thousands_sep_result<wchar_t>;
extern template FMT_API auto decimal_point_impl(locale_ref) -> char;
extern template FMT_API auto decimal_point_impl(locale_ref) -> wchar_t;
FMT_END_EXPORT
#endif  // FMT_HEADER_ONLY

// Compares two characters for equality.
template <typename Char> auto equal2(const Char* lhs, const char* rhs) -> bool {
  return lhs[0] == Char(rhs[0]) && lhs[1] == Char(rhs[1]);
}
inline auto equal2(const char* lhs, const char* rhs) -> bool {
  return memcmp(lhs, rhs, 2) == 0;
}

// Writes a two-digit value to out.
template <typename Char>
FMT_CONSTEXPR20 FMT_INLINE void write2digits(Char* out, size_t value) {
  if (!is_constant_evaluated() && std::is_same<Char, char>::value &&
      !FMT_OPTIMIZE_SIZE) {
    memcpy(out, digits2(value), 2);
    return;
  }
  *out++ = static_cast<Char>('0' + value / 10);
  *out = static_cast<Char>('0' + value % 10);
}

// Formats a decimal unsigned integer value writing to out pointing to a buffer
// of specified size. The caller must ensure that the buffer is large enough.
template <typename Char, typename UInt>
FMT_CONSTEXPR20 auto do_format_decimal(Char* out, UInt value, int size)
    -> Char* {
  FMT_ASSERT(size >= count_digits(value), "invalid digit count");
  unsigned n = to_unsigned(size);
  while (value >= 100) {
    // Integer division is slow so do it for a group of two digits instead
    // of for every digit. The idea comes from the talk by Alexandrescu
    // "Three Optimization Tips for C++". See speed-test for a comparison.
    n -= 2;
    write2digits(out + n, static_cast<unsigned>(value % 100));
    value /= 100;
  }
  if (value >= 10) {
    n -= 2;
    write2digits(out + n, static_cast<unsigned>(value));
  } else {
    out[--n] = static_cast<Char>('0' + value);
  }
  return out + n;
}

template <typename Char, typename UInt>
FMT_CONSTEXPR FMT_INLINE auto format_decimal(Char* out, UInt value,
                                             int num_digits) -> Char* {
  do_format_decimal(out, value, num_digits);
  return out + num_digits;
}

template <typename Char, typename UInt, typename OutputIt,
          FMT_ENABLE_IF(!std::is_pointer<remove_cvref_t<OutputIt>>::value)>
FMT_CONSTEXPR auto format_decimal(OutputIt out, UInt value, int num_digits)
    -> OutputIt {
  if (auto ptr = to_pointer<Char>(out, to_unsigned(num_digits))) {
    do_format_decimal(ptr, value, num_digits);
    return out;
  }
  // Buffer is large enough to hold all digits (digits10 + 1).
  char buffer[digits10<UInt>() + 1];
  if (is_constant_evaluated()) fill_n(buffer, sizeof(buffer), '\0');
  do_format_decimal(buffer, value, num_digits);
  return copy_noinline<Char>(buffer, buffer + num_digits, out);
}

template <typename Char, typename UInt>
FMT_CONSTEXPR auto do_format_base2e(int base_bits, Char* out, UInt value,
                                    int size, bool upper = false) -> Char* {
  out += size;
  do {
    const char* digits = upper ? "0123456789ABCDEF" : "0123456789abcdef";
    unsigned digit = static_cast<unsigned>(value & ((1u << base_bits) - 1));
    *--out = static_cast<Char>(base_bits < 4 ? static_cast<char>('0' + digit)
                                             : digits[digit]);
  } while ((value >>= base_bits) != 0);
  return out;
}

// Formats an unsigned integer in the power of two base (binary, octal, hex).
template <typename Char, typename UInt>
FMT_CONSTEXPR auto format_base2e(int base_bits, Char* out, UInt value,
                                 int num_digits, bool upper = false) -> Char* {
  do_format_base2e(base_bits, out, value, num_digits, upper);
  return out + num_digits;
}

template <typename Char, typename OutputIt, typename UInt,
          FMT_ENABLE_IF(is_back_insert_iterator<OutputIt>::value)>
FMT_CONSTEXPR inline auto format_base2e(int base_bits, OutputIt out, UInt value,
                                        int num_digits, bool upper = false)
    -> OutputIt {
  if (auto ptr = to_pointer<Char>(out, to_unsigned(num_digits))) {
    format_base2e(base_bits, ptr, value, num_digits, upper);
    return out;
  }
  // Make buffer large enough for any base.
  char buffer[num_bits<UInt>()];
  if (is_constant_evaluated()) fill_n(buffer, sizeof(buffer), '\0');
  format_base2e(base_bits, buffer, value, num_digits, upper);
  return detail::copy_noinline<Char>(buffer, buffer + num_digits, out);
}

// A converter from UTF-8 to UTF-16.
class utf8_to_utf16 {
 private:
  basic_memory_buffer<wchar_t> buffer_;

 public:
  FMT_API explicit utf8_to_utf16(string_view s);
  inline operator basic_string_view<wchar_t>() const {
    return {&buffer_[0], size()};
  }
  inline auto size() const -> size_t { return buffer_.size() - 1; }
  inline auto c_str() const -> const wchar_t* { return &buffer_[0]; }
  inline auto str() const -> std::wstring { return {&buffer_[0], size()}; }
};

enum class to_utf8_error_policy { abort, replace };

// A converter from UTF-16/UTF-32 (host endian) to UTF-8.
template <typename WChar, typename Buffer = memory_buffer> class to_utf8 {
 private:
  Buffer buffer_;

 public:
  to_utf8() {}
  explicit to_utf8(basic_string_view<WChar> s,
                   to_utf8_error_policy policy = to_utf8_error_policy::abort) {
    static_assert(sizeof(WChar) == 2 || sizeof(WChar) == 4,
                  "expected utf16 or utf32");
    if (!convert(s, policy)) {
      FMT_THROW(std::runtime_error(sizeof(WChar) == 2 ? "invalid utf16"
                                                      : "invalid utf32"));
    }
  }
  operator string_view() const { return string_view(&buffer_[0], size()); }
  auto size() const -> size_t { return buffer_.size() - 1; }
  auto c_str() const -> const char* { return &buffer_[0]; }
  auto str() const -> std::string { return std::string(&buffer_[0], size()); }

  // Performs conversion returning a bool instead of throwing exception on
  // conversion error. This method may still throw in case of memory allocation
  // error.
  auto convert(basic_string_view<WChar> s,
               to_utf8_error_policy policy = to_utf8_error_policy::abort)
      -> bool {
    if (!convert(buffer_, s, policy)) return false;
    buffer_.push_back(0);
    return true;
  }
  static auto convert(Buffer& buf, basic_string_view<WChar> s,
                      to_utf8_error_policy policy = to_utf8_error_policy::abort)
      -> bool {
    for (auto p = s.begin(); p != s.end(); ++p) {
      uint32_t c = static_cast<uint32_t>(*p);
      if (sizeof(WChar) == 2 && c >= 0xd800 && c <= 0xdfff) {
        // Handle a surrogate pair.
        ++p;
        if (p == s.end() || (c & 0xfc00) != 0xd800 || (*p & 0xfc00) != 0xdc00) {
          if (policy == to_utf8_error_policy::abort) return false;
          buf.append(string_view("\xEF\xBF\xBD"));
          --p;
          continue;
        }
        c = (c << 10) + static_cast<uint32_t>(*p) - 0x35fdc00;
      }
      if (c < 0x80) {
        buf.push_back(static_cast<char>(c));
      } else if (c < 0x800) {
        buf.push_back(static_cast<char>(0xc0 | (c >> 6)));
        buf.push_back(static_cast<char>(0x80 | (c & 0x3f)));
      } else if ((c >= 0x800 && c <= 0xd7ff) || (c >= 0xe000 && c <= 0xffff)) {
        buf.push_back(static_cast<char>(0xe0 | (c >> 12)));
        buf.push_back(static_cast<char>(0x80 | ((c & 0xfff) >> 6)));
        buf.push_back(static_cast<char>(0x80 | (c & 0x3f)));
      } else if (c >= 0x10000 && c <= 0x10ffff) {
        buf.push_back(static_cast<char>(0xf0 | (c >> 18)));
        buf.push_back(static_cast<char>(0x80 | ((c & 0x3ffff) >> 12)));
        buf.push_back(static_cast<char>(0x80 | ((c & 0xfff) >> 6)));
        buf.push_back(static_cast<char>(0x80 | (c & 0x3f)));
      } else {
        return false;
      }
    }
    return true;
  }
};

// Computes 128-bit result of multiplication of two 64-bit unsigned integers.
FMT_INLINE auto umul128(uint64_t x, uint64_t y) noexcept -> uint128_fallback {
#if FMT_USE_INT128
  auto p = static_cast<uint128_opt>(x) * static_cast<uint128_opt>(y);
  return {static_cast<uint64_t>(p >> 64), static_cast<uint64_t>(p)};
#elif defined(_MSC_VER) && defined(_M_X64)
  auto hi = uint64_t();
  auto lo = _umul128(x, y, &hi);
  return {hi, lo};
#else
  const uint64_t mask = static_cast<uint64_t>(max_value<uint32_t>());

  uint64_t a = x >> 32;
  uint64_t b = x & mask;
  uint64_t c = y >> 32;
  uint64_t d = y & mask;

  uint64_t ac = a * c;
  uint64_t bc = b * c;
  uint64_t ad = a * d;
  uint64_t bd = b * d;

  uint64_t intermediate = (bd >> 32) + (ad & mask) + (bc & mask);

  return {ac + (intermediate >> 32) + (ad >> 32) + (bc >> 32),
          (intermediate << 32) + (bd & mask)};
#endif
}

namespace dragonbox {
// Computes floor(log10(pow(2, e))) for e in [-2620, 2620] using the method from
// https://fmt.dev/papers/Dragonbox.pdf#page=28, section 6.1.
inline auto floor_log10_pow2(int e) noexcept -> int {
  FMT_ASSERT(e <= 2620 && e >= -2620, "too large exponent");
  static_assert((-1 >> 1) == -1, "right shift is not arithmetic");
  return (e * 315653) >> 20;
}

inline auto floor_log2_pow10(int e) noexcept -> int {
  FMT_ASSERT(e <= 1233 && e >= -1233, "too large exponent");
  return (e * 1741647) >> 19;
}

// Computes upper 64 bits of multiplication of two 64-bit unsigned integers.
inline auto umul128_upper64(uint64_t x, uint64_t y) noexcept -> uint64_t {
#if FMT_USE_INT128
  auto p = static_cast<uint128_opt>(x) * static_cast<uint128_opt>(y);
  return static_cast<uint64_t>(p >> 64);
#elif defined(_MSC_VER) && defined(_M_X64)
  return __umulh(x, y);
#else
  return umul128(x, y).high();
#endif
}

// Computes upper 128 bits of multiplication of a 64-bit unsigned integer and a
// 128-bit unsigned integer.
inline auto umul192_upper128(uint64_t x, uint128_fallback y) noexcept
    -> uint128_fallback {
  uint128_fallback r = umul128(x, y.high());
  r += umul128_upper64(x, y.low());
  return r;
}

FMT_API auto get_cached_power(int k) noexcept -> uint128_fallback;

// Type-specific information that Dragonbox uses.
template <typename T, typename Enable = void> struct float_info;

template <> struct float_info<float> {
  using carrier_uint = uint32_t;
  static const int exponent_bits = 8;
  static const int kappa = 1;
  static const int big_divisor = 100;
  static const int small_divisor = 10;
  static const int min_k = -31;
  static const int max_k = 46;
  static const int shorter_interval_tie_lower_threshold = -35;
  static const int shorter_interval_tie_upper_threshold = -35;
};

template <> struct float_info<double> {
  using carrier_uint = uint64_t;
  static const int exponent_bits = 11;
  static const int kappa = 2;
  static const int big_divisor = 1000;
  static const int small_divisor = 100;
  static const int min_k = -292;
  static const int max_k = 341;
  static const int shorter_interval_tie_lower_threshold = -77;
  static const int shorter_interval_tie_upper_threshold = -77;
};

// An 80- or 128-bit floating point number.
template <typename T>
struct float_info<T, enable_if_t<std::numeric_limits<T>::digits == 64 ||
                                 std::numeric_limits<T>::digits == 113 ||
                                 is_float128<T>::value>> {
  using carrier_uint = detail::uint128_t;
  static const int exponent_bits = 15;
};

// A double-double floating point number.
template <typename T>
struct float_info<T, enable_if_t<is_double_double<T>::value>> {
  using carrier_uint = detail::uint128_t;
};

template <typename T> struct decimal_fp {
  using significand_type = typename float_info<T>::carrier_uint;
  significand_type significand;
  int exponent;
};

template <typename T> FMT_API auto to_decimal(T x) noexcept -> decimal_fp<T>;
}  // namespace dragonbox

// Returns true iff Float has the implicit bit which is not stored.
template <typename Float> constexpr auto has_implicit_bit() -> bool {
  // An 80-bit FP number has a 64-bit significand an no implicit bit.
  return std::numeric_limits<Float>::digits != 64;
}

// Returns the number of significand bits stored in Float. The implicit bit is
// not counted since it is not stored.
template <typename Float> constexpr auto num_significand_bits() -> int {
  // std::numeric_limits may not support __float128.
  return is_float128<Float>() ? 112
                              : (std::numeric_limits<Float>::digits -
                                 (has_implicit_bit<Float>() ? 1 : 0));
}

template <typename Float>
constexpr auto exponent_mask() ->
    typename dragonbox::float_info<Float>::carrier_uint {
  using float_uint = typename dragonbox::float_info<Float>::carrier_uint;
  return ((float_uint(1) << dragonbox::float_info<Float>::exponent_bits) - 1)
         << num_significand_bits<Float>();
}
template <typename Float> constexpr auto exponent_bias() -> int {
  // std::numeric_limits may not support __float128.
  return is_float128<Float>() ? 16383
                              : std::numeric_limits<Float>::max_exponent - 1;
}

FMT_CONSTEXPR inline auto compute_exp_size(int exp) -> int {
  auto prefix_size = 2;  // sign + 'e'
  auto abs_exp = exp >= 0 ? exp : -exp;
  if (abs_exp < 100) return prefix_size + 2;
  return prefix_size + (abs_exp >= 1000 ? 4 : 3);
}

// Writes the exponent exp in the form "[+-]d{2,3}" to buffer.
template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write_exponent(int exp, OutputIt out) -> OutputIt {
  FMT_ASSERT(-10000 < exp && exp < 10000, "exponent out of range");
  if (exp < 0) {
    *out++ = static_cast<Char>('-');
    exp = -exp;
  } else {
    *out++ = static_cast<Char>('+');
  }
  auto uexp = static_cast<uint32_t>(exp);
  if (is_constant_evaluated()) {
    if (uexp < 10) *out++ = '0';
    return format_decimal<Char>(out, uexp, count_digits(uexp));
  }
  if (uexp >= 100u) {
    const char* top = digits2(uexp / 100);
    if (uexp >= 1000u) *out++ = static_cast<Char>(top[0]);
    *out++ = static_cast<Char>(top[1]);
    uexp %= 100;
  }
  const char* d = digits2(uexp);
  *out++ = static_cast<Char>(d[0]);
  *out++ = static_cast<Char>(d[1]);
  return out;
}

// A floating-point number f * pow(2, e) where F is an unsigned type.
template <typename F> struct basic_fp {
  F f;
  int e;

  static constexpr int num_significand_bits =
      static_cast<int>(sizeof(F) * num_bits<unsigned char>());

  constexpr basic_fp() : f(0), e(0) {}
  constexpr basic_fp(uint64_t f_val, int e_val) : f(f_val), e(e_val) {}

  // Constructs fp from an IEEE754 floating-point number.
  template <typename Float> FMT_CONSTEXPR basic_fp(Float n) { assign(n); }

  // Assigns n to this and return true iff predecessor is closer than successor.
  template <typename Float, FMT_ENABLE_IF(!is_double_double<Float>::value)>
  FMT_CONSTEXPR auto assign(Float n) -> bool {
    static_assert(std::numeric_limits<Float>::digits <= 113, "unsupported FP");
    // Assume Float is in the format [sign][exponent][significand].
    using carrier_uint = typename dragonbox::float_info<Float>::carrier_uint;
    const auto num_float_significand_bits =
        detail::num_significand_bits<Float>();
    const auto implicit_bit = carrier_uint(1) << num_float_significand_bits;
    const auto significand_mask = implicit_bit - 1;
    auto u = bit_cast<carrier_uint>(n);
    f = static_cast<F>(u & significand_mask);
    auto biased_e = static_cast<int>((u & exponent_mask<Float>()) >>
                                     num_float_significand_bits);
    // The predecessor is closer if n is a normalized power of 2 (f == 0)
    // other than the smallest normalized number (biased_e > 1).
    auto is_predecessor_closer = f == 0 && biased_e > 1;
    if (biased_e == 0)
      biased_e = 1;  // Subnormals use biased exponent 1 (min exponent).
    else if (has_implicit_bit<Float>())
      f += static_cast<F>(implicit_bit);
    e = biased_e - exponent_bias<Float>() - num_float_significand_bits;
    if (!has_implicit_bit<Float>()) ++e;
    return is_predecessor_closer;
  }

  template <typename Float, FMT_ENABLE_IF(is_double_double<Float>::value)>
  FMT_CONSTEXPR auto assign(Float n) -> bool {
    static_assert(std::numeric_limits<double>::is_iec559, "unsupported FP");
    return assign(static_cast<double>(n));
  }
};

using fp = basic_fp<unsigned long long>;

// Normalizes the value converted from double and multiplied by (1 << SHIFT).
template <int SHIFT = 0, typename F>
FMT_CONSTEXPR auto normalize(basic_fp<F> value) -> basic_fp<F> {
  // Handle subnormals.
  const auto implicit_bit = F(1) << num_significand_bits<double>();
  const auto shifted_implicit_bit = implicit_bit << SHIFT;
  while ((value.f & shifted_implicit_bit) == 0) {
    value.f <<= 1;
    --value.e;
  }
  // Subtract 1 to account for hidden bit.
  const auto offset = basic_fp<F>::num_significand_bits -
                      num_significand_bits<double>() - SHIFT - 1;
  value.f <<= offset;
  value.e -= offset;
  return value;
}

// Computes lhs * rhs / pow(2, 64) rounded to nearest with half-up tie breaking.
FMT_CONSTEXPR inline auto multiply(uint64_t lhs, uint64_t rhs) -> uint64_t {
#if FMT_USE_INT128
  auto product = static_cast<__uint128_t>(lhs) * rhs;
  auto f = static_cast<uint64_t>(product >> 64);
  return (static_cast<uint64_t>(product) & (1ULL << 63)) != 0 ? f + 1 : f;
#else
  // Multiply 32-bit parts of significands.
  uint64_t mask = (1ULL << 32) - 1;
  uint64_t a = lhs >> 32, b = lhs & mask;
  uint64_t c = rhs >> 32, d = rhs & mask;
  uint64_t ac = a * c, bc = b * c, ad = a * d, bd = b * d;
  // Compute mid 64-bit of result and round.
  uint64_t mid = (bd >> 32) + (ad & mask) + (bc & mask) + (1U << 31);
  return ac + (ad >> 32) + (bc >> 32) + (mid >> 32);
#endif
}

FMT_CONSTEXPR inline auto operator*(fp x, fp y) -> fp {
  return {multiply(x.f, y.f), x.e + y.e + 64};
}

template <typename T, bool doublish = num_bits<T>() == num_bits<double>()>
using convert_float_result =
    conditional_t<std::is_same<T, float>::value || doublish, double, T>;

template <typename T>
constexpr auto convert_float(T value) -> convert_float_result<T> {
  return static_cast<convert_float_result<T>>(value);
}

template <bool C, typename T, typename F, FMT_ENABLE_IF(C)>
auto select(T true_value, F) -> T {
  return true_value;
}
template <bool C, typename T, typename F, FMT_ENABLE_IF(!C)>
auto select(T, F false_value) -> F {
  return false_value;
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR FMT_NOINLINE auto fill(OutputIt it, size_t n,
                                     const basic_specs& specs) -> OutputIt {
  auto fill_size = specs.fill_size();
  if (fill_size == 1) return detail::fill_n(it, n, specs.fill_unit<Char>());
  if (const Char* data = specs.fill<Char>()) {
    for (size_t i = 0; i < n; ++i) it = copy<Char>(data, data + fill_size, it);
  }
  return it;
}

// Writes the output of f, padded according to format specifications in specs.
// size: output size in code units.
// width: output display width in (terminal) column positions.
template <typename Char, align default_align = align::left, typename OutputIt,
          typename F>
FMT_CONSTEXPR auto write_padded(OutputIt out, const format_specs& specs,
                                size_t size, size_t width, F&& f) -> OutputIt {
  static_assert(default_align == align::left || default_align == align::right,
                "");
  unsigned spec_width = to_unsigned(specs.width);
  size_t padding = spec_width > width ? spec_width - width : 0;
  // Shifts are encoded as string literals because static constexpr is not
  // supported in constexpr functions.
  auto* shifts =
      default_align == align::left ? "\x1f\x1f\x00\x01" : "\x00\x1f\x00\x01";
  size_t left_padding = padding >> shifts[static_cast<int>(specs.align())];
  size_t right_padding = padding - left_padding;
  auto it = reserve(out, size + padding * specs.fill_size());
  if (left_padding != 0) it = fill<Char>(it, left_padding, specs);
  it = f(it);
  if (right_padding != 0) it = fill<Char>(it, right_padding, specs);
  return base_iterator(out, it);
}

template <typename Char, align default_align = align::left, typename OutputIt,
          typename F>
constexpr auto write_padded(OutputIt out, const format_specs& specs,
                            size_t size, F&& f) -> OutputIt {
  return write_padded<Char, default_align>(out, specs, size, size, f);
}

template <typename Char, align default_align = align::left, typename OutputIt>
FMT_CONSTEXPR auto write_bytes(OutputIt out, string_view bytes,
                               const format_specs& specs = {}) -> OutputIt {
  return write_padded<Char, default_align>(
      out, specs, bytes.size(), [bytes](reserve_iterator<OutputIt> it) {
        const char* data = bytes.data();
        return copy<Char>(data, data + bytes.size(), it);
      });
}

template <typename Char, typename OutputIt, typename UIntPtr>
auto write_ptr(OutputIt out, UIntPtr value, const format_specs* specs)
    -> OutputIt {
  int num_digits = count_digits<4>(value);
  auto size = to_unsigned(num_digits) + size_t(2);
  auto write = [=](reserve_iterator<OutputIt> it) {
    *it++ = static_cast<Char>('0');
    *it++ = static_cast<Char>('x');
    return format_base2e<Char>(4, it, value, num_digits);
  };
  return specs ? write_padded<Char, align::right>(out, *specs, size, write)
               : base_iterator(out, write(reserve(out, size)));
}

// Returns true iff the code point cp is printable.
FMT_API auto is_printable(uint32_t cp) -> bool;

inline auto needs_escape(uint32_t cp) -> bool {
  if (cp < 0x20 || cp == 0x7f || cp == '"' || cp == '\\') return true;
  if (const_check(FMT_OPTIMIZE_SIZE > 1)) return false;
  return !is_printable(cp);
}

template <typename Char> struct find_escape_result {
  const Char* begin;
  const Char* end;
  uint32_t cp;
};

template <typename Char>
auto find_escape(const Char* begin, const Char* end)
    -> find_escape_result<Char> {
  for (; begin != end; ++begin) {
    uint32_t cp = static_cast<unsigned_char<Char>>(*begin);
    if (const_check(sizeof(Char) == 1) && cp >= 0x80) continue;
    if (needs_escape(cp)) return {begin, begin + 1, cp};
  }
  return {begin, nullptr, 0};
}

inline auto find_escape(const char* begin, const char* end)
    -> find_escape_result<char> {
  if (const_check(!use_utf8)) return find_escape<char>(begin, end);
  auto result = find_escape_result<char>{end, nullptr, 0};
  for_each_codepoint(string_view(begin, to_unsigned(end - begin)),
                     [&](uint32_t cp, string_view sv) {
                       if (needs_escape(cp)) {
                         result = {sv.begin(), sv.end(), cp};
                         return false;
                       }
                       return true;
                     });
  return result;
}

template <size_t width, typename Char, typename OutputIt>
auto write_codepoint(OutputIt out, char prefix, uint32_t cp) -> OutputIt {
  *out++ = static_cast<Char>('\\');
  *out++ = static_cast<Char>(prefix);
  Char buf[width];
  fill_n(buf, width, static_cast<Char>('0'));
  format_base2e(4, buf, cp, width);
  return copy<Char>(buf, buf + width, out);
}

template <typename OutputIt, typename Char>
auto write_escaped_cp(OutputIt out, const find_escape_result<Char>& escape)
    -> OutputIt {
  auto c = static_cast<Char>(escape.cp);
  switch (escape.cp) {
  case '\n':
    *out++ = static_cast<Char>('\\');
    c = static_cast<Char>('n');
    break;
  case '\r':
    *out++ = static_cast<Char>('\\');
    c = static_cast<Char>('r');
    break;
  case '\t':
    *out++ = static_cast<Char>('\\');
    c = static_cast<Char>('t');
    break;
  case '"':  FMT_FALLTHROUGH;
  case '\'': FMT_FALLTHROUGH;
  case '\\': *out++ = static_cast<Char>('\\'); break;
  default:
    if (escape.cp < 0x100) return write_codepoint<2, Char>(out, 'x', escape.cp);
    if (escape.cp < 0x10000)
      return write_codepoint<4, Char>(out, 'u', escape.cp);
    if (escape.cp < 0x110000)
      return write_codepoint<8, Char>(out, 'U', escape.cp);
    for (Char escape_char : basic_string_view<Char>(
             escape.begin, to_unsigned(escape.end - escape.begin))) {
      out = write_codepoint<2, Char>(out, 'x',
                                     static_cast<uint32_t>(escape_char) & 0xFF);
    }
    return out;
  }
  *out++ = c;
  return out;
}

template <typename Char, typename OutputIt>
auto write_escaped_string(OutputIt out, basic_string_view<Char> str)
    -> OutputIt {
  *out++ = static_cast<Char>('"');
  auto begin = str.begin(), end = str.end();
  do {
    auto escape = find_escape(begin, end);
    out = copy<Char>(begin, escape.begin, out);
    begin = escape.end;
    if (!begin) break;
    out = write_escaped_cp<OutputIt, Char>(out, escape);
  } while (begin != end);
  *out++ = static_cast<Char>('"');
  return out;
}

template <typename Char, typename OutputIt>
auto write_escaped_char(OutputIt out, Char v) -> OutputIt {
  Char v_array[1] = {v};
  *out++ = static_cast<Char>('\'');
  if ((needs_escape(static_cast<uint32_t>(v)) && v != static_cast<Char>('"')) ||
      v == static_cast<Char>('\'')) {
    out = write_escaped_cp(out,
                           find_escape_result<Char>{v_array, v_array + 1,
                                                    static_cast<uint32_t>(v)});
  } else {
    *out++ = v;
  }
  *out++ = static_cast<Char>('\'');
  return out;
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write_char(OutputIt out, Char value,
                              const format_specs& specs) -> OutputIt {
  bool is_debug = specs.type() == presentation_type::debug;
  return write_padded<Char>(out, specs, 1, [=](reserve_iterator<OutputIt> it) {
    if (is_debug) return write_escaped_char(it, value);
    *it++ = value;
    return it;
  });
}

template <typename Char> class digit_grouping {
 private:
  std::string grouping_;
  std::basic_string<Char> thousands_sep_;

  struct next_state {
    std::string::const_iterator group;
    int pos;
  };
  auto initial_state() const -> next_state { return {grouping_.begin(), 0}; }

  // Returns the next digit group separator position.
  auto next(next_state& state) const -> int {
    if (thousands_sep_.empty()) return max_value<int>();
    if (state.group == grouping_.end()) return state.pos += grouping_.back();
    if (*state.group <= 0 || *state.group == max_value<char>())
      return max_value<int>();
    state.pos += *state.group++;
    return state.pos;
  }

 public:
  explicit digit_grouping(locale_ref loc, bool localized = true) {
    if (!localized) return;
    auto sep = thousands_sep<Char>(loc);
    grouping_ = sep.grouping;
    if (sep.thousands_sep) thousands_sep_.assign(1, sep.thousands_sep);
  }
  digit_grouping(std::string grouping, std::basic_string<Char> sep)
      : grouping_(std::move(grouping)), thousands_sep_(std::move(sep)) {}

  auto has_separator() const -> bool { return !thousands_sep_.empty(); }

  auto count_separators(int num_digits) const -> int {
    int count = 0;
    auto state = initial_state();
    while (num_digits > next(state)) ++count;
    return count;
  }

  // Applies grouping to digits and writes the output to out.
  template <typename Out, typename C>
  auto apply(Out out, basic_string_view<C> digits) const -> Out {
    auto num_digits = static_cast<int>(digits.size());
    auto separators = basic_memory_buffer<int>();
    separators.push_back(0);
    auto state = initial_state();
    while (int i = next(state)) {
      if (i >= num_digits) break;
      separators.push_back(i);
    }
    for (int i = 0, sep_index = static_cast<int>(separators.size() - 1);
         i < num_digits; ++i) {
      if (num_digits - i == separators[sep_index]) {
        out = copy<Char>(thousands_sep_.data(),
                         thousands_sep_.data() + thousands_sep_.size(), out);
        --sep_index;
      }
      *out++ = static_cast<Char>(digits[to_unsigned(i)]);
    }
    return out;
  }
};

FMT_CONSTEXPR inline void prefix_append(unsigned& prefix, unsigned value) {
  prefix |= prefix != 0 ? value << 8 : value;
  prefix += (1u + (value > 0xff ? 1 : 0)) << 24;
}

// Writes a decimal integer with digit grouping.
template <typename OutputIt, typename UInt, typename Char>
auto write_int(OutputIt out, UInt value, unsigned prefix,
               const format_specs& specs, const digit_grouping<Char>& grouping)
    -> OutputIt {
  static_assert(std::is_same<uint64_or_128_t<UInt>, UInt>::value, "");
  int num_digits = 0;
  auto buffer = memory_buffer();
  switch (specs.type()) {
  default: FMT_ASSERT(false, ""); FMT_FALLTHROUGH;
  case presentation_type::none:
  case presentation_type::dec:
    num_digits = count_digits(value);
    format_decimal<char>(appender(buffer), value, num_digits);
    break;
  case presentation_type::hex:
    if (specs.alt())
      prefix_append(prefix, unsigned(specs.upper() ? 'X' : 'x') << 8 | '0');
    num_digits = count_digits<4>(value);
    format_base2e<char>(4, appender(buffer), value, num_digits, specs.upper());
    break;
  case presentation_type::oct:
    num_digits = count_digits<3>(value);
    // Octal prefix '0' is counted as a digit, so only add it if precision
    // is not greater than the number of digits.
    if (specs.alt() && specs.precision <= num_digits && value != 0)
      prefix_append(prefix, '0');
    format_base2e<char>(3, appender(buffer), value, num_digits);
    break;
  case presentation_type::bin:
    if (specs.alt())
      prefix_append(prefix, unsigned(specs.upper() ? 'B' : 'b') << 8 | '0');
    num_digits = count_digits<1>(value);
    format_base2e<char>(1, appender(buffer), value, num_digits);
    break;
  case presentation_type::chr:
    return write_char<Char>(out, static_cast<Char>(value), specs);
  }

  unsigned size = (prefix != 0 ? prefix >> 24 : 0) + to_unsigned(num_digits) +
                  to_unsigned(grouping.count_separators(num_digits));
  return write_padded<Char, align::right>(
      out, specs, size, size, [&](reserve_iterator<OutputIt> it) {
        for (unsigned p = prefix & 0xffffff; p != 0; p >>= 8)
          *it++ = static_cast<Char>(p & 0xff);
        return grouping.apply(it, string_view(buffer.data(), buffer.size()));
      });
}

#if FMT_USE_LOCALE
// Writes a localized value.
FMT_API auto write_loc(appender out, loc_value value, const format_specs& specs,
                       locale_ref loc) -> bool;
auto write_loc(basic_appender<wchar_t> out, loc_value value,
               const format_specs& specs, locale_ref loc) -> bool;
#endif
template <typename OutputIt>
inline auto write_loc(OutputIt, const loc_value&, const format_specs&,
                      locale_ref) -> bool {
  return false;
}

template <typename UInt> struct write_int_arg {
  UInt abs_value;
  unsigned prefix;
};

template <typename T>
FMT_CONSTEXPR auto make_write_int_arg(T value, sign s)
    -> write_int_arg<uint32_or_64_or_128_t<T>> {
  auto prefix = 0u;
  auto abs_value = static_cast<uint32_or_64_or_128_t<T>>(value);
  if (is_negative(value)) {
    prefix = 0x01000000 | '-';
    abs_value = 0 - abs_value;
  } else {
    constexpr unsigned prefixes[4] = {0, 0, 0x1000000u | '+', 0x1000000u | ' '};
    prefix = prefixes[static_cast<int>(s)];
  }
  return {abs_value, prefix};
}

template <typename Char = char> struct loc_writer {
  basic_appender<Char> out;
  const format_specs& specs;
  std::basic_string<Char> sep;
  std::string grouping;
  std::basic_string<Char> decimal_point;

  template <typename T, FMT_ENABLE_IF(is_integer<T>::value)>
  auto operator()(T value) -> bool {
    auto arg = make_write_int_arg(value, specs.sign());
    write_int(out, static_cast<uint64_or_128_t<T>>(arg.abs_value), arg.prefix,
              specs, digit_grouping<Char>(grouping, sep));
    return true;
  }

  template <typename T, FMT_ENABLE_IF(!is_integer<T>::value)>
  auto operator()(T) -> bool {
    return false;
  }
};

// Size and padding computation separate from write_int to avoid template bloat.
struct size_padding {
  unsigned size;
  unsigned padding;

  FMT_CONSTEXPR size_padding(int num_digits, unsigned prefix,
                             const format_specs& specs)
      : size((prefix >> 24) + to_unsigned(num_digits)), padding(0) {
    if (specs.align() == align::numeric) {
      auto width = to_unsigned(specs.width);
      if (width > size) {
        padding = width - size;
        size = width;
      }
    } else if (specs.precision > num_digits) {
      size = (prefix >> 24) + to_unsigned(specs.precision);
      padding = to_unsigned(specs.precision - num_digits);
    }
  }
};

template <typename Char, typename OutputIt, typename T>
FMT_CONSTEXPR FMT_INLINE auto write_int(OutputIt out, write_int_arg<T> arg,
                                        const format_specs& specs) -> OutputIt {
  static_assert(std::is_same<T, uint32_or_64_or_128_t<T>>::value, "");

  constexpr size_t buffer_size = num_bits<T>();
  char buffer[buffer_size];
  if (is_constant_evaluated()) fill_n(buffer, buffer_size, '\0');
  const char* begin = nullptr;
  const char* end = buffer + buffer_size;

  auto abs_value = arg.abs_value;
  auto prefix = arg.prefix;
  switch (specs.type()) {
  default: FMT_ASSERT(false, ""); FMT_FALLTHROUGH;
  case presentation_type::none:
  case presentation_type::dec:
    begin = do_format_decimal(buffer, abs_value, buffer_size);
    break;
  case presentation_type::hex:
    begin = do_format_base2e(4, buffer, abs_value, buffer_size, specs.upper());
    if (specs.alt())
      prefix_append(prefix, unsigned(specs.upper() ? 'X' : 'x') << 8 | '0');
    break;
  case presentation_type::oct: {
    begin = do_format_base2e(3, buffer, abs_value, buffer_size);
    // Octal prefix '0' is counted as a digit, so only add it if precision
    // is not greater than the number of digits.
    auto num_digits = end - begin;
    if (specs.alt() && specs.precision <= num_digits && abs_value != 0)
      prefix_append(prefix, '0');
    break;
  }
  case presentation_type::bin:
    begin = do_format_base2e(1, buffer, abs_value, buffer_size);
    if (specs.alt())
      prefix_append(prefix, unsigned(specs.upper() ? 'B' : 'b') << 8 | '0');
    break;
  case presentation_type::chr:
    return write_char<Char>(out, static_cast<Char>(abs_value), specs);
  }

  // Write an integer in the format
  //   <left-padding><prefix><numeric-padding><digits><right-padding>
  // prefix contains chars in three lower bytes and the size in the fourth byte.
  int num_digits = static_cast<int>(end - begin);
  // Slightly faster check for specs.width == 0 && specs.precision == -1.
  if ((specs.width | (specs.precision + 1)) == 0) {
    auto it = reserve(out, to_unsigned(num_digits) + (prefix >> 24));
    for (unsigned p = prefix & 0xffffff; p != 0; p >>= 8)
      *it++ = static_cast<Char>(p & 0xff);
    return base_iterator(out, copy<Char>(begin, end, it));
  }
  auto sp = size_padding(num_digits, prefix, specs);
  unsigned padding = sp.padding;
  return write_padded<Char, align::right>(
      out, specs, sp.size, [=](reserve_iterator<OutputIt> it) {
        for (unsigned p = prefix & 0xffffff; p != 0; p >>= 8)
          *it++ = static_cast<Char>(p & 0xff);
        it = detail::fill_n(it, padding, static_cast<Char>('0'));
        return copy<Char>(begin, end, it);
      });
}

template <typename Char, typename OutputIt, typename T>
FMT_CONSTEXPR FMT_NOINLINE auto write_int_noinline(OutputIt out,
                                                   write_int_arg<T> arg,
                                                   const format_specs& specs)
    -> OutputIt {
  return write_int<Char>(out, arg, specs);
}

template <typename Char, typename T,
          FMT_ENABLE_IF(is_integral<T>::value &&
                        !std::is_same<T, bool>::value &&
                        !std::is_same<T, Char>::value)>
FMT_CONSTEXPR FMT_INLINE auto write(basic_appender<Char> out, T value,
                                    const format_specs& specs, locale_ref loc)
    -> basic_appender<Char> {
  if (specs.localized() && write_loc(out, value, specs, loc)) return out;
  return write_int_noinline<Char>(out, make_write_int_arg(value, specs.sign()),
                                  specs);
}

// An inlined version of write used in format string compilation.
template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(is_integral<T>::value &&
                        !std::is_same<T, bool>::value &&
                        !std::is_same<T, Char>::value &&
                        !std::is_same<OutputIt, basic_appender<Char>>::value)>
FMT_CONSTEXPR FMT_INLINE auto write(OutputIt out, T value,
                                    const format_specs& specs, locale_ref loc)
    -> OutputIt {
  if (specs.localized() && write_loc(out, value, specs, loc)) return out;
  return write_int<Char>(out, make_write_int_arg(value, specs.sign()), specs);
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write(OutputIt out, Char value, const format_specs& specs,
                         locale_ref loc = {}) -> OutputIt {
  // char is formatted as unsigned char for consistency across platforms.
  using unsigned_type =
      conditional_t<std::is_same<Char, char>::value, unsigned char, unsigned>;
  return check_char_specs(specs)
             ? write_char<Char>(out, value, specs)
             : write<Char>(out, static_cast<unsigned_type>(value), specs, loc);
}

template <typename Char, typename OutputIt,
          FMT_ENABLE_IF(std::is_same<Char, char>::value)>
FMT_CONSTEXPR auto write(OutputIt out, basic_string_view<Char> s,
                         const format_specs& specs) -> OutputIt {
  bool is_debug = specs.type() == presentation_type::debug;
  if (specs.precision < 0 && specs.width == 0) {
    auto&& it = reserve(out, s.size());
    return is_debug ? write_escaped_string(it, s) : copy<char>(s, it);
  }

  size_t display_width_limit =
      specs.precision < 0 ? SIZE_MAX : to_unsigned(specs.precision);
  size_t display_width =
      !is_debug || specs.precision == 0 ? 0 : 1;  // Account for opening '"'.
  size_t size = !is_debug || specs.precision == 0 ? 0 : 1;
  for_each_codepoint(s, [&](uint32_t cp, string_view sv) {
    if (is_debug && needs_escape(cp)) {
      counting_buffer<char> buf;
      write_escaped_cp(basic_appender<char>(buf),
                       find_escape_result<char>{sv.begin(), sv.end(), cp});
      // We're reinterpreting bytes as display width. That's okay
      // because write_escaped_cp() only writes ASCII characters.
      size_t cp_width = buf.count();
      if (display_width + cp_width <= display_width_limit) {
        display_width += cp_width;
        size += cp_width;
        // If this is the end of the string, account for closing '"'.
        if (display_width < display_width_limit && sv.end() == s.end()) {
          ++display_width;
          ++size;
        }
        return true;
      }

      size += display_width_limit - display_width;
      display_width = display_width_limit;
      return false;
    }

    size_t cp_width = display_width_of(cp);
    if (cp_width + display_width <= display_width_limit) {
      display_width += cp_width;
      size += sv.size();
      // If this is the end of the string, account for closing '"'.
      if (is_debug && display_width < display_width_limit &&
          sv.end() == s.end()) {
        ++display_width;
        ++size;
      }
      return true;
    }

    return false;
  });

  struct bounded_output_iterator {
    reserve_iterator<OutputIt> underlying_iterator;
    size_t bound;

    FMT_CONSTEXPR auto operator*() -> bounded_output_iterator& { return *this; }
    FMT_CONSTEXPR auto operator++() -> bounded_output_iterator& {
      return *this;
    }
    FMT_CONSTEXPR auto operator++(int) -> bounded_output_iterator& {
      return *this;
    }
    FMT_CONSTEXPR auto operator=(char c) -> bounded_output_iterator& {
      if (bound > 0) {
        *underlying_iterator++ = c;
        --bound;
      }
      return *this;
    }
  };

  return write_padded<char>(
      out, specs, size, display_width, [=](reserve_iterator<OutputIt> it) {
        return is_debug
                   ? write_escaped_string(bounded_output_iterator{it, size}, s)
                         .underlying_iterator
                   : copy<char>(s.data(), s.data() + size, it);
      });
}

template <typename Char, typename OutputIt,
          FMT_ENABLE_IF(!std::is_same<Char, char>::value)>
FMT_CONSTEXPR auto write(OutputIt out, basic_string_view<Char> s,
                         const format_specs& specs) -> OutputIt {
  auto data = s.data();
  auto size = s.size();
  if (specs.precision >= 0 && to_unsigned(specs.precision) < size)
    size = to_unsigned(specs.precision);

  bool is_debug = specs.type() == presentation_type::debug;
  if (is_debug) {
    auto buf = counting_buffer<Char>();
    write_escaped_string(basic_appender<Char>(buf), s);
    size = buf.count();
  }

  return write_padded<Char>(
      out, specs, size, [=](reserve_iterator<OutputIt> it) {
        return is_debug ? write_escaped_string(it, s)
                        : copy<Char>(data, data + size, it);
      });
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write(OutputIt out, basic_string_view<Char> s,
                         const format_specs& specs, locale_ref) -> OutputIt {
  return write<Char>(out, s, specs);
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write(OutputIt out, const Char* s, const format_specs& specs,
                         locale_ref) -> OutputIt {
  if (specs.type() == presentation_type::pointer)
    return write_ptr<Char>(out, bit_cast<uintptr_t>(s), &specs);
  if (!s) report_error("string pointer is null");
  return write<Char>(out, basic_string_view<Char>(s), specs, {});
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(is_integral<T>::value &&
                        !std::is_same<T, bool>::value &&
                        !std::is_same<T, Char>::value)>
FMT_CONSTEXPR auto write(OutputIt out, T value) -> OutputIt {
  auto abs_value = static_cast<uint32_or_64_or_128_t<T>>(value);
  bool negative = is_negative(value);
  // Don't do -abs_value since it trips unsigned-integer-overflow sanitizer.
  if (negative) abs_value = ~abs_value + 1;
  int num_digits = count_digits(abs_value);
  auto size = (negative ? 1 : 0) + static_cast<size_t>(num_digits);
  if (auto ptr = to_pointer<Char>(out, size)) {
    if (negative) *ptr++ = static_cast<Char>('-');
    format_decimal<Char>(ptr, abs_value, num_digits);
    return out;
  }
  if (negative) *out++ = static_cast<Char>('-');
  return format_decimal<Char>(out, abs_value, num_digits);
}

template <typename Char>
FMT_CONSTEXPR auto parse_align(const Char* begin, const Char* end,
                               format_specs& specs) -> const Char* {
  FMT_ASSERT(begin != end, "");
  auto alignment = align::none;
  auto p = begin + code_point_length(begin);
  if (end - p <= 0) p = begin;
  for (;;) {
    switch (to_ascii(*p)) {
    case '<': alignment = align::left; break;
    case '>': alignment = align::right; break;
    case '^': alignment = align::center; break;
    }
    if (alignment != align::none) {
      if (p != begin) {
        auto c = *begin;
        if (c == '}') return begin;
        if (c == '{') {
          report_error("invalid fill character '{'");
          return begin;
        }
        specs.set_fill(basic_string_view<Char>(begin, to_unsigned(p - begin)));
        begin = p + 1;
      } else {
        ++begin;
      }
      break;
    } else if (p == begin) {
      break;
    }
    p = begin;
  }
  specs.set_align(alignment);
  return begin;
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR20 auto write_nonfinite(OutputIt out, bool isnan,
                                     format_specs specs, sign s) -> OutputIt {
  auto str =
      isnan ? (specs.upper() ? "NAN" : "nan") : (specs.upper() ? "INF" : "inf");
  constexpr size_t str_size = 3;
  auto size = str_size + (s != sign::none ? 1 : 0);
  // Replace '0'-padding with space for non-finite values.
  const bool is_zero_fill =
      specs.fill_size() == 1 && specs.fill_unit<Char>() == '0';
  if (is_zero_fill) specs.set_fill(' ');
  return write_padded<Char>(out, specs, size,
                            [=](reserve_iterator<OutputIt> it) {
                              if (s != sign::none)
                                *it++ = detail::getsign<Char>(s);
                              return copy<Char>(str, str + str_size, it);
                            });
}

// A decimal floating-point number significand * pow(10, exp).
struct big_decimal_fp {
  const char* significand;
  int significand_size;
  int exponent;
};

constexpr auto get_significand_size(const big_decimal_fp& f) -> int {
  return f.significand_size;
}
template <typename T>
inline auto get_significand_size(const dragonbox::decimal_fp<T>& f) -> int {
  return count_digits(f.significand);
}

template <typename Char, typename OutputIt>
constexpr auto write_significand(OutputIt out, const char* significand,
                                 int significand_size) -> OutputIt {
  return copy<Char>(significand, significand + significand_size, out);
}
template <typename Char, typename OutputIt, typename UInt>
inline auto write_significand(OutputIt out, UInt significand,
                              int significand_size) -> OutputIt {
  return format_decimal<Char>(out, significand, significand_size);
}
template <typename Char, typename OutputIt, typename T, typename Grouping>
FMT_CONSTEXPR20 auto write_significand(OutputIt out, T significand,
                                       int significand_size, int exponent,
                                       const Grouping& grouping) -> OutputIt {
  if (!grouping.has_separator()) {
    out = write_significand<Char>(out, significand, significand_size);
    return detail::fill_n(out, exponent, static_cast<Char>('0'));
  }
  auto buffer = memory_buffer();
  write_significand<char>(appender(buffer), significand, significand_size);
  detail::fill_n(appender(buffer), exponent, '0');
  return grouping.apply(out, string_view(buffer.data(), buffer.size()));
}

template <typename Char, typename UInt,
          FMT_ENABLE_IF(std::is_integral<UInt>::value)>
inline auto write_significand(Char* out, UInt significand, int significand_size,
                              int integral_size, Char decimal_point) -> Char* {
  if (!decimal_point) return format_decimal(out, significand, significand_size);
  out += significand_size + 1;
  Char* end = out;
  int floating_size = significand_size - integral_size;
  for (int i = floating_size / 2; i > 0; --i) {
    out -= 2;
    write2digits(out, static_cast<size_t>(significand % 100));
    significand /= 100;
  }
  if (floating_size % 2 != 0) {
    *--out = static_cast<Char>('0' + significand % 10);
    significand /= 10;
  }
  *--out = decimal_point;
  format_decimal(out - integral_size, significand, integral_size);
  return end;
}

template <typename OutputIt, typename UInt, typename Char,
          FMT_ENABLE_IF(!std::is_pointer<remove_cvref_t<OutputIt>>::value)>
inline auto write_significand(OutputIt out, UInt significand,
                              int significand_size, int integral_size,
                              Char decimal_point) -> OutputIt {
  // Buffer is large enough to hold digits (digits10 + 1) and a decimal point.
  Char buffer[digits10<UInt>() + 2];
  auto end = write_significand(buffer, significand, significand_size,
                               integral_size, decimal_point);
  return detail::copy_noinline<Char>(buffer, end, out);
}

template <typename OutputIt, typename Char>
FMT_CONSTEXPR auto write_significand(OutputIt out, const char* significand,
                                     int significand_size, int integral_size,
                                     Char decimal_point) -> OutputIt {
  out = detail::copy_noinline<Char>(significand, significand + integral_size,
                                    out);
  if (!decimal_point) return out;
  *out++ = decimal_point;
  return detail::copy_noinline<Char>(significand + integral_size,
                                     significand + significand_size, out);
}

template <typename OutputIt, typename Char, typename T, typename Grouping>
FMT_CONSTEXPR20 auto write_significand(OutputIt out, T significand,
                                       int significand_size, int integral_size,
                                       Char decimal_point,
                                       const Grouping& grouping) -> OutputIt {
  if (!grouping.has_separator()) {
    return write_significand(out, significand, significand_size, integral_size,
                             decimal_point);
  }
  auto buffer = basic_memory_buffer<Char>();
  write_significand(basic_appender<Char>(buffer), significand, significand_size,
                    integral_size, decimal_point);
  grouping.apply(
      out, basic_string_view<Char>(buffer.data(), to_unsigned(integral_size)));
  return detail::copy_noinline<Char>(buffer.data() + integral_size,
                                     buffer.end(), out);
}

// Numbers with exponents greater or equal to the returned value will use
// the exponential notation.
template <typename T> FMT_CONSTEVAL auto exp_upper() -> int {
  return std::numeric_limits<T>::digits10 != 0
             ? min_of(16, std::numeric_limits<T>::digits10 + 1)
             : 16;
}

// Use the fixed notation if the exponent is in [-4, exp_upper),
// e.g. 0.0001 instead of 1e-04. Otherwise use the exponent notation.
constexpr auto use_fixed(int exp, int exp_upper) -> bool {
  return exp >= -4 && exp < exp_upper;
}

template <typename Char> class fallback_digit_grouping {
 public:
  constexpr fallback_digit_grouping(locale_ref, bool) {}

  constexpr auto has_separator() const -> bool { return false; }

  constexpr auto count_separators(int) const -> int { return 0; }

  template <typename Out, typename C>
  constexpr auto apply(Out out, basic_string_view<C>) const -> Out {
    return out;
  }
};

template <typename Char, typename Grouping, typename OutputIt,
          typename DecimalFP>
FMT_CONSTEXPR20 auto write_fixed(OutputIt out, const DecimalFP& f,
                                 int significand_size, Char decimal_point,
                                 const format_specs& specs, sign s,
                                 locale_ref loc = {}) -> OutputIt {
  using iterator = reserve_iterator<OutputIt>;

  int exp = f.exponent + significand_size;
  long long size = significand_size + (s != sign::none ? 1 : 0);
  if (f.exponent >= 0) {
    // 1234e5 -> 123400000[.0+]
    size += f.exponent;
    int num_zeros = specs.precision - exp;
    abort_fuzzing_if(num_zeros > 5000);
    if (specs.alt()) {
      ++size;
      if (num_zeros <= 0 && specs.type() != presentation_type::fixed)
        num_zeros = 0;
      if (num_zeros > 0) size += num_zeros;
    }
    auto grouping = Grouping(loc, specs.localized());
    size += grouping.count_separators(exp);
    return write_padded<Char, align::right>(
        out, specs, static_cast<size_t>(size), [&](iterator it) {
          if (s != sign::none) *it++ = detail::getsign<Char>(s);
          it = write_significand<Char>(it, f.significand, significand_size,
                                       f.exponent, grouping);
          if (!specs.alt()) return it;
          *it++ = decimal_point;
          return num_zeros > 0 ? detail::fill_n(it, num_zeros, Char('0')) : it;
        });
  }
  if (exp > 0) {
    // 1234e-2 -> 12.34[0+]
    int num_zeros = specs.alt() ? specs.precision - significand_size : 0;
    size += 1 + max_of(num_zeros, 0);
    auto grouping = Grouping(loc, specs.localized());
    size += grouping.count_separators(exp);
    return write_padded<Char, align::right>(
        out, specs, to_unsigned(size), [&](iterator it) {
          if (s != sign::none) *it++ = detail::getsign<Char>(s);
          it = write_significand(it, f.significand, significand_size, exp,
                                 decimal_point, grouping);
          return num_zeros > 0 ? detail::fill_n(it, num_zeros, Char('0')) : it;
        });
  }
  // 1234e-6 -> 0.001234
  int num_zeros = -exp;
  if (significand_size == 0 && specs.precision >= 0 &&
      specs.precision < num_zeros) {
    num_zeros = specs.precision;
  }
  bool pointy = num_zeros != 0 || significand_size != 0 || specs.alt();
  size += 1 + (pointy ? 1 : 0) + num_zeros;
  return write_padded<Char, align::right>(
      out, specs, to_unsigned(size), [&](iterator it) {
        if (s != sign::none) *it++ = detail::getsign<Char>(s);
        *it++ = Char('0');
        if (!pointy) return it;
        *it++ = decimal_point;
        it = detail::fill_n(it, num_zeros, Char('0'));
        return write_significand<Char>(it, f.significand, significand_size);
      });
}

template <typename Char, typename Grouping, typename OutputIt,
          typename DecimalFP>
FMT_CONSTEXPR20 auto do_write_float(OutputIt out, const DecimalFP& f,
                                    const format_specs& specs, sign s,
                                    int exp_upper, locale_ref loc) -> OutputIt {
  Char point = specs.localized() ? detail::decimal_point<Char>(loc) : Char('.');
  int significand_size = get_significand_size(f);
  int exp = f.exponent + significand_size - 1;
  if (specs.type() == presentation_type::fixed ||
      (specs.type() != presentation_type::exp &&
       use_fixed(exp, specs.precision > 0 ? specs.precision : exp_upper))) {
    return write_fixed<Char, Grouping>(out, f, significand_size, point, specs,
                                       s, loc);
  }

  // Write value in the exponential format.
  int num_zeros = 0;
  long long size = significand_size + (s != sign::none ? 1 : 0);
  if (specs.alt()) {
    num_zeros = max_of(specs.precision - significand_size, 0);
    size += num_zeros;
  } else if (significand_size == 1) {
    point = Char();
  }
  size += (point ? 1 : 0) + compute_exp_size(exp);
  char exp_char = specs.upper() ? 'E' : 'e';
  auto write = [=](reserve_iterator<OutputIt> it) {
    if (s != sign::none) *it++ = detail::getsign<Char>(s);
    // Insert a decimal point after the first digit and add an exponent.
    it = write_significand(it, f.significand, significand_size, 1, point);
    if (num_zeros > 0) it = detail::fill_n(it, num_zeros, Char('0'));
    *it++ = Char(exp_char);
    return write_exponent<Char>(exp, it);
  };
  auto usize = to_unsigned(size);
  return specs.width > 0
             ? write_padded<Char, align::right>(out, specs, usize, write)
             : base_iterator(out, write(reserve(out, usize)));
}

template <typename Char, typename OutputIt, typename DecimalFP>
FMT_CONSTEXPR20 auto write_float(OutputIt out, const DecimalFP& f,
                                 const format_specs& specs, sign s,
                                 int exp_upper, locale_ref loc) -> OutputIt {
  if (is_constant_evaluated()) {
    return do_write_float<Char, fallback_digit_grouping<Char>>(out, f, specs, s,
                                                               exp_upper, loc);
  } else {
    return do_write_float<Char, digit_grouping<Char>>(out, f, specs, s,
                                                      exp_upper, loc);
  }
}

template <typename T> constexpr auto isnan(T value) -> bool {
  return value != value;  // std::isnan doesn't support __float128.
}

template <typename T, typename Enable = void>
struct has_isfinite : std::false_type {};

template <typename T>
struct has_isfinite<T, enable_if_t<sizeof(std::isfinite(T())) != 0>>
    : std::true_type {};

template <typename T,
          FMT_ENABLE_IF(is_floating_point<T>::value&& has_isfinite<T>::value)>
FMT_CONSTEXPR20 auto isfinite(T value) -> bool {
  constexpr T inf = T(std::numeric_limits<double>::infinity());
  if (is_constant_evaluated())
    return !detail::isnan(value) && value < inf && value > -inf;
  return std::isfinite(value);
}
template <typename T, FMT_ENABLE_IF(!has_isfinite<T>::value)>
FMT_CONSTEXPR auto isfinite(T value) -> bool {
  T inf = T(std::numeric_limits<double>::infinity());
  // std::isfinite doesn't support __float128.
  return !detail::isnan(value) && value < inf && value > -inf;
}

template <typename T, FMT_ENABLE_IF(is_floating_point<T>::value)>
FMT_INLINE FMT_CONSTEXPR auto signbit(T value) -> bool {
  if (is_constant_evaluated()) {
#ifdef __cpp_if_constexpr
    if constexpr (std::numeric_limits<double>::is_iec559) {
      auto bits = detail::bit_cast<uint64_t>(static_cast<double>(value));
      return (bits >> (num_bits<uint64_t>() - 1)) != 0;
    }
#endif
  }
  return std::signbit(static_cast<double>(value));
}

inline FMT_CONSTEXPR20 void adjust_precision(int& precision, int exp10) {
  // Adjust fixed precision by exponent because it is relative to decimal
  // point.
  if (exp10 > 0 && precision > max_value<int>() - exp10)
    FMT_THROW(format_error("number is too big"));
  precision += exp10;
}

class bigint {
 private:
  // A bigint is a number in the form bigit_[N - 1] ... bigit_[0] * 32^exp_.
  using bigit = uint32_t;  // A big digit.
  using double_bigit = uint64_t;
  enum { bigit_bits = num_bits<bigit>() };
  enum { bigits_capacity = 32 };
  basic_memory_buffer<bigit, bigits_capacity> bigits_;
  int exp_;

  friend struct formatter<bigint>;

  FMT_CONSTEXPR auto get_bigit(int i) const -> bigit {
    return i >= exp_ && i < num_bigits() ? bigits_[i - exp_] : 0;
  }

  FMT_CONSTEXPR void subtract_bigits(int index, bigit other, bigit& borrow) {
    auto result = double_bigit(bigits_[index]) - other - borrow;
    bigits_[index] = static_cast<bigit>(result);
    borrow = static_cast<bigit>(result >> (bigit_bits * 2 - 1));
  }

  FMT_CONSTEXPR void remove_leading_zeros() {
    int num_bigits = static_cast<int>(bigits_.size()) - 1;
    while (num_bigits > 0 && bigits_[num_bigits] == 0) --num_bigits;
    bigits_.resize(to_unsigned(num_bigits + 1));
  }

  // Computes *this -= other assuming aligned bigints and *this >= other.
  FMT_CONSTEXPR void subtract_aligned(const bigint& other) {
    FMT_ASSERT(other.exp_ >= exp_, "unaligned bigints");
    FMT_ASSERT(compare(*this, other) >= 0, "");
    bigit borrow = 0;
    int i = other.exp_ - exp_;
    for (size_t j = 0, n = other.bigits_.size(); j != n; ++i, ++j)
      subtract_bigits(i, other.bigits_[j], borrow);
    if (borrow != 0) subtract_bigits(i, 0, borrow);
    FMT_ASSERT(borrow == 0, "");
    remove_leading_zeros();
  }

  FMT_CONSTEXPR void multiply(uint32_t value) {
    bigit carry = 0;
    const double_bigit wide_value = value;
    for (size_t i = 0, n = bigits_.size(); i < n; ++i) {
      double_bigit result = bigits_[i] * wide_value + carry;
      bigits_[i] = static_cast<bigit>(result);
      carry = static_cast<bigit>(result >> bigit_bits);
    }
    if (carry != 0) bigits_.push_back(carry);
  }

  template <typename UInt, FMT_ENABLE_IF(std::is_same<UInt, uint64_t>::value ||
                                         std::is_same<UInt, uint128_t>::value)>
  FMT_CONSTEXPR void multiply(UInt value) {
    using half_uint =
        conditional_t<std::is_same<UInt, uint128_t>::value, uint64_t, uint32_t>;
    const int shift = num_bits<half_uint>() - bigit_bits;
    const UInt lower = static_cast<half_uint>(value);
    const UInt upper = value >> num_bits<half_uint>();
    UInt carry = 0;
    for (size_t i = 0, n = bigits_.size(); i < n; ++i) {
      UInt result = lower * bigits_[i] + static_cast<bigit>(carry);
      carry = (upper * bigits_[i] << shift) + (result >> bigit_bits) +
              (carry >> bigit_bits);
      bigits_[i] = static_cast<bigit>(result);
    }
    while (carry != 0) {
      bigits_.push_back(static_cast<bigit>(carry));
      carry >>= bigit_bits;
    }
  }

  template <typename UInt, FMT_ENABLE_IF(std::is_same<UInt, uint64_t>::value ||
                                         std::is_same<UInt, uint128_t>::value)>
  FMT_CONSTEXPR void assign(UInt n) {
    size_t num_bigits = 0;
    do {
      bigits_[num_bigits++] = static_cast<bigit>(n);
      n >>= bigit_bits;
    } while (n != 0);
    bigits_.resize(num_bigits);
    exp_ = 0;
  }

 public:
  FMT_CONSTEXPR bigint() : exp_(0) {}
  explicit bigint(uint64_t n) { assign(n); }

  bigint(const bigint&) = delete;
  void operator=(const bigint&) = delete;

  FMT_CONSTEXPR void assign(const bigint& other) {
    auto size = other.bigits_.size();
    bigits_.resize(size);
    auto data = other.bigits_.data();
    copy<bigit>(data, data + size, bigits_.data());
    exp_ = other.exp_;
  }

  template <typename Int> FMT_CONSTEXPR void operator=(Int n) {
    FMT_ASSERT(n > 0, "");
    assign(uint64_or_128_t<Int>(n));
  }

  FMT_CONSTEXPR auto num_bigits() const -> int {
    return static_cast<int>(bigits_.size()) + exp_;
  }

  FMT_CONSTEXPR auto operator<<=(int shift) -> bigint& {
    FMT_ASSERT(shift >= 0, "");
    exp_ += shift / bigit_bits;
    shift %= bigit_bits;
    if (shift == 0) return *this;
    bigit carry = 0;
    for (size_t i = 0, n = bigits_.size(); i < n; ++i) {
      bigit c = bigits_[i] >> (bigit_bits - shift);
      bigits_[i] = (bigits_[i] << shift) + carry;
      carry = c;
    }
    if (carry != 0) bigits_.push_back(carry);
    return *this;
  }

  template <typename Int> FMT_CONSTEXPR auto operator*=(Int value) -> bigint& {
    FMT_ASSERT(value > 0, "");
    multiply(uint32_or_64_or_128_t<Int>(value));
    return *this;
  }

  friend FMT_CONSTEXPR auto compare(const bigint& b1, const bigint& b2) -> int {
    int num_bigits1 = b1.num_bigits(), num_bigits2 = b2.num_bigits();
    if (num_bigits1 != num_bigits2) return num_bigits1 > num_bigits2 ? 1 : -1;
    int i = static_cast<int>(b1.bigits_.size()) - 1;
    int j = static_cast<int>(b2.bigits_.size()) - 1;
    int end = i - j;
    if (end < 0) end = 0;
    for (; i >= end; --i, --j) {
      bigit b1_bigit = b1.bigits_[i], b2_bigit = b2.bigits_[j];
      if (b1_bigit != b2_bigit) return b1_bigit > b2_bigit ? 1 : -1;
    }
    if (i != j) return i > j ? 1 : -1;
    return 0;
  }

  // Returns compare(lhs1 + lhs2, rhs).
  friend FMT_CONSTEXPR auto add_compare(const bigint& lhs1, const bigint& lhs2,
                                        const bigint& rhs) -> int {
    int max_lhs_bigits = max_of(lhs1.num_bigits(), lhs2.num_bigits());
    int num_rhs_bigits = rhs.num_bigits();
    if (max_lhs_bigits + 1 < num_rhs_bigits) return -1;
    if (max_lhs_bigits > num_rhs_bigits) return 1;
    double_bigit borrow = 0;
    int min_exp = min_of(min_of(lhs1.exp_, lhs2.exp_), rhs.exp_);
    for (int i = num_rhs_bigits - 1; i >= min_exp; --i) {
      double_bigit sum = double_bigit(lhs1.get_bigit(i)) + lhs2.get_bigit(i);
      bigit rhs_bigit = rhs.get_bigit(i);
      if (sum > rhs_bigit + borrow) return 1;
      borrow = rhs_bigit + borrow - sum;
      if (borrow > 1) return -1;
      borrow <<= bigit_bits;
    }
    return borrow != 0 ? -1 : 0;
  }

  // Assigns pow(10, exp) to this bigint.
  FMT_CONSTEXPR20 void assign_pow10(int exp) {
    FMT_ASSERT(exp >= 0, "");
    if (exp == 0) return *this = 1;
    int bitmask = 1 << (num_bits<unsigned>() -
                        countl_zero(static_cast<uint32_t>(exp)) - 1);
    // pow(10, exp) = pow(5, exp) * pow(2, exp). First compute pow(5, exp) by
    // repeated squaring and multiplication.
    *this = 5;
    bitmask >>= 1;
    while (bitmask != 0) {
      square();
      if ((exp & bitmask) != 0) *this *= 5;
      bitmask >>= 1;
    }
    *this <<= exp;  // Multiply by pow(2, exp) by shifting.
  }

  FMT_CONSTEXPR20 void square() {
    int num_bigits = static_cast<int>(bigits_.size());
    int num_result_bigits = 2 * num_bigits;
    basic_memory_buffer<bigit, bigits_capacity> n(std::move(bigits_));
    bigits_.resize(to_unsigned(num_result_bigits));
    auto sum = uint128_t();
    for (int bigit_index = 0; bigit_index < num_bigits; ++bigit_index) {
      // Compute bigit at position bigit_index of the result by adding
      // cross-product terms n[i] * n[j] such that i + j == bigit_index.
      for (int i = 0, j = bigit_index; j >= 0; ++i, --j) {
        // Most terms are multiplied twice which can be optimized in the future.
        sum += double_bigit(n[i]) * n[j];
      }
      bigits_[bigit_index] = static_cast<bigit>(sum);
      sum >>= num_bits<bigit>();  // Compute the carry.
    }
    // Do the same for the top half.
    for (int bigit_index = num_bigits; bigit_index < num_result_bigits;
         ++bigit_index) {
      for (int j = num_bigits - 1, i = bigit_index - j; i < num_bigits;)
        sum += double_bigit(n[i++]) * n[j--];
      bigits_[bigit_index] = static_cast<bigit>(sum);
      sum >>= num_bits<bigit>();
    }
    remove_leading_zeros();
    exp_ *= 2;
  }

  // If this bigint has a bigger exponent than other, adds trailing zero to make
  // exponents equal. This simplifies some operations such as subtraction.
  FMT_CONSTEXPR void align(const bigint& other) {
    int exp_difference = exp_ - other.exp_;
    if (exp_difference <= 0) return;
    int num_bigits = static_cast<int>(bigits_.size());
    bigits_.resize(to_unsigned(num_bigits + exp_difference));
    for (int i = num_bigits - 1, j = i + exp_difference; i >= 0; --i, --j)
      bigits_[j] = bigits_[i];
    fill_n(bigits_.data(), to_unsigned(exp_difference), 0U);
    exp_ -= exp_difference;
  }

  // Divides this bignum by divisor, assigning the remainder to this and
  // returning the quotient.
  FMT_CONSTEXPR auto divmod_assign(const bigint& divisor) -> int {
    FMT_ASSERT(this != &divisor, "");
    if (compare(*this, divisor) < 0) return 0;
    FMT_ASSERT(divisor.bigits_[divisor.bigits_.size() - 1u] != 0, "");
    align(divisor);
    int quotient = 0;
    do {
      subtract_aligned(divisor);
      ++quotient;
    } while (compare(*this, divisor) >= 0);
    return quotient;
  }
};

// format_dragon flags.
enum dragon {
  predecessor_closer = 1,
  fixup = 2,  // Run fixup to correct exp10 which can be off by one.
  fixed = 4,
};

// Formats a floating-point number using a variation of the Fixed-Precision
// Positive Floating-Point Printout ((FPP)^2) algorithm by Steele & White:
// https://fmt.dev/papers/p372-steele.pdf.
FMT_CONSTEXPR20 inline void format_dragon(basic_fp<uint128_t> value,
                                          unsigned flags, int num_digits,
                                          buffer<char>& buf, int& exp10) {
  bigint numerator;    // 2 * R in (FPP)^2.
  bigint denominator;  // 2 * S in (FPP)^2.
  // lower and upper are differences between value and corresponding boundaries.
  bigint lower;             // (M^- in (FPP)^2).
  bigint upper_store;       // upper's value if different from lower.
  bigint* upper = nullptr;  // (M^+ in (FPP)^2).
  // Shift numerator and denominator by an extra bit or two (if lower boundary
  // is closer) to make lower and upper integers. This eliminates multiplication
  // by 2 during later computations.
  bool is_predecessor_closer = (flags & dragon::predecessor_closer) != 0;
  int shift = is_predecessor_closer ? 2 : 1;
  if (value.e >= 0) {
    numerator = value.f;
    numerator <<= value.e + shift;
    lower = 1;
    lower <<= value.e;
    if (is_predecessor_closer) {
      upper_store = 1;
      upper_store <<= value.e + 1;
      upper = &upper_store;
    }
    denominator.assign_pow10(exp10);
    denominator <<= shift;
  } else if (exp10 < 0) {
    numerator.assign_pow10(-exp10);
    lower.assign(numerator);
    if (is_predecessor_closer) {
      upper_store.assign(numerator);
      upper_store <<= 1;
      upper = &upper_store;
    }
    numerator *= value.f;
    numerator <<= shift;
    denominator = 1;
    denominator <<= shift - value.e;
  } else {
    numerator = value.f;
    numerator <<= shift;
    denominator.assign_pow10(exp10);
    denominator <<= shift - value.e;
    lower = 1;
    if (is_predecessor_closer) {
      upper_store = 1ULL << 1;
      upper = &upper_store;
    }
  }
  int even = static_cast<int>((value.f & 1) == 0);
  if (!upper) upper = &lower;
  bool shortest = num_digits < 0;
  if ((flags & dragon::fixup) != 0) {
    if (add_compare(numerator, *upper, denominator) + even <= 0) {
      --exp10;
      numerator *= 10;
      if (num_digits < 0) {
        lower *= 10;
        if (upper != &lower) *upper *= 10;
      }
    }
    if ((flags & dragon::fixed) != 0) adjust_precision(num_digits, exp10 + 1);
  }
  // Invariant: value == (numerator / denominator) * pow(10, exp10).
  if (shortest) {
    // Generate the shortest representation.
    num_digits = 0;
    char* data = buf.data();
    for (;;) {
      int digit = numerator.divmod_assign(denominator);
      bool low = compare(numerator, lower) - even < 0;  // numerator <[=] lower.
      // numerator + upper >[=] pow10:
      bool high = add_compare(numerator, *upper, denominator) + even > 0;
      data[num_digits++] = static_cast<char>('0' + digit);
      if (low || high) {
        if (!low) {
          ++data[num_digits - 1];
        } else if (high) {
          int result = add_compare(numerator, numerator, denominator);
          // Round half to even.
          if (result > 0 || (result == 0 && (digit % 2) != 0))
            ++data[num_digits - 1];
        }
        buf.try_resize(to_unsigned(num_digits));
        exp10 -= num_digits - 1;
        return;
      }
      numerator *= 10;
      lower *= 10;
      if (upper != &lower) *upper *= 10;
    }
  }
  // Generate the given number of digits.
  exp10 -= num_digits - 1;
  if (num_digits <= 0) {
    auto digit = '0';
    if (num_digits == 0) {
      denominator *= 10;
      digit = add_compare(numerator, numerator, denominator) > 0 ? '1' : '0';
    }
    buf.push_back(digit);
    return;
  }
  buf.try_resize(to_unsigned(num_digits));
  for (int i = 0; i < num_digits - 1; ++i) {
    int digit = numerator.divmod_assign(denominator);
    buf[i] = static_cast<char>('0' + digit);
    numerator *= 10;
  }
  int digit = numerator.divmod_assign(denominator);
  auto result = add_compare(numerator, numerator, denominator);
  if (result > 0 || (result == 0 && (digit % 2) != 0)) {
    if (digit == 9) {
      const auto overflow = '0' + 10;
      buf[num_digits - 1] = overflow;
      // Propagate the carry.
      for (int i = num_digits - 1; i > 0 && buf[i] == overflow; --i) {
        buf[i] = '0';
        ++buf[i - 1];
      }
      if (buf[0] == overflow) {
        buf[0] = '1';
        if ((flags & dragon::fixed) != 0)
          buf.push_back('0');
        else
          ++exp10;
      }
      return;
    }
    ++digit;
  }
  buf[num_digits - 1] = static_cast<char>('0' + digit);
}

// Formats a floating-point number using the hexfloat format.
template <typename Float, FMT_ENABLE_IF(!is_double_double<Float>::value)>
FMT_CONSTEXPR20 void format_hexfloat(Float value, format_specs specs,
                                     buffer<char>& buf) {
  // float is passed as double to reduce the number of instantiations and to
  // simplify implementation.
  static_assert(!std::is_same<Float, float>::value, "");

  using info = dragonbox::float_info<Float>;

  // Assume Float is in the format [sign][exponent][significand].
  using carrier_uint = typename info::carrier_uint;

  const auto num_float_significand_bits = detail::num_significand_bits<Float>();

  basic_fp<carrier_uint> f(value);
  f.e += num_float_significand_bits;
  if (!has_implicit_bit<Float>()) --f.e;

  const auto num_fraction_bits =
      num_float_significand_bits + (has_implicit_bit<Float>() ? 1 : 0);
  const auto num_xdigits = (num_fraction_bits + 3) / 4;

  const auto leading_shift = ((num_xdigits - 1) * 4);
  const auto leading_mask = carrier_uint(0xF) << leading_shift;
  const auto leading_xdigit =
      static_cast<uint32_t>((f.f & leading_mask) >> leading_shift);
  if (leading_xdigit > 1) f.e -= (32 - countl_zero(leading_xdigit) - 1);

  int print_xdigits = num_xdigits - 1;
  if (specs.precision >= 0 && print_xdigits > specs.precision) {
    const int shift = ((print_xdigits - specs.precision - 1) * 4);
    const auto mask = carrier_uint(0xF) << shift;
    const auto v = static_cast<uint32_t>((f.f & mask) >> shift);

    if (v >= 8) {
      const auto inc = carrier_uint(1) << (shift + 4);
      f.f += inc;
      f.f &= ~(inc - 1);
    }

    // Check long double overflow
    if (!has_implicit_bit<Float>()) {
      const auto implicit_bit = carrier_uint(1) << num_float_significand_bits;
      if ((f.f & implicit_bit) == implicit_bit) {
        f.f >>= 4;
        f.e += 4;
      }
    }

    print_xdigits = specs.precision;
  }

  char xdigits[num_bits<carrier_uint>() / 4];
  detail::fill_n(xdigits, sizeof(xdigits), '0');
  format_base2e(4, xdigits, f.f, num_xdigits, specs.upper());

  // Remove zero tail
  while (print_xdigits > 0 && xdigits[print_xdigits] == '0') --print_xdigits;

  buf.push_back('0');
  buf.push_back(specs.upper() ? 'X' : 'x');
  buf.push_back(xdigits[0]);
  if (specs.alt() || print_xdigits > 0 || print_xdigits < specs.precision)
    buf.push_back('.');
  buf.append(xdigits + 1, xdigits + 1 + print_xdigits);
  for (; print_xdigits < specs.precision; ++print_xdigits) buf.push_back('0');

  buf.push_back(specs.upper() ? 'P' : 'p');

  uint32_t abs_e;
  if (f.e < 0) {
    buf.push_back('-');
    abs_e = static_cast<uint32_t>(-f.e);
  } else {
    buf.push_back('+');
    abs_e = static_cast<uint32_t>(f.e);
  }
  format_decimal<char>(appender(buf), abs_e, detail::count_digits(abs_e));
}

template <typename Float, FMT_ENABLE_IF(is_double_double<Float>::value)>
FMT_CONSTEXPR20 void format_hexfloat(Float value, format_specs specs,
                                     buffer<char>& buf) {
  format_hexfloat(static_cast<double>(value), specs, buf);
}

constexpr auto fractional_part_rounding_thresholds(int index) -> uint32_t {
  // For checking rounding thresholds.
  // The kth entry is chosen to be the smallest integer such that the
  // upper 32-bits of 10^(k+1) times it is strictly bigger than 5 * 10^k.
  // It is equal to ceil(2^31 + 2^32/10^(k + 1)).
  // These are stored in a string literal because we cannot have static arrays
  // in constexpr functions and non-static ones are poorly optimized.
  return U"\x9999999a\x828f5c29\x80418938\x80068db9\x8000a7c6\x800010c7"
         U"\x800001ae\x8000002b"[index];
}

template <typename Float>
FMT_CONSTEXPR20 auto format_float(Float value, int precision,
                                  const format_specs& specs, bool binary32,
                                  buffer<char>& buf) -> int {
  // float is passed as double to reduce the number of instantiations.
  static_assert(!std::is_same<Float, float>::value, "");
  auto converted_value = convert_float(value);

  const bool fixed = specs.type() == presentation_type::fixed;
  if (value == 0) {
    if (precision <= 0 || !fixed) {
      buf.push_back('0');
      return 0;
    }
    buf.try_resize(to_unsigned(precision));
    fill_n(buf.data(), precision, '0');
    return -precision;
  }

  int exp = 0;
  bool use_dragon = true;
  unsigned dragon_flags = 0;
  if (!is_fast_float<Float>() || is_constant_evaluated()) {
    const auto inv_log2_10 = 0.3010299956639812;  // 1 / log2(10)
    using info = dragonbox::float_info<decltype(converted_value)>;
    const auto f = basic_fp<typename info::carrier_uint>(converted_value);
    // Compute exp, an approximate power of 10, such that
    //   10^(exp - 1) <= value < 10^exp or 10^exp <= value < 10^(exp + 1).
    // This is based on log10(value) == log2(value) / log2(10) and approximation
    // of log2(value) by e + num_fraction_bits idea from double-conversion.
    auto e = (f.e + count_digits<1>(f.f) - 1) * inv_log2_10 - 1e-10;
    exp = static_cast<int>(e);
    if (e > exp) ++exp;  // Compute ceil.
    dragon_flags = dragon::fixup;
  } else {
    // Extract significand bits and exponent bits.
    using info = dragonbox::float_info<double>;
    auto br = bit_cast<uint64_t>(static_cast<double>(value));

    const uint64_t significand_mask =
        (static_cast<uint64_t>(1) << num_significand_bits<double>()) - 1;
    uint64_t significand = (br & significand_mask);
    int exponent = static_cast<int>((br & exponent_mask<double>()) >>
                                    num_significand_bits<double>());

    if (exponent != 0) {  // Check if normal.
      exponent -= exponent_bias<double>() + num_significand_bits<double>();
      significand |=
          (static_cast<uint64_t>(1) << num_significand_bits<double>());
      significand <<= 1;
    } else {
      // Normalize subnormal inputs.
      FMT_ASSERT(significand != 0, "zeros should not appear here");
      int shift = countl_zero(significand);
      FMT_ASSERT(shift >= num_bits<uint64_t>() - num_significand_bits<double>(),
                 "");
      shift -= (num_bits<uint64_t>() - num_significand_bits<double>() - 2);
      exponent = (std::numeric_limits<double>::min_exponent -
                  num_significand_bits<double>()) -
                 shift;
      significand <<= shift;
    }

    // Compute the first several nonzero decimal significand digits.
    // We call the number we get the first segment.
    const int k = info::kappa - dragonbox::floor_log10_pow2(exponent);
    exp = -k;
    const int beta = exponent + dragonbox::floor_log2_pow10(k);
    uint64_t first_segment;
    bool has_more_segments;
    int digits_in_the_first_segment;
    {
      const auto r = dragonbox::umul192_upper128(
          significand << beta, dragonbox::get_cached_power(k));
      first_segment = r.high();
      has_more_segments = r.low() != 0;

      // The first segment can have 18 ~ 19 digits.
      if (first_segment >= 1000000000000000000ULL) {
        digits_in_the_first_segment = 19;
      } else {
        // When it is of 18-digits, we align it to 19-digits by adding a bogus
        // zero at the end.
        digits_in_the_first_segment = 18;
        first_segment *= 10;
      }
    }

    // Compute the actual number of decimal digits to print.
    if (fixed) adjust_precision(precision, exp + digits_in_the_first_segment);

    // Use Dragon4 only when there might be not enough digits in the first
    // segment.
    if (digits_in_the_first_segment > precision) {
      use_dragon = false;

      if (precision <= 0) {
        exp += digits_in_the_first_segment;

        if (precision < 0) {
          // Nothing to do, since all we have are just leading zeros.
          buf.try_resize(0);
        } else {
          // We may need to round-up.
          buf.try_resize(1);
          if ((first_segment | static_cast<uint64_t>(has_more_segments)) >
              5000000000000000000ULL) {
            buf[0] = '1';
          } else {
            buf[0] = '0';
          }
        }
      }  // precision <= 0
      else {
        exp += digits_in_the_first_segment - precision;

        // When precision > 0, we divide the first segment into three
        // subsegments, each with 9, 9, and 0 ~ 1 digits so that each fits
        // in 32-bits which usually allows faster calculation than in
        // 64-bits. Since some compiler (e.g. MSVC) doesn't know how to optimize
        // division-by-constant for large 64-bit divisors, we do it here
        // manually. The magic number 7922816251426433760 below is equal to
        // ceil(2^(64+32) / 10^10).
        const uint32_t first_subsegment = static_cast<uint32_t>(
            dragonbox::umul128_upper64(first_segment, 7922816251426433760ULL) >>
            32);
        const uint64_t second_third_subsegments =
            first_segment - first_subsegment * 10000000000ULL;

        uint64_t prod;
        uint32_t digits;
        bool should_round_up;
        int number_of_digits_to_print = min_of(precision, 9);

        // Print a 9-digits subsegment, either the first or the second.
        auto print_subsegment = [&](uint32_t subsegment, char* buffer) {
          int number_of_digits_printed = 0;

          // If we want to print an odd number of digits from the subsegment,
          if ((number_of_digits_to_print & 1) != 0) {
            // Convert to 64-bit fixed-point fractional form with 1-digit
            // integer part. The magic number 720575941 is a good enough
            // approximation of 2^(32 + 24) / 10^8; see
            // https://jk-jeon.github.io/posts/2022/12/fixed-precision-formatting/#fixed-length-case
            // for details.
            prod = ((subsegment * static_cast<uint64_t>(720575941)) >> 24) + 1;
            digits = static_cast<uint32_t>(prod >> 32);
            *buffer = static_cast<char>('0' + digits);
            number_of_digits_printed++;
          }
          // If we want to print an even number of digits from the
          // first_subsegment,
          else {
            // Convert to 64-bit fixed-point fractional form with 2-digits
            // integer part. The magic number 450359963 is a good enough
            // approximation of 2^(32 + 20) / 10^7; see
            // https://jk-jeon.github.io/posts/2022/12/fixed-precision-formatting/#fixed-length-case
            // for details.
            prod = ((subsegment * static_cast<uint64_t>(450359963)) >> 20) + 1;
            digits = static_cast<uint32_t>(prod >> 32);
            write2digits(buffer, digits);
            number_of_digits_printed += 2;
          }

          // Print all digit pairs.
          while (number_of_digits_printed < number_of_digits_to_print) {
            prod = static_cast<uint32_t>(prod) * static_cast<uint64_t>(100);
            digits = static_cast<uint32_t>(prod >> 32);
            write2digits(buffer + number_of_digits_printed, digits);
            number_of_digits_printed += 2;
          }
        };

        // Print first subsegment.
        print_subsegment(first_subsegment, buf.data());

        // Perform rounding if the first subsegment is the last subsegment to
        // print.
        if (precision <= 9) {
          // Rounding inside the subsegment.
          // We round-up if:
          //  - either the fractional part is strictly larger than 1/2, or
          //  - the fractional part is exactly 1/2 and the last digit is odd.
          // We rely on the following observations:
          //  - If fractional_part >= threshold, then the fractional part is
          //    strictly larger than 1/2.
          //  - If the MSB of fractional_part is set, then the fractional part
          //    must be at least 1/2.
          //  - When the MSB of fractional_part is set, either
          //    second_third_subsegments being nonzero or has_more_segments
          //    being true means there are further digits not printed, so the
          //    fractional part is strictly larger than 1/2.
          if (precision < 9) {
            uint32_t fractional_part = static_cast<uint32_t>(prod);
            should_round_up =
                fractional_part >= fractional_part_rounding_thresholds(
                                       8 - number_of_digits_to_print) ||
                ((fractional_part >> 31) &
                 ((digits & 1) | (second_third_subsegments != 0) |
                  has_more_segments)) != 0;
          }
          // Rounding at the subsegment boundary.
          // In this case, the fractional part is at least 1/2 if and only if
          // second_third_subsegments >= 5000000000ULL, and is strictly larger
          // than 1/2 if we further have either second_third_subsegments >
          // 5000000000ULL or has_more_segments == true.
          else {
            should_round_up = second_third_subsegments > 5000000000ULL ||
                              (second_third_subsegments == 5000000000ULL &&
                               ((digits & 1) != 0 || has_more_segments));
          }
        }
        // Otherwise, print the second subsegment.
        else {
          // Compilers are not aware of how to leverage the maximum value of
          // second_third_subsegments to find out a better magic number which
          // allows us to eliminate an additional shift. 1844674407370955162 =
          // ceil(2^64/10) < ceil(2^64*(10^9/(10^10 - 1))).
          const uint32_t second_subsegment =
              static_cast<uint32_t>(dragonbox::umul128_upper64(
                  second_third_subsegments, 1844674407370955162ULL));
          const uint32_t third_subsegment =
              static_cast<uint32_t>(second_third_subsegments) -
              second_subsegment * 10;

          number_of_digits_to_print = precision - 9;
          print_subsegment(second_subsegment, buf.data() + 9);

          // Rounding inside the subsegment.
          if (precision < 18) {
            // The condition third_subsegment != 0 implies that the segment was
            // of 19 digits, so in this case the third segment should be
            // consisting of a genuine digit from the input.
            uint32_t fractional_part = static_cast<uint32_t>(prod);
            should_round_up =
                fractional_part >= fractional_part_rounding_thresholds(
                                       8 - number_of_digits_to_print) ||
                ((fractional_part >> 31) &
                 ((digits & 1) | (third_subsegment != 0) |
                  has_more_segments)) != 0;
          }
          // Rounding at the subsegment boundary.
          else {
            // In this case, the segment must be of 19 digits, thus
            // the third subsegment should be consisting of a genuine digit from
            // the input.
            should_round_up = third_subsegment > 5 ||
                              (third_subsegment == 5 &&
                               ((digits & 1) != 0 || has_more_segments));
          }
        }

        // Round-up if necessary.
        if (should_round_up) {
          ++buf[precision - 1];
          for (int i = precision - 1; i > 0 && buf[i] > '9'; --i) {
            buf[i] = '0';
            ++buf[i - 1];
          }
          if (buf[0] > '9') {
            buf[0] = '1';
            if (fixed)
              buf[precision++] = '0';
            else
              ++exp;
          }
        }
        buf.try_resize(to_unsigned(precision));
      }
    }  // if (digits_in_the_first_segment > precision)
    else {
      // Adjust the exponent for its use in Dragon4.
      exp += digits_in_the_first_segment - 1;
    }
  }
  if (use_dragon) {
    auto f = basic_fp<uint128_t>();
    bool is_predecessor_closer = binary32 ? f.assign(static_cast<float>(value))
                                          : f.assign(converted_value);
    if (is_predecessor_closer) dragon_flags |= dragon::predecessor_closer;
    if (fixed) dragon_flags |= dragon::fixed;
    // Limit precision to the maximum possible number of significant digits in
    // an IEEE754 double because we don't need to generate zeros.
    const int max_double_digits = 767;
    if (precision > max_double_digits) precision = max_double_digits;
    format_dragon(f, dragon_flags, precision, buf, exp);
  }
  if (!fixed && !specs.alt()) {
    // Remove trailing zeros.
    auto num_digits = buf.size();
    while (num_digits > 0 && buf[num_digits - 1] == '0') {
      --num_digits;
      ++exp;
    }
    buf.try_resize(num_digits);
  }
  return exp;
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(is_floating_point<T>::value)>
FMT_CONSTEXPR20 auto write(OutputIt out, T value, format_specs specs,
                           locale_ref loc = {}) -> OutputIt {
  if (specs.localized() && write_loc(out, value, specs, loc)) return out;

  // Use signbit because value < 0 is false for NaN.
  sign s = detail::signbit(value) ? sign::minus : specs.sign();

  if (!detail::isfinite(value))
    return write_nonfinite<Char>(out, detail::isnan(value), specs, s);

  if (specs.align() == align::numeric && s != sign::none) {
    *out++ = detail::getsign<Char>(s);
    s = sign::none;
    if (specs.width != 0) --specs.width;
  }

  const int exp_upper = detail::exp_upper<T>();
  int precision = specs.precision;
  if (precision < 0) {
    if (specs.type() != presentation_type::none) {
      precision = 6;
    } else if (is_fast_float<T>::value && !is_constant_evaluated()) {
      // Use Dragonbox for the shortest format.
      auto dec = dragonbox::to_decimal(static_cast<fast_float_t<T>>(value));
      return write_float<Char>(out, dec, specs, s, exp_upper, loc);
    }
  }

  memory_buffer buffer;
  if (specs.type() == presentation_type::hexfloat) {
    if (s != sign::none) buffer.push_back(detail::getsign<char>(s));
    format_hexfloat(convert_float(value), specs, buffer);
    return write_bytes<Char, align::right>(out, {buffer.data(), buffer.size()},
                                           specs);
  }

  if (specs.type() == presentation_type::exp) {
    if (precision == max_value<int>())
      report_error("number is too big");
    else
      ++precision;
    if (specs.precision != 0) specs.set_alt();
  } else if (specs.type() == presentation_type::fixed) {
    if (specs.precision != 0) specs.set_alt();
  } else if (precision == 0) {
    precision = 1;
  }
  int exp = format_float(convert_float(value), precision, specs,
                         std::is_same<T, float>(), buffer);

  specs.precision = precision;
  auto f = big_decimal_fp{buffer.data(), static_cast<int>(buffer.size()), exp};
  return write_float<Char>(out, f, specs, s, exp_upper, loc);
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(is_fast_float<T>::value)>
FMT_CONSTEXPR20 auto write(OutputIt out, T value) -> OutputIt {
  if (is_constant_evaluated()) return write<Char>(out, value, format_specs());

  auto s = detail::signbit(value) ? sign::minus : sign::none;
  auto mask = exponent_mask<fast_float_t<T>>();
  if ((bit_cast<decltype(mask)>(value) & mask) == mask)
    return write_nonfinite<Char>(out, std::isnan(value), {}, s);

  auto dec = dragonbox::to_decimal(static_cast<fast_float_t<T>>(value));
  auto significand = dec.significand;
  int significand_size = count_digits(significand);
  int exponent = dec.exponent + significand_size - 1;
  if (use_fixed(exponent, detail::exp_upper<T>())) {
    return write_fixed<Char, fallback_digit_grouping<Char>>(
        out, dec, significand_size, Char('.'), {}, s);
  }

  // Write value in the exponential format.
  const char* prefix = "e+";
  int abs_exponent = exponent;
  if (exponent < 0) {
    abs_exponent = -exponent;
    prefix = "e-";
  }
  auto has_decimal_point = significand_size != 1;
  size_t size = std::is_pointer<OutputIt>::value
                    ? 0u
                    : to_unsigned((s != sign::none ? 1 : 0) + significand_size +
                                  (has_decimal_point ? 1 : 0) +
                                  (abs_exponent >= 100 ? 5 : 4));
  if (auto ptr = to_pointer<Char>(out, size)) {
    if (s != sign::none) *ptr++ = Char('-');
    if (has_decimal_point) {
      auto begin = ptr;
      ptr = format_decimal<Char>(ptr, significand, significand_size + 1);
      *begin = begin[1];
      begin[1] = '.';
    } else {
      *ptr++ = static_cast<Char>('0' + significand);
    }
    if (std::is_same<Char, char>::value) {
      memcpy(ptr, prefix, 2);
      ptr += 2;
    } else {
      *ptr++ = prefix[0];
      *ptr++ = prefix[1];
    }
    if (abs_exponent >= 100) {
      *ptr++ = static_cast<Char>('0' + abs_exponent / 100);
      abs_exponent %= 100;
    }
    write2digits(ptr, static_cast<unsigned>(abs_exponent));
    return select<std::is_pointer<OutputIt>::value>(ptr + 2, out);
  }
  auto it = reserve(out, size);
  if (s != sign::none) *it++ = Char('-');
  // Insert a decimal point after the first digit and add an exponent.
  it = write_significand(it, significand, significand_size, 1,
                         has_decimal_point ? Char('.') : Char());
  *it++ = Char('e');
  it = write_exponent<Char>(exponent, it);
  return base_iterator(out, it);
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(is_floating_point<T>::value &&
                        !is_fast_float<T>::value)>
inline auto write(OutputIt out, T value) -> OutputIt {
  return write<Char>(out, value, {});
}

template <typename Char, typename OutputIt>
auto write(OutputIt out, monostate, format_specs = {}, locale_ref = {})
    -> OutputIt {
  FMT_ASSERT(false, "");
  return out;
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write(OutputIt out, basic_string_view<Char> value)
    -> OutputIt {
  return copy_noinline<Char>(value.begin(), value.end(), out);
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(has_to_string_view<T>::value)>
constexpr auto write(OutputIt out, const T& value) -> OutputIt {
  return write<Char>(out, to_string_view(value));
}

// FMT_ENABLE_IF() condition separated to workaround an MSVC bug.
template <
    typename Char, typename OutputIt, typename T,
    bool check = std::is_enum<T>::value && !std::is_same<T, Char>::value &&
                 mapped_type_constant<T, Char>::value != type::custom_type,
    FMT_ENABLE_IF(check)>
FMT_CONSTEXPR auto write(OutputIt out, T value) -> OutputIt {
  return write<Char>(out, static_cast<underlying_t<T>>(value));
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(std::is_same<T, bool>::value)>
FMT_CONSTEXPR auto write(OutputIt out, T value, const format_specs& specs = {},
                         locale_ref = {}) -> OutputIt {
  return specs.type() != presentation_type::none &&
                 specs.type() != presentation_type::string
             ? write<Char>(out, value ? 1 : 0, specs, {})
             : write_bytes<Char>(out, value ? "true" : "false", specs);
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR auto write(OutputIt out, Char value) -> OutputIt {
  auto it = reserve(out, 1);
  *it++ = value;
  return base_iterator(out, it);
}

template <typename Char, typename OutputIt>
FMT_CONSTEXPR20 auto write(OutputIt out, const Char* value) -> OutputIt {
  if (value) return write(out, basic_string_view<Char>(value));
  report_error("string pointer is null");
  return out;
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(std::is_same<T, void>::value)>
auto write(OutputIt out, const T* value, const format_specs& specs = {},
           locale_ref = {}) -> OutputIt {
  return write_ptr<Char>(out, bit_cast<uintptr_t>(value), &specs);
}

template <typename Char, typename OutputIt, typename T,
          FMT_ENABLE_IF(mapped_type_constant<T, Char>::value ==
                            type::custom_type &&
                        !std::is_fundamental<T>::value)>
FMT_CONSTEXPR auto write(OutputIt out, const T& value) -> OutputIt {
  auto f = formatter<T, Char>();
  auto parse_ctx = parse_context<Char>({});
  f.parse(parse_ctx);
  auto ctx = basic_format_context<OutputIt, Char>(out, {}, {});
  return f.format(value, ctx);
}

template <typename T>
using is_builtin =
    bool_constant<std::is_same<T, int>::value || FMT_BUILTIN_TYPES>;

// An argument visitor that formats the argument and writes it via the output
// iterator. It's a class and not a generic lambda for compatibility with C++11.
template <typename Char> struct default_arg_formatter {
  using context = buffered_context<Char>;

  basic_appender<Char> out;

  void operator()(monostate) { report_error("argument not found"); }

  template <typename T, FMT_ENABLE_IF(is_builtin<T>::value)>
  void operator()(T value) {
    write<Char>(out, value);
  }

  template <typename T, FMT_ENABLE_IF(!is_builtin<T>::value)>
  void operator()(T) {
    FMT_ASSERT(false, "");
  }

  void operator()(typename basic_format_arg<context>::handle h) {
    // Use a null locale since the default format must be unlocalized.
    auto parse_ctx = parse_context<Char>({});
    auto format_ctx = context(out, {}, {});
    h.format(parse_ctx, format_ctx);
  }
};

template <typename Char> struct arg_formatter {
  basic_appender<Char> out;
  const format_specs& specs;
  FMT_NO_UNIQUE_ADDRESS locale_ref locale;

  template <typename T, FMT_ENABLE_IF(is_builtin<T>::value)>
  FMT_CONSTEXPR FMT_INLINE void operator()(T value) {
    detail::write<Char>(out, value, specs, locale);
  }

  template <typename T, FMT_ENABLE_IF(!is_builtin<T>::value)>
  void operator()(T) {
    FMT_ASSERT(false, "");
  }

  void operator()(typename basic_format_arg<buffered_context<Char>>::handle) {
    // User-defined types are handled separately because they require access
    // to the parse context.
  }
};

struct dynamic_spec_getter {
  template <typename T, FMT_ENABLE_IF(is_integer<T>::value)>
  FMT_CONSTEXPR auto operator()(T value) -> unsigned long long {
    return is_negative(value) ? ~0ull : static_cast<unsigned long long>(value);
  }

  template <typename T, FMT_ENABLE_IF(!is_integer<T>::value)>
  FMT_CONSTEXPR auto operator()(T) -> unsigned long long {
    report_error("width/precision is not integer");
    return 0;
  }
};

template <typename Context>
FMT_CONSTEXPR void handle_dynamic_spec(
    arg_id_kind kind, int& value,
    const arg_ref<typename Context::char_type>& ref, Context& ctx) {
  if (kind == arg_id_kind::none) return;
  auto arg =
      kind == arg_id_kind::index ? ctx.arg(ref.index) : ctx.arg(ref.name);
  if (!arg) report_error("argument not found");
  unsigned long long result = arg.visit(dynamic_spec_getter());
  if (result > to_unsigned(max_value<int>()))
    report_error("width/precision is out of range");
  value = static_cast<int>(result);
}

#if FMT_USE_NONTYPE_TEMPLATE_ARGS
template <typename T, typename Char, size_t N,
          fmt::detail::fixed_string<Char, N> Str>
struct static_named_arg : view {
  static constexpr auto name = Str.data;

  const T& value;
  static_named_arg(const T& v) : value(v) {}
};

template <typename T, typename Char, size_t N,
          fmt::detail::fixed_string<Char, N> Str>
struct is_named_arg<static_named_arg<T, Char, N, Str>> : std::true_type {};

template <typename T, typename Char, size_t N,
          fmt::detail::fixed_string<Char, N> Str>
struct is_static_named_arg<static_named_arg<T, Char, N, Str>> : std::true_type {
};

template <typename Char, size_t N, fmt::detail::fixed_string<Char, N> Str>
struct udl_arg {
  template <typename T> auto operator=(T&& value) const {
    return static_named_arg<T, Char, N, Str>(std::forward<T>(value));
  }
};
#else
template <typename Char> struct udl_arg {
  const Char* str;

  template <typename T> auto operator=(T&& value) const -> named_arg<Char, T> {
    return {str, std::forward<T>(value)};
  }
};
#endif  // FMT_USE_NONTYPE_TEMPLATE_ARGS

template <typename Char = char> struct format_handler {
  parse_context<Char> parse_ctx;
  buffered_context<Char> ctx;

  void on_text(const Char* begin, const Char* end) {
    copy_noinline<Char>(begin, end, ctx.out());
  }

  FMT_CONSTEXPR auto on_arg_id() -> int { return parse_ctx.next_arg_id(); }
  FMT_CONSTEXPR auto on_arg_id(int id) -> int {
    parse_ctx.check_arg_id(id);
    return id;
  }
  FMT_CONSTEXPR auto on_arg_id(basic_string_view<Char> id) -> int {
    parse_ctx.check_arg_id(id);
    int arg_id = ctx.arg_id(id);
    if (arg_id < 0) report_error("argument not found");
    return arg_id;
  }

  FMT_INLINE void on_replacement_field(int id, const Char*) {
    ctx.arg(id).visit(default_arg_formatter<Char>{ctx.out()});
  }

  auto on_format_specs(int id, const Char* begin, const Char* end)
      -> const Char* {
    auto arg = ctx.arg(id);
    if (!arg) report_error("argument not found");
    // Not using a visitor for custom types gives better codegen.
    if (arg.format_custom(begin, parse_ctx, ctx)) return parse_ctx.begin();

    auto specs = dynamic_format_specs<Char>();
    begin = parse_format_specs(begin, end, specs, parse_ctx, arg.type());
    if (specs.dynamic()) {
      handle_dynamic_spec(specs.dynamic_width(), specs.width, specs.width_ref,
                          ctx);
      handle_dynamic_spec(specs.dynamic_precision(), specs.precision,
                          specs.precision_ref, ctx);
    }

    arg.visit(arg_formatter<Char>{ctx.out(), specs, ctx.locale()});
    return begin;
  }

  FMT_NORETURN void on_error(const char* message) { report_error(message); }
};

// It is used in format-inl.h and os.cc.
using format_func = void (*)(detail::buffer<char>&, int, const char*);
FMT_API void do_report_error(format_func func, int error_code,
                             const char* message) noexcept;

FMT_API void format_error_code(buffer<char>& out, int error_code,
                               string_view message) noexcept;

template <typename T, typename Char, type TYPE>
template <typename FormatContext>
FMT_CONSTEXPR auto native_formatter<T, Char, TYPE>::format(
    const T& val, FormatContext& ctx) const -> decltype(ctx.out()) {
  if (!specs_.dynamic())
    return write<Char>(ctx.out(), val, specs_, ctx.locale());
  auto specs = format_specs(specs_);
  handle_dynamic_spec(specs.dynamic_width(), specs.width, specs_.width_ref,
                      ctx);
  handle_dynamic_spec(specs.dynamic_precision(), specs.precision,
                      specs_.precision_ref, ctx);
  return write<Char>(ctx.out(), val, specs, ctx.locale());
}
}  // namespace detail

FMT_BEGIN_EXPORT

// A generic formatting context with custom output iterator and character
// (code unit) support. Char is the format string code unit type which can be
// different from OutputIt::value_type.
template <typename OutputIt, typename Char> class generic_context {
 private:
  OutputIt out_;
  basic_format_args<generic_context> args_;
  locale_ref loc_;

 public:
  using char_type = Char;
  using iterator = OutputIt;
  enum { builtin_types = FMT_BUILTIN_TYPES };

  constexpr generic_context(OutputIt out,
                            basic_format_args<generic_context> args,
                            locale_ref loc = {})
      : out_(out), args_(args), loc_(loc) {}
  generic_context(generic_context&&) = default;
  generic_context(const generic_context&) = delete;
  void operator=(const generic_context&) = delete;

  constexpr auto arg(int id) const -> basic_format_arg<generic_context> {
    return args_.get(id);
  }
  auto arg(basic_string_view<Char> name) const
      -> basic_format_arg<generic_context> {
    return args_.get(name);
  }
  constexpr auto arg_id(basic_string_view<Char> name) const -> int {
    return args_.get_id(name);
  }

  constexpr auto out() const -> iterator { return out_; }

  void advance_to(iterator it) {
    if (!detail::is_back_insert_iterator<iterator>()) out_ = it;
  }

  constexpr auto locale() const -> locale_ref { return loc_; }
};

class loc_value {
 private:
  basic_format_arg<context> value_;

 public:
  template <typename T, FMT_ENABLE_IF(!detail::is_float128<T>::value)>
  loc_value(T value) : value_(value) {}

  template <typename T, FMT_ENABLE_IF(detail::is_float128<T>::value)>
  loc_value(T) {}

  template <typename Visitor> auto visit(Visitor&& vis) -> decltype(vis(0)) {
    return value_.visit(vis);
  }
};

// A locale facet that formats values in UTF-8.
// It is parameterized on the locale to avoid the heavy <locale> include.
template <typename Locale> class format_facet : public Locale::facet {
 private:
  std::string separator_;
  std::string grouping_;
  std::string decimal_point_;

 protected:
  virtual auto do_put(appender out, loc_value val,
                      const format_specs& specs) const -> bool;

 public:
  static FMT_API typename Locale::id id;

  explicit format_facet(Locale& loc);
  explicit format_facet(string_view sep = "", std::string grouping = "\3",
                        std::string decimal_point = ".")
      : separator_(sep.data(), sep.size()),
        grouping_(grouping),
        decimal_point_(decimal_point) {}

  auto put(appender out, loc_value val, const format_specs& specs) const
      -> bool {
    return do_put(out, val, specs);
  }
};

#define FMT_FORMAT_AS(Type, Base)                                   \
  template <typename Char>                                          \
  struct formatter<Type, Char> : formatter<Base, Char> {            \
    template <typename FormatContext>                               \
    FMT_CONSTEXPR auto format(Type value, FormatContext& ctx) const \
        -> decltype(ctx.out()) {                                    \
      return formatter<Base, Char>::format(value, ctx);             \
    }                                                               \
  }

FMT_FORMAT_AS(signed char, int);
FMT_FORMAT_AS(unsigned char, unsigned);
FMT_FORMAT_AS(short, int);
FMT_FORMAT_AS(unsigned short, unsigned);
FMT_FORMAT_AS(long, detail::long_type);
FMT_FORMAT_AS(unsigned long, detail::ulong_type);
FMT_FORMAT_AS(Char*, const Char*);
FMT_FORMAT_AS(detail::std_string_view<Char>, basic_string_view<Char>);
FMT_FORMAT_AS(std::nullptr_t, const void*);
FMT_FORMAT_AS(void*, const void*);

template <typename Char, size_t N>
struct formatter<Char[N], Char> : formatter<basic_string_view<Char>, Char> {};

template <typename Char, typename Traits, typename Allocator>
class formatter<std::basic_string<Char, Traits, Allocator>, Char>
    : public formatter<basic_string_view<Char>, Char> {};

template <int N, typename Char>
struct formatter<detail::bitint<N>, Char> : formatter<long long, Char> {};
template <int N, typename Char>
struct formatter<detail::ubitint<N>, Char>
    : formatter<unsigned long long, Char> {};

template <typename Char>
struct formatter<detail::float128, Char>
    : detail::native_formatter<detail::float128, Char,
                               detail::type::float_type> {};

template <typename T, typename Char>
struct formatter<T, Char, void_t<detail::format_as_result<T>>>
    : formatter<detail::format_as_result<T>, Char> {
  template <typename FormatContext>
  FMT_CONSTEXPR auto format(const T& value, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto&& val = format_as(value);  // Make an lvalue reference for format.
    return formatter<detail::format_as_result<T>, Char>::format(val, ctx);
  }
};

/**
 * Converts `p` to `const void*` for pointer formatting.
 *
 * **Example**:
 *
 *     auto s = fmt::format("{}", fmt::ptr(p));
 */
template <typename T> auto ptr(T p) -> const void* {
  static_assert(std::is_pointer<T>::value, "fmt::ptr used with non-pointer");
  return detail::bit_cast<const void*>(p);
}

/**
 * Converts `e` to the underlying type.
 *
 * **Example**:
 *
 *     enum class color { red, green, blue };
 *     auto s = fmt::format("{}", fmt::underlying(color::red));  // s == "0"
 */
template <typename Enum>
constexpr auto underlying(Enum e) noexcept -> underlying_t<Enum> {
  return static_cast<underlying_t<Enum>>(e);
}

namespace enums {
template <typename Enum, FMT_ENABLE_IF(std::is_enum<Enum>::value)>
constexpr auto format_as(Enum e) noexcept -> underlying_t<Enum> {
  return static_cast<underlying_t<Enum>>(e);
}
}  // namespace enums

#ifdef __cpp_lib_byte
template <typename Char>
struct formatter<std::byte, Char> : formatter<unsigned, Char> {
  static auto format_as(std::byte b) -> unsigned char {
    return static_cast<unsigned char>(b);
  }
  template <typename Context>
  auto format(std::byte b, Context& ctx) const -> decltype(ctx.out()) {
    return formatter<unsigned, Char>::format(format_as(b), ctx);
  }
};
#endif

struct bytes {
  string_view data;

  inline explicit bytes(string_view s) : data(s) {}
};

template <> struct formatter<bytes> {
 private:
  detail::dynamic_format_specs<> specs_;

 public:
  FMT_CONSTEXPR auto parse(parse_context<>& ctx) -> const char* {
    return parse_format_specs(ctx.begin(), ctx.end(), specs_, ctx,
                              detail::type::string_type);
  }

  template <typename FormatContext>
  auto format(bytes b, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto specs = specs_;
    detail::handle_dynamic_spec(specs.dynamic_width(), specs.width,
                                specs.width_ref, ctx);
    detail::handle_dynamic_spec(specs.dynamic_precision(), specs.precision,
                                specs.precision_ref, ctx);
    return detail::write_bytes<char>(ctx.out(), b.data, specs);
  }
};

// group_digits_view is not derived from view because it copies the argument.
template <typename T> struct group_digits_view {
  T value;
};

/**
 * Returns a view that formats an integer value using ',' as a
 * locale-independent thousands separator.
 *
 * **Example**:
 *
 *     fmt::print("{}", fmt::group_digits(12345));
 *     // Output: "12,345"
 */
template <typename T> auto group_digits(T value) -> group_digits_view<T> {
  return {value};
}

template <typename T> struct formatter<group_digits_view<T>> : formatter<T> {
 private:
  detail::dynamic_format_specs<> specs_;

 public:
  FMT_CONSTEXPR auto parse(parse_context<>& ctx) -> const char* {
    return parse_format_specs(ctx.begin(), ctx.end(), specs_, ctx,
                              detail::type::int_type);
  }

  template <typename FormatContext>
  auto format(group_digits_view<T> view, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto specs = specs_;
    detail::handle_dynamic_spec(specs.dynamic_width(), specs.width,
                                specs.width_ref, ctx);
    detail::handle_dynamic_spec(specs.dynamic_precision(), specs.precision,
                                specs.precision_ref, ctx);
    auto arg = detail::make_write_int_arg(view.value, specs.sign());
    return detail::write_int(
        ctx.out(), static_cast<detail::uint64_or_128_t<T>>(arg.abs_value),
        arg.prefix, specs, detail::digit_grouping<char>("\3", ","));
  }
};

template <typename T, typename Char> struct nested_view {
  const formatter<T, Char>* fmt;
  const T* value;
};

template <typename T, typename Char>
struct formatter<nested_view<T, Char>, Char> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return ctx.begin();
  }
  template <typename FormatContext>
  auto format(nested_view<T, Char> view, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return view.fmt->format(*view.value, ctx);
  }
};

template <typename T, typename Char = char> struct nested_formatter {
 private:
  basic_specs specs_;
  int width_;
  formatter<T, Char> formatter_;

 public:
  constexpr nested_formatter() : width_(0) {}

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    if (it == end) return it;
    auto specs = format_specs();
    it = detail::parse_align(it, end, specs);
    specs_ = specs;
    Char c = *it;
    auto width_ref = detail::arg_ref<Char>();
    if ((c >= '0' && c <= '9') || c == '{') {
      it = detail::parse_width(it, end, specs, width_ref, ctx);
      width_ = specs.width;
    }
    ctx.advance_to(it);
    return formatter_.parse(ctx);
  }

  template <typename FormatContext, typename F>
  auto write_padded(FormatContext& ctx, F write) const -> decltype(ctx.out()) {
    if (width_ == 0) return write(ctx.out());
    auto buf = basic_memory_buffer<Char>();
    write(basic_appender<Char>(buf));
    auto specs = format_specs();
    specs.width = width_;
    specs.copy_fill_from(specs_);
    specs.set_align(specs_.align());
    return detail::write<Char>(
        ctx.out(), basic_string_view<Char>(buf.data(), buf.size()), specs);
  }

  auto nested(const T& value) const -> nested_view<T, Char> {
    return nested_view<T, Char>{&formatter_, &value};
  }
};

inline namespace literals {
#if FMT_USE_NONTYPE_TEMPLATE_ARGS
template <detail::fixed_string S> constexpr auto operator""_a() {
  using char_t = remove_cvref_t<decltype(*S.data)>;
  return detail::udl_arg<char_t, sizeof(S.data) / sizeof(char_t), S>();
}
#else
/**
 * User-defined literal equivalent of `fmt::arg`.
 *
 * **Example**:
 *
 *     using namespace fmt::literals;
 *     fmt::print("The answer is {answer}.", "answer"_a=42);
 */
constexpr auto operator""_a(const char* s, size_t) -> detail::udl_arg<char> {
  return {s};
}
#endif  // FMT_USE_NONTYPE_TEMPLATE_ARGS
}  // namespace literals

/// A fast integer formatter.
class format_int {
 private:
  // Buffer should be large enough to hold all digits (digits10 + 1),
  // a sign and a null character.
  enum { buffer_size = std::numeric_limits<unsigned long long>::digits10 + 3 };
  mutable char buffer_[buffer_size];
  char* str_;

  template <typename UInt>
  FMT_CONSTEXPR20 auto format_unsigned(UInt value) -> char* {
    auto n = static_cast<detail::uint32_or_64_or_128_t<UInt>>(value);
    return detail::do_format_decimal(buffer_, n, buffer_size - 1);
  }

  template <typename Int>
  FMT_CONSTEXPR20 auto format_signed(Int value) -> char* {
    auto abs_value = static_cast<detail::uint32_or_64_or_128_t<Int>>(value);
    bool negative = value < 0;
    if (negative) abs_value = 0 - abs_value;
    auto begin = format_unsigned(abs_value);
    if (negative) *--begin = '-';
    return begin;
  }

 public:
  FMT_CONSTEXPR20 explicit format_int(int value) : str_(format_signed(value)) {}
  FMT_CONSTEXPR20 explicit format_int(long value)
      : str_(format_signed(value)) {}
  FMT_CONSTEXPR20 explicit format_int(long long value)
      : str_(format_signed(value)) {}
  FMT_CONSTEXPR20 explicit format_int(unsigned value)
      : str_(format_unsigned(value)) {}
  FMT_CONSTEXPR20 explicit format_int(unsigned long value)
      : str_(format_unsigned(value)) {}
  FMT_CONSTEXPR20 explicit format_int(unsigned long long value)
      : str_(format_unsigned(value)) {}

  /// Returns the number of characters written to the output buffer.
  FMT_CONSTEXPR20 auto size() const -> size_t {
    return detail::to_unsigned(buffer_ - str_ + buffer_size - 1);
  }

  /// Returns a pointer to the output buffer content. No terminating null
  /// character is appended.
  FMT_CONSTEXPR20 auto data() const -> const char* { return str_; }

  /// Returns a pointer to the output buffer content with terminating null
  /// character appended.
  FMT_CONSTEXPR20 auto c_str() const -> const char* {
    buffer_[buffer_size - 1] = '\0';
    return str_;
  }

  /// Returns the content of the output buffer as an `std::string`.
  inline auto str() const -> std::string { return {str_, size()}; }
};

#if FMT_CLANG_ANALYZER
#  define FMT_STRING_IMPL(s, base) s
#else
#  define FMT_STRING_IMPL(s, base)                                           \
    [] {                                                                     \
      /* Use the hidden visibility as a workaround for a GCC bug (#1973). */ \
      /* Use a macro-like name to avoid shadowing warnings. */               \
      struct FMT_VISIBILITY("hidden") FMT_COMPILE_STRING : base {            \
        using char_type = fmt::remove_cvref_t<decltype(s[0])>;               \
        constexpr explicit operator fmt::basic_string_view<char_type>()      \
            const {                                                          \
          return fmt::detail::compile_string_to_view<char_type>(s);          \
        }                                                                    \
      };                                                                     \
      using FMT_STRING_VIEW =                                                \
          fmt::basic_string_view<typename FMT_COMPILE_STRING::char_type>;    \
      fmt::detail::ignore_unused(FMT_STRING_VIEW(FMT_COMPILE_STRING()));     \
      return FMT_COMPILE_STRING();                                           \
    }()
#endif  // FMT_CLANG_ANALYZER

/**
 * Constructs a legacy compile-time format string from a string literal `s`.
 *
 * **Example**:
 *
 *     // A compile-time error because 'd' is an invalid specifier for strings.
 *     std::string s = fmt::format(FMT_STRING("{:d}"), "foo");
 */
#define FMT_STRING(s) FMT_STRING_IMPL(s, fmt::detail::compile_string)

FMT_API auto vsystem_error(int error_code, string_view fmt, format_args args)
    -> std::system_error;

/**
 * Constructs `std::system_error` with a message formatted with
 * `fmt::format(fmt, args...)`.
 * `error_code` is a system error code as given by `errno`.
 *
 * **Example**:
 *
 *     // This throws std::system_error with the description
 *     //   cannot open file 'madeup': No such file or directory
 *     // or similar (system message may vary).
 *     const char* filename = "madeup";
 *     FILE* file = fopen(filename, "r");
 *     if (!file)
 *       throw fmt::system_error(errno, "cannot open file '{}'", filename);
 */
template <typename... T>
auto system_error(int error_code, format_string<T...> fmt, T&&... args)
    -> std::system_error {
  return vsystem_error(error_code, fmt.str, vargs<T...>{{args...}});
}

/**
 * Formats an error message for an error returned by an operating system or a
 * language runtime, for example a file opening error, and writes it to `out`.
 * The format is the same as the one used by `std::system_error(ec, message)`
 * where `ec` is `std::error_code(error_code, std::generic_category())`.
 * It is implementation-defined but normally looks like:
 *
 *     <message>: <system-message>
 *
 * where `<message>` is the passed message and `<system-message>` is the system
 * message corresponding to the error code.
 * `error_code` is a system error code as given by `errno`.
 */
FMT_API void format_system_error(detail::buffer<char>& out, int error_code,
                                 const char* message) noexcept;

// Reports a system error without throwing an exception.
// Can be used to report errors from destructors.
FMT_API void report_system_error(int error_code, const char* message) noexcept;

inline auto vformat(locale_ref loc, string_view fmt, format_args args)
    -> std::string {
  auto buf = memory_buffer();
  detail::vformat_to(buf, fmt, args, loc);
  return {buf.data(), buf.size()};
}

template <typename... T>
FMT_INLINE auto format(locale_ref loc, format_string<T...> fmt, T&&... args)
    -> std::string {
  return vformat(loc, fmt.str, vargs<T...>{{args...}});
}

template <typename OutputIt,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, char>::value)>
auto vformat_to(OutputIt out, locale_ref loc, string_view fmt, format_args args)
    -> OutputIt {
  auto&& buf = detail::get_buffer<char>(out);
  detail::vformat_to(buf, fmt, args, loc);
  return detail::get_iterator(buf, out);
}

template <typename OutputIt, typename... T,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, char>::value)>
FMT_INLINE auto format_to(OutputIt out, locale_ref loc, format_string<T...> fmt,
                          T&&... args) -> OutputIt {
  return fmt::vformat_to(out, loc, fmt.str, vargs<T...>{{args...}});
}

template <typename... T>
FMT_NODISCARD FMT_INLINE auto formatted_size(locale_ref loc,
                                             format_string<T...> fmt,
                                             T&&... args) -> size_t {
  auto buf = detail::counting_buffer<>();
  detail::vformat_to(buf, fmt.str, vargs<T...>{{args...}}, loc);
  return buf.count();
}

FMT_API auto vformat(string_view fmt, format_args args) -> std::string;

/**
 * Formats `args` according to specifications in `fmt` and returns the result
 * as a string.
 *
 * **Example**:
 *
 *     #include <fmt/format.h>
 *     std::string message = fmt::format("The answer is {}.", 42);
 */
template <typename... T>
FMT_NODISCARD FMT_INLINE auto format(format_string<T...> fmt, T&&... args)
    -> std::string {
  return vformat(fmt.str, vargs<T...>{{args...}});
}

/**
 * Converts `value` to `std::string` using the default format for type `T`.
 *
 * **Example**:
 *
 *     std::string answer = fmt::to_string(42);
 */
template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
FMT_NODISCARD FMT_CONSTEXPR_STRING auto to_string(T value) -> std::string {
  // The buffer should be large enough to store the number including the sign
  // or "false" for bool.
  char buffer[max_of(detail::digits10<T>() + 2, 5)];
  return {buffer, detail::write<char>(buffer, value)};
}

template <typename T, FMT_ENABLE_IF(detail::use_format_as<T>::value)>
FMT_NODISCARD FMT_CONSTEXPR_STRING auto to_string(const T& value)
    -> std::string {
  return to_string(format_as(value));
}

template <typename T, FMT_ENABLE_IF(!std::is_integral<T>::value &&
                                    !detail::use_format_as<T>::value)>
FMT_NODISCARD FMT_CONSTEXPR_STRING auto to_string(const T& value)
    -> std::string {
  auto buffer = memory_buffer();
  detail::write<char>(appender(buffer), value);
  return {buffer.data(), buffer.size()};
}

FMT_END_EXPORT
FMT_END_NAMESPACE

#ifdef FMT_HEADER_ONLY
#  define FMT_FUNC inline
#  include "format-inl.h"
#endif

// Restore _LIBCPP_REMOVE_TRANSITIVE_INCLUDES.
#ifdef FMT_REMOVE_TRANSITIVE_INCLUDES
#  undef _LIBCPP_REMOVE_TRANSITIVE_INCLUDES
#endif

#endif  // FMT_FORMAT_H_
