// Formatting library for C++ - chrono support
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_CHRONO_H_
#define FMT_CHRONO_H_

#ifndef FMT_MODULE
#  include <algorithm>
#  include <chrono>
#  include <cmath>    // std::isfinite
#  include <cstring>  // std::memcpy
#  include <ctime>
#  include <iterator>
#  include <locale>
#  include <ostream>
#  include <type_traits>
#endif

#include "format.h"

FMT_BEGIN_NAMESPACE

// Enable safe chrono durations, unless explicitly disabled.
#ifndef FMT_SAFE_DURATION_CAST
#  define FMT_SAFE_DURATION_CAST 1
#endif
#if FMT_SAFE_DURATION_CAST

// For conversion between std::chrono::durations without undefined
// behaviour or erroneous results.
// This is a stripped down version of duration_cast, for inclusion in fmt.
// See https://github.com/pauldreik/safe_duration_cast
//
// Copyright Paul Dreik 2019
namespace safe_duration_cast {

// DEPRECATED!
template <typename To, typename From,
          FMT_ENABLE_IF(!std::is_same<From, To>::value &&
                        std::numeric_limits<From>::is_signed ==
                            std::numeric_limits<To>::is_signed)>
FMT_CONSTEXPR auto lossless_integral_conversion(const From from, int& ec)
    -> To {
  ec = 0;
  using F = std::numeric_limits<From>;
  using T = std::numeric_limits<To>;
  static_assert(F::is_integer, "From must be integral");
  static_assert(T::is_integer, "To must be integral");

  // A and B are both signed, or both unsigned.
  if (detail::const_check(F::digits <= T::digits)) {
    // From fits in To without any problem.
  } else {
    // From does not always fit in To, resort to a dynamic check.
    if (from < (T::min)() || from > (T::max)()) {
      // outside range.
      ec = 1;
      return {};
    }
  }
  return static_cast<To>(from);
}

/// Converts From to To, without loss. If the dynamic value of from
/// can't be converted to To without loss, ec is set.
template <typename To, typename From,
          FMT_ENABLE_IF(!std::is_same<From, To>::value &&
                        std::numeric_limits<From>::is_signed !=
                            std::numeric_limits<To>::is_signed)>
FMT_CONSTEXPR auto lossless_integral_conversion(const From from, int& ec)
    -> To {
  ec = 0;
  using F = std::numeric_limits<From>;
  using T = std::numeric_limits<To>;
  static_assert(F::is_integer, "From must be integral");
  static_assert(T::is_integer, "To must be integral");

  if (detail::const_check(F::is_signed && !T::is_signed)) {
    // From may be negative, not allowed!
    if (fmt::detail::is_negative(from)) {
      ec = 1;
      return {};
    }
    // From is positive. Can it always fit in To?
    if (detail::const_check(F::digits > T::digits) &&
        from > static_cast<From>(detail::max_value<To>())) {
      ec = 1;
      return {};
    }
  }

  if (detail::const_check(!F::is_signed && T::is_signed &&
                          F::digits >= T::digits) &&
      from > static_cast<From>(detail::max_value<To>())) {
    ec = 1;
    return {};
  }
  return static_cast<To>(from);  // Lossless conversion.
}

template <typename To, typename From,
          FMT_ENABLE_IF(std::is_same<From, To>::value)>
FMT_CONSTEXPR auto lossless_integral_conversion(const From from, int& ec)
    -> To {
  ec = 0;
  return from;
}  // function

// clang-format off
/**
 * converts From to To if possible, otherwise ec is set.
 *
 * input                            |    output
 * ---------------------------------|---------------
 * NaN                              | NaN
 * Inf                              | Inf
 * normal, fits in output           | converted (possibly lossy)
 * normal, does not fit in output   | ec is set
 * subnormal                        | best effort
 * -Inf                             | -Inf
 */
// clang-format on
template <typename To, typename From,
          FMT_ENABLE_IF(!std::is_same<From, To>::value)>
FMT_CONSTEXPR auto safe_float_conversion(const From from, int& ec) -> To {
  ec = 0;
  using T = std::numeric_limits<To>;
  static_assert(std::is_floating_point<From>::value, "From must be floating");
  static_assert(std::is_floating_point<To>::value, "To must be floating");

  // catch the only happy case
  if (std::isfinite(from)) {
    if (from >= T::lowest() && from <= (T::max)()) {
      return static_cast<To>(from);
    }
    // not within range.
    ec = 1;
    return {};
  }

  // nan and inf will be preserved
  return static_cast<To>(from);
}  // function

template <typename To, typename From,
          FMT_ENABLE_IF(std::is_same<From, To>::value)>
FMT_CONSTEXPR auto safe_float_conversion(const From from, int& ec) -> To {
  ec = 0;
  static_assert(std::is_floating_point<From>::value, "From must be floating");
  return from;
}

/// Safe duration_cast between floating point durations
template <typename To, typename FromRep, typename FromPeriod,
          FMT_ENABLE_IF(std::is_floating_point<FromRep>::value),
          FMT_ENABLE_IF(std::is_floating_point<typename To::rep>::value)>
auto safe_duration_cast(std::chrono::duration<FromRep, FromPeriod> from,
                        int& ec) -> To {
  using From = std::chrono::duration<FromRep, FromPeriod>;
  ec = 0;

  // the basic idea is that we need to convert from count() in the from type
  // to count() in the To type, by multiplying it with this:
  struct Factor
      : std::ratio_divide<typename From::period, typename To::period> {};

  static_assert(Factor::num > 0, "num must be positive");
  static_assert(Factor::den > 0, "den must be positive");

  // the conversion is like this: multiply from.count() with Factor::num
  // /Factor::den and convert it to To::rep, all this without
  // overflow/underflow. let's start by finding a suitable type that can hold
  // both To, From and Factor::num
  using IntermediateRep =
      typename std::common_type<typename From::rep, typename To::rep,
                                decltype(Factor::num)>::type;

  // force conversion of From::rep -> IntermediateRep to be safe,
  // even if it will never happen be narrowing in this context.
  IntermediateRep count =
      safe_float_conversion<IntermediateRep>(from.count(), ec);
  if (ec) {
    return {};
  }

  // multiply with Factor::num without overflow or underflow
  if (detail::const_check(Factor::num != 1)) {
    constexpr auto max1 = detail::max_value<IntermediateRep>() /
                          static_cast<IntermediateRep>(Factor::num);
    if (count > max1) {
      ec = 1;
      return {};
    }
    constexpr auto min1 = std::numeric_limits<IntermediateRep>::lowest() /
                          static_cast<IntermediateRep>(Factor::num);
    if (count < min1) {
      ec = 1;
      return {};
    }
    count *= static_cast<IntermediateRep>(Factor::num);
  }

  // this can't go wrong, right? den>0 is checked earlier.
  if (detail::const_check(Factor::den != 1)) {
    using common_t = typename std::common_type<IntermediateRep, intmax_t>::type;
    count /= static_cast<common_t>(Factor::den);
  }

  // convert to the to type, safely
  using ToRep = typename To::rep;

  const ToRep tocount = safe_float_conversion<ToRep>(count, ec);
  if (ec) {
    return {};
  }
  return To{tocount};
}
}  // namespace safe_duration_cast
#endif

namespace detail {

// Check if std::chrono::utc_time is available.
#ifdef FMT_USE_UTC_TIME
// Use the provided definition.
#elif defined(__cpp_lib_chrono)
#  define FMT_USE_UTC_TIME (__cpp_lib_chrono >= 201907L)
#else
#  define FMT_USE_UTC_TIME 0
#endif
#if FMT_USE_UTC_TIME
using utc_clock = std::chrono::utc_clock;
#else
struct utc_clock {
  template <typename T> void to_sys(T);
};
#endif

// Check if std::chrono::local_time is available.
#ifdef FMT_USE_LOCAL_TIME
// Use the provided definition.
#elif defined(__cpp_lib_chrono)
#  define FMT_USE_LOCAL_TIME (__cpp_lib_chrono >= 201907L)
#else
#  define FMT_USE_LOCAL_TIME 0
#endif
#if FMT_USE_LOCAL_TIME
using local_t = std::chrono::local_t;
#else
struct local_t {};
#endif

}  // namespace detail

template <typename Duration>
using sys_time = std::chrono::time_point<std::chrono::system_clock, Duration>;

template <typename Duration>
using utc_time = std::chrono::time_point<detail::utc_clock, Duration>;

template <class Duration>
using local_time = std::chrono::time_point<detail::local_t, Duration>;

namespace detail {

// Prevents expansion of a preceding token as a function-style macro.
// Usage: f FMT_NOMACRO()
#define FMT_NOMACRO

template <typename T = void> struct null {};
inline auto gmtime_r(...) -> null<> { return null<>(); }
inline auto gmtime_s(...) -> null<> { return null<>(); }

// It is defined here and not in ostream.h because the latter has expensive
// includes.
template <typename StreamBuf> class formatbuf : public StreamBuf {
 private:
  using char_type = typename StreamBuf::char_type;
  using streamsize = decltype(std::declval<StreamBuf>().sputn(nullptr, 0));
  using int_type = typename StreamBuf::int_type;
  using traits_type = typename StreamBuf::traits_type;

  buffer<char_type>& buffer_;

 public:
  explicit formatbuf(buffer<char_type>& buf) : buffer_(buf) {}

 protected:
  // The put area is always empty. This makes the implementation simpler and has
  // the advantage that the streambuf and the buffer are always in sync and
  // sputc never writes into uninitialized memory. A disadvantage is that each
  // call to sputc always results in a (virtual) call to overflow. There is no
  // disadvantage here for sputn since this always results in a call to xsputn.

  auto overflow(int_type ch) -> int_type override {
    if (!traits_type::eq_int_type(ch, traits_type::eof()))
      buffer_.push_back(static_cast<char_type>(ch));
    return ch;
  }

  auto xsputn(const char_type* s, streamsize count) -> streamsize override {
    buffer_.append(s, s + count);
    return count;
  }
};

inline auto get_classic_locale() -> const std::locale& {
  static const auto& locale = std::locale::classic();
  return locale;
}

template <typename CodeUnit> struct codecvt_result {
  static constexpr size_t max_size = 32;
  CodeUnit buf[max_size];
  CodeUnit* end;
};

template <typename CodeUnit>
void write_codecvt(codecvt_result<CodeUnit>& out, string_view in,
                   const std::locale& loc) {
  FMT_PRAGMA_CLANG(diagnostic push)
  FMT_PRAGMA_CLANG(diagnostic ignored "-Wdeprecated")
  auto& f = std::use_facet<std::codecvt<CodeUnit, char, std::mbstate_t>>(loc);
  FMT_PRAGMA_CLANG(diagnostic pop)
  auto mb = std::mbstate_t();
  const char* from_next = nullptr;
  auto result = f.in(mb, in.begin(), in.end(), from_next, std::begin(out.buf),
                     std::end(out.buf), out.end);
  if (result != std::codecvt_base::ok)
    FMT_THROW(format_error("failed to format time"));
}

template <typename OutputIt>
auto write_encoded_tm_str(OutputIt out, string_view in, const std::locale& loc)
    -> OutputIt {
  if (const_check(detail::use_utf8) && loc != get_classic_locale()) {
    // char16_t and char32_t codecvts are broken in MSVC (linkage errors) and
    // gcc-4.
#if FMT_MSC_VERSION != 0 ||  \
    (defined(__GLIBCXX__) && \
     (!defined(_GLIBCXX_USE_DUAL_ABI) || _GLIBCXX_USE_DUAL_ABI == 0))
    // The _GLIBCXX_USE_DUAL_ABI macro is always defined in libstdc++ from gcc-5
    // and newer.
    using code_unit = wchar_t;
#else
    using code_unit = char32_t;
#endif

    using unit_t = codecvt_result<code_unit>;
    unit_t unit;
    write_codecvt(unit, in, loc);
    // In UTF-8 is used one to four one-byte code units.
    auto u =
        to_utf8<code_unit, basic_memory_buffer<char, unit_t::max_size * 4>>();
    if (!u.convert({unit.buf, to_unsigned(unit.end - unit.buf)}))
      FMT_THROW(format_error("failed to format time"));
    return copy<char>(u.c_str(), u.c_str() + u.size(), out);
  }
  return copy<char>(in.data(), in.data() + in.size(), out);
}

template <typename Char, typename OutputIt,
          FMT_ENABLE_IF(!std::is_same<Char, char>::value)>
auto write_tm_str(OutputIt out, string_view sv, const std::locale& loc)
    -> OutputIt {
  codecvt_result<Char> unit;
  write_codecvt(unit, sv, loc);
  return copy<Char>(unit.buf, unit.end, out);
}

template <typename Char, typename OutputIt,
          FMT_ENABLE_IF(std::is_same<Char, char>::value)>
auto write_tm_str(OutputIt out, string_view sv, const std::locale& loc)
    -> OutputIt {
  return write_encoded_tm_str(out, sv, loc);
}

template <typename Char>
inline void do_write(buffer<Char>& buf, const std::tm& time,
                     const std::locale& loc, char format, char modifier) {
  auto&& format_buf = formatbuf<std::basic_streambuf<Char>>(buf);
  auto&& os = std::basic_ostream<Char>(&format_buf);
  os.imbue(loc);
  const auto& facet = std::use_facet<std::time_put<Char>>(loc);
  auto end = facet.put(os, os, Char(' '), &time, format, modifier);
  if (end.failed()) FMT_THROW(format_error("failed to format time"));
}

template <typename Char, typename OutputIt,
          FMT_ENABLE_IF(!std::is_same<Char, char>::value)>
auto write(OutputIt out, const std::tm& time, const std::locale& loc,
           char format, char modifier = 0) -> OutputIt {
  auto&& buf = get_buffer<Char>(out);
  do_write<Char>(buf, time, loc, format, modifier);
  return get_iterator(buf, out);
}

template <typename Char, typename OutputIt,
          FMT_ENABLE_IF(std::is_same<Char, char>::value)>
auto write(OutputIt out, const std::tm& time, const std::locale& loc,
           char format, char modifier = 0) -> OutputIt {
  auto&& buf = basic_memory_buffer<Char>();
  do_write<char>(buf, time, loc, format, modifier);
  return write_encoded_tm_str(out, string_view(buf.data(), buf.size()), loc);
}

template <typename T, typename U>
using is_similar_arithmetic_type =
    bool_constant<(std::is_integral<T>::value && std::is_integral<U>::value) ||
                  (std::is_floating_point<T>::value &&
                   std::is_floating_point<U>::value)>;

FMT_NORETURN inline void throw_duration_error() {
  FMT_THROW(format_error("cannot format duration"));
}

// Cast one integral duration to another with an overflow check.
template <typename To, typename FromRep, typename FromPeriod,
          FMT_ENABLE_IF(std::is_integral<FromRep>::value&&
                            std::is_integral<typename To::rep>::value)>
auto duration_cast(std::chrono::duration<FromRep, FromPeriod> from) -> To {
#if !FMT_SAFE_DURATION_CAST
  return std::chrono::duration_cast<To>(from);
#else
  // The conversion factor: to.count() == factor * from.count().
  using factor = std::ratio_divide<FromPeriod, typename To::period>;

  using common_rep = typename std::common_type<FromRep, typename To::rep,
                                               decltype(factor::num)>::type;
  common_rep count = from.count();  // This conversion is lossless.

  // Multiply from.count() by factor and check for overflow.
  if (const_check(factor::num != 1)) {
    if (count > max_value<common_rep>() / factor::num) throw_duration_error();
    const auto min = (std::numeric_limits<common_rep>::min)() / factor::num;
    if (const_check(!std::is_unsigned<common_rep>::value) && count < min)
      throw_duration_error();
    count *= factor::num;
  }
  if (const_check(factor::den != 1)) count /= factor::den;
  int ec = 0;
  auto to =
      To(safe_duration_cast::lossless_integral_conversion<typename To::rep>(
          count, ec));
  if (ec) throw_duration_error();
  return to;
#endif
}

template <typename To, typename FromRep, typename FromPeriod,
          FMT_ENABLE_IF(std::is_floating_point<FromRep>::value&&
                            std::is_floating_point<typename To::rep>::value)>
auto duration_cast(std::chrono::duration<FromRep, FromPeriod> from) -> To {
#if FMT_SAFE_DURATION_CAST
  // Preserve infinity and NaN.
  if (!isfinite(from.count())) return static_cast<To>(from.count());
  // Throwing version of safe_duration_cast is only available for
  // integer to integer or float to float casts.
  int ec;
  To to = safe_duration_cast::safe_duration_cast<To>(from, ec);
  if (ec) throw_duration_error();
  return to;
#else
  // Standard duration cast, may overflow.
  return std::chrono::duration_cast<To>(from);
#endif
}

template <typename To, typename FromRep, typename FromPeriod,
          FMT_ENABLE_IF(
              !is_similar_arithmetic_type<FromRep, typename To::rep>::value)>
auto duration_cast(std::chrono::duration<FromRep, FromPeriod> from) -> To {
  // Mixed integer <-> float cast is not supported by safe duration_cast.
  return std::chrono::duration_cast<To>(from);
}

template <typename Duration>
auto to_time_t(sys_time<Duration> time_point) -> std::time_t {
  // Cannot use std::chrono::system_clock::to_time_t since this would first
  // require a cast to std::chrono::system_clock::time_point, which could
  // overflow.
  return detail::duration_cast<std::chrono::duration<std::time_t>>(
             time_point.time_since_epoch())
      .count();
}

}  // namespace detail

FMT_BEGIN_EXPORT

/**
 * Converts given time since epoch as `std::time_t` value into calendar time,
 * expressed in Coordinated Universal Time (UTC). Unlike `std::gmtime`, this
 * function is thread-safe on most platforms.
 */
inline auto gmtime(std::time_t time) -> std::tm {
  struct dispatcher {
    std::time_t time_;
    std::tm tm_;

    inline dispatcher(std::time_t t) : time_(t) {}

    inline auto run() -> bool {
      using namespace fmt::detail;
      return handle(gmtime_r(&time_, &tm_));
    }

    inline auto handle(std::tm* tm) -> bool { return tm != nullptr; }

    inline auto handle(detail::null<>) -> bool {
      using namespace fmt::detail;
      return fallback(gmtime_s(&tm_, &time_));
    }

    inline auto fallback(int res) -> bool { return res == 0; }

#if !FMT_MSC_VERSION
    inline auto fallback(detail::null<>) -> bool {
      std::tm* tm = std::gmtime(&time_);
      if (tm) tm_ = *tm;
      return tm != nullptr;
    }
#endif
  };
  auto gt = dispatcher(time);
  // Too big time values may be unsupported.
  if (!gt.run()) FMT_THROW(format_error("time_t value out of range"));
  return gt.tm_;
}

template <typename Duration>
inline auto gmtime(sys_time<Duration> time_point) -> std::tm {
  return gmtime(detail::to_time_t(time_point));
}

namespace detail {

// Writes two-digit numbers a, b and c separated by sep to buf.
// The method by Pavel Novikov based on
// https://johnnylee-sde.github.io/Fast-unsigned-integer-to-time-string/.
inline void write_digit2_separated(char* buf, unsigned a, unsigned b,
                                   unsigned c, char sep) {
  unsigned long long digits =
      a | (b << 24) | (static_cast<unsigned long long>(c) << 48);
  // Convert each value to BCD.
  // We have x = a * 10 + b and we want to convert it to BCD y = a * 16 + b.
  // The difference is
  //   y - x = a * 6
  // a can be found from x:
  //   a = floor(x / 10)
  // then
  //   y = x + a * 6 = x + floor(x / 10) * 6
  // floor(x / 10) is (x * 205) >> 11 (needs 16 bits).
  digits += (((digits * 205) >> 11) & 0x000f00000f00000f) * 6;
  // Put low nibbles to high bytes and high nibbles to low bytes.
  digits = ((digits & 0x00f00000f00000f0) >> 4) |
           ((digits & 0x000f00000f00000f) << 8);
  auto usep = static_cast<unsigned long long>(sep);
  // Add ASCII '0' to each digit byte and insert separators.
  digits |= 0x3030003030003030 | (usep << 16) | (usep << 40);

  constexpr size_t len = 8;
  if (const_check(is_big_endian())) {
    char tmp[len];
    std::memcpy(tmp, &digits, len);
    std::reverse_copy(tmp, tmp + len, buf);
  } else {
    std::memcpy(buf, &digits, len);
  }
}

template <typename Period>
FMT_CONSTEXPR inline auto get_units() -> const char* {
  if (std::is_same<Period, std::atto>::value) return "as";
  if (std::is_same<Period, std::femto>::value) return "fs";
  if (std::is_same<Period, std::pico>::value) return "ps";
  if (std::is_same<Period, std::nano>::value) return "ns";
  if (std::is_same<Period, std::micro>::value)
    return detail::use_utf8 ? "µs" : "us";
  if (std::is_same<Period, std::milli>::value) return "ms";
  if (std::is_same<Period, std::centi>::value) return "cs";
  if (std::is_same<Period, std::deci>::value) return "ds";
  if (std::is_same<Period, std::ratio<1>>::value) return "s";
  if (std::is_same<Period, std::deca>::value) return "das";
  if (std::is_same<Period, std::hecto>::value) return "hs";
  if (std::is_same<Period, std::kilo>::value) return "ks";
  if (std::is_same<Period, std::mega>::value) return "Ms";
  if (std::is_same<Period, std::giga>::value) return "Gs";
  if (std::is_same<Period, std::tera>::value) return "Ts";
  if (std::is_same<Period, std::peta>::value) return "Ps";
  if (std::is_same<Period, std::exa>::value) return "Es";
  if (std::is_same<Period, std::ratio<60>>::value) return "min";
  if (std::is_same<Period, std::ratio<3600>>::value) return "h";
  if (std::is_same<Period, std::ratio<86400>>::value) return "d";
  return nullptr;
}

enum class numeric_system {
  standard,
  // Alternative numeric system, e.g. 十二 instead of 12 in ja_JP locale.
  alternative
};

// Glibc extensions for formatting numeric values.
enum class pad_type {
  // Pad a numeric result string with zeros (the default).
  zero,
  // Do not pad a numeric result string.
  none,
  // Pad a numeric result string with spaces.
  space,
};

template <typename OutputIt>
auto write_padding(OutputIt out, pad_type pad, int width) -> OutputIt {
  if (pad == pad_type::none) return out;
  return detail::fill_n(out, width, pad == pad_type::space ? ' ' : '0');
}

template <typename OutputIt>
auto write_padding(OutputIt out, pad_type pad) -> OutputIt {
  if (pad != pad_type::none) *out++ = pad == pad_type::space ? ' ' : '0';
  return out;
}

// Parses a put_time-like format string and invokes handler actions.
template <typename Char, typename Handler>
FMT_CONSTEXPR auto parse_chrono_format(const Char* begin, const Char* end,
                                       Handler&& handler) -> const Char* {
  if (begin == end || *begin == '}') return begin;
  if (*begin != '%') FMT_THROW(format_error("invalid format"));
  auto ptr = begin;
  while (ptr != end) {
    pad_type pad = pad_type::zero;
    auto c = *ptr;
    if (c == '}') break;
    if (c != '%') {
      ++ptr;
      continue;
    }
    if (begin != ptr) handler.on_text(begin, ptr);
    ++ptr;  // consume '%'
    if (ptr == end) FMT_THROW(format_error("invalid format"));
    c = *ptr;
    switch (c) {
    case '_':
      pad = pad_type::space;
      ++ptr;
      break;
    case '-':
      pad = pad_type::none;
      ++ptr;
      break;
    }
    if (ptr == end) FMT_THROW(format_error("invalid format"));
    c = *ptr++;
    switch (c) {
    case '%': handler.on_text(ptr - 1, ptr); break;
    case 'n': {
      const Char newline[] = {'\n'};
      handler.on_text(newline, newline + 1);
      break;
    }
    case 't': {
      const Char tab[] = {'\t'};
      handler.on_text(tab, tab + 1);
      break;
    }
    // Year:
    case 'Y': handler.on_year(numeric_system::standard, pad); break;
    case 'y': handler.on_short_year(numeric_system::standard); break;
    case 'C': handler.on_century(numeric_system::standard); break;
    case 'G': handler.on_iso_week_based_year(); break;
    case 'g': handler.on_iso_week_based_short_year(); break;
    // Day of the week:
    case 'a': handler.on_abbr_weekday(); break;
    case 'A': handler.on_full_weekday(); break;
    case 'w': handler.on_dec0_weekday(numeric_system::standard); break;
    case 'u': handler.on_dec1_weekday(numeric_system::standard); break;
    // Month:
    case 'b':
    case 'h': handler.on_abbr_month(); break;
    case 'B': handler.on_full_month(); break;
    case 'm': handler.on_dec_month(numeric_system::standard, pad); break;
    // Day of the year/month:
    case 'U':
      handler.on_dec0_week_of_year(numeric_system::standard, pad);
      break;
    case 'W':
      handler.on_dec1_week_of_year(numeric_system::standard, pad);
      break;
    case 'V': handler.on_iso_week_of_year(numeric_system::standard, pad); break;
    case 'j': handler.on_day_of_year(pad); break;
    case 'd': handler.on_day_of_month(numeric_system::standard, pad); break;
    case 'e':
      handler.on_day_of_month(numeric_system::standard, pad_type::space);
      break;
    // Hour, minute, second:
    case 'H': handler.on_24_hour(numeric_system::standard, pad); break;
    case 'I': handler.on_12_hour(numeric_system::standard, pad); break;
    case 'M': handler.on_minute(numeric_system::standard, pad); break;
    case 'S': handler.on_second(numeric_system::standard, pad); break;
    // Other:
    case 'c': handler.on_datetime(numeric_system::standard); break;
    case 'x': handler.on_loc_date(numeric_system::standard); break;
    case 'X': handler.on_loc_time(numeric_system::standard); break;
    case 'D': handler.on_us_date(); break;
    case 'F': handler.on_iso_date(); break;
    case 'r': handler.on_12_hour_time(); break;
    case 'R': handler.on_24_hour_time(); break;
    case 'T': handler.on_iso_time(); break;
    case 'p': handler.on_am_pm(); break;
    case 'Q': handler.on_duration_value(); break;
    case 'q': handler.on_duration_unit(); break;
    case 'z': handler.on_utc_offset(numeric_system::standard); break;
    case 'Z': handler.on_tz_name(); break;
    // Alternative representation:
    case 'E': {
      if (ptr == end) FMT_THROW(format_error("invalid format"));
      c = *ptr++;
      switch (c) {
      case 'Y': handler.on_year(numeric_system::alternative, pad); break;
      case 'y': handler.on_offset_year(); break;
      case 'C': handler.on_century(numeric_system::alternative); break;
      case 'c': handler.on_datetime(numeric_system::alternative); break;
      case 'x': handler.on_loc_date(numeric_system::alternative); break;
      case 'X': handler.on_loc_time(numeric_system::alternative); break;
      case 'z': handler.on_utc_offset(numeric_system::alternative); break;
      default:  FMT_THROW(format_error("invalid format"));
      }
      break;
    }
    case 'O':
      if (ptr == end) FMT_THROW(format_error("invalid format"));
      c = *ptr++;
      switch (c) {
      case 'y': handler.on_short_year(numeric_system::alternative); break;
      case 'm': handler.on_dec_month(numeric_system::alternative, pad); break;
      case 'U':
        handler.on_dec0_week_of_year(numeric_system::alternative, pad);
        break;
      case 'W':
        handler.on_dec1_week_of_year(numeric_system::alternative, pad);
        break;
      case 'V':
        handler.on_iso_week_of_year(numeric_system::alternative, pad);
        break;
      case 'd':
        handler.on_day_of_month(numeric_system::alternative, pad);
        break;
      case 'e':
        handler.on_day_of_month(numeric_system::alternative, pad_type::space);
        break;
      case 'w': handler.on_dec0_weekday(numeric_system::alternative); break;
      case 'u': handler.on_dec1_weekday(numeric_system::alternative); break;
      case 'H': handler.on_24_hour(numeric_system::alternative, pad); break;
      case 'I': handler.on_12_hour(numeric_system::alternative, pad); break;
      case 'M': handler.on_minute(numeric_system::alternative, pad); break;
      case 'S': handler.on_second(numeric_system::alternative, pad); break;
      case 'z': handler.on_utc_offset(numeric_system::alternative); break;
      default:  FMT_THROW(format_error("invalid format"));
      }
      break;
    default: FMT_THROW(format_error("invalid format"));
    }
    begin = ptr;
  }
  if (begin != ptr) handler.on_text(begin, ptr);
  return ptr;
}

template <typename Derived> struct null_chrono_spec_handler {
  FMT_CONSTEXPR void unsupported() {
    static_cast<Derived*>(this)->unsupported();
  }
  FMT_CONSTEXPR void on_year(numeric_system, pad_type) { unsupported(); }
  FMT_CONSTEXPR void on_short_year(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_offset_year() { unsupported(); }
  FMT_CONSTEXPR void on_century(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_iso_week_based_year() { unsupported(); }
  FMT_CONSTEXPR void on_iso_week_based_short_year() { unsupported(); }
  FMT_CONSTEXPR void on_abbr_weekday() { unsupported(); }
  FMT_CONSTEXPR void on_full_weekday() { unsupported(); }
  FMT_CONSTEXPR void on_dec0_weekday(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_dec1_weekday(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_abbr_month() { unsupported(); }
  FMT_CONSTEXPR void on_full_month() { unsupported(); }
  FMT_CONSTEXPR void on_dec_month(numeric_system, pad_type) { unsupported(); }
  FMT_CONSTEXPR void on_dec0_week_of_year(numeric_system, pad_type) {
    unsupported();
  }
  FMT_CONSTEXPR void on_dec1_week_of_year(numeric_system, pad_type) {
    unsupported();
  }
  FMT_CONSTEXPR void on_iso_week_of_year(numeric_system, pad_type) {
    unsupported();
  }
  FMT_CONSTEXPR void on_day_of_year(pad_type) { unsupported(); }
  FMT_CONSTEXPR void on_day_of_month(numeric_system, pad_type) {
    unsupported();
  }
  FMT_CONSTEXPR void on_24_hour(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_12_hour(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_minute(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_second(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_datetime(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_loc_date(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_loc_time(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_us_date() { unsupported(); }
  FMT_CONSTEXPR void on_iso_date() { unsupported(); }
  FMT_CONSTEXPR void on_12_hour_time() { unsupported(); }
  FMT_CONSTEXPR void on_24_hour_time() { unsupported(); }
  FMT_CONSTEXPR void on_iso_time() { unsupported(); }
  FMT_CONSTEXPR void on_am_pm() { unsupported(); }
  FMT_CONSTEXPR void on_duration_value() { unsupported(); }
  FMT_CONSTEXPR void on_duration_unit() { unsupported(); }
  FMT_CONSTEXPR void on_utc_offset(numeric_system) { unsupported(); }
  FMT_CONSTEXPR void on_tz_name() { unsupported(); }
};

class tm_format_checker : public null_chrono_spec_handler<tm_format_checker> {
 private:
  bool has_timezone_ = false;

 public:
  constexpr explicit tm_format_checker(bool has_timezone)
      : has_timezone_(has_timezone) {}

  FMT_NORETURN inline void unsupported() {
    FMT_THROW(format_error("no format"));
  }

  template <typename Char>
  FMT_CONSTEXPR void on_text(const Char*, const Char*) {}
  FMT_CONSTEXPR void on_year(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_short_year(numeric_system) {}
  FMT_CONSTEXPR void on_offset_year() {}
  FMT_CONSTEXPR void on_century(numeric_system) {}
  FMT_CONSTEXPR void on_iso_week_based_year() {}
  FMT_CONSTEXPR void on_iso_week_based_short_year() {}
  FMT_CONSTEXPR void on_abbr_weekday() {}
  FMT_CONSTEXPR void on_full_weekday() {}
  FMT_CONSTEXPR void on_dec0_weekday(numeric_system) {}
  FMT_CONSTEXPR void on_dec1_weekday(numeric_system) {}
  FMT_CONSTEXPR void on_abbr_month() {}
  FMT_CONSTEXPR void on_full_month() {}
  FMT_CONSTEXPR void on_dec_month(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_dec0_week_of_year(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_dec1_week_of_year(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_iso_week_of_year(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_day_of_year(pad_type) {}
  FMT_CONSTEXPR void on_day_of_month(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_24_hour(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_12_hour(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_minute(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_second(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_datetime(numeric_system) {}
  FMT_CONSTEXPR void on_loc_date(numeric_system) {}
  FMT_CONSTEXPR void on_loc_time(numeric_system) {}
  FMT_CONSTEXPR void on_us_date() {}
  FMT_CONSTEXPR void on_iso_date() {}
  FMT_CONSTEXPR void on_12_hour_time() {}
  FMT_CONSTEXPR void on_24_hour_time() {}
  FMT_CONSTEXPR void on_iso_time() {}
  FMT_CONSTEXPR void on_am_pm() {}
  FMT_CONSTEXPR void on_utc_offset(numeric_system) {
    if (!has_timezone_) FMT_THROW(format_error("no timezone"));
  }
  FMT_CONSTEXPR void on_tz_name() {
    if (!has_timezone_) FMT_THROW(format_error("no timezone"));
  }
};

inline auto tm_wday_full_name(int wday) -> const char* {
  static constexpr const char* full_name_list[] = {
      "Sunday",   "Monday", "Tuesday", "Wednesday",
      "Thursday", "Friday", "Saturday"};
  return wday >= 0 && wday <= 6 ? full_name_list[wday] : "?";
}
inline auto tm_wday_short_name(int wday) -> const char* {
  static constexpr const char* short_name_list[] = {"Sun", "Mon", "Tue", "Wed",
                                                    "Thu", "Fri", "Sat"};
  return wday >= 0 && wday <= 6 ? short_name_list[wday] : "???";
}

inline auto tm_mon_full_name(int mon) -> const char* {
  static constexpr const char* full_name_list[] = {
      "January", "February", "March",     "April",   "May",      "June",
      "July",    "August",   "September", "October", "November", "December"};
  return mon >= 0 && mon <= 11 ? full_name_list[mon] : "?";
}
inline auto tm_mon_short_name(int mon) -> const char* {
  static constexpr const char* short_name_list[] = {
      "Jan", "Feb", "Mar", "Apr", "May", "Jun",
      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
  };
  return mon >= 0 && mon <= 11 ? short_name_list[mon] : "???";
}

template <typename T, typename = void>
struct has_tm_gmtoff : std::false_type {};
template <typename T>
struct has_tm_gmtoff<T, void_t<decltype(T::tm_gmtoff)>> : std::true_type {};

template <typename T, typename = void> struct has_tm_zone : std::false_type {};
template <typename T>
struct has_tm_zone<T, void_t<decltype(T::tm_zone)>> : std::true_type {};

template <typename T, FMT_ENABLE_IF(has_tm_zone<T>::value)>
auto set_tm_zone(T& time, char* tz) -> bool {
  time.tm_zone = tz;
  return true;
}
template <typename T, FMT_ENABLE_IF(!has_tm_zone<T>::value)>
auto set_tm_zone(T&, char*) -> bool {
  return false;
}

inline auto utc() -> char* {
  static char tz[] = "UTC";
  return tz;
}

// Converts value to Int and checks that it's in the range [0, upper).
template <typename T, typename Int, FMT_ENABLE_IF(std::is_integral<T>::value)>
inline auto to_nonnegative_int(T value, Int upper) -> Int {
  if (!std::is_unsigned<Int>::value &&
      (value < 0 || to_unsigned(value) > to_unsigned(upper))) {
    FMT_THROW(format_error("chrono value is out of range"));
  }
  return static_cast<Int>(value);
}
template <typename T, typename Int, FMT_ENABLE_IF(!std::is_integral<T>::value)>
inline auto to_nonnegative_int(T value, Int upper) -> Int {
  auto int_value = static_cast<Int>(value);
  if (int_value < 0 || value > static_cast<T>(upper))
    FMT_THROW(format_error("invalid value"));
  return int_value;
}

constexpr auto pow10(std::uint32_t n) -> long long {
  return n == 0 ? 1 : 10 * pow10(n - 1);
}

// Counts the number of fractional digits in the range [0, 18] according to the
// C++20 spec. If more than 18 fractional digits are required then returns 6 for
// microseconds precision.
template <long long Num, long long Den, int N = 0,
          bool Enabled = (N < 19) && (Num <= max_value<long long>() / 10)>
struct count_fractional_digits {
  static constexpr int value =
      Num % Den == 0 ? N : count_fractional_digits<Num * 10, Den, N + 1>::value;
};

// Base case that doesn't instantiate any more templates
// in order to avoid overflow.
template <long long Num, long long Den, int N>
struct count_fractional_digits<Num, Den, N, false> {
  static constexpr int value = (Num % Den == 0) ? N : 6;
};

// Format subseconds which are given as an integer type with an appropriate
// number of digits.
template <typename Char, typename OutputIt, typename Duration>
void write_fractional_seconds(OutputIt& out, Duration d, int precision = -1) {
  constexpr auto num_fractional_digits =
      count_fractional_digits<Duration::period::num,
                              Duration::period::den>::value;

  using subsecond_precision = std::chrono::duration<
      typename std::common_type<typename Duration::rep,
                                std::chrono::seconds::rep>::type,
      std::ratio<1, pow10(num_fractional_digits)>>;

  const auto fractional = d - detail::duration_cast<std::chrono::seconds>(d);
  const auto subseconds =
      std::chrono::treat_as_floating_point<
          typename subsecond_precision::rep>::value
          ? fractional.count()
          : detail::duration_cast<subsecond_precision>(fractional).count();
  auto n = static_cast<uint32_or_64_or_128_t<long long>>(subseconds);
  const int num_digits = count_digits(n);

  int leading_zeroes = (std::max)(0, num_fractional_digits - num_digits);
  if (precision < 0) {
    FMT_ASSERT(!std::is_floating_point<typename Duration::rep>::value, "");
    if (std::ratio_less<typename subsecond_precision::period,
                        std::chrono::seconds::period>::value) {
      *out++ = '.';
      out = detail::fill_n(out, leading_zeroes, '0');
      out = format_decimal<Char>(out, n, num_digits);
    }
  } else if (precision > 0) {
    *out++ = '.';
    leading_zeroes = min_of(leading_zeroes, precision);
    int remaining = precision - leading_zeroes;
    out = detail::fill_n(out, leading_zeroes, '0');
    if (remaining < num_digits) {
      int num_truncated_digits = num_digits - remaining;
      n /= to_unsigned(pow10(to_unsigned(num_truncated_digits)));
      if (n != 0) out = format_decimal<Char>(out, n, remaining);
      return;
    }
    if (n != 0) {
      out = format_decimal<Char>(out, n, num_digits);
      remaining -= num_digits;
    }
    out = detail::fill_n(out, remaining, '0');
  }
}

// Format subseconds which are given as a floating point type with an
// appropriate number of digits. We cannot pass the Duration here, as we
// explicitly need to pass the Rep value in the duration_formatter.
template <typename Duration>
void write_floating_seconds(memory_buffer& buf, Duration duration,
                            int num_fractional_digits = -1) {
  using rep = typename Duration::rep;
  FMT_ASSERT(std::is_floating_point<rep>::value, "");

  auto val = duration.count();

  if (num_fractional_digits < 0) {
    // For `std::round` with fallback to `round`:
    // On some toolchains `std::round` is not available (e.g. GCC 6).
    using namespace std;
    num_fractional_digits =
        count_fractional_digits<Duration::period::num,
                                Duration::period::den>::value;
    if (num_fractional_digits < 6 && static_cast<rep>(round(val)) != val)
      num_fractional_digits = 6;
  }

  fmt::format_to(std::back_inserter(buf), FMT_STRING("{:.{}f}"),
                 std::fmod(val * static_cast<rep>(Duration::period::num) /
                               static_cast<rep>(Duration::period::den),
                           static_cast<rep>(60)),
                 num_fractional_digits);
}

template <typename OutputIt, typename Char,
          typename Duration = std::chrono::seconds>
class tm_writer {
 private:
  static constexpr int days_per_week = 7;

  const std::locale& loc_;
  bool is_classic_;
  OutputIt out_;
  const Duration* subsecs_;
  const std::tm& tm_;

  auto tm_sec() const noexcept -> int {
    FMT_ASSERT(tm_.tm_sec >= 0 && tm_.tm_sec <= 61, "");
    return tm_.tm_sec;
  }
  auto tm_min() const noexcept -> int {
    FMT_ASSERT(tm_.tm_min >= 0 && tm_.tm_min <= 59, "");
    return tm_.tm_min;
  }
  auto tm_hour() const noexcept -> int {
    FMT_ASSERT(tm_.tm_hour >= 0 && tm_.tm_hour <= 23, "");
    return tm_.tm_hour;
  }
  auto tm_mday() const noexcept -> int {
    FMT_ASSERT(tm_.tm_mday >= 1 && tm_.tm_mday <= 31, "");
    return tm_.tm_mday;
  }
  auto tm_mon() const noexcept -> int {
    FMT_ASSERT(tm_.tm_mon >= 0 && tm_.tm_mon <= 11, "");
    return tm_.tm_mon;
  }
  auto tm_year() const noexcept -> long long { return 1900ll + tm_.tm_year; }
  auto tm_wday() const noexcept -> int {
    FMT_ASSERT(tm_.tm_wday >= 0 && tm_.tm_wday <= 6, "");
    return tm_.tm_wday;
  }
  auto tm_yday() const noexcept -> int {
    FMT_ASSERT(tm_.tm_yday >= 0 && tm_.tm_yday <= 365, "");
    return tm_.tm_yday;
  }

  auto tm_hour12() const noexcept -> int {
    auto h = tm_hour();
    auto z = h < 12 ? h : h - 12;
    return z == 0 ? 12 : z;
  }

  // POSIX and the C Standard are unclear or inconsistent about what %C and %y
  // do if the year is negative or exceeds 9999. Use the convention that %C
  // concatenated with %y yields the same output as %Y, and that %Y contains at
  // least 4 characters, with more only if necessary.
  auto split_year_lower(long long year) const noexcept -> int {
    auto l = year % 100;
    if (l < 0) l = -l;  // l in [0, 99]
    return static_cast<int>(l);
  }

  // Algorithm: https://en.wikipedia.org/wiki/ISO_week_date.
  auto iso_year_weeks(long long curr_year) const noexcept -> int {
    auto prev_year = curr_year - 1;
    auto curr_p =
        (curr_year + curr_year / 4 - curr_year / 100 + curr_year / 400) %
        days_per_week;
    auto prev_p =
        (prev_year + prev_year / 4 - prev_year / 100 + prev_year / 400) %
        days_per_week;
    return 52 + ((curr_p == 4 || prev_p == 3) ? 1 : 0);
  }
  auto iso_week_num(int tm_yday, int tm_wday) const noexcept -> int {
    return (tm_yday + 11 - (tm_wday == 0 ? days_per_week : tm_wday)) /
           days_per_week;
  }
  auto tm_iso_week_year() const noexcept -> long long {
    auto year = tm_year();
    auto w = iso_week_num(tm_yday(), tm_wday());
    if (w < 1) return year - 1;
    if (w > iso_year_weeks(year)) return year + 1;
    return year;
  }
  auto tm_iso_week_of_year() const noexcept -> int {
    auto year = tm_year();
    auto w = iso_week_num(tm_yday(), tm_wday());
    if (w < 1) return iso_year_weeks(year - 1);
    if (w > iso_year_weeks(year)) return 1;
    return w;
  }

  void write1(int value) {
    *out_++ = static_cast<char>('0' + to_unsigned(value) % 10);
  }
  void write2(int value) {
    const char* d = digits2(to_unsigned(value) % 100);
    *out_++ = *d++;
    *out_++ = *d;
  }
  void write2(int value, pad_type pad) {
    unsigned int v = to_unsigned(value) % 100;
    if (v >= 10) {
      const char* d = digits2(v);
      *out_++ = *d++;
      *out_++ = *d;
    } else {
      out_ = detail::write_padding(out_, pad);
      *out_++ = static_cast<char>('0' + v);
    }
  }

  void write_year_extended(long long year, pad_type pad) {
    // At least 4 characters.
    int width = 4;
    bool negative = year < 0;
    if (negative) {
      year = 0 - year;
      --width;
    }
    uint32_or_64_or_128_t<long long> n = to_unsigned(year);
    const int num_digits = count_digits(n);
    if (negative && pad == pad_type::zero) *out_++ = '-';
    if (width > num_digits)
      out_ = detail::write_padding(out_, pad, width - num_digits);
    if (negative && pad != pad_type::zero) *out_++ = '-';
    out_ = format_decimal<Char>(out_, n, num_digits);
  }
  void write_year(long long year, pad_type pad) {
    write_year_extended(year, pad);
  }

  void write_utc_offset(long long offset, numeric_system ns) {
    if (offset < 0) {
      *out_++ = '-';
      offset = -offset;
    } else {
      *out_++ = '+';
    }
    offset /= 60;
    write2(static_cast<int>(offset / 60));
    if (ns != numeric_system::standard) *out_++ = ':';
    write2(static_cast<int>(offset % 60));
  }

  template <typename T, FMT_ENABLE_IF(has_tm_gmtoff<T>::value)>
  void format_utc_offset(const T& tm, numeric_system ns) {
    write_utc_offset(tm.tm_gmtoff, ns);
  }
  template <typename T, FMT_ENABLE_IF(!has_tm_gmtoff<T>::value)>
  void format_utc_offset(const T&, numeric_system ns) {
    write_utc_offset(0, ns);
  }

  template <typename T, FMT_ENABLE_IF(has_tm_zone<T>::value)>
  void format_tz_name(const T& tm) {
    out_ = write_tm_str<Char>(out_, tm.tm_zone, loc_);
  }
  template <typename T, FMT_ENABLE_IF(!has_tm_zone<T>::value)>
  void format_tz_name(const T&) {
    out_ = std::copy_n(utc(), 3, out_);
  }

  void format_localized(char format, char modifier = 0) {
    out_ = write<Char>(out_, tm_, loc_, format, modifier);
  }

 public:
  tm_writer(const std::locale& loc, OutputIt out, const std::tm& tm,
            const Duration* subsecs = nullptr)
      : loc_(loc),
        is_classic_(loc_ == get_classic_locale()),
        out_(out),
        subsecs_(subsecs),
        tm_(tm) {}

  auto out() const -> OutputIt { return out_; }

  FMT_CONSTEXPR void on_text(const Char* begin, const Char* end) {
    out_ = copy<Char>(begin, end, out_);
  }

  void on_abbr_weekday() {
    if (is_classic_)
      out_ = write(out_, tm_wday_short_name(tm_wday()));
    else
      format_localized('a');
  }
  void on_full_weekday() {
    if (is_classic_)
      out_ = write(out_, tm_wday_full_name(tm_wday()));
    else
      format_localized('A');
  }
  void on_dec0_weekday(numeric_system ns) {
    if (is_classic_ || ns == numeric_system::standard) return write1(tm_wday());
    format_localized('w', 'O');
  }
  void on_dec1_weekday(numeric_system ns) {
    if (is_classic_ || ns == numeric_system::standard) {
      auto wday = tm_wday();
      write1(wday == 0 ? days_per_week : wday);
    } else {
      format_localized('u', 'O');
    }
  }

  void on_abbr_month() {
    if (is_classic_)
      out_ = write(out_, tm_mon_short_name(tm_mon()));
    else
      format_localized('b');
  }
  void on_full_month() {
    if (is_classic_)
      out_ = write(out_, tm_mon_full_name(tm_mon()));
    else
      format_localized('B');
  }

  void on_datetime(numeric_system ns) {
    if (is_classic_) {
      on_abbr_weekday();
      *out_++ = ' ';
      on_abbr_month();
      *out_++ = ' ';
      on_day_of_month(numeric_system::standard, pad_type::space);
      *out_++ = ' ';
      on_iso_time();
      *out_++ = ' ';
      on_year(numeric_system::standard, pad_type::space);
    } else {
      format_localized('c', ns == numeric_system::standard ? '\0' : 'E');
    }
  }
  void on_loc_date(numeric_system ns) {
    if (is_classic_)
      on_us_date();
    else
      format_localized('x', ns == numeric_system::standard ? '\0' : 'E');
  }
  void on_loc_time(numeric_system ns) {
    if (is_classic_)
      on_iso_time();
    else
      format_localized('X', ns == numeric_system::standard ? '\0' : 'E');
  }
  void on_us_date() {
    char buf[8];
    write_digit2_separated(buf, to_unsigned(tm_mon() + 1),
                           to_unsigned(tm_mday()),
                           to_unsigned(split_year_lower(tm_year())), '/');
    out_ = copy<Char>(std::begin(buf), std::end(buf), out_);
  }
  void on_iso_date() {
    auto year = tm_year();
    char buf[10];
    size_t offset = 0;
    if (year >= 0 && year < 10000) {
      write2digits(buf, static_cast<size_t>(year / 100));
    } else {
      offset = 4;
      write_year_extended(year, pad_type::zero);
      year = 0;
    }
    write_digit2_separated(buf + 2, static_cast<unsigned>(year % 100),
                           to_unsigned(tm_mon() + 1), to_unsigned(tm_mday()),
                           '-');
    out_ = copy<Char>(std::begin(buf) + offset, std::end(buf), out_);
  }

  void on_utc_offset(numeric_system ns) { format_utc_offset(tm_, ns); }
  void on_tz_name() { format_tz_name(tm_); }

  void on_year(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write_year(tm_year(), pad);
    format_localized('Y', 'E');
  }
  void on_short_year(numeric_system ns) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(split_year_lower(tm_year()));
    format_localized('y', 'O');
  }
  void on_offset_year() {
    if (is_classic_) return write2(split_year_lower(tm_year()));
    format_localized('y', 'E');
  }

  void on_century(numeric_system ns) {
    if (is_classic_ || ns == numeric_system::standard) {
      auto year = tm_year();
      auto upper = year / 100;
      if (year >= -99 && year < 0) {
        // Zero upper on negative year.
        *out_++ = '-';
        *out_++ = '0';
      } else if (upper >= 0 && upper < 100) {
        write2(static_cast<int>(upper));
      } else {
        out_ = write<Char>(out_, upper);
      }
    } else {
      format_localized('C', 'E');
    }
  }

  void on_dec_month(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(tm_mon() + 1, pad);
    format_localized('m', 'O');
  }

  void on_dec0_week_of_year(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2((tm_yday() + days_per_week - tm_wday()) / days_per_week,
                    pad);
    format_localized('U', 'O');
  }
  void on_dec1_week_of_year(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard) {
      auto wday = tm_wday();
      write2((tm_yday() + days_per_week -
              (wday == 0 ? (days_per_week - 1) : (wday - 1))) /
                 days_per_week,
             pad);
    } else {
      format_localized('W', 'O');
    }
  }
  void on_iso_week_of_year(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(tm_iso_week_of_year(), pad);
    format_localized('V', 'O');
  }

  void on_iso_week_based_year() {
    write_year(tm_iso_week_year(), pad_type::zero);
  }
  void on_iso_week_based_short_year() {
    write2(split_year_lower(tm_iso_week_year()));
  }

  void on_day_of_year(pad_type pad) {
    auto yday = tm_yday() + 1;
    auto digit1 = yday / 100;
    if (digit1 != 0)
      write1(digit1);
    else
      out_ = detail::write_padding(out_, pad);
    write2(yday % 100, pad);
  }

  void on_day_of_month(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(tm_mday(), pad);
    format_localized('d', 'O');
  }

  void on_24_hour(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(tm_hour(), pad);
    format_localized('H', 'O');
  }
  void on_12_hour(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(tm_hour12(), pad);
    format_localized('I', 'O');
  }
  void on_minute(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard)
      return write2(tm_min(), pad);
    format_localized('M', 'O');
  }

  void on_second(numeric_system ns, pad_type pad) {
    if (is_classic_ || ns == numeric_system::standard) {
      write2(tm_sec(), pad);
      if (subsecs_) {
        if (std::is_floating_point<typename Duration::rep>::value) {
          auto buf = memory_buffer();
          write_floating_seconds(buf, *subsecs_);
          if (buf.size() > 1) {
            // Remove the leading "0", write something like ".123".
            out_ = copy<Char>(buf.begin() + 1, buf.end(), out_);
          }
        } else {
          write_fractional_seconds<Char>(out_, *subsecs_);
        }
      }
    } else {
      // Currently no formatting of subseconds when a locale is set.
      format_localized('S', 'O');
    }
  }

  void on_12_hour_time() {
    if (is_classic_) {
      char buf[8];
      write_digit2_separated(buf, to_unsigned(tm_hour12()),
                             to_unsigned(tm_min()), to_unsigned(tm_sec()), ':');
      out_ = copy<Char>(std::begin(buf), std::end(buf), out_);
      *out_++ = ' ';
      on_am_pm();
    } else {
      format_localized('r');
    }
  }
  void on_24_hour_time() {
    write2(tm_hour());
    *out_++ = ':';
    write2(tm_min());
  }
  void on_iso_time() {
    on_24_hour_time();
    *out_++ = ':';
    on_second(numeric_system::standard, pad_type::zero);
  }

  void on_am_pm() {
    if (is_classic_) {
      *out_++ = tm_hour() < 12 ? 'A' : 'P';
      *out_++ = 'M';
    } else {
      format_localized('p');
    }
  }

  // These apply to chrono durations but not tm.
  void on_duration_value() {}
  void on_duration_unit() {}
};

struct chrono_format_checker : null_chrono_spec_handler<chrono_format_checker> {
  bool has_precision_integral = false;

  FMT_NORETURN inline void unsupported() { FMT_THROW(format_error("no date")); }

  template <typename Char>
  FMT_CONSTEXPR void on_text(const Char*, const Char*) {}
  FMT_CONSTEXPR void on_day_of_year(pad_type) {}
  FMT_CONSTEXPR void on_24_hour(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_12_hour(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_minute(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_second(numeric_system, pad_type) {}
  FMT_CONSTEXPR void on_12_hour_time() {}
  FMT_CONSTEXPR void on_24_hour_time() {}
  FMT_CONSTEXPR void on_iso_time() {}
  FMT_CONSTEXPR void on_am_pm() {}
  FMT_CONSTEXPR void on_duration_value() const {
    if (has_precision_integral)
      FMT_THROW(format_error("precision not allowed for this argument type"));
  }
  FMT_CONSTEXPR void on_duration_unit() {}
};

template <typename T,
          FMT_ENABLE_IF(std::is_integral<T>::value&& has_isfinite<T>::value)>
inline auto isfinite(T) -> bool {
  return true;
}

template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
inline auto mod(T x, int y) -> T {
  return x % static_cast<T>(y);
}
template <typename T, FMT_ENABLE_IF(std::is_floating_point<T>::value)>
inline auto mod(T x, int y) -> T {
  return std::fmod(x, static_cast<T>(y));
}

// If T is an integral type, maps T to its unsigned counterpart, otherwise
// leaves it unchanged (unlike std::make_unsigned).
template <typename T, bool INTEGRAL = std::is_integral<T>::value>
struct make_unsigned_or_unchanged {
  using type = T;
};

template <typename T> struct make_unsigned_or_unchanged<T, true> {
  using type = typename std::make_unsigned<T>::type;
};

template <typename Rep, typename Period,
          FMT_ENABLE_IF(std::is_integral<Rep>::value)>
inline auto get_milliseconds(std::chrono::duration<Rep, Period> d)
    -> std::chrono::duration<Rep, std::milli> {
  // This may overflow and/or the result may not fit in the target type.
#if FMT_SAFE_DURATION_CAST
  using common_seconds_type =
      typename std::common_type<decltype(d), std::chrono::seconds>::type;
  auto d_as_common = detail::duration_cast<common_seconds_type>(d);
  auto d_as_whole_seconds =
      detail::duration_cast<std::chrono::seconds>(d_as_common);
  // This conversion should be nonproblematic.
  auto diff = d_as_common - d_as_whole_seconds;
  auto ms = detail::duration_cast<std::chrono::duration<Rep, std::milli>>(diff);
  return ms;
#else
  auto s = detail::duration_cast<std::chrono::seconds>(d);
  return detail::duration_cast<std::chrono::milliseconds>(d - s);
#endif
}

template <typename Char, typename Rep, typename OutputIt,
          FMT_ENABLE_IF(std::is_integral<Rep>::value)>
auto format_duration_value(OutputIt out, Rep val, int) -> OutputIt {
  return write<Char>(out, val);
}

template <typename Char, typename Rep, typename OutputIt,
          FMT_ENABLE_IF(std::is_floating_point<Rep>::value)>
auto format_duration_value(OutputIt out, Rep val, int precision) -> OutputIt {
  auto specs = format_specs();
  specs.precision = precision;
  specs.set_type(precision >= 0 ? presentation_type::fixed
                                : presentation_type::general);
  return write<Char>(out, val, specs);
}

template <typename Char, typename OutputIt>
auto copy_unit(string_view unit, OutputIt out, Char) -> OutputIt {
  return copy<Char>(unit.begin(), unit.end(), out);
}

template <typename OutputIt>
auto copy_unit(string_view unit, OutputIt out, wchar_t) -> OutputIt {
  // This works when wchar_t is UTF-32 because units only contain characters
  // that have the same representation in UTF-16 and UTF-32.
  utf8_to_utf16 u(unit);
  return copy<wchar_t>(u.c_str(), u.c_str() + u.size(), out);
}

template <typename Char, typename Period, typename OutputIt>
auto format_duration_unit(OutputIt out) -> OutputIt {
  if (const char* unit = get_units<Period>())
    return copy_unit(string_view(unit), out, Char());
  *out++ = '[';
  out = write<Char>(out, Period::num);
  if (const_check(Period::den != 1)) {
    *out++ = '/';
    out = write<Char>(out, Period::den);
  }
  *out++ = ']';
  *out++ = 's';
  return out;
}

class get_locale {
 private:
  union {
    std::locale locale_;
  };
  bool has_locale_ = false;

 public:
  inline get_locale(bool localized, locale_ref loc) : has_locale_(localized) {
    if (!localized) return;
    ignore_unused(loc);
    ::new (&locale_) std::locale(
#if FMT_USE_LOCALE
        loc.template get<std::locale>()
#endif
    );
  }
  inline ~get_locale() {
    if (has_locale_) locale_.~locale();
  }
  inline operator const std::locale&() const {
    return has_locale_ ? locale_ : get_classic_locale();
  }
};

template <typename Char, typename Rep, typename Period>
struct duration_formatter {
  using iterator = basic_appender<Char>;
  iterator out;
  // rep is unsigned to avoid overflow.
  using rep =
      conditional_t<std::is_integral<Rep>::value && sizeof(Rep) < sizeof(int),
                    unsigned, typename make_unsigned_or_unchanged<Rep>::type>;
  rep val;
  int precision;
  locale_ref locale;
  bool localized = false;
  using seconds = std::chrono::duration<rep>;
  seconds s;
  using milliseconds = std::chrono::duration<rep, std::milli>;
  bool negative;

  using tm_writer_type = tm_writer<iterator, Char>;

  duration_formatter(iterator o, std::chrono::duration<Rep, Period> d,
                     locale_ref loc)
      : out(o), val(static_cast<rep>(d.count())), locale(loc), negative(false) {
    if (d.count() < 0) {
      val = 0 - val;
      negative = true;
    }

    // this may overflow and/or the result may not fit in the
    // target type.
    // might need checked conversion (rep!=Rep)
    s = detail::duration_cast<seconds>(std::chrono::duration<rep, Period>(val));
  }

  // returns true if nan or inf, writes to out.
  auto handle_nan_inf() -> bool {
    if (isfinite(val)) return false;
    if (isnan(val)) {
      write_nan();
      return true;
    }
    // must be +-inf
    if (val > 0)
      std::copy_n("inf", 3, out);
    else
      std::copy_n("-inf", 4, out);
    return true;
  }

  auto days() const -> Rep { return static_cast<Rep>(s.count() / 86400); }
  auto hour() const -> Rep {
    return static_cast<Rep>(mod((s.count() / 3600), 24));
  }

  auto hour12() const -> Rep {
    Rep hour = static_cast<Rep>(mod((s.count() / 3600), 12));
    return hour <= 0 ? 12 : hour;
  }

  auto minute() const -> Rep {
    return static_cast<Rep>(mod((s.count() / 60), 60));
  }
  auto second() const -> Rep { return static_cast<Rep>(mod(s.count(), 60)); }

  auto time() const -> std::tm {
    auto time = std::tm();
    time.tm_hour = to_nonnegative_int(hour(), 24);
    time.tm_min = to_nonnegative_int(minute(), 60);
    time.tm_sec = to_nonnegative_int(second(), 60);
    return time;
  }

  void write_sign() {
    if (!negative) return;
    *out++ = '-';
    negative = false;
  }

  void write(Rep value, int width, pad_type pad = pad_type::zero) {
    write_sign();
    if (isnan(value)) return write_nan();
    uint32_or_64_or_128_t<int> n =
        to_unsigned(to_nonnegative_int(value, max_value<int>()));
    int num_digits = detail::count_digits(n);
    if (width > num_digits) {
      out = detail::write_padding(out, pad, width - num_digits);
    }
    out = format_decimal<Char>(out, n, num_digits);
  }

  void write_nan() { std::copy_n("nan", 3, out); }

  template <typename Callback, typename... Args>
  void format_tm(const tm& time, Callback cb, Args... args) {
    if (isnan(val)) return write_nan();
    get_locale loc(localized, locale);
    auto w = tm_writer_type(loc, out, time);
    (w.*cb)(args...);
    out = w.out();
  }

  void on_text(const Char* begin, const Char* end) {
    copy<Char>(begin, end, out);
  }

  // These are not implemented because durations don't have date information.
  void on_abbr_weekday() {}
  void on_full_weekday() {}
  void on_dec0_weekday(numeric_system) {}
  void on_dec1_weekday(numeric_system) {}
  void on_abbr_month() {}
  void on_full_month() {}
  void on_datetime(numeric_system) {}
  void on_loc_date(numeric_system) {}
  void on_loc_time(numeric_system) {}
  void on_us_date() {}
  void on_iso_date() {}
  void on_utc_offset(numeric_system) {}
  void on_tz_name() {}
  void on_year(numeric_system, pad_type) {}
  void on_short_year(numeric_system) {}
  void on_offset_year() {}
  void on_century(numeric_system) {}
  void on_iso_week_based_year() {}
  void on_iso_week_based_short_year() {}
  void on_dec_month(numeric_system, pad_type) {}
  void on_dec0_week_of_year(numeric_system, pad_type) {}
  void on_dec1_week_of_year(numeric_system, pad_type) {}
  void on_iso_week_of_year(numeric_system, pad_type) {}
  void on_day_of_month(numeric_system, pad_type) {}

  void on_day_of_year(pad_type) {
    if (handle_nan_inf()) return;
    write(days(), 0);
  }

  void on_24_hour(numeric_system ns, pad_type pad) {
    if (handle_nan_inf()) return;

    if (ns == numeric_system::standard) return write(hour(), 2, pad);
    auto time = tm();
    time.tm_hour = to_nonnegative_int(hour(), 24);
    format_tm(time, &tm_writer_type::on_24_hour, ns, pad);
  }

  void on_12_hour(numeric_system ns, pad_type pad) {
    if (handle_nan_inf()) return;

    if (ns == numeric_system::standard) return write(hour12(), 2, pad);
    auto time = tm();
    time.tm_hour = to_nonnegative_int(hour12(), 12);
    format_tm(time, &tm_writer_type::on_12_hour, ns, pad);
  }

  void on_minute(numeric_system ns, pad_type pad) {
    if (handle_nan_inf()) return;

    if (ns == numeric_system::standard) return write(minute(), 2, pad);
    auto time = tm();
    time.tm_min = to_nonnegative_int(minute(), 60);
    format_tm(time, &tm_writer_type::on_minute, ns, pad);
  }

  void on_second(numeric_system ns, pad_type pad) {
    if (handle_nan_inf()) return;

    if (ns == numeric_system::standard) {
      if (std::is_floating_point<rep>::value) {
        auto buf = memory_buffer();
        write_floating_seconds(buf, std::chrono::duration<rep, Period>(val),
                               precision);
        if (negative) *out++ = '-';
        if (buf.size() < 2 || buf[1] == '.')
          out = detail::write_padding(out, pad);
        out = copy<Char>(buf.begin(), buf.end(), out);
      } else {
        write(second(), 2, pad);
        write_fractional_seconds<Char>(
            out, std::chrono::duration<rep, Period>(val), precision);
      }
      return;
    }
    auto time = tm();
    time.tm_sec = to_nonnegative_int(second(), 60);
    format_tm(time, &tm_writer_type::on_second, ns, pad);
  }

  void on_12_hour_time() {
    if (handle_nan_inf()) return;
    format_tm(time(), &tm_writer_type::on_12_hour_time);
  }

  void on_24_hour_time() {
    if (handle_nan_inf()) {
      *out++ = ':';
      handle_nan_inf();
      return;
    }

    write(hour(), 2);
    *out++ = ':';
    write(minute(), 2);
  }

  void on_iso_time() {
    on_24_hour_time();
    *out++ = ':';
    if (handle_nan_inf()) return;
    on_second(numeric_system::standard, pad_type::zero);
  }

  void on_am_pm() {
    if (handle_nan_inf()) return;
    format_tm(time(), &tm_writer_type::on_am_pm);
  }

  void on_duration_value() {
    if (handle_nan_inf()) return;
    write_sign();
    out = format_duration_value<Char>(out, val, precision);
  }

  void on_duration_unit() { out = format_duration_unit<Char, Period>(out); }
};

}  // namespace detail

#if defined(__cpp_lib_chrono) && __cpp_lib_chrono >= 201907
using weekday = std::chrono::weekday;
using day = std::chrono::day;
using month = std::chrono::month;
using year = std::chrono::year;
using year_month_day = std::chrono::year_month_day;
#else
// A fallback version of weekday.
class weekday {
 private:
  unsigned char value_;

 public:
  weekday() = default;
  constexpr explicit weekday(unsigned wd) noexcept
      : value_(static_cast<unsigned char>(wd != 7 ? wd : 0)) {}
  constexpr auto c_encoding() const noexcept -> unsigned { return value_; }
};

class day {
 private:
  unsigned char value_;

 public:
  day() = default;
  constexpr explicit day(unsigned d) noexcept
      : value_(static_cast<unsigned char>(d)) {}
  constexpr explicit operator unsigned() const noexcept { return value_; }
};

class month {
 private:
  unsigned char value_;

 public:
  month() = default;
  constexpr explicit month(unsigned m) noexcept
      : value_(static_cast<unsigned char>(m)) {}
  constexpr explicit operator unsigned() const noexcept { return value_; }
};

class year {
 private:
  int value_;

 public:
  year() = default;
  constexpr explicit year(int y) noexcept : value_(y) {}
  constexpr explicit operator int() const noexcept { return value_; }
};

class year_month_day {
 private:
  fmt::year year_;
  fmt::month month_;
  fmt::day day_;

 public:
  year_month_day() = default;
  constexpr year_month_day(const year& y, const month& m, const day& d) noexcept
      : year_(y), month_(m), day_(d) {}
  constexpr auto year() const noexcept -> fmt::year { return year_; }
  constexpr auto month() const noexcept -> fmt::month { return month_; }
  constexpr auto day() const noexcept -> fmt::day { return day_; }
};
#endif  // __cpp_lib_chrono >= 201907

template <typename Char>
struct formatter<weekday, Char> : private formatter<std::tm, Char> {
 private:
  bool use_tm_formatter_ = false;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    if (it != end && *it == 'L') {
      ++it;
      this->set_localized();
    }
    use_tm_formatter_ = it != end && *it != '}';
    return use_tm_formatter_ ? formatter<std::tm, Char>::parse(ctx) : it;
  }

  template <typename FormatContext>
  auto format(weekday wd, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto time = std::tm();
    time.tm_wday = static_cast<int>(wd.c_encoding());
    if (use_tm_formatter_) return formatter<std::tm, Char>::format(time, ctx);
    detail::get_locale loc(this->localized(), ctx.locale());
    auto w = detail::tm_writer<decltype(ctx.out()), Char>(loc, ctx.out(), time);
    w.on_abbr_weekday();
    return w.out();
  }
};

template <typename Char>
struct formatter<day, Char> : private formatter<std::tm, Char> {
 private:
  bool use_tm_formatter_ = false;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    use_tm_formatter_ = it != end && *it != '}';
    return use_tm_formatter_ ? formatter<std::tm, Char>::parse(ctx) : it;
  }

  template <typename FormatContext>
  auto format(day d, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto time = std::tm();
    time.tm_mday = static_cast<int>(static_cast<unsigned>(d));
    if (use_tm_formatter_) return formatter<std::tm, Char>::format(time, ctx);
    detail::get_locale loc(false, ctx.locale());
    auto w = detail::tm_writer<decltype(ctx.out()), Char>(loc, ctx.out(), time);
    w.on_day_of_month(detail::numeric_system::standard, detail::pad_type::zero);
    return w.out();
  }
};

template <typename Char>
struct formatter<month, Char> : private formatter<std::tm, Char> {
 private:
  bool use_tm_formatter_ = false;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    if (it != end && *it == 'L') {
      ++it;
      this->set_localized();
    }
    use_tm_formatter_ = it != end && *it != '}';
    return use_tm_formatter_ ? formatter<std::tm, Char>::parse(ctx) : it;
  }

  template <typename FormatContext>
  auto format(month m, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto time = std::tm();
    time.tm_mon = static_cast<int>(static_cast<unsigned>(m)) - 1;
    if (use_tm_formatter_) return formatter<std::tm, Char>::format(time, ctx);
    detail::get_locale loc(this->localized(), ctx.locale());
    auto w = detail::tm_writer<decltype(ctx.out()), Char>(loc, ctx.out(), time);
    w.on_abbr_month();
    return w.out();
  }
};

template <typename Char>
struct formatter<year, Char> : private formatter<std::tm, Char> {
 private:
  bool use_tm_formatter_ = false;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    use_tm_formatter_ = it != end && *it != '}';
    return use_tm_formatter_ ? formatter<std::tm, Char>::parse(ctx) : it;
  }

  template <typename FormatContext>
  auto format(year y, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto time = std::tm();
    time.tm_year = static_cast<int>(y) - 1900;
    if (use_tm_formatter_) return formatter<std::tm, Char>::format(time, ctx);
    detail::get_locale loc(false, ctx.locale());
    auto w = detail::tm_writer<decltype(ctx.out()), Char>(loc, ctx.out(), time);
    w.on_year(detail::numeric_system::standard, detail::pad_type::zero);
    return w.out();
  }
};

template <typename Char>
struct formatter<year_month_day, Char> : private formatter<std::tm, Char> {
 private:
  bool use_tm_formatter_ = false;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    use_tm_formatter_ = it != end && *it != '}';
    return use_tm_formatter_ ? formatter<std::tm, Char>::parse(ctx) : it;
  }

  template <typename FormatContext>
  auto format(year_month_day val, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto time = std::tm();
    time.tm_year = static_cast<int>(val.year()) - 1900;
    time.tm_mon = static_cast<int>(static_cast<unsigned>(val.month())) - 1;
    time.tm_mday = static_cast<int>(static_cast<unsigned>(val.day()));
    if (use_tm_formatter_) return formatter<std::tm, Char>::format(time, ctx);
    detail::get_locale loc(true, ctx.locale());
    auto w = detail::tm_writer<decltype(ctx.out()), Char>(loc, ctx.out(), time);
    w.on_iso_date();
    return w.out();
  }
};

template <typename Rep, typename Period, typename Char>
struct formatter<std::chrono::duration<Rep, Period>, Char> {
 private:
  format_specs specs_;
  detail::arg_ref<Char> width_ref_;
  detail::arg_ref<Char> precision_ref_;
  basic_string_view<Char> fmt_;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    if (it == end || *it == '}') return it;

    it = detail::parse_align(it, end, specs_);
    if (it == end) return it;

    Char c = *it;
    if ((c >= '0' && c <= '9') || c == '{') {
      it = detail::parse_width(it, end, specs_, width_ref_, ctx);
      if (it == end) return it;
    }

    auto checker = detail::chrono_format_checker();
    if (*it == '.') {
      checker.has_precision_integral = !std::is_floating_point<Rep>::value;
      it = detail::parse_precision(it, end, specs_, precision_ref_, ctx);
    }
    if (it != end && *it == 'L') {
      specs_.set_localized();
      ++it;
    }
    end = detail::parse_chrono_format(it, end, checker);
    fmt_ = {it, detail::to_unsigned(end - it)};
    return end;
  }

  template <typename FormatContext>
  auto format(std::chrono::duration<Rep, Period> d, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto specs = specs_;
    auto precision = specs.precision;
    specs.precision = -1;
    auto begin = fmt_.begin(), end = fmt_.end();
    // As a possible future optimization, we could avoid extra copying if width
    // is not specified.
    auto buf = basic_memory_buffer<Char>();
    auto out = basic_appender<Char>(buf);
    detail::handle_dynamic_spec(specs.dynamic_width(), specs.width, width_ref_,
                                ctx);
    detail::handle_dynamic_spec(specs.dynamic_precision(), precision,
                                precision_ref_, ctx);
    if (begin == end || *begin == '}') {
      out = detail::format_duration_value<Char>(out, d.count(), precision);
      detail::format_duration_unit<Char, Period>(out);
    } else {
      auto f =
          detail::duration_formatter<Char, Rep, Period>(out, d, ctx.locale());
      f.precision = precision;
      f.localized = specs_.localized();
      detail::parse_chrono_format(begin, end, f);
    }
    return detail::write(
        ctx.out(), basic_string_view<Char>(buf.data(), buf.size()), specs);
  }
};

template <typename Char> struct formatter<std::tm, Char> {
 private:
  format_specs specs_;
  detail::arg_ref<Char> width_ref_;
  basic_string_view<Char> fmt_ =
      detail::string_literal<Char, '%', 'F', ' ', '%', 'T'>();

 protected:
  auto localized() const -> bool { return specs_.localized(); }
  FMT_CONSTEXPR void set_localized() { specs_.set_localized(); }

  FMT_CONSTEXPR auto do_parse(parse_context<Char>& ctx, bool has_timezone)
      -> const Char* {
    auto it = ctx.begin(), end = ctx.end();
    if (it == end || *it == '}') return it;

    it = detail::parse_align(it, end, specs_);
    if (it == end) return it;

    Char c = *it;
    if ((c >= '0' && c <= '9') || c == '{') {
      it = detail::parse_width(it, end, specs_, width_ref_, ctx);
      if (it == end) return it;
    }

    if (*it == 'L') {
      specs_.set_localized();
      ++it;
    }

    end = detail::parse_chrono_format(it, end,
                                      detail::tm_format_checker(has_timezone));
    // Replace the default format string only if the new spec is not empty.
    if (end != it) fmt_ = {it, detail::to_unsigned(end - it)};
    return end;
  }

  template <typename Duration, typename FormatContext>
  auto do_format(const std::tm& tm, FormatContext& ctx,
                 const Duration* subsecs) const -> decltype(ctx.out()) {
    auto specs = specs_;
    auto buf = basic_memory_buffer<Char>();
    auto out = basic_appender<Char>(buf);
    detail::handle_dynamic_spec(specs.dynamic_width(), specs.width, width_ref_,
                                ctx);

    auto loc_ref = specs.localized() ? ctx.locale() : locale_ref();
    detail::get_locale loc(static_cast<bool>(loc_ref), loc_ref);
    auto w = detail::tm_writer<basic_appender<Char>, Char, Duration>(
        loc, out, tm, subsecs);
    detail::parse_chrono_format(fmt_.begin(), fmt_.end(), w);
    return detail::write(
        ctx.out(), basic_string_view<Char>(buf.data(), buf.size()), specs);
  }

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return do_parse(ctx, detail::has_tm_gmtoff<std::tm>::value);
  }

  template <typename FormatContext>
  auto format(const std::tm& tm, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return do_format<std::chrono::seconds>(tm, ctx, nullptr);
  }
};

// DEPRECATED! Reversed order of template parameters.
template <typename Char, typename Duration>
struct formatter<sys_time<Duration>, Char> : private formatter<std::tm, Char> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return this->do_parse(ctx, true);
  }

  template <typename FormatContext>
  auto format(sys_time<Duration> val, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    std::tm tm = gmtime(val);
    using period = typename Duration::period;
    if (detail::const_check(
            period::num == 1 && period::den == 1 &&
            !std::is_floating_point<typename Duration::rep>::value)) {
      detail::set_tm_zone(tm, detail::utc());
      return formatter<std::tm, Char>::format(tm, ctx);
    }
    Duration epoch = val.time_since_epoch();
    Duration subsecs = detail::duration_cast<Duration>(
        epoch - detail::duration_cast<std::chrono::seconds>(epoch));
    if (subsecs.count() < 0) {
      auto second = detail::duration_cast<Duration>(std::chrono::seconds(1));
      if (tm.tm_sec != 0) {
        --tm.tm_sec;
      } else {
        tm = gmtime(val - second);
        detail::set_tm_zone(tm, detail::utc());
      }
      subsecs += second;
    }
    return formatter<std::tm, Char>::do_format(tm, ctx, &subsecs);
  }
};

template <typename Duration, typename Char>
struct formatter<utc_time<Duration>, Char>
    : formatter<sys_time<Duration>, Char> {
  template <typename FormatContext>
  auto format(utc_time<Duration> val, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return formatter<sys_time<Duration>, Char>::format(
        detail::utc_clock::to_sys(val), ctx);
  }
};

template <typename Duration, typename Char>
struct formatter<local_time<Duration>, Char>
    : private formatter<std::tm, Char> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return this->do_parse(ctx, false);
  }

  template <typename FormatContext>
  auto format(local_time<Duration> val, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto time_since_epoch = val.time_since_epoch();
    auto seconds_since_epoch =
        detail::duration_cast<std::chrono::seconds>(time_since_epoch);
    // Use gmtime to prevent time zone conversion since local_time has an
    // unspecified time zone.
    std::tm t = gmtime(seconds_since_epoch.count());
    using period = typename Duration::period;
    if (period::num == 1 && period::den == 1 &&
        !std::is_floating_point<typename Duration::rep>::value) {
      return formatter<std::tm, Char>::format(t, ctx);
    }
    auto subsecs =
        detail::duration_cast<Duration>(time_since_epoch - seconds_since_epoch);
    return formatter<std::tm, Char>::do_format(t, ctx, &subsecs);
  }
};

FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_CHRONO_H_
