// This file is only provided for compatibility and may be removed in future
// versions. Use fmt/base.h if you don't need fmt::format and fmt/format.h
// otherwise.

#include "format.h"
