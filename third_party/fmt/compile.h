// Formatting library for C++ - experimental format string compilation
//
// Copyright (c) 2012 - present, Victor Zverovich and fmt contributors
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_COMPILE_H_
#define FMT_COMPILE_H_

#ifndef FMT_MODULE
#  include <iterator>  // std::back_inserter
#endif

#include "format.h"

FMT_BEGIN_NAMESPACE
FMT_BEGIN_EXPORT

// A compile-time string which is compiled into fast formatting code.
class compiled_string {};

template <typename S>
struct is_compiled_string : std::is_base_of<compiled_string, S> {};

/**
 * Converts a string literal `s` into a format string that will be parsed at
 * compile time and converted into efficient formatting code. Requires C++17
 * `constexpr if` compiler support.
 *
 * **Example**:
 *
 *     // Converts 42 into std::string using the most efficient method and no
 *     // runtime format string processing.
 *     std::string s = fmt::format(FMT_COMPILE("{}"), 42);
 */
#if defined(__cpp_if_constexpr) && defined(__cpp_return_type_deduction)
#  define FMT_COMPILE(s) FMT_STRING_IMPL(s, fmt::compiled_string)
#else
#  define FMT_COMPILE(s) FMT_STRING(s)
#endif

/**
 * Converts a string literal into a format string that will be parsed at
 * compile time and converted into efficient formatting code. Requires support
 * for class types in constant template parameters (a C++20 feature).
 *
 *  **Example**:
 *
 *     // Converts 42 into std::string using the most efficient method and no
 *     // runtime format string processing.
 *     using namespace fmt::literals;
 *     std::string s = fmt::format("{}"_cf, 42);
 */
#if FMT_USE_NONTYPE_TEMPLATE_ARGS
inline namespace literals {
template <detail::fixed_string Str> constexpr auto operator""_cf() {
  return FMT_COMPILE(Str.data);
}
}  // namespace literals
#endif

FMT_END_EXPORT

namespace detail {

template <typename T, typename... Tail>
constexpr auto first(const T& value, const Tail&...) -> const T& {
  return value;
}

#if defined(__cpp_if_constexpr) && defined(__cpp_return_type_deduction)
template <typename... T> struct type_list {};

// Returns a reference to the argument at index N from [first, rest...].
template <int N, typename T, typename... Args>
constexpr auto get([[maybe_unused]] const T& first,
                   [[maybe_unused]] const Args&... rest) -> const auto& {
  static_assert(N < 1 + sizeof...(Args), "index is out of bounds");
  if constexpr (N == 0)
    return first;
  else
    return detail::get<N - 1>(rest...);
}

#  if FMT_USE_NONTYPE_TEMPLATE_ARGS
template <int N, typename T, typename... Args, typename Char>
constexpr auto get_arg_index_by_name(basic_string_view<Char> name) -> int {
  if constexpr (is_static_named_arg<T>()) {
    if (name == T::name) return N;
  }
  if constexpr (sizeof...(Args) > 0)
    return get_arg_index_by_name<N + 1, Args...>(name);
  (void)name;  // Workaround an MSVC bug about "unused" parameter.
  return -1;
}
#  endif

template <typename... Args, typename Char>
FMT_CONSTEXPR auto get_arg_index_by_name(basic_string_view<Char> name) -> int {
#  if FMT_USE_NONTYPE_TEMPLATE_ARGS
  if constexpr (sizeof...(Args) > 0)
    return get_arg_index_by_name<0, Args...>(name);
#  endif
  (void)name;
  return -1;
}

template <typename Char, typename... Args>
constexpr auto get_arg_index_by_name(basic_string_view<Char> name,
                                     type_list<Args...>) -> int {
  return get_arg_index_by_name<Args...>(name);
}

template <int N, typename> struct get_type_impl;

template <int N, typename... Args> struct get_type_impl<N, type_list<Args...>> {
  using type =
      remove_cvref_t<decltype(detail::get<N>(std::declval<Args>()...))>;
};

template <int N, typename T>
using get_type = typename get_type_impl<N, T>::type;

template <typename T> struct is_compiled_format : std::false_type {};

template <typename Char> struct text {
  basic_string_view<Char> data;
  using char_type = Char;

  template <typename OutputIt, typename... T>
  constexpr auto format(OutputIt out, const T&...) const -> OutputIt {
    return write<Char>(out, data);
  }
};

template <typename Char>
struct is_compiled_format<text<Char>> : std::true_type {};

template <typename Char>
constexpr auto make_text(basic_string_view<Char> s, size_t pos, size_t size)
    -> text<Char> {
  return {{&s[pos], size}};
}

template <typename Char> struct code_unit {
  Char value;
  using char_type = Char;

  template <typename OutputIt, typename... T>
  constexpr auto format(OutputIt out, const T&...) const -> OutputIt {
    *out++ = value;
    return out;
  }
};

// This ensures that the argument type is convertible to `const T&`.
template <typename T, int N, typename... Args>
constexpr auto get_arg_checked(const Args&... args) -> const T& {
  const auto& arg = detail::get<N>(args...);
  if constexpr (detail::is_named_arg<remove_cvref_t<decltype(arg)>>()) {
    return arg.value;
  } else {
    return arg;
  }
}

template <typename Char>
struct is_compiled_format<code_unit<Char>> : std::true_type {};

// A replacement field that refers to argument N.
template <typename Char, typename V, int N> struct field {
  using char_type = Char;

  template <typename OutputIt, typename... T>
  constexpr auto format(OutputIt out, const T&... args) const -> OutputIt {
    const V& arg = get_arg_checked<V, N>(args...);
    if constexpr (std::is_convertible<V, basic_string_view<Char>>::value) {
      auto s = basic_string_view<Char>(arg);
      return copy<Char>(s.begin(), s.end(), out);
    } else {
      return write<Char>(out, arg);
    }
  }
};

template <typename Char, typename T, int N>
struct is_compiled_format<field<Char, T, N>> : std::true_type {};

// A replacement field that refers to argument with name.
template <typename Char> struct runtime_named_field {
  using char_type = Char;
  basic_string_view<Char> name;

  template <typename OutputIt, typename T>
  constexpr static auto try_format_argument(
      OutputIt& out,
      // [[maybe_unused]] due to unused-but-set-parameter warning in GCC 7,8,9
      [[maybe_unused]] basic_string_view<Char> arg_name, const T& arg) -> bool {
    if constexpr (is_named_arg<typename std::remove_cv<T>::type>::value) {
      if (arg_name == arg.name) {
        out = write<Char>(out, arg.value);
        return true;
      }
    }
    return false;
  }

  template <typename OutputIt, typename... T>
  constexpr auto format(OutputIt out, const T&... args) const -> OutputIt {
    bool found = (try_format_argument(out, name, args) || ...);
    if (!found) {
      FMT_THROW(format_error("argument with specified name is not found"));
    }
    return out;
  }
};

template <typename Char>
struct is_compiled_format<runtime_named_field<Char>> : std::true_type {};

// A replacement field that refers to argument N and has format specifiers.
template <typename Char, typename V, int N> struct spec_field {
  using char_type = Char;
  formatter<V, Char> fmt;

  template <typename OutputIt, typename... T>
  constexpr FMT_INLINE auto format(OutputIt out, const T&... args) const
      -> OutputIt {
    const auto& vargs =
        fmt::make_format_args<basic_format_context<OutputIt, Char>>(args...);
    basic_format_context<OutputIt, Char> ctx(out, vargs);
    return fmt.format(get_arg_checked<V, N>(args...), ctx);
  }
};

template <typename Char, typename T, int N>
struct is_compiled_format<spec_field<Char, T, N>> : std::true_type {};

template <typename L, typename R> struct concat {
  L lhs;
  R rhs;
  using char_type = typename L::char_type;

  template <typename OutputIt, typename... T>
  constexpr auto format(OutputIt out, const T&... args) const -> OutputIt {
    out = lhs.format(out, args...);
    return rhs.format(out, args...);
  }
};

template <typename L, typename R>
struct is_compiled_format<concat<L, R>> : std::true_type {};

template <typename L, typename R>
constexpr auto make_concat(L lhs, R rhs) -> concat<L, R> {
  return {lhs, rhs};
}

struct unknown_format {};

template <typename Char>
constexpr auto parse_text(basic_string_view<Char> str, size_t pos) -> size_t {
  for (size_t size = str.size(); pos != size; ++pos) {
    if (str[pos] == '{' || str[pos] == '}') break;
  }
  return pos;
}

template <typename Args, size_t POS, int ID, typename S>
constexpr auto compile_format_string(S fmt);

template <typename Args, size_t POS, int ID, typename T, typename S>
constexpr auto parse_tail(T head, S fmt) {
  if constexpr (POS != basic_string_view<typename S::char_type>(fmt).size()) {
    constexpr auto tail = compile_format_string<Args, POS, ID>(fmt);
    if constexpr (std::is_same<remove_cvref_t<decltype(tail)>,
                               unknown_format>())
      return tail;
    else
      return make_concat(head, tail);
  } else {
    return head;
  }
}

template <typename T, typename Char> struct parse_specs_result {
  formatter<T, Char> fmt;
  size_t end;
  int next_arg_id;
};

enum { manual_indexing_id = -1 };

template <typename T, typename Char>
constexpr auto parse_specs(basic_string_view<Char> str, size_t pos,
                           int next_arg_id) -> parse_specs_result<T, Char> {
  str.remove_prefix(pos);
  auto ctx =
      compile_parse_context<Char>(str, max_value<int>(), nullptr, next_arg_id);
  auto f = formatter<T, Char>();
  auto end = f.parse(ctx);
  return {f, pos + fmt::detail::to_unsigned(end - str.data()),
          next_arg_id == 0 ? manual_indexing_id : ctx.next_arg_id()};
}

template <typename Char> struct arg_id_handler {
  arg_id_kind kind;
  arg_ref<Char> arg_id;

  constexpr auto on_auto() -> int {
    FMT_ASSERT(false, "handler cannot be used with automatic indexing");
    return 0;
  }
  constexpr auto on_index(int id) -> int {
    kind = arg_id_kind::index;
    arg_id = arg_ref<Char>(id);
    return 0;
  }
  constexpr auto on_name(basic_string_view<Char> id) -> int {
    kind = arg_id_kind::name;
    arg_id = arg_ref<Char>(id);
    return 0;
  }
};

template <typename Char> struct parse_arg_id_result {
  arg_id_kind kind;
  arg_ref<Char> arg_id;
  const Char* arg_id_end;
};

template <int ID, typename Char>
constexpr auto parse_arg_id(const Char* begin, const Char* end) {
  auto handler = arg_id_handler<Char>{arg_id_kind::none, arg_ref<Char>{}};
  auto arg_id_end = parse_arg_id(begin, end, handler);
  return parse_arg_id_result<Char>{handler.kind, handler.arg_id, arg_id_end};
}

template <typename T, typename Enable = void> struct field_type {
  using type = remove_cvref_t<T>;
};

template <typename T>
struct field_type<T, enable_if_t<detail::is_named_arg<T>::value>> {
  using type = remove_cvref_t<decltype(T::value)>;
};

template <typename T, typename Args, size_t END_POS, int ARG_INDEX, int NEXT_ID,
          typename S>
constexpr auto parse_replacement_field_then_tail(S fmt) {
  using char_type = typename S::char_type;
  constexpr auto str = basic_string_view<char_type>(fmt);
  constexpr char_type c = END_POS != str.size() ? str[END_POS] : char_type();
  if constexpr (c == '}') {
    return parse_tail<Args, END_POS + 1, NEXT_ID>(
        field<char_type, typename field_type<T>::type, ARG_INDEX>(), fmt);
  } else if constexpr (c != ':') {
    FMT_THROW(format_error("expected ':'"));
  } else {
    constexpr auto result = parse_specs<typename field_type<T>::type>(
        str, END_POS + 1, NEXT_ID == manual_indexing_id ? 0 : NEXT_ID);
    if constexpr (result.end >= str.size() || str[result.end] != '}') {
      FMT_THROW(format_error("expected '}'"));
      return 0;
    } else {
      return parse_tail<Args, result.end + 1, result.next_arg_id>(
          spec_field<char_type, typename field_type<T>::type, ARG_INDEX>{
              result.fmt},
          fmt);
    }
  }
}

// Compiles a non-empty format string and returns the compiled representation
// or unknown_format() on unrecognized input.
template <typename Args, size_t POS, int ID, typename S>
constexpr auto compile_format_string(S fmt) {
  using char_type = typename S::char_type;
  constexpr auto str = basic_string_view<char_type>(fmt);
  if constexpr (str[POS] == '{') {
    if constexpr (POS + 1 == str.size())
      FMT_THROW(format_error("unmatched '{' in format string"));
    if constexpr (str[POS + 1] == '{') {
      return parse_tail<Args, POS + 2, ID>(make_text(str, POS, 1), fmt);
    } else if constexpr (str[POS + 1] == '}' || str[POS + 1] == ':') {
      static_assert(ID != manual_indexing_id,
                    "cannot switch from manual to automatic argument indexing");
      constexpr auto next_id =
          ID != manual_indexing_id ? ID + 1 : manual_indexing_id;
      return parse_replacement_field_then_tail<get_type<ID, Args>, Args,
                                               POS + 1, ID, next_id>(fmt);
    } else {
      constexpr auto arg_id_result =
          parse_arg_id<ID>(str.data() + POS + 1, str.data() + str.size());
      constexpr auto arg_id_end_pos = arg_id_result.arg_id_end - str.data();
      constexpr char_type c =
          arg_id_end_pos != str.size() ? str[arg_id_end_pos] : char_type();
      static_assert(c == '}' || c == ':', "missing '}' in format string");
      if constexpr (arg_id_result.kind == arg_id_kind::index) {
        static_assert(
            ID == manual_indexing_id || ID == 0,
            "cannot switch from automatic to manual argument indexing");
        constexpr auto arg_index = arg_id_result.arg_id.index;
        return parse_replacement_field_then_tail<get_type<arg_index, Args>,
                                                 Args, arg_id_end_pos,
                                                 arg_index, manual_indexing_id>(
            fmt);
      } else if constexpr (arg_id_result.kind == arg_id_kind::name) {
        constexpr auto arg_index =
            get_arg_index_by_name(arg_id_result.arg_id.name, Args{});
        if constexpr (arg_index >= 0) {
          constexpr auto next_id =
              ID != manual_indexing_id ? ID + 1 : manual_indexing_id;
          return parse_replacement_field_then_tail<
              decltype(get_type<arg_index, Args>::value), Args, arg_id_end_pos,
              arg_index, next_id>(fmt);
        } else if constexpr (c == '}') {
          return parse_tail<Args, arg_id_end_pos + 1, ID>(
              runtime_named_field<char_type>{arg_id_result.arg_id.name}, fmt);
        } else if constexpr (c == ':') {
          return unknown_format();  // no type info for specs parsing
        }
      }
    }
  } else if constexpr (str[POS] == '}') {
    if constexpr (POS + 1 == str.size())
      FMT_THROW(format_error("unmatched '}' in format string"));
    return parse_tail<Args, POS + 2, ID>(make_text(str, POS, 1), fmt);
  } else {
    constexpr auto end = parse_text(str, POS + 1);
    if constexpr (end - POS > 1) {
      return parse_tail<Args, end, ID>(make_text(str, POS, end - POS), fmt);
    } else {
      return parse_tail<Args, end, ID>(code_unit<char_type>{str[POS]}, fmt);
    }
  }
}

template <typename... Args, typename S,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
constexpr auto compile(S fmt) {
  constexpr auto str = basic_string_view<typename S::char_type>(fmt);
  if constexpr (str.size() == 0) {
    return detail::make_text(str, 0, 0);
  } else {
    constexpr auto result =
        detail::compile_format_string<detail::type_list<Args...>, 0, 0>(fmt);
    return result;
  }
}
#endif  // defined(__cpp_if_constexpr) && defined(__cpp_return_type_deduction)
}  // namespace detail

FMT_BEGIN_EXPORT

#if defined(__cpp_if_constexpr) && defined(__cpp_return_type_deduction)

template <typename CompiledFormat, typename... T,
          typename Char = typename CompiledFormat::char_type,
          FMT_ENABLE_IF(detail::is_compiled_format<CompiledFormat>::value)>
FMT_INLINE FMT_CONSTEXPR_STRING auto format(const CompiledFormat& cf,
                                            const T&... args)
    -> std::basic_string<Char> {
  auto s = std::basic_string<Char>();
  cf.format(std::back_inserter(s), args...);
  return s;
}

template <typename OutputIt, typename CompiledFormat, typename... T,
          FMT_ENABLE_IF(detail::is_compiled_format<CompiledFormat>::value)>
constexpr FMT_INLINE auto format_to(OutputIt out, const CompiledFormat& cf,
                                    const T&... args) -> OutputIt {
  return cf.format(out, args...);
}

template <typename S, typename... T,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
FMT_INLINE FMT_CONSTEXPR_STRING auto format(const S&, T&&... args)
    -> std::basic_string<typename S::char_type> {
  if constexpr (std::is_same<typename S::char_type, char>::value) {
    constexpr auto str = basic_string_view<typename S::char_type>(S());
    if constexpr (str.size() == 2 && str[0] == '{' && str[1] == '}') {
      const auto& first = detail::first(args...);
      if constexpr (detail::is_named_arg<
                        remove_cvref_t<decltype(first)>>::value) {
        return fmt::to_string(first.value);
      } else {
        return fmt::to_string(first);
      }
    }
  }
  constexpr auto compiled = detail::compile<T...>(S());
  if constexpr (std::is_same<remove_cvref_t<decltype(compiled)>,
                             detail::unknown_format>()) {
    return fmt::format(
        static_cast<basic_string_view<typename S::char_type>>(S()),
        std::forward<T>(args)...);
  } else {
    return fmt::format(compiled, std::forward<T>(args)...);
  }
}

template <typename OutputIt, typename S, typename... T,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
FMT_CONSTEXPR auto format_to(OutputIt out, const S&, T&&... args) -> OutputIt {
  constexpr auto compiled = detail::compile<T...>(S());
  if constexpr (std::is_same<remove_cvref_t<decltype(compiled)>,
                             detail::unknown_format>()) {
    return fmt::format_to(
        out, static_cast<basic_string_view<typename S::char_type>>(S()),
        std::forward<T>(args)...);
  } else {
    return fmt::format_to(out, compiled, std::forward<T>(args)...);
  }
}
#endif

template <typename OutputIt, typename S, typename... T,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
auto format_to_n(OutputIt out, size_t n, const S& fmt, T&&... args)
    -> format_to_n_result<OutputIt> {
  using traits = detail::fixed_buffer_traits;
  auto buf = detail::iterator_buffer<OutputIt, char, traits>(out, n);
  fmt::format_to(std::back_inserter(buf), fmt, std::forward<T>(args)...);
  return {buf.out(), buf.count()};
}

template <typename S, typename... T,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
FMT_CONSTEXPR20 auto formatted_size(const S& fmt, T&&... args) -> size_t {
  auto buf = detail::counting_buffer<>();
  fmt::format_to(appender(buf), fmt, std::forward<T>(args)...);
  return buf.count();
}

template <typename S, typename... T,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
void print(std::FILE* f, const S& fmt, T&&... args) {
  auto buf = memory_buffer();
  fmt::format_to(appender(buf), fmt, std::forward<T>(args)...);
  detail::print(f, {buf.data(), buf.size()});
}

template <typename S, typename... T,
          FMT_ENABLE_IF(is_compiled_string<S>::value)>
void print(const S& fmt, T&&... args) {
  print(stdout, fmt, std::forward<T>(args)...);
}

template <size_t N> class static_format_result {
 private:
  char data[N];

 public:
  template <typename S, typename... T,
            FMT_ENABLE_IF(is_compiled_string<S>::value)>
  explicit FMT_CONSTEXPR static_format_result(const S& fmt, T&&... args) {
    *fmt::format_to(data, fmt, std::forward<T>(args)...) = '\0';
  }

  auto str() const -> fmt::string_view { return {data, N - 1}; }
  auto c_str() const -> const char* { return data; }
};

/**
 * Formats arguments according to the format string `fmt_str` and produces
 * a string of the exact required size at compile time. Both the format string
 * and the arguments must be compile-time expressions.
 *
 * The resulting string can be accessed as a C string via `c_str()` or as
 * a `fmt::string_view` via `str()`.
 *
 * **Example**:
 *
 *     // Produces the static string "42" at compile time.
 *     static constexpr auto result = FMT_STATIC_FORMAT("{}", 42);
 *     const char* s = result.c_str();
 */
#define FMT_STATIC_FORMAT(fmt_str, ...)                            \
  fmt::static_format_result<                                       \
      fmt::formatted_size(FMT_COMPILE(fmt_str), __VA_ARGS__) + 1>( \
      FMT_COMPILE(fmt_str), __VA_ARGS__)

FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_COMPILE_H_
