// Formatting library for C++ - formatters for standard library types
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_STD_H_
#define FMT_STD_H_

#include "format.h"
#include "ostream.h"

#ifndef FMT_MODULE
#  include <atomic>
#  include <bitset>
#  include <complex>
#  include <exception>
#  include <functional>  // std::reference_wrapper
#  include <memory>
#  include <thread>
#  include <type_traits>
#  include <typeinfo>  // std::type_info
#  include <utility>   // std::make_index_sequence

// Check FMT_CPLUSPLUS to suppress a bogus warning in MSVC.
#  if FMT_CPLUSPLUS >= 201703L
#    if FMT_HAS_INCLUDE(<filesystem>) && \
        (!defined(FMT_CPP_LIB_FILESYSTEM) || FMT_CPP_LIB_FILESYSTEM != 0)
#      include <filesystem>
#    endif
#    if FMT_HAS_INCLUDE(<variant>)
#      include <variant>
#    endif
#    if FMT_HAS_INCLUDE(<optional>)
#      include <optional>
#    endif
#  endif
// Use > instead of >= in the version check because <source_location> may be
// available after C++17 but before C++20 is marked as implemented.
#  if FMT_CPLUSPLUS > 201703L && FMT_HAS_INCLUDE(<source_location>)
#    include <source_location>
#  endif
#  if FMT_CPLUSPLUS > 202002L && FMT_HAS_INCLUDE(<expected>)
#    include <expected>
#  endif
#endif  // FMT_MODULE

#if FMT_HAS_INCLUDE(<version>)
#  include <version>
#endif

// GCC 4 does not support FMT_HAS_INCLUDE.
#if FMT_HAS_INCLUDE(<cxxabi.h>) || defined(__GLIBCXX__)
#  include <cxxabi.h>
// Android NDK with gabi++ library on some architectures does not implement
// abi::__cxa_demangle().
#  ifndef __GABIXX_CXXABI_H__
#    define FMT_HAS_ABI_CXA_DEMANGLE
#  endif
#endif

#ifdef FMT_CPP_LIB_FILESYSTEM
// Use the provided definition.
#elif defined(__cpp_lib_filesystem)
#  define FMT_CPP_LIB_FILESYSTEM __cpp_lib_filesystem
#else
#  define FMT_CPP_LIB_FILESYSTEM 0
#endif

#ifdef FMT_CPP_LIB_VARIANT
// Use the provided definition.
#elif defined(__cpp_lib_variant)
#  define FMT_CPP_LIB_VARIANT __cpp_lib_variant
#else
#  define FMT_CPP_LIB_VARIANT 0
#endif

FMT_BEGIN_NAMESPACE
namespace detail {

#if FMT_CPP_LIB_FILESYSTEM

template <typename Char, typename PathChar>
auto get_path_string(const std::filesystem::path& p,
                     const std::basic_string<PathChar>& native) {
  if constexpr (std::is_same_v<Char, char> && std::is_same_v<PathChar, wchar_t>)
    return to_utf8<wchar_t>(native, to_utf8_error_policy::replace);
  else
    return p.string<Char>();
}

template <typename Char, typename PathChar>
void write_escaped_path(basic_memory_buffer<Char>& quoted,
                        const std::filesystem::path& p,
                        const std::basic_string<PathChar>& native) {
  if constexpr (std::is_same_v<Char, char> &&
                std::is_same_v<PathChar, wchar_t>) {
    auto buf = basic_memory_buffer<wchar_t>();
    write_escaped_string<wchar_t>(std::back_inserter(buf), native);
    bool valid = to_utf8<wchar_t>::convert(quoted, {buf.data(), buf.size()});
    FMT_ASSERT(valid, "invalid utf16");
  } else if constexpr (std::is_same_v<Char, PathChar>) {
    write_escaped_string<std::filesystem::path::value_type>(
        std::back_inserter(quoted), native);
  } else {
    write_escaped_string<Char>(std::back_inserter(quoted), p.string<Char>());
  }
}

#endif  // FMT_CPP_LIB_FILESYSTEM

#if defined(__cpp_lib_expected) || FMT_CPP_LIB_VARIANT

template <typename Char, typename OutputIt, typename T, typename FormatContext>
auto write_escaped_alternative(OutputIt out, const T& v, FormatContext& ctx)
    -> OutputIt {
  if constexpr (has_to_string_view<T>::value)
    return write_escaped_string<Char>(out, detail::to_string_view(v));
  if constexpr (std::is_same_v<T, Char>) return write_escaped_char(out, v);

  formatter<std::remove_cv_t<T>, Char> underlying;
  maybe_set_debug_format(underlying, true);
  return underlying.format(v, ctx);
}
#endif

#if FMT_CPP_LIB_VARIANT

template <typename> struct is_variant_like_ : std::false_type {};
template <typename... Types>
struct is_variant_like_<std::variant<Types...>> : std::true_type {};

template <typename Variant, typename Char> class is_variant_formattable {
  template <size_t... Is>
  static auto check(std::index_sequence<Is...>) -> std::conjunction<
      is_formattable<std::variant_alternative_t<Is, Variant>, Char>...>;

 public:
  static constexpr bool value = decltype(check(
      std::make_index_sequence<std::variant_size<Variant>::value>()))::value;
};

#endif  // FMT_CPP_LIB_VARIANT

#if FMT_USE_RTTI
inline auto normalize_libcxx_inline_namespaces(string_view demangled_name_view,
                                               char* begin) -> string_view {
  // Normalization of stdlib inline namespace names.
  // libc++ inline namespaces.
  //  std::__1::*       -> std::*
  //  std::__1::__fs::* -> std::*
  // libstdc++ inline namespaces.
  //  std::__cxx11::*             -> std::*
  //  std::filesystem::__cxx11::* -> std::filesystem::*
  if (demangled_name_view.starts_with("std::")) {
    char* to = begin + 5;  // std::
    for (const char *from = to, *end = begin + demangled_name_view.size();
         from < end;) {
      // This is safe, because demangled_name is NUL-terminated.
      if (from[0] == '_' && from[1] == '_') {
        const char* next = from + 1;
        while (next < end && *next != ':') next++;
        if (next[0] == ':' && next[1] == ':') {
          from = next + 2;
          continue;
        }
      }
      *to++ = *from++;
    }
    demangled_name_view = {begin, detail::to_unsigned(to - begin)};
  }
  return demangled_name_view;
}

template <class OutputIt>
auto normalize_msvc_abi_name(string_view abi_name_view, OutputIt out)
    -> OutputIt {
  const string_view demangled_name(abi_name_view);
  for (size_t i = 0; i < demangled_name.size(); ++i) {
    auto sub = demangled_name;
    sub.remove_prefix(i);
    if (sub.starts_with("enum ")) {
      i += 4;
      continue;
    }
    if (sub.starts_with("class ") || sub.starts_with("union ")) {
      i += 5;
      continue;
    }
    if (sub.starts_with("struct ")) {
      i += 6;
      continue;
    }
    if (*sub.begin() != ' ') *out++ = *sub.begin();
  }
  return out;
}

template <typename OutputIt>
auto write_demangled_name(OutputIt out, const std::type_info& ti) -> OutputIt {
#  ifdef FMT_HAS_ABI_CXA_DEMANGLE
  int status = 0;
  size_t size = 0;
  std::unique_ptr<char, void (*)(void*)> demangled_name_ptr(
      abi::__cxa_demangle(ti.name(), nullptr, &size, &status), &free);

  string_view demangled_name_view;
  if (demangled_name_ptr) {
    demangled_name_view = normalize_libcxx_inline_namespaces(
        demangled_name_ptr.get(), demangled_name_ptr.get());
  } else {
    demangled_name_view = string_view(ti.name());
  }
  return detail::write_bytes<char>(out, demangled_name_view);
#  elif FMT_MSC_VERSION && defined(_MSVC_STL_UPDATE)
  return normalize_msvc_abi_name(ti.name(), out);
#  elif FMT_MSC_VERSION && defined(_LIBCPP_VERSION)
  const string_view demangled_name = ti.name();
  std::string name_copy(demangled_name.size(), '\0');
  // normalize_msvc_abi_name removes class, struct, union etc that MSVC has in
  // front of types
  name_copy.erase(normalize_msvc_abi_name(demangled_name, name_copy.begin()),
                  name_copy.end());
  // normalize_libcxx_inline_namespaces removes the inline __1, __2, etc
  // namespaces libc++ uses for ABI versioning On MSVC ABI + libc++
  // environments, we need to eliminate both of them.
  const string_view normalized_name =
      normalize_libcxx_inline_namespaces(name_copy, name_copy.data());
  return detail::write_bytes<char>(out, normalized_name);
#  else
  return detail::write_bytes<char>(out, string_view(ti.name()));
#  endif
}

#endif  // FMT_USE_RTTI

template <typename T, typename Enable = void>
struct has_flip : std::false_type {};

template <typename T>
struct has_flip<T, void_t<decltype(std::declval<T>().flip())>>
    : std::true_type {};

template <typename T> struct is_bit_reference_like {
  static constexpr bool value = std::is_convertible<T, bool>::value &&
                                std::is_nothrow_assignable<T, bool>::value &&
                                has_flip<T>::value;
};

// Workaround for libc++ incompatibility with C++ standard.
// According to the Standard, `bitset::operator[] const` returns bool.
#if defined(_LIBCPP_VERSION) && !defined(FMT_IMPORT_STD)
template <typename C>
struct is_bit_reference_like<std::__bit_const_reference<C>> {
  static constexpr bool value = true;
};
#endif

template <typename T, typename Enable = void>
struct has_format_as : std::false_type {};
template <typename T>
struct has_format_as<T, void_t<decltype(format_as(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T, typename Enable = void>
struct has_format_as_member : std::false_type {};
template <typename T>
struct has_format_as_member<
    T, void_t<decltype(formatter<T>::format_as(std::declval<const T&>()))>>
    : std::true_type {};

}  // namespace detail

template <typename T, typename Deleter>
auto ptr(const std::unique_ptr<T, Deleter>& p) -> const void* {
  return p.get();
}
template <typename T> auto ptr(const std::shared_ptr<T>& p) -> const void* {
  return p.get();
}

#if FMT_CPP_LIB_FILESYSTEM

template <typename Char> struct formatter<std::filesystem::path, Char> {
 private:
  format_specs specs_;
  detail::arg_ref<Char> width_ref_;
  bool debug_ = false;
  char path_type_ = 0;

 public:
  FMT_CONSTEXPR void set_debug_format(bool set = true) { debug_ = set; }

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) {
    auto it = ctx.begin(), end = ctx.end();
    if (it == end) return it;

    it = detail::parse_align(it, end, specs_);
    if (it == end) return it;

    Char c = *it;
    if ((c >= '0' && c <= '9') || c == '{')
      it = detail::parse_width(it, end, specs_, width_ref_, ctx);
    if (it != end && *it == '?') {
      debug_ = true;
      ++it;
    }
    if (it != end && (*it == 'g')) path_type_ = detail::to_ascii(*it++);
    return it;
  }

  template <typename FormatContext>
  auto format(const std::filesystem::path& p, FormatContext& ctx) const {
    auto specs = specs_;
    auto path_string =
        !path_type_ ? p.native()
                    : p.generic_string<std::filesystem::path::value_type>();

    detail::handle_dynamic_spec(specs.dynamic_width(), specs.width, width_ref_,
                                ctx);
    if (!debug_) {
      auto s = detail::get_path_string<Char>(p, path_string);
      return detail::write(ctx.out(), basic_string_view<Char>(s), specs);
    }
    auto quoted = basic_memory_buffer<Char>();
    detail::write_escaped_path(quoted, p, path_string);
    return detail::write(ctx.out(),
                         basic_string_view<Char>(quoted.data(), quoted.size()),
                         specs);
  }
};

class path : public std::filesystem::path {
 public:
  auto display_string() const -> std::string {
    const std::filesystem::path& base = *this;
    return fmt::format(FMT_STRING("{}"), base);
  }
  auto system_string() const -> std::string { return string(); }

  auto generic_display_string() const -> std::string {
    const std::filesystem::path& base = *this;
    return fmt::format(FMT_STRING("{:g}"), base);
  }
  auto generic_system_string() const -> std::string { return generic_string(); }
};

#endif  // FMT_CPP_LIB_FILESYSTEM

template <size_t N, typename Char>
struct formatter<std::bitset<N>, Char>
    : nested_formatter<basic_string_view<Char>, Char> {
 private:
  // This is a functor because C++11 doesn't support generic lambdas.
  struct writer {
    const std::bitset<N>& bs;

    template <typename OutputIt>
    FMT_CONSTEXPR auto operator()(OutputIt out) -> OutputIt {
      for (auto pos = N; pos > 0; --pos)
        out = detail::write<Char>(out, bs[pos - 1] ? Char('1') : Char('0'));
      return out;
    }
  };

 public:
  template <typename FormatContext>
  auto format(const std::bitset<N>& bs, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return this->write_padded(ctx, writer{bs});
  }
};

template <typename Char>
struct formatter<std::thread::id, Char> : basic_ostream_formatter<Char> {};

#ifdef __cpp_lib_optional
template <typename T, typename Char>
struct formatter<std::optional<T>, Char,
                 std::enable_if_t<is_formattable<T, Char>::value>> {
 private:
  formatter<std::remove_cv_t<T>, Char> underlying_;
  static constexpr basic_string_view<Char> optional =
      detail::string_literal<Char, 'o', 'p', 't', 'i', 'o', 'n', 'a', 'l',
                             '('>{};
  static constexpr basic_string_view<Char> none =
      detail::string_literal<Char, 'n', 'o', 'n', 'e'>{};

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) {
    detail::maybe_set_debug_format(underlying_, true);
    return underlying_.parse(ctx);
  }

  template <typename FormatContext>
  auto format(const std::optional<T>& opt, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    if (!opt) return detail::write<Char>(ctx.out(), none);

    auto out = ctx.out();
    out = detail::write<Char>(out, optional);
    ctx.advance_to(out);
    out = underlying_.format(*opt, ctx);
    return detail::write(out, ')');
  }
};
#endif  // __cpp_lib_optional

#ifdef __cpp_lib_expected
template <typename T, typename E, typename Char>
struct formatter<std::expected<T, E>, Char,
                 std::enable_if_t<(std::is_void<T>::value ||
                                   is_formattable<T, Char>::value) &&
                                  is_formattable<E, Char>::value>> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return ctx.begin();
  }

  template <typename FormatContext>
  auto format(const std::expected<T, E>& value, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto out = ctx.out();

    if (value.has_value()) {
      out = detail::write<Char>(out, "expected(");
      if constexpr (!std::is_void<T>::value)
        out = detail::write_escaped_alternative<Char>(out, *value, ctx);
    } else {
      out = detail::write<Char>(out, "unexpected(");
      out = detail::write_escaped_alternative<Char>(out, value.error(), ctx);
    }
    *out++ = ')';
    return out;
  }
};
#endif  // __cpp_lib_expected

#ifdef __cpp_lib_source_location
template <> struct formatter<std::source_location> {
  FMT_CONSTEXPR auto parse(parse_context<>& ctx) { return ctx.begin(); }

  template <typename FormatContext>
  auto format(const std::source_location& loc, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto out = ctx.out();
    out = detail::write(out, loc.file_name());
    out = detail::write(out, ':');
    out = detail::write<char>(out, loc.line());
    out = detail::write(out, ':');
    out = detail::write<char>(out, loc.column());
    out = detail::write(out, ": ");
    out = detail::write(out, loc.function_name());
    return out;
  }
};
#endif

#if FMT_CPP_LIB_VARIANT

template <typename T> struct is_variant_like {
  static constexpr bool value = detail::is_variant_like_<T>::value;
};

template <typename Char> struct formatter<std::monostate, Char> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return ctx.begin();
  }

  template <typename FormatContext>
  auto format(const std::monostate&, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return detail::write<Char>(ctx.out(), "monostate");
  }
};

template <typename Variant, typename Char>
struct formatter<Variant, Char,
                 std::enable_if_t<std::conjunction_v<
                     is_variant_like<Variant>,
                     detail::is_variant_formattable<Variant, Char>>>> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return ctx.begin();
  }

  template <typename FormatContext>
  auto format(const Variant& value, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto out = ctx.out();

    out = detail::write<Char>(out, "variant(");
    FMT_TRY {
      std::visit(
          [&](const auto& v) {
            out = detail::write_escaped_alternative<Char>(out, v, ctx);
          },
          value);
    }
    FMT_CATCH(const std::bad_variant_access&) {
      detail::write<Char>(out, "valueless by exception");
    }
    *out++ = ')';
    return out;
  }
};

#endif  // FMT_CPP_LIB_VARIANT

template <> struct formatter<std::error_code> {
 private:
  format_specs specs_;
  detail::arg_ref<char> width_ref_;
  bool debug_ = false;

 public:
  FMT_CONSTEXPR void set_debug_format(bool set = true) { debug_ = set; }

  FMT_CONSTEXPR auto parse(parse_context<>& ctx) -> const char* {
    auto it = ctx.begin(), end = ctx.end();
    if (it == end) return it;

    it = detail::parse_align(it, end, specs_);

    char c = *it;
    if (it != end && ((c >= '0' && c <= '9') || c == '{'))
      it = detail::parse_width(it, end, specs_, width_ref_, ctx);

    if (it != end && *it == '?') {
      debug_ = true;
      ++it;
    }
    if (it != end && *it == 's') {
      specs_.set_type(presentation_type::string);
      ++it;
    }
    return it;
  }

  template <typename FormatContext>
  FMT_CONSTEXPR20 auto format(const std::error_code& ec,
                              FormatContext& ctx) const -> decltype(ctx.out()) {
    auto specs = specs_;
    detail::handle_dynamic_spec(specs.dynamic_width(), specs.width, width_ref_,
                                ctx);
    auto buf = memory_buffer();
    if (specs_.type() == presentation_type::string) {
      buf.append(ec.message());
    } else {
      buf.append(string_view(ec.category().name()));
      buf.push_back(':');
      detail::write<char>(appender(buf), ec.value());
    }
    auto quoted = memory_buffer();
    auto str = string_view(buf.data(), buf.size());
    if (debug_) {
      detail::write_escaped_string<char>(std::back_inserter(quoted), str);
      str = string_view(quoted.data(), quoted.size());
    }
    return detail::write<char>(ctx.out(), str, specs);
  }
};

#if FMT_USE_RTTI
template <> struct formatter<std::type_info> {
 public:
  FMT_CONSTEXPR auto parse(parse_context<>& ctx) -> const char* {
    return ctx.begin();
  }

  template <typename Context>
  auto format(const std::type_info& ti, Context& ctx) const
      -> decltype(ctx.out()) {
    return detail::write_demangled_name(ctx.out(), ti);
  }
};
#endif  // FMT_USE_RTTI

template <typename T>
struct formatter<
    T, char,
    typename std::enable_if<std::is_base_of<std::exception, T>::value>::type> {
 private:
  bool with_typename_ = false;

 public:
  FMT_CONSTEXPR auto parse(parse_context<>& ctx) -> const char* {
    auto it = ctx.begin();
    auto end = ctx.end();
    if (it == end || *it == '}') return it;
    if (*it == 't') {
      ++it;
      with_typename_ = FMT_USE_RTTI != 0;
    }
    return it;
  }

  template <typename Context>
  auto format(const std::exception& ex, Context& ctx) const
      -> decltype(ctx.out()) {
    auto out = ctx.out();
#if FMT_USE_RTTI
    if (with_typename_) {
      out = detail::write_demangled_name(out, typeid(ex));
      *out++ = ':';
      *out++ = ' ';
    }
#endif
    return detail::write_bytes<char>(out, string_view(ex.what()));
  }
};

// We can't use std::vector<bool, Allocator>::reference and
// std::bitset<N>::reference because the compiler can't deduce Allocator and N
// in partial specialization.
template <typename BitRef, typename Char>
struct formatter<BitRef, Char,
                 enable_if_t<detail::is_bit_reference_like<BitRef>::value>>
    : formatter<bool, Char> {
  template <typename FormatContext>
  FMT_CONSTEXPR auto format(const BitRef& v, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return formatter<bool, Char>::format(v, ctx);
  }
};

template <typename T, typename Char>
struct formatter<std::atomic<T>, Char,
                 enable_if_t<is_formattable<T, Char>::value>>
    : formatter<T, Char> {
  template <typename FormatContext>
  auto format(const std::atomic<T>& v, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return formatter<T, Char>::format(v.load(), ctx);
  }
};

#ifdef __cpp_lib_atomic_flag_test
template <typename Char>
struct formatter<std::atomic_flag, Char> : formatter<bool, Char> {
  template <typename FormatContext>
  auto format(const std::atomic_flag& v, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return formatter<bool, Char>::format(v.test(), ctx);
  }
};
#endif  // __cpp_lib_atomic_flag_test

template <typename T, typename Char> struct formatter<std::complex<T>, Char> {
 private:
  detail::dynamic_format_specs<Char> specs_;

  template <typename FormatContext, typename OutputIt>
  FMT_CONSTEXPR auto do_format(const std::complex<T>& c,
                               detail::dynamic_format_specs<Char>& specs,
                               FormatContext& ctx, OutputIt out) const
      -> OutputIt {
    if (c.real() != 0) {
      *out++ = Char('(');
      out = detail::write<Char>(out, c.real(), specs, ctx.locale());
      specs.set_sign(sign::plus);
      out = detail::write<Char>(out, c.imag(), specs, ctx.locale());
      if (!detail::isfinite(c.imag())) *out++ = Char(' ');
      *out++ = Char('i');
      *out++ = Char(')');
      return out;
    }
    out = detail::write<Char>(out, c.imag(), specs, ctx.locale());
    if (!detail::isfinite(c.imag())) *out++ = Char(' ');
    *out++ = Char('i');
    return out;
  }

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    if (ctx.begin() == ctx.end() || *ctx.begin() == '}') return ctx.begin();
    return parse_format_specs(ctx.begin(), ctx.end(), specs_, ctx,
                              detail::type_constant<T, Char>::value);
  }

  template <typename FormatContext>
  auto format(const std::complex<T>& c, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto specs = specs_;
    if (specs.dynamic()) {
      detail::handle_dynamic_spec(specs.dynamic_width(), specs.width,
                                  specs.width_ref, ctx);
      detail::handle_dynamic_spec(specs.dynamic_precision(), specs.precision,
                                  specs.precision_ref, ctx);
    }

    if (specs.width == 0) return do_format(c, specs, ctx, ctx.out());
    auto buf = basic_memory_buffer<Char>();

    auto outer_specs = format_specs();
    outer_specs.width = specs.width;
    outer_specs.copy_fill_from(specs);
    outer_specs.set_align(specs.align());

    specs.width = 0;
    specs.set_fill({});
    specs.set_align(align::none);

    do_format(c, specs, ctx, basic_appender<Char>(buf));
    return detail::write<Char>(ctx.out(),
                               basic_string_view<Char>(buf.data(), buf.size()),
                               outer_specs);
  }
};

template <typename T, typename Char>
struct formatter<std::reference_wrapper<T>, Char,
                 // Guard against format_as because reference_wrapper is
                 // implicitly convertible to T&.
                 enable_if_t<is_formattable<remove_cvref_t<T>, Char>::value &&
                             !detail::has_format_as<T>::value &&
                             !detail::has_format_as_member<T>::value>>
    : formatter<remove_cvref_t<T>, Char> {
  template <typename FormatContext>
  auto format(std::reference_wrapper<T> ref, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return formatter<remove_cvref_t<T>, Char>::format(ref.get(), ctx);
  }
};

FMT_END_NAMESPACE

#endif  // FMT_STD_H_
