// Formatting library for C++ - color support
//
// Copyright (c) 2018 - present, Victor Zverovich and fmt contributors
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_COLOR_H_
#define FMT_COLOR_H_

#include "format.h"

FMT_BEGIN_NAMESPACE
FMT_BEGIN_EXPORT

enum class color : uint32_t {
  alice_blue = 0xF0F8FF,               // rgb(240,248,255)
  antique_white = 0xFAEBD7,            // rgb(250,235,215)
  aqua = 0x00FFFF,                     // rgb(0,255,255)
  aquamarine = 0x7FFFD4,               // rgb(127,255,212)
  azure = 0xF0FFFF,                    // rgb(240,255,255)
  beige = 0xF5F5DC,                    // rgb(245,245,220)
  bisque = 0xFFE4C4,                   // rgb(255,228,196)
  black = 0x000000,                    // rgb(0,0,0)
  blanched_almond = 0xFFEBCD,          // rgb(255,235,205)
  blue = 0x0000FF,                     // rgb(0,0,255)
  blue_violet = 0x8A2BE2,              // rgb(138,43,226)
  brown = 0xA52A2A,                    // rgb(165,42,42)
  burly_wood = 0xDEB887,               // rgb(222,184,135)
  cadet_blue = 0x5F9EA0,               // rgb(95,158,160)
  chartreuse = 0x7FFF00,               // rgb(127,255,0)
  chocolate = 0xD2691E,                // rgb(210,105,30)
  coral = 0xFF7F50,                    // rgb(255,127,80)
  cornflower_blue = 0x6495ED,          // rgb(100,149,237)
  cornsilk = 0xFFF8DC,                 // rgb(255,248,220)
  crimson = 0xDC143C,                  // rgb(220,20,60)
  cyan = 0x00FFFF,                     // rgb(0,255,255)
  dark_blue = 0x00008B,                // rgb(0,0,139)
  dark_cyan = 0x008B8B,                // rgb(0,139,139)
  dark_golden_rod = 0xB8860B,          // rgb(184,134,11)
  dark_gray = 0xA9A9A9,                // rgb(169,169,169)
  dark_green = 0x006400,               // rgb(0,100,0)
  dark_khaki = 0xBDB76B,               // rgb(189,183,107)
  dark_magenta = 0x8B008B,             // rgb(139,0,139)
  dark_olive_green = 0x556B2F,         // rgb(85,107,47)
  dark_orange = 0xFF8C00,              // rgb(255,140,0)
  dark_orchid = 0x9932CC,              // rgb(153,50,204)
  dark_red = 0x8B0000,                 // rgb(139,0,0)
  dark_salmon = 0xE9967A,              // rgb(233,150,122)
  dark_sea_green = 0x8FBC8F,           // rgb(143,188,143)
  dark_slate_blue = 0x483D8B,          // rgb(72,61,139)
  dark_slate_gray = 0x2F4F4F,          // rgb(47,79,79)
  dark_turquoise = 0x00CED1,           // rgb(0,206,209)
  dark_violet = 0x9400D3,              // rgb(148,0,211)
  deep_pink = 0xFF1493,                // rgb(255,20,147)
  deep_sky_blue = 0x00BFFF,            // rgb(0,191,255)
  dim_gray = 0x696969,                 // rgb(105,105,105)
  dodger_blue = 0x1E90FF,              // rgb(30,144,255)
  fire_brick = 0xB22222,               // rgb(178,34,34)
  floral_white = 0xFFFAF0,             // rgb(255,250,240)
  forest_green = 0x228B22,             // rgb(34,139,34)
  fuchsia = 0xFF00FF,                  // rgb(255,0,255)
  gainsboro = 0xDCDCDC,                // rgb(220,220,220)
  ghost_white = 0xF8F8FF,              // rgb(248,248,255)
  gold = 0xFFD700,                     // rgb(255,215,0)
  golden_rod = 0xDAA520,               // rgb(218,165,32)
  gray = 0x808080,                     // rgb(128,128,128)
  green = 0x008000,                    // rgb(0,128,0)
  green_yellow = 0xADFF2F,             // rgb(173,255,47)
  honey_dew = 0xF0FFF0,                // rgb(240,255,240)
  hot_pink = 0xFF69B4,                 // rgb(255,105,180)
  indian_red = 0xCD5C5C,               // rgb(205,92,92)
  indigo = 0x4B0082,                   // rgb(75,0,130)
  ivory = 0xFFFFF0,                    // rgb(255,255,240)
  khaki = 0xF0E68C,                    // rgb(240,230,140)
  lavender = 0xE6E6FA,                 // rgb(230,230,250)
  lavender_blush = 0xFFF0F5,           // rgb(255,240,245)
  lawn_green = 0x7CFC00,               // rgb(124,252,0)
  lemon_chiffon = 0xFFFACD,            // rgb(255,250,205)
  light_blue = 0xADD8E6,               // rgb(173,216,230)
  light_coral = 0xF08080,              // rgb(240,128,128)
  light_cyan = 0xE0FFFF,               // rgb(224,255,255)
  light_golden_rod_yellow = 0xFAFAD2,  // rgb(250,250,210)
  light_gray = 0xD3D3D3,               // rgb(211,211,211)
  light_green = 0x90EE90,              // rgb(144,238,144)
  light_pink = 0xFFB6C1,               // rgb(255,182,193)
  light_salmon = 0xFFA07A,             // rgb(255,160,122)
  light_sea_green = 0x20B2AA,          // rgb(32,178,170)
  light_sky_blue = 0x87CEFA,           // rgb(135,206,250)
  light_slate_gray = 0x778899,         // rgb(119,136,153)
  light_steel_blue = 0xB0C4DE,         // rgb(176,196,222)
  light_yellow = 0xFFFFE0,             // rgb(255,255,224)
  lime = 0x00FF00,                     // rgb(0,255,0)
  lime_green = 0x32CD32,               // rgb(50,205,50)
  linen = 0xFAF0E6,                    // rgb(250,240,230)
  magenta = 0xFF00FF,                  // rgb(255,0,255)
  maroon = 0x800000,                   // rgb(128,0,0)
  medium_aquamarine = 0x66CDAA,        // rgb(102,205,170)
  medium_blue = 0x0000CD,              // rgb(0,0,205)
  medium_orchid = 0xBA55D3,            // rgb(186,85,211)
  medium_purple = 0x9370DB,            // rgb(147,112,219)
  medium_sea_green = 0x3CB371,         // rgb(60,179,113)
  medium_slate_blue = 0x7B68EE,        // rgb(123,104,238)
  medium_spring_green = 0x00FA9A,      // rgb(0,250,154)
  medium_turquoise = 0x48D1CC,         // rgb(72,209,204)
  medium_violet_red = 0xC71585,        // rgb(199,21,133)
  midnight_blue = 0x191970,            // rgb(25,25,112)
  mint_cream = 0xF5FFFA,               // rgb(245,255,250)
  misty_rose = 0xFFE4E1,               // rgb(255,228,225)
  moccasin = 0xFFE4B5,                 // rgb(255,228,181)
  navajo_white = 0xFFDEAD,             // rgb(255,222,173)
  navy = 0x000080,                     // rgb(0,0,128)
  old_lace = 0xFDF5E6,                 // rgb(253,245,230)
  olive = 0x808000,                    // rgb(128,128,0)
  olive_drab = 0x6B8E23,               // rgb(107,142,35)
  orange = 0xFFA500,                   // rgb(255,165,0)
  orange_red = 0xFF4500,               // rgb(255,69,0)
  orchid = 0xDA70D6,                   // rgb(218,112,214)
  pale_golden_rod = 0xEEE8AA,          // rgb(238,232,170)
  pale_green = 0x98FB98,               // rgb(152,251,152)
  pale_turquoise = 0xAFEEEE,           // rgb(175,238,238)
  pale_violet_red = 0xDB7093,          // rgb(219,112,147)
  papaya_whip = 0xFFEFD5,              // rgb(255,239,213)
  peach_puff = 0xFFDAB9,               // rgb(255,218,185)
  peru = 0xCD853F,                     // rgb(205,133,63)
  pink = 0xFFC0CB,                     // rgb(255,192,203)
  plum = 0xDDA0DD,                     // rgb(221,160,221)
  powder_blue = 0xB0E0E6,              // rgb(176,224,230)
  purple = 0x800080,                   // rgb(128,0,128)
  rebecca_purple = 0x663399,           // rgb(102,51,153)
  red = 0xFF0000,                      // rgb(255,0,0)
  rosy_brown = 0xBC8F8F,               // rgb(188,143,143)
  royal_blue = 0x4169E1,               // rgb(65,105,225)
  saddle_brown = 0x8B4513,             // rgb(139,69,19)
  salmon = 0xFA8072,                   // rgb(250,128,114)
  sandy_brown = 0xF4A460,              // rgb(244,164,96)
  sea_green = 0x2E8B57,                // rgb(46,139,87)
  sea_shell = 0xFFF5EE,                // rgb(255,245,238)
  sienna = 0xA0522D,                   // rgb(160,82,45)
  silver = 0xC0C0C0,                   // rgb(192,192,192)
  sky_blue = 0x87CEEB,                 // rgb(135,206,235)
  slate_blue = 0x6A5ACD,               // rgb(106,90,205)
  slate_gray = 0x708090,               // rgb(112,128,144)
  snow = 0xFFFAFA,                     // rgb(255,250,250)
  spring_green = 0x00FF7F,             // rgb(0,255,127)
  steel_blue = 0x4682B4,               // rgb(70,130,180)
  tan = 0xD2B48C,                      // rgb(210,180,140)
  teal = 0x008080,                     // rgb(0,128,128)
  thistle = 0xD8BFD8,                  // rgb(216,191,216)
  tomato = 0xFF6347,                   // rgb(255,99,71)
  turquoise = 0x40E0D0,                // rgb(64,224,208)
  violet = 0xEE82EE,                   // rgb(238,130,238)
  wheat = 0xF5DEB3,                    // rgb(245,222,179)
  white = 0xFFFFFF,                    // rgb(255,255,255)
  white_smoke = 0xF5F5F5,              // rgb(245,245,245)
  yellow = 0xFFFF00,                   // rgb(255,255,0)
  yellow_green = 0x9ACD32              // rgb(154,205,50)
};                                     // enum class color

enum class terminal_color : uint8_t {
  black = 30,
  red,
  green,
  yellow,
  blue,
  magenta,
  cyan,
  white,
  bright_black = 90,
  bright_red,
  bright_green,
  bright_yellow,
  bright_blue,
  bright_magenta,
  bright_cyan,
  bright_white
};

enum class emphasis : uint8_t {
  bold = 1,
  faint = 1 << 1,
  italic = 1 << 2,
  underline = 1 << 3,
  blink = 1 << 4,
  reverse = 1 << 5,
  conceal = 1 << 6,
  strikethrough = 1 << 7,
};

// rgb is a struct for red, green and blue colors.
// Using the name "rgb" makes some editors show the color in a tooltip.
struct rgb {
  constexpr rgb() : r(0), g(0), b(0) {}
  constexpr rgb(uint8_t r_, uint8_t g_, uint8_t b_) : r(r_), g(g_), b(b_) {}
  constexpr rgb(uint32_t hex)
      : r((hex >> 16) & 0xFF), g((hex >> 8) & 0xFF), b(hex & 0xFF) {}
  constexpr rgb(color hex)
      : r((uint32_t(hex) >> 16) & 0xFF),
        g((uint32_t(hex) >> 8) & 0xFF),
        b(uint32_t(hex) & 0xFF) {}
  uint8_t r;
  uint8_t g;
  uint8_t b;
};

namespace detail {

// A bit-packed variant of an RGB color, a terminal color, or unset color.
// see text_style for the bit-packing scheme.
struct color_type {
  constexpr color_type() noexcept = default;
  constexpr color_type(color rgb_color) noexcept
      : value_(static_cast<uint32_t>(rgb_color) | (1 << 24)) {}
  constexpr color_type(rgb rgb_color) noexcept
      : color_type(static_cast<color>(
            (static_cast<uint32_t>(rgb_color.r) << 16) |
            (static_cast<uint32_t>(rgb_color.g) << 8) | rgb_color.b)) {}
  constexpr color_type(terminal_color term_color) noexcept
      : value_(static_cast<uint32_t>(term_color) | (3 << 24)) {}

  constexpr auto is_terminal_color() const noexcept -> bool {
    return (value_ & (1 << 25)) != 0;
  }

  constexpr auto value() const noexcept -> uint32_t {
    return value_ & 0xFFFFFF;
  }

  constexpr color_type(uint32_t value) noexcept : value_(value) {}

  uint32_t value_ = 0;
};
}  // namespace detail

/// A text style consisting of foreground and background colors and emphasis.
class text_style {
  // The information is packed as follows:
  // ┌──┐
  // │ 0│─┐
  // │..│ ├── foreground color value
  // │23│─┘
  // ├──┤
  // │24│─┬── discriminator for the above value. 00 if unset, 01 if it's
  // │25│─┘   an RGB color, or 11 if it's a terminal color (10 is unused)
  // ├──┤
  // │26│──── overflow bit, always zero (see below)
  // ├──┤
  // │27│─┐
  // │..│ │
  // │50│ │
  // ├──┤ │
  // │51│ ├── background color (same format as the foreground color)
  // │52│ │
  // ├──┤ │
  // │53│─┘
  // ├──┤
  // │54│─┐
  // │..│ ├── emphases
  // │61│─┘
  // ├──┤
  // │62│─┬── unused
  // │63│─┘
  // └──┘
  // The overflow bits are there to make operator|= efficient.
  // When ORing, we must throw if, for either the foreground or background,
  // one style specifies a terminal color and the other specifies any color
  // (terminal or RGB); in other words, if one discriminator is 11 and the
  // other is 11 or 01.
  //
  // We do that check by adding the styles. Consider what adding does to each
  // possible pair of discriminators:
  //    00 + 00 = 000
  //    01 + 00 = 001
  //    11 + 00 = 011
  //    01 + 01 = 010
  //    11 + 01 = 100 (!!)
  //    11 + 11 = 110 (!!)
  // In the last two cases, the ones we want to catch, the third bit——the
  // overflow bit——is set. Bingo.
  //
  // We must take into account the possible carry bit from the bits
  // before the discriminator. The only potentially problematic case is
  // 11 + 00 = 011 (a carry bit would make it 100, not good!), but a carry
  // bit is impossible in that case, because 00 (unset color) means the
  // 24 bits that precede the discriminator are all zero.
  //
  // This test can be applied to both colors simultaneously.

 public:
  FMT_CONSTEXPR text_style(emphasis em = emphasis()) noexcept
      : style_(static_cast<uint64_t>(em) << 54) {}

  FMT_CONSTEXPR auto operator|=(text_style rhs) -> text_style& {
    if (((style_ + rhs.style_) & ((1ULL << 26) | (1ULL << 53))) != 0)
      report_error("can't OR a terminal color");
    style_ |= rhs.style_;
    return *this;
  }

  friend FMT_CONSTEXPR auto operator|(text_style lhs, text_style rhs)
      -> text_style {
    return lhs |= rhs;
  }

  FMT_CONSTEXPR auto operator==(text_style rhs) const noexcept -> bool {
    return style_ == rhs.style_;
  }

  FMT_CONSTEXPR auto operator!=(text_style rhs) const noexcept -> bool {
    return !(*this == rhs);
  }

  FMT_CONSTEXPR auto has_foreground() const noexcept -> bool {
    return (style_ & (1 << 24)) != 0;
  }
  FMT_CONSTEXPR auto has_background() const noexcept -> bool {
    return (style_ & (1ULL << 51)) != 0;
  }
  FMT_CONSTEXPR auto has_emphasis() const noexcept -> bool {
    return (style_ >> 54) != 0;
  }
  FMT_CONSTEXPR auto get_foreground() const noexcept -> detail::color_type {
    FMT_ASSERT(has_foreground(), "no foreground specified for this style");
    return style_ & 0x3FFFFFF;
  }
  FMT_CONSTEXPR auto get_background() const noexcept -> detail::color_type {
    FMT_ASSERT(has_background(), "no background specified for this style");
    return (style_ >> 27) & 0x3FFFFFF;
  }
  FMT_CONSTEXPR auto get_emphasis() const noexcept -> emphasis {
    FMT_ASSERT(has_emphasis(), "no emphasis specified for this style");
    return static_cast<emphasis>(style_ >> 54);
  }

 private:
  FMT_CONSTEXPR text_style(uint64_t style) noexcept : style_(style) {}

  friend FMT_CONSTEXPR auto fg(detail::color_type foreground) noexcept
      -> text_style;

  friend FMT_CONSTEXPR auto bg(detail::color_type background) noexcept
      -> text_style;

  uint64_t style_ = 0;
};

/// Creates a text style from the foreground (text) color.
FMT_CONSTEXPR inline auto fg(detail::color_type foreground) noexcept
    -> text_style {
  return foreground.value_;
}

/// Creates a text style from the background color.
FMT_CONSTEXPR inline auto bg(detail::color_type background) noexcept
    -> text_style {
  return static_cast<uint64_t>(background.value_) << 27;
}

FMT_CONSTEXPR inline auto operator|(emphasis lhs, emphasis rhs) noexcept
    -> text_style {
  return text_style(lhs) | rhs;
}

namespace detail {

template <typename Char> struct ansi_color_escape {
  FMT_CONSTEXPR ansi_color_escape(color_type text_color,
                                  const char* esc) noexcept {
    // If we have a terminal color, we need to output another escape code
    // sequence.
    if (text_color.is_terminal_color()) {
      bool is_background = esc == string_view("\x1b[48;2;");
      uint32_t value = text_color.value();
      // Background ASCII codes are the same as the foreground ones but with
      // 10 more.
      if (is_background) value += 10u;

      buffer[size++] = static_cast<Char>('\x1b');
      buffer[size++] = static_cast<Char>('[');

      if (value >= 100u) {
        buffer[size++] = static_cast<Char>('1');
        value %= 100u;
      }
      buffer[size++] = static_cast<Char>('0' + value / 10u);
      buffer[size++] = static_cast<Char>('0' + value % 10u);

      buffer[size++] = static_cast<Char>('m');
      return;
    }

    for (int i = 0; i < 7; i++) {
      buffer[i] = static_cast<Char>(esc[i]);
    }
    rgb color(text_color.value());
    to_esc(color.r, buffer + 7, ';');
    to_esc(color.g, buffer + 11, ';');
    to_esc(color.b, buffer + 15, 'm');
    size = 19;
  }
  FMT_CONSTEXPR ansi_color_escape(emphasis em) noexcept {
    uint8_t em_codes[num_emphases] = {};
    if (has_emphasis(em, emphasis::bold)) em_codes[0] = 1;
    if (has_emphasis(em, emphasis::faint)) em_codes[1] = 2;
    if (has_emphasis(em, emphasis::italic)) em_codes[2] = 3;
    if (has_emphasis(em, emphasis::underline)) em_codes[3] = 4;
    if (has_emphasis(em, emphasis::blink)) em_codes[4] = 5;
    if (has_emphasis(em, emphasis::reverse)) em_codes[5] = 7;
    if (has_emphasis(em, emphasis::conceal)) em_codes[6] = 8;
    if (has_emphasis(em, emphasis::strikethrough)) em_codes[7] = 9;

    buffer[size++] = static_cast<Char>('\x1b');
    buffer[size++] = static_cast<Char>('[');

    for (size_t i = 0; i < num_emphases; ++i) {
      if (!em_codes[i]) continue;
      buffer[size++] = static_cast<Char>('0' + em_codes[i]);
      buffer[size++] = static_cast<Char>(';');
    }

    buffer[size - 1] = static_cast<Char>('m');
  }
  FMT_CONSTEXPR operator const Char*() const noexcept { return buffer; }

  FMT_CONSTEXPR auto begin() const noexcept -> const Char* { return buffer; }
  FMT_CONSTEXPR auto end() const noexcept -> const Char* {
    return buffer + size;
  }

 private:
  static constexpr size_t num_emphases = 8;
  Char buffer[7u + 4u * num_emphases] = {};
  size_t size = 0;

  static FMT_CONSTEXPR void to_esc(uint8_t c, Char* out,
                                   char delimiter) noexcept {
    out[0] = static_cast<Char>('0' + c / 100);
    out[1] = static_cast<Char>('0' + c / 10 % 10);
    out[2] = static_cast<Char>('0' + c % 10);
    out[3] = static_cast<Char>(delimiter);
  }
  static FMT_CONSTEXPR auto has_emphasis(emphasis em, emphasis mask) noexcept
      -> bool {
    return static_cast<uint8_t>(em) & static_cast<uint8_t>(mask);
  }
};

template <typename Char>
FMT_CONSTEXPR auto make_foreground_color(color_type foreground) noexcept
    -> ansi_color_escape<Char> {
  return ansi_color_escape<Char>(foreground, "\x1b[38;2;");
}

template <typename Char>
FMT_CONSTEXPR auto make_background_color(color_type background) noexcept
    -> ansi_color_escape<Char> {
  return ansi_color_escape<Char>(background, "\x1b[48;2;");
}

template <typename Char>
FMT_CONSTEXPR auto make_emphasis(emphasis em) noexcept
    -> ansi_color_escape<Char> {
  return ansi_color_escape<Char>(em);
}

template <typename Char> inline void reset_color(buffer<Char>& buffer) {
  auto reset_color = string_view("\x1b[0m");
  buffer.append(reset_color.begin(), reset_color.end());
}

template <typename T> struct styled_arg : view {
  const T& value;
  text_style style;
  styled_arg(const T& v, text_style s) : value(v), style(s) {}
};

template <typename Char>
void vformat_to(buffer<Char>& buf, text_style ts, basic_string_view<Char> fmt,
                basic_format_args<buffered_context<Char>> args) {
  if (ts.has_emphasis()) {
    auto emphasis = make_emphasis<Char>(ts.get_emphasis());
    buf.append(emphasis.begin(), emphasis.end());
  }
  if (ts.has_foreground()) {
    auto foreground = make_foreground_color<Char>(ts.get_foreground());
    buf.append(foreground.begin(), foreground.end());
  }
  if (ts.has_background()) {
    auto background = make_background_color<Char>(ts.get_background());
    buf.append(background.begin(), background.end());
  }
  vformat_to(buf, fmt, args);
  if (ts != text_style()) reset_color<Char>(buf);
}
}  // namespace detail

inline void vprint(FILE* f, text_style ts, string_view fmt, format_args args) {
  auto buf = memory_buffer();
  detail::vformat_to(buf, ts, fmt, args);
  print(f, FMT_STRING("{}"), string_view(buf.begin(), buf.size()));
}

/**
 * Formats a string and prints it to the specified file stream using ANSI
 * escape sequences to specify text formatting.
 *
 * **Example**:
 *
 *     fmt::print(fmt::emphasis::bold | fg(fmt::color::red),
 *                "Elapsed time: {0:.2f} seconds", 1.23);
 */
template <typename... T>
void print(FILE* f, text_style ts, format_string<T...> fmt, T&&... args) {
  vprint(f, ts, fmt.str, vargs<T...>{{args...}});
}

/**
 * Formats a string and prints it to stdout using ANSI escape sequences to
 * specify text formatting.
 *
 * **Example**:
 *
 *     fmt::print(fmt::emphasis::bold | fg(fmt::color::red),
 *                "Elapsed time: {0:.2f} seconds", 1.23);
 */
template <typename... T>
void print(text_style ts, format_string<T...> fmt, T&&... args) {
  return print(stdout, ts, fmt, std::forward<T>(args)...);
}

inline auto vformat(text_style ts, string_view fmt, format_args args)
    -> std::string {
  auto buf = memory_buffer();
  detail::vformat_to(buf, ts, fmt, args);
  return fmt::to_string(buf);
}

/**
 * Formats arguments and returns the result as a string using ANSI escape
 * sequences to specify text formatting.
 *
 * **Example**:
 *
 * ```
 * #include <fmt/color.h>
 * std::string message = fmt::format(fmt::emphasis::bold | fg(fmt::color::red),
 *                                   "The answer is {}", 42);
 * ```
 */
template <typename... T>
inline auto format(text_style ts, format_string<T...> fmt, T&&... args)
    -> std::string {
  return fmt::vformat(ts, fmt.str, vargs<T...>{{args...}});
}

/// Formats a string with the given text_style and writes the output to `out`.
template <typename OutputIt,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, char>::value)>
auto vformat_to(OutputIt out, text_style ts, string_view fmt, format_args args)
    -> OutputIt {
  auto&& buf = detail::get_buffer<char>(out);
  detail::vformat_to(buf, ts, fmt, args);
  return detail::get_iterator(buf, out);
}

/**
 * Formats arguments with the given text style, writes the result to the output
 * iterator `out` and returns the iterator past the end of the output range.
 *
 * **Example**:
 *
 *     std::vector<char> out;
 *     fmt::format_to(std::back_inserter(out),
 *                    fmt::emphasis::bold | fg(fmt::color::red), "{}", 42);
 */
template <typename OutputIt, typename... T,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, char>::value)>
inline auto format_to(OutputIt out, text_style ts, format_string<T...> fmt,
                      T&&... args) -> OutputIt {
  return vformat_to(out, ts, fmt.str, vargs<T...>{{args...}});
}

template <typename T, typename Char>
struct formatter<detail::styled_arg<T>, Char> : formatter<T, Char> {
  template <typename FormatContext>
  auto format(const detail::styled_arg<T>& arg, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    const auto& ts = arg.style;
    auto out = ctx.out();

    bool has_style = false;
    if (ts.has_emphasis()) {
      has_style = true;
      auto emphasis = detail::make_emphasis<Char>(ts.get_emphasis());
      out = detail::copy<Char>(emphasis.begin(), emphasis.end(), out);
    }
    if (ts.has_foreground()) {
      has_style = true;
      auto foreground =
          detail::make_foreground_color<Char>(ts.get_foreground());
      out = detail::copy<Char>(foreground.begin(), foreground.end(), out);
    }
    if (ts.has_background()) {
      has_style = true;
      auto background =
          detail::make_background_color<Char>(ts.get_background());
      out = detail::copy<Char>(background.begin(), background.end(), out);
    }
    out = formatter<T, Char>::format(arg.value, ctx);
    if (has_style) {
      auto reset_color = string_view("\x1b[0m");
      out = detail::copy<Char>(reset_color.begin(), reset_color.end(), out);
    }
    return out;
  }
};

/**
 * Returns an argument that will be formatted using ANSI escape sequences,
 * to be used in a formatting function.
 *
 * **Example**:
 *
 *     fmt::print("Elapsed time: {0:.2f} seconds",
 *                fmt::styled(1.23, fmt::fg(fmt::color::green) |
 *                                  fmt::bg(fmt::color::blue)));
 */
template <typename T>
FMT_CONSTEXPR auto styled(const T& value, text_style ts)
    -> detail::styled_arg<remove_cvref_t<T>> {
  return detail::styled_arg<remove_cvref_t<T>>{value, ts};
}

FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_COLOR_H_
