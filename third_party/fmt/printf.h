// Formatting library for C++ - legacy printf implementation
//
// Copyright (c) 2012 - 2016, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_PRINTF_H_
#define FMT_PRINTF_H_

#ifndef FMT_MODULE
#  include <algorithm>  // std::find
#  include <limits>     // std::numeric_limits
#endif

#include "format.h"

FMT_BEGIN_NAMESPACE
FMT_BEGIN_EXPORT

template <typename Char> class basic_printf_context {
 private:
  basic_appender<Char> out_;
  basic_format_args<basic_printf_context> args_;

  static_assert(std::is_same<Char, char>::value ||
                    std::is_same<Char, wchar_t>::value,
                "Unsupported code unit type.");

 public:
  using char_type = Char;
  enum { builtin_types = 1 };

  /// Constructs a `printf_context` object. References to the arguments are
  /// stored in the context object so make sure they have appropriate lifetimes.
  basic_printf_context(basic_appender<Char> out,
                       basic_format_args<basic_printf_context> args)
      : out_(out), args_(args) {}

  auto out() -> basic_appender<Char> { return out_; }
  void advance_to(basic_appender<Char>) {}

  auto locale() -> locale_ref { return {}; }

  auto arg(int id) const -> basic_format_arg<basic_printf_context> {
    return args_.get(id);
  }
};

namespace detail {

// Return the result via the out param to workaround gcc bug 77539.
template <bool IS_CONSTEXPR, typename T, typename Ptr = const T*>
FMT_CONSTEXPR auto find(Ptr first, Ptr last, T value, Ptr& out) -> bool {
  for (out = first; out != last; ++out) {
    if (*out == value) return true;
  }
  return false;
}

template <>
inline auto find<false, char>(const char* first, const char* last, char value,
                              const char*& out) -> bool {
  out =
      static_cast<const char*>(memchr(first, value, to_unsigned(last - first)));
  return out != nullptr;
}

// Checks if a value fits in int - used to avoid warnings about comparing
// signed and unsigned integers.
template <bool IS_SIGNED> struct int_checker {
  template <typename T> static auto fits_in_int(T value) -> bool {
    return value <= to_unsigned(max_value<int>());
  }
  inline static auto fits_in_int(bool) -> bool { return true; }
};

template <> struct int_checker<true> {
  template <typename T> static auto fits_in_int(T value) -> bool {
    return value >= (std::numeric_limits<int>::min)() &&
           value <= max_value<int>();
  }
  inline static auto fits_in_int(int) -> bool { return true; }
};

struct printf_precision_handler {
  template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
  auto operator()(T value) -> int {
    if (!int_checker<std::numeric_limits<T>::is_signed>::fits_in_int(value))
      report_error("number is too big");
    return max_of(static_cast<int>(value), 0);
  }

  template <typename T, FMT_ENABLE_IF(!std::is_integral<T>::value)>
  auto operator()(T) -> int {
    report_error("precision is not integer");
    return 0;
  }
};

// An argument visitor that returns true iff arg is a zero integer.
struct is_zero_int {
  template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
  auto operator()(T value) -> bool {
    return value == 0;
  }

  template <typename T, FMT_ENABLE_IF(!std::is_integral<T>::value)>
  auto operator()(T) -> bool {
    return false;
  }
};

template <typename T> struct make_unsigned_or_bool : std::make_unsigned<T> {};

template <> struct make_unsigned_or_bool<bool> {
  using type = bool;
};

template <typename T, typename Context> class arg_converter {
 private:
  using char_type = typename Context::char_type;

  basic_format_arg<Context>& arg_;
  char_type type_;

 public:
  arg_converter(basic_format_arg<Context>& arg, char_type type)
      : arg_(arg), type_(type) {}

  void operator()(bool value) {
    if (type_ != 's') operator()<bool>(value);
  }

  template <typename U, FMT_ENABLE_IF(std::is_integral<U>::value)>
  void operator()(U value) {
    bool is_signed = type_ == 'd' || type_ == 'i';
    using target_type = conditional_t<std::is_same<T, void>::value, U, T>;
    if (const_check(sizeof(target_type) <= sizeof(int))) {
      // Extra casts are used to silence warnings.
      using unsigned_type = typename make_unsigned_or_bool<target_type>::type;
      if (is_signed)
        arg_ = static_cast<int>(static_cast<target_type>(value));
      else
        arg_ = static_cast<unsigned>(static_cast<unsigned_type>(value));
    } else {
      // glibc's printf doesn't sign extend arguments of smaller types:
      //   std::printf("%lld", -42);  // prints "4294967254"
      // but we don't have to do the same because it's a UB.
      if (is_signed)
        arg_ = static_cast<long long>(value);
      else
        arg_ = static_cast<typename make_unsigned_or_bool<U>::type>(value);
    }
  }

  template <typename U, FMT_ENABLE_IF(!std::is_integral<U>::value)>
  void operator()(U) {}  // No conversion needed for non-integral types.
};

// Converts an integer argument to T for printf, if T is an integral type.
// If T is void, the argument is converted to corresponding signed or unsigned
// type depending on the type specifier: 'd' and 'i' - signed, other -
// unsigned).
template <typename T, typename Context, typename Char>
void convert_arg(basic_format_arg<Context>& arg, Char type) {
  arg.visit(arg_converter<T, Context>(arg, type));
}

// Converts an integer argument to char for printf.
template <typename Context> class char_converter {
 private:
  basic_format_arg<Context>& arg_;

 public:
  explicit char_converter(basic_format_arg<Context>& arg) : arg_(arg) {}

  template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
  void operator()(T value) {
    arg_ = static_cast<typename Context::char_type>(value);
  }

  template <typename T, FMT_ENABLE_IF(!std::is_integral<T>::value)>
  void operator()(T) {}  // No conversion needed for non-integral types.
};

// An argument visitor that return a pointer to a C string if argument is a
// string or null otherwise.
template <typename Char> struct get_cstring {
  template <typename T> auto operator()(T) -> const Char* { return nullptr; }
  auto operator()(const Char* s) -> const Char* { return s; }
};

// Checks if an argument is a valid printf width specifier and sets
// left alignment if it is negative.
class printf_width_handler {
 private:
  format_specs& specs_;

 public:
  inline explicit printf_width_handler(format_specs& specs) : specs_(specs) {}

  template <typename T, FMT_ENABLE_IF(std::is_integral<T>::value)>
  auto operator()(T value) -> unsigned {
    auto width = static_cast<uint32_or_64_or_128_t<T>>(value);
    if (detail::is_negative(value)) {
      specs_.set_align(align::left);
      width = 0 - width;
    }
    unsigned int_max = to_unsigned(max_value<int>());
    if (width > int_max) report_error("number is too big");
    return static_cast<unsigned>(width);
  }

  template <typename T, FMT_ENABLE_IF(!std::is_integral<T>::value)>
  auto operator()(T) -> unsigned {
    report_error("width is not integer");
    return 0;
  }
};

// Workaround for a bug with the XL compiler when initializing
// printf_arg_formatter's base class.
template <typename Char>
auto make_arg_formatter(basic_appender<Char> iter, format_specs& s)
    -> arg_formatter<Char> {
  return {iter, s, locale_ref()};
}

// The `printf` argument formatter.
template <typename Char>
class printf_arg_formatter : public arg_formatter<Char> {
 private:
  using base = arg_formatter<Char>;
  using context_type = basic_printf_context<Char>;

  context_type& context_;

  void write_null_pointer(bool is_string = false) {
    auto s = this->specs;
    s.set_type(presentation_type::none);
    write_bytes<Char>(this->out, is_string ? "(null)" : "(nil)", s);
  }

  template <typename T> void write(T value) {
    detail::write<Char>(this->out, value, this->specs, this->locale);
  }

 public:
  printf_arg_formatter(basic_appender<Char> iter, format_specs& s,
                       context_type& ctx)
      : base(make_arg_formatter(iter, s)), context_(ctx) {}

  void operator()(monostate value) { write(value); }

  template <typename T, FMT_ENABLE_IF(detail::is_integral<T>::value)>
  void operator()(T value) {
    // MSVC2013 fails to compile separate overloads for bool and Char so use
    // std::is_same instead.
    if (!std::is_same<T, Char>::value) {
      write(value);
      return;
    }
    format_specs s = this->specs;
    if (s.type() != presentation_type::none &&
        s.type() != presentation_type::chr) {
      return (*this)(static_cast<int>(value));
    }
    s.set_sign(sign::none);
    s.clear_alt();
    s.set_fill(' ');  // Ignore '0' flag for char types.
    // align::numeric needs to be overwritten here since the '0' flag is
    // ignored for non-numeric types
    if (s.align() == align::none || s.align() == align::numeric)
      s.set_align(align::right);
    detail::write<Char>(this->out, static_cast<Char>(value), s);
  }

  template <typename T, FMT_ENABLE_IF(std::is_floating_point<T>::value)>
  void operator()(T value) {
    write(value);
  }

  void operator()(const char* value) {
    if (value)
      write(value);
    else
      write_null_pointer(this->specs.type() != presentation_type::pointer);
  }

  void operator()(const wchar_t* value) {
    if (value)
      write(value);
    else
      write_null_pointer(this->specs.type() != presentation_type::pointer);
  }

  void operator()(basic_string_view<Char> value) { write(value); }

  void operator()(const void* value) {
    if (value)
      write(value);
    else
      write_null_pointer();
  }

  void operator()(typename basic_format_arg<context_type>::handle handle) {
    auto parse_ctx = parse_context<Char>({});
    handle.format(parse_ctx, context_);
  }
};

template <typename Char>
void parse_flags(format_specs& specs, const Char*& it, const Char* end) {
  for (; it != end; ++it) {
    switch (*it) {
    case '-': specs.set_align(align::left); break;
    case '+': specs.set_sign(sign::plus); break;
    case '0': specs.set_fill('0'); break;
    case ' ':
      if (specs.sign() != sign::plus) specs.set_sign(sign::space);
      break;
    case '#': specs.set_alt(); break;
    default:  return;
    }
  }
}

template <typename Char, typename GetArg>
auto parse_header(const Char*& it, const Char* end, format_specs& specs,
                  GetArg get_arg) -> int {
  int arg_index = -1;
  Char c = *it;
  if (c >= '0' && c <= '9') {
    // Parse an argument index (if followed by '$') or a width possibly
    // preceded with '0' flag(s).
    int value = parse_nonnegative_int(it, end, -1);
    if (it != end && *it == '$') {  // value is an argument index
      ++it;
      arg_index = value != -1 ? value : max_value<int>();
    } else {
      if (c == '0') specs.set_fill('0');
      if (value != 0) {
        // Nonzero value means that we parsed width and don't need to
        // parse it or flags again, so return now.
        if (value == -1) report_error("number is too big");
        specs.width = value;
        return arg_index;
      }
    }
  }
  parse_flags(specs, it, end);
  // Parse width.
  if (it != end) {
    if (*it >= '0' && *it <= '9') {
      specs.width = parse_nonnegative_int(it, end, -1);
      if (specs.width == -1) report_error("number is too big");
    } else if (*it == '*') {
      ++it;
      specs.width = static_cast<int>(
          get_arg(-1).visit(detail::printf_width_handler(specs)));
    }
  }
  return arg_index;
}

inline auto parse_printf_presentation_type(char c, type t, bool& upper)
    -> presentation_type {
  using pt = presentation_type;
  constexpr auto integral_set = sint_set | uint_set | bool_set | char_set;
  switch (c) {
  case 'd': return in(t, integral_set) ? pt::dec : pt::none;
  case 'o': return in(t, integral_set) ? pt::oct : pt::none;
  case 'X': upper = true; FMT_FALLTHROUGH;
  case 'x': return in(t, integral_set) ? pt::hex : pt::none;
  case 'E': upper = true; FMT_FALLTHROUGH;
  case 'e': return in(t, float_set) ? pt::exp : pt::none;
  case 'F': upper = true; FMT_FALLTHROUGH;
  case 'f': return in(t, float_set) ? pt::fixed : pt::none;
  case 'G': upper = true; FMT_FALLTHROUGH;
  case 'g': return in(t, float_set) ? pt::general : pt::none;
  case 'A': upper = true; FMT_FALLTHROUGH;
  case 'a': return in(t, float_set) ? pt::hexfloat : pt::none;
  case 'c': return in(t, integral_set) ? pt::chr : pt::none;
  case 's': return in(t, string_set | cstring_set) ? pt::string : pt::none;
  case 'p': return in(t, pointer_set | cstring_set) ? pt::pointer : pt::none;
  default:  return pt::none;
  }
}

template <typename Char, typename Context>
void vprintf(buffer<Char>& buf, basic_string_view<Char> format,
             basic_format_args<Context> args) {
  using iterator = basic_appender<Char>;
  auto out = iterator(buf);
  auto context = basic_printf_context<Char>(out, args);
  auto parse_ctx = parse_context<Char>(format);

  // Returns the argument with specified index or, if arg_index is -1, the next
  // argument.
  auto get_arg = [&](int arg_index) {
    if (arg_index < 0)
      arg_index = parse_ctx.next_arg_id();
    else
      parse_ctx.check_arg_id(--arg_index);
    auto arg = context.arg(arg_index);
    if (!arg) report_error("argument not found");
    return arg;
  };

  const Char* start = parse_ctx.begin();
  const Char* end = parse_ctx.end();
  auto it = start;
  while (it != end) {
    if (!find<false, Char>(it, end, '%', it)) {
      it = end;  // find leaves it == nullptr if it doesn't find '%'.
      break;
    }
    Char c = *it++;
    if (it != end && *it == c) {
      write(out, basic_string_view<Char>(start, to_unsigned(it - start)));
      start = ++it;
      continue;
    }
    write(out, basic_string_view<Char>(start, to_unsigned(it - 1 - start)));

    auto specs = format_specs();
    specs.set_align(align::right);

    // Parse argument index, flags and width.
    int arg_index = parse_header(it, end, specs, get_arg);
    if (arg_index == 0) report_error("argument not found");

    // Parse precision.
    if (it != end && *it == '.') {
      ++it;
      c = it != end ? *it : 0;
      if ('0' <= c && c <= '9') {
        specs.precision = parse_nonnegative_int(it, end, 0);
      } else if (c == '*') {
        ++it;
        specs.precision =
            static_cast<int>(get_arg(-1).visit(printf_precision_handler()));
      } else {
        specs.precision = 0;
      }
    }

    auto arg = get_arg(arg_index);
    // For d, i, o, u, x, and X conversion specifiers, if a precision is
    // specified, the '0' flag is ignored
    if (specs.precision >= 0 && is_integral_type(arg.type())) {
      // Ignore '0' for non-numeric types or if '-' present.
      specs.set_fill(' ');
    }
    if (specs.precision >= 0 && arg.type() == type::cstring_type) {
      auto str = arg.visit(get_cstring<Char>());
      auto str_end = str + specs.precision;
      auto nul = std::find(str, str_end, Char());
      auto sv = basic_string_view<Char>(
          str, to_unsigned(nul != str_end ? nul - str : specs.precision));
      arg = sv;
    }
    if (specs.alt() && arg.visit(is_zero_int())) specs.clear_alt();
    if (specs.fill_unit<Char>() == '0') {
      if (is_arithmetic_type(arg.type()) && specs.align() != align::left) {
        specs.set_align(align::numeric);
      } else {
        // Ignore '0' flag for non-numeric types or if '-' flag is also present.
        specs.set_fill(' ');
      }
    }

    // Parse length and convert the argument to the required type.
    c = it != end ? *it++ : 0;
    Char t = it != end ? *it : 0;
    switch (c) {
    case 'h':
      if (t == 'h') {
        ++it;
        t = it != end ? *it : 0;
        convert_arg<signed char>(arg, t);
      } else {
        convert_arg<short>(arg, t);
      }
      break;
    case 'l':
      if (t == 'l') {
        ++it;
        t = it != end ? *it : 0;
        convert_arg<long long>(arg, t);
      } else {
        convert_arg<long>(arg, t);
      }
      break;
    case 'j': convert_arg<intmax_t>(arg, t); break;
    case 'z': convert_arg<size_t>(arg, t); break;
    case 't': convert_arg<std::ptrdiff_t>(arg, t); break;
    case 'L':
      // printf produces garbage when 'L' is omitted for long double, no
      // need to do the same.
      break;
    default: --it; convert_arg<void>(arg, c);
    }

    // Parse type.
    if (it == end) report_error("invalid format string");
    char type = static_cast<char>(*it++);
    if (is_integral_type(arg.type())) {
      // Normalize type.
      switch (type) {
      case 'i':
      case 'u': type = 'd'; break;
      case 'c':
        arg.visit(char_converter<basic_printf_context<Char>>(arg));
        break;
      }
    }
    bool upper = false;
    specs.set_type(parse_printf_presentation_type(type, arg.type(), upper));
    if (specs.type() == presentation_type::none)
      report_error("invalid format specifier");
    if (upper) specs.set_upper();

    start = it;

    // Format argument.
    arg.visit(printf_arg_formatter<Char>(out, specs, context));
  }
  write(out, basic_string_view<Char>(start, to_unsigned(it - start)));
}
}  // namespace detail

using printf_context = basic_printf_context<char>;
using wprintf_context = basic_printf_context<wchar_t>;

using printf_args = basic_format_args<printf_context>;
using wprintf_args = basic_format_args<wprintf_context>;

/// Constructs an `format_arg_store` object that contains references to
/// arguments and can be implicitly converted to `printf_args`.
template <typename Char = char, typename... T>
inline auto make_printf_args(T&... args)
    -> decltype(fmt::make_format_args<basic_printf_context<Char>>(args...)) {
  return fmt::make_format_args<basic_printf_context<Char>>(args...);
}

template <typename Char> struct vprintf_args {
  using type = basic_format_args<basic_printf_context<Char>>;
};

template <typename Char>
inline auto vsprintf(basic_string_view<Char> fmt,
                     typename vprintf_args<Char>::type args)
    -> std::basic_string<Char> {
  auto buf = basic_memory_buffer<Char>();
  detail::vprintf(buf, fmt, args);
  return {buf.data(), buf.size()};
}

/**
 * Formats `args` according to specifications in `fmt` and returns the result
 * as as string.
 *
 * **Example**:
 *
 *     std::string message = fmt::sprintf("The answer is %d", 42);
 */
template <typename... T>
inline auto sprintf(string_view fmt, const T&... args) -> std::string {
  return vsprintf(fmt, make_printf_args(args...));
}
template <typename... T>
FMT_DEPRECATED auto sprintf(basic_string_view<wchar_t> fmt, const T&... args)
    -> std::wstring {
  return vsprintf(fmt, make_printf_args<wchar_t>(args...));
}

template <typename Char>
auto vfprintf(std::FILE* f, basic_string_view<Char> fmt,
              typename vprintf_args<Char>::type args) -> int {
  auto buf = basic_memory_buffer<Char>();
  detail::vprintf(buf, fmt, args);
  size_t size = buf.size();
  return std::fwrite(buf.data(), sizeof(Char), size, f) < size
             ? -1
             : static_cast<int>(size);
}

/**
 * Formats `args` according to specifications in `fmt` and writes the output
 * to `f`.
 *
 * **Example**:
 *
 *     fmt::fprintf(stderr, "Don't %s!", "panic");
 */
template <typename... T>
inline auto fprintf(std::FILE* f, string_view fmt, const T&... args) -> int {
  return vfprintf(f, fmt, make_printf_args(args...));
}
template <typename... T>
FMT_DEPRECATED auto fprintf(std::FILE* f, basic_string_view<wchar_t> fmt,
                            const T&... args) -> int {
  return vfprintf(f, fmt, make_printf_args<wchar_t>(args...));
}

/**
 * Formats `args` according to specifications in `fmt` and writes the output
 * to `stdout`.
 *
 * **Example**:
 *
 *   fmt::printf("Elapsed time: %.2f seconds", 1.23);
 */
template <typename... T>
inline auto printf(string_view fmt, const T&... args) -> int {
  return vfprintf(stdout, fmt, make_printf_args(args...));
}

FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_PRINTF_H_
