// Formatting library for C++ - range and tuple support
//
// Copyright (c) 2012 - present, Victor Zverovich and {fmt} contributors
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_RANGES_H_
#define FMT_RANGES_H_

#ifndef FMT_MODULE
#  include <initializer_list>
#  include <iterator>
#  include <tuple>
#  include <type_traits>
#  include <utility>
#endif

#include "format.h"

#if FMT_HAS_CPP_ATTRIBUTE(clang::lifetimebound)
#  define FMT_LIFETIMEBOUND [[clang::lifetimebound]]
#else
#  define FMT_LIFETIMEBOUND
#endif
FMT_PRAGMA_CLANG(diagnostic error "-Wreturn-stack-address")

FMT_BEGIN_NAMESPACE

FMT_EXPORT
enum class range_format { disabled, map, set, sequence, string, debug_string };

namespace detail {

template <typename T> class is_map {
  template <typename U> static auto check(U*) -> typename U::mapped_type;
  template <typename> static void check(...);

 public:
  static constexpr bool value =
      !std::is_void<decltype(check<T>(nullptr))>::value;
};

template <typename T> class is_set {
  template <typename U> static auto check(U*) -> typename U::key_type;
  template <typename> static void check(...);

 public:
  static constexpr bool value =
      !std::is_void<decltype(check<T>(nullptr))>::value && !is_map<T>::value;
};

// C array overload
template <typename T, size_t N>
auto range_begin(const T (&arr)[N]) -> const T* {
  return arr;
}
template <typename T, size_t N> auto range_end(const T (&arr)[N]) -> const T* {
  return arr + N;
}

template <typename T, typename Enable = void>
struct has_member_fn_begin_end_t : std::false_type {};

template <typename T>
struct has_member_fn_begin_end_t<T, void_t<decltype(*std::declval<T>().begin()),
                                           decltype(std::declval<T>().end())>>
    : std::true_type {};

// Member function overloads.
template <typename T>
auto range_begin(T&& rng) -> decltype(static_cast<T&&>(rng).begin()) {
  return static_cast<T&&>(rng).begin();
}
template <typename T>
auto range_end(T&& rng) -> decltype(static_cast<T&&>(rng).end()) {
  return static_cast<T&&>(rng).end();
}

// ADL overloads. Only participate in overload resolution if member functions
// are not found.
template <typename T>
auto range_begin(T&& rng)
    -> enable_if_t<!has_member_fn_begin_end_t<T&&>::value,
                   decltype(begin(static_cast<T&&>(rng)))> {
  return begin(static_cast<T&&>(rng));
}
template <typename T>
auto range_end(T&& rng) -> enable_if_t<!has_member_fn_begin_end_t<T&&>::value,
                                       decltype(end(static_cast<T&&>(rng)))> {
  return end(static_cast<T&&>(rng));
}

template <typename T, typename Enable = void>
struct has_const_begin_end : std::false_type {};
template <typename T, typename Enable = void>
struct has_mutable_begin_end : std::false_type {};

template <typename T>
struct has_const_begin_end<
    T, void_t<decltype(*detail::range_begin(
                  std::declval<const remove_cvref_t<T>&>())),
              decltype(detail::range_end(
                  std::declval<const remove_cvref_t<T>&>()))>>
    : std::true_type {};

template <typename T>
struct has_mutable_begin_end<
    T, void_t<decltype(*detail::range_begin(std::declval<T&>())),
              decltype(detail::range_end(std::declval<T&>())),
              // the extra int here is because older versions of MSVC don't
              // SFINAE properly unless there are distinct types
              int>> : std::true_type {};

template <typename T, typename _ = void> struct is_range_ : std::false_type {};
template <typename T>
struct is_range_<T, void>
    : std::integral_constant<bool, (has_const_begin_end<T>::value ||
                                    has_mutable_begin_end<T>::value)> {};

// tuple_size and tuple_element check.
template <typename T> class is_tuple_like_ {
  template <typename U, typename V = typename std::remove_cv<U>::type>
  static auto check(U* p) -> decltype(std::tuple_size<V>::value, 0);
  template <typename> static void check(...);

 public:
  static constexpr bool value =
      !std::is_void<decltype(check<T>(nullptr))>::value;
};

// Check for integer_sequence
#if defined(__cpp_lib_integer_sequence) || FMT_MSC_VERSION >= 1900
template <typename T, T... N>
using integer_sequence = std::integer_sequence<T, N...>;
template <size_t... N> using index_sequence = std::index_sequence<N...>;
template <size_t N> using make_index_sequence = std::make_index_sequence<N>;
#else
template <typename T, T... N> struct integer_sequence {
  using value_type = T;

  static FMT_CONSTEXPR auto size() -> size_t { return sizeof...(N); }
};

template <size_t... N> using index_sequence = integer_sequence<size_t, N...>;

template <typename T, size_t N, T... Ns>
struct make_integer_sequence : make_integer_sequence<T, N - 1, N - 1, Ns...> {};
template <typename T, T... Ns>
struct make_integer_sequence<T, 0, Ns...> : integer_sequence<T, Ns...> {};

template <size_t N>
using make_index_sequence = make_integer_sequence<size_t, N>;
#endif

template <typename T>
using tuple_index_sequence = make_index_sequence<std::tuple_size<T>::value>;

template <typename T, typename C, bool = is_tuple_like_<T>::value>
class is_tuple_formattable_ {
 public:
  static constexpr bool value = false;
};
template <typename T, typename C> class is_tuple_formattable_<T, C, true> {
  template <size_t... Is>
  static auto all_true(index_sequence<Is...>,
                       integer_sequence<bool, (Is >= 0)...>) -> std::true_type;
  static auto all_true(...) -> std::false_type;

  template <size_t... Is>
  static auto check(index_sequence<Is...>) -> decltype(all_true(
      index_sequence<Is...>{},
      integer_sequence<bool,
                       (is_formattable<typename std::tuple_element<Is, T>::type,
                                       C>::value)...>{}));

 public:
  static constexpr bool value =
      decltype(check(tuple_index_sequence<T>{}))::value;
};

template <typename Tuple, typename F, size_t... Is>
FMT_CONSTEXPR void for_each(index_sequence<Is...>, Tuple&& t, F&& f) {
  using std::get;
  // Using a free function get<Is>(Tuple) now.
  const int unused[] = {0, ((void)f(get<Is>(t)), 0)...};
  ignore_unused(unused);
}

template <typename Tuple, typename F>
FMT_CONSTEXPR void for_each(Tuple&& t, F&& f) {
  for_each(tuple_index_sequence<remove_cvref_t<Tuple>>(),
           std::forward<Tuple>(t), std::forward<F>(f));
}

template <typename Tuple1, typename Tuple2, typename F, size_t... Is>
void for_each2(index_sequence<Is...>, Tuple1&& t1, Tuple2&& t2, F&& f) {
  using std::get;
  const int unused[] = {0, ((void)f(get<Is>(t1), get<Is>(t2)), 0)...};
  ignore_unused(unused);
}

template <typename Tuple1, typename Tuple2, typename F>
void for_each2(Tuple1&& t1, Tuple2&& t2, F&& f) {
  for_each2(tuple_index_sequence<remove_cvref_t<Tuple1>>(),
            std::forward<Tuple1>(t1), std::forward<Tuple2>(t2),
            std::forward<F>(f));
}

namespace tuple {
// Workaround a bug in MSVC 2019 (v140).
template <typename Char, typename... T>
using result_t = std::tuple<formatter<remove_cvref_t<T>, Char>...>;

using std::get;
template <typename Tuple, typename Char, size_t... Is>
auto get_formatters(index_sequence<Is...>)
    -> result_t<Char, decltype(get<Is>(std::declval<Tuple>()))...>;
}  // namespace tuple

#if FMT_MSC_VERSION && FMT_MSC_VERSION < 1920
// Older MSVC doesn't get the reference type correctly for arrays.
template <typename R> struct range_reference_type_impl {
  using type = decltype(*detail::range_begin(std::declval<R&>()));
};

template <typename T, size_t N> struct range_reference_type_impl<T[N]> {
  using type = T&;
};

template <typename T>
using range_reference_type = typename range_reference_type_impl<T>::type;
#else
template <typename Range>
using range_reference_type =
    decltype(*detail::range_begin(std::declval<Range&>()));
#endif

// We don't use the Range's value_type for anything, but we do need the Range's
// reference type, with cv-ref stripped.
template <typename Range>
using uncvref_type = remove_cvref_t<range_reference_type<Range>>;

template <typename T>
struct range_format_kind_
    : std::integral_constant<range_format,
                             std::is_same<uncvref_type<T>, T>::value
                                 ? range_format::disabled
                             : is_map<T>::value ? range_format::map
                             : is_set<T>::value ? range_format::set
                                                : range_format::sequence> {};

template <range_format K>
using range_format_constant = std::integral_constant<range_format, K>;

// These are not generic lambdas for compatibility with C++11.
template <typename Char> struct parse_empty_specs {
  template <typename Formatter> FMT_CONSTEXPR void operator()(Formatter& f) {
    f.parse(ctx);
    detail::maybe_set_debug_format(f, true);
  }
  parse_context<Char>& ctx;
};
template <typename FormatContext> struct format_tuple_element {
  using char_type = typename FormatContext::char_type;

  template <typename T>
  void operator()(const formatter<T, char_type>& f, const T& v) {
    if (i > 0) ctx.advance_to(detail::copy<char_type>(separator, ctx.out()));
    ctx.advance_to(f.format(v, ctx));
    ++i;
  }

  int i;
  FormatContext& ctx;
  basic_string_view<char_type> separator;
};

}  // namespace detail

FMT_EXPORT
template <typename T> struct is_tuple_like {
  static constexpr bool value =
      detail::is_tuple_like_<T>::value && !detail::is_range_<T>::value;
};

FMT_EXPORT
template <typename T, typename C> struct is_tuple_formattable {
  static constexpr bool value = detail::is_tuple_formattable_<T, C>::value;
};

template <typename Tuple, typename Char>
struct formatter<Tuple, Char,
                 enable_if_t<fmt::is_tuple_like<Tuple>::value &&
                             fmt::is_tuple_formattable<Tuple, Char>::value>> {
 private:
  decltype(detail::tuple::get_formatters<Tuple, Char>(
      detail::tuple_index_sequence<Tuple>())) formatters_;

  basic_string_view<Char> separator_ = detail::string_literal<Char, ',', ' '>{};
  basic_string_view<Char> opening_bracket_ =
      detail::string_literal<Char, '('>{};
  basic_string_view<Char> closing_bracket_ =
      detail::string_literal<Char, ')'>{};

 public:
  FMT_CONSTEXPR formatter() {}

  FMT_CONSTEXPR void set_separator(basic_string_view<Char> sep) {
    separator_ = sep;
  }

  FMT_CONSTEXPR void set_brackets(basic_string_view<Char> open,
                                  basic_string_view<Char> close) {
    opening_bracket_ = open;
    closing_bracket_ = close;
  }

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin();
    auto end = ctx.end();
    if (it != end && detail::to_ascii(*it) == 'n') {
      ++it;
      set_brackets({}, {});
      set_separator({});
    }
    if (it != end && *it != '}') report_error("invalid format specifier");
    ctx.advance_to(it);
    detail::for_each(formatters_, detail::parse_empty_specs<Char>{ctx});
    return it;
  }

  template <typename FormatContext>
  auto format(const Tuple& value, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    ctx.advance_to(detail::copy<Char>(opening_bracket_, ctx.out()));
    detail::for_each2(
        formatters_, value,
        detail::format_tuple_element<FormatContext>{0, ctx, separator_});
    return detail::copy<Char>(closing_bracket_, ctx.out());
  }
};

FMT_EXPORT
template <typename T, typename Char> struct is_range {
  static constexpr bool value =
      detail::is_range_<T>::value && !detail::has_to_string_view<T>::value;
};

namespace detail {

template <typename Char, typename Element>
using range_formatter_type = formatter<remove_cvref_t<Element>, Char>;

template <typename R>
using maybe_const_range =
    conditional_t<has_const_begin_end<R>::value, const R, R>;

template <typename R, typename Char>
struct is_formattable_delayed
    : is_formattable<uncvref_type<maybe_const_range<R>>, Char> {};
}  // namespace detail

template <typename...> struct conjunction : std::true_type {};
template <typename P> struct conjunction<P> : P {};
template <typename P1, typename... Pn>
struct conjunction<P1, Pn...>
    : conditional_t<bool(P1::value), conjunction<Pn...>, P1> {};

FMT_EXPORT
template <typename T, typename Char, typename Enable = void>
struct range_formatter;

template <typename T, typename Char>
struct range_formatter<
    T, Char,
    enable_if_t<conjunction<std::is_same<T, remove_cvref_t<T>>,
                            is_formattable<T, Char>>::value>> {
 private:
  detail::range_formatter_type<Char, T> underlying_;
  basic_string_view<Char> separator_ = detail::string_literal<Char, ',', ' '>{};
  basic_string_view<Char> opening_bracket_ =
      detail::string_literal<Char, '['>{};
  basic_string_view<Char> closing_bracket_ =
      detail::string_literal<Char, ']'>{};
  bool is_debug = false;

  template <typename Output, typename It, typename Sentinel, typename U = T,
            FMT_ENABLE_IF(std::is_same<U, Char>::value)>
  auto write_debug_string(Output& out, It it, Sentinel end) const -> Output {
    auto buf = basic_memory_buffer<Char>();
    for (; it != end; ++it) buf.push_back(*it);
    auto specs = format_specs();
    specs.set_type(presentation_type::debug);
    return detail::write<Char>(
        out, basic_string_view<Char>(buf.data(), buf.size()), specs);
  }

  template <typename Output, typename It, typename Sentinel, typename U = T,
            FMT_ENABLE_IF(!std::is_same<U, Char>::value)>
  auto write_debug_string(Output& out, It, Sentinel) const -> Output {
    return out;
  }

 public:
  FMT_CONSTEXPR range_formatter() {}

  FMT_CONSTEXPR auto underlying() -> detail::range_formatter_type<Char, T>& {
    return underlying_;
  }

  FMT_CONSTEXPR void set_separator(basic_string_view<Char> sep) {
    separator_ = sep;
  }

  FMT_CONSTEXPR void set_brackets(basic_string_view<Char> open,
                                  basic_string_view<Char> close) {
    opening_bracket_ = open;
    closing_bracket_ = close;
  }

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin();
    auto end = ctx.end();
    detail::maybe_set_debug_format(underlying_, true);
    if (it == end) return underlying_.parse(ctx);

    switch (detail::to_ascii(*it)) {
    case 'n':
      set_brackets({}, {});
      ++it;
      break;
    case '?':
      is_debug = true;
      set_brackets({}, {});
      ++it;
      if (it == end || *it != 's') report_error("invalid format specifier");
      FMT_FALLTHROUGH;
    case 's':
      if (!std::is_same<T, Char>::value)
        report_error("invalid format specifier");
      if (!is_debug) {
        set_brackets(detail::string_literal<Char, '"'>{},
                     detail::string_literal<Char, '"'>{});
        set_separator({});
        detail::maybe_set_debug_format(underlying_, false);
      }
      ++it;
      return it;
    }

    if (it != end && *it != '}') {
      if (*it != ':') report_error("invalid format specifier");
      detail::maybe_set_debug_format(underlying_, false);
      ++it;
    }

    ctx.advance_to(it);
    return underlying_.parse(ctx);
  }

  template <typename R, typename FormatContext>
  auto format(R&& range, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto out = ctx.out();
    auto it = detail::range_begin(range);
    auto end = detail::range_end(range);
    if (is_debug) return write_debug_string(out, std::move(it), end);

    out = detail::copy<Char>(opening_bracket_, out);
    int i = 0;
    for (; it != end; ++it) {
      if (i > 0) out = detail::copy<Char>(separator_, out);
      ctx.advance_to(out);
      auto&& item = *it;  // Need an lvalue
      out = underlying_.format(item, ctx);
      ++i;
    }
    out = detail::copy<Char>(closing_bracket_, out);
    return out;
  }
};

FMT_EXPORT
template <typename T, typename Char, typename Enable = void>
struct range_format_kind
    : conditional_t<
          is_range<T, Char>::value, detail::range_format_kind_<T>,
          std::integral_constant<range_format, range_format::disabled>> {};

template <typename R, typename Char>
struct formatter<
    R, Char,
    enable_if_t<conjunction<
        bool_constant<
            range_format_kind<R, Char>::value != range_format::disabled &&
            range_format_kind<R, Char>::value != range_format::map &&
            range_format_kind<R, Char>::value != range_format::string &&
            range_format_kind<R, Char>::value != range_format::debug_string>,
        detail::is_formattable_delayed<R, Char>>::value>> {
 private:
  using range_type = detail::maybe_const_range<R>;
  range_formatter<detail::uncvref_type<range_type>, Char> range_formatter_;

 public:
  using nonlocking = void;

  FMT_CONSTEXPR formatter() {
    if (detail::const_check(range_format_kind<R, Char>::value !=
                            range_format::set))
      return;
    range_formatter_.set_brackets(detail::string_literal<Char, '{'>{},
                                  detail::string_literal<Char, '}'>{});
  }

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return range_formatter_.parse(ctx);
  }

  template <typename FormatContext>
  auto format(range_type& range, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    return range_formatter_.format(range, ctx);
  }
};

// A map formatter.
template <typename R, typename Char>
struct formatter<
    R, Char,
    enable_if_t<conjunction<
        bool_constant<range_format_kind<R, Char>::value == range_format::map>,
        detail::is_formattable_delayed<R, Char>>::value>> {
 private:
  using map_type = detail::maybe_const_range<R>;
  using element_type = detail::uncvref_type<map_type>;

  decltype(detail::tuple::get_formatters<element_type, Char>(
      detail::tuple_index_sequence<element_type>())) formatters_;
  bool no_delimiters_ = false;

 public:
  FMT_CONSTEXPR formatter() {}

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    auto it = ctx.begin();
    auto end = ctx.end();
    if (it != end) {
      if (detail::to_ascii(*it) == 'n') {
        no_delimiters_ = true;
        ++it;
      }
      if (it != end && *it != '}') {
        if (*it != ':') report_error("invalid format specifier");
        ++it;
      }
      ctx.advance_to(it);
    }
    detail::for_each(formatters_, detail::parse_empty_specs<Char>{ctx});
    return it;
  }

  template <typename FormatContext>
  auto format(map_type& map, FormatContext& ctx) const -> decltype(ctx.out()) {
    auto out = ctx.out();
    basic_string_view<Char> open = detail::string_literal<Char, '{'>{};
    if (!no_delimiters_) out = detail::copy<Char>(open, out);
    int i = 0;
    basic_string_view<Char> sep = detail::string_literal<Char, ',', ' '>{};
    for (auto&& value : map) {
      if (i > 0) out = detail::copy<Char>(sep, out);
      ctx.advance_to(out);
      detail::for_each2(formatters_, value,
                        detail::format_tuple_element<FormatContext>{
                            0, ctx, detail::string_literal<Char, ':', ' '>{}});
      ++i;
    }
    basic_string_view<Char> close = detail::string_literal<Char, '}'>{};
    if (!no_delimiters_) out = detail::copy<Char>(close, out);
    return out;
  }
};

// A (debug_)string formatter.
template <typename R, typename Char>
struct formatter<
    R, Char,
    enable_if_t<range_format_kind<R, Char>::value == range_format::string ||
                range_format_kind<R, Char>::value ==
                    range_format::debug_string>> {
 private:
  using range_type = detail::maybe_const_range<R>;
  using string_type =
      conditional_t<std::is_constructible<
                        detail::std_string_view<Char>,
                        decltype(detail::range_begin(std::declval<R>())),
                        decltype(detail::range_end(std::declval<R>()))>::value,
                    detail::std_string_view<Char>, std::basic_string<Char>>;

  formatter<string_type, Char> underlying_;

 public:
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return underlying_.parse(ctx);
  }

  template <typename FormatContext>
  auto format(range_type& range, FormatContext& ctx) const
      -> decltype(ctx.out()) {
    auto out = ctx.out();
    if (detail::const_check(range_format_kind<R, Char>::value ==
                            range_format::debug_string))
      *out++ = '"';
    out = underlying_.format(
        string_type{detail::range_begin(range), detail::range_end(range)}, ctx);
    if (detail::const_check(range_format_kind<R, Char>::value ==
                            range_format::debug_string))
      *out++ = '"';
    return out;
  }
};

template <typename It, typename Sentinel, typename Char = char>
struct join_view : detail::view {
  It begin;
  Sentinel end;
  basic_string_view<Char> sep;

  join_view(It b, Sentinel e, basic_string_view<Char> s)
      : begin(std::move(b)), end(e), sep(s) {}
};

template <typename It, typename Sentinel, typename Char>
struct formatter<join_view<It, Sentinel, Char>, Char> {
 private:
  using value_type =
#ifdef __cpp_lib_ranges
      std::iter_value_t<It>;
#else
      typename std::iterator_traits<It>::value_type;
#endif
  formatter<remove_cvref_t<value_type>, Char> value_formatter_;

  using view = conditional_t<std::is_copy_constructible<It>::value,
                             const join_view<It, Sentinel, Char>,
                             join_view<It, Sentinel, Char>>;

 public:
  using nonlocking = void;

  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return value_formatter_.parse(ctx);
  }

  template <typename FormatContext>
  auto format(view& value, FormatContext& ctx) const -> decltype(ctx.out()) {
    using iter =
        conditional_t<std::is_copy_constructible<view>::value, It, It&>;
    iter it = value.begin;
    auto out = ctx.out();
    if (it == value.end) return out;
    out = value_formatter_.format(*it, ctx);
    ++it;
    while (it != value.end) {
      out = detail::copy<Char>(value.sep.begin(), value.sep.end(), out);
      ctx.advance_to(out);
      out = value_formatter_.format(*it, ctx);
      ++it;
    }
    return out;
  }
};

FMT_EXPORT
template <typename Tuple, typename Char> struct tuple_join_view : detail::view {
  const Tuple& tuple;
  basic_string_view<Char> sep;

  tuple_join_view(const Tuple& t, basic_string_view<Char> s)
      : tuple(t), sep{s} {}
};

// Define FMT_TUPLE_JOIN_SPECIFIERS to enable experimental format specifiers
// support in tuple_join. It is disabled by default because of issues with
// the dynamic width and precision.
#ifndef FMT_TUPLE_JOIN_SPECIFIERS
#  define FMT_TUPLE_JOIN_SPECIFIERS 0
#endif

template <typename Tuple, typename Char>
struct formatter<tuple_join_view<Tuple, Char>, Char,
                 enable_if_t<is_tuple_like<Tuple>::value>> {
  FMT_CONSTEXPR auto parse(parse_context<Char>& ctx) -> const Char* {
    return do_parse(ctx, std::tuple_size<Tuple>());
  }

  template <typename FormatContext>
  auto format(const tuple_join_view<Tuple, Char>& value,
              FormatContext& ctx) const -> typename FormatContext::iterator {
    return do_format(value, ctx, std::tuple_size<Tuple>());
  }

 private:
  decltype(detail::tuple::get_formatters<Tuple, Char>(
      detail::tuple_index_sequence<Tuple>())) formatters_;

  FMT_CONSTEXPR auto do_parse(parse_context<Char>& ctx,
                              std::integral_constant<size_t, 0>)
      -> const Char* {
    return ctx.begin();
  }

  template <size_t N>
  FMT_CONSTEXPR auto do_parse(parse_context<Char>& ctx,
                              std::integral_constant<size_t, N>)
      -> const Char* {
    auto end = ctx.begin();
#if FMT_TUPLE_JOIN_SPECIFIERS
    end = std::get<std::tuple_size<Tuple>::value - N>(formatters_).parse(ctx);
    if (N > 1) {
      auto end1 = do_parse(ctx, std::integral_constant<size_t, N - 1>());
      if (end != end1)
        report_error("incompatible format specs for tuple elements");
    }
#endif
    return end;
  }

  template <typename FormatContext>
  auto do_format(const tuple_join_view<Tuple, Char>&, FormatContext& ctx,
                 std::integral_constant<size_t, 0>) const ->
      typename FormatContext::iterator {
    return ctx.out();
  }

  template <typename FormatContext, size_t N>
  auto do_format(const tuple_join_view<Tuple, Char>& value, FormatContext& ctx,
                 std::integral_constant<size_t, N>) const ->
      typename FormatContext::iterator {
    using std::get;
    auto out =
        std::get<std::tuple_size<Tuple>::value - N>(formatters_)
            .format(get<std::tuple_size<Tuple>::value - N>(value.tuple), ctx);
    if (N <= 1) return out;
    out = detail::copy<Char>(value.sep, out);
    ctx.advance_to(out);
    return do_format(value, ctx, std::integral_constant<size_t, N - 1>());
  }
};

namespace detail {
// Check if T has an interface like a container adaptor (e.g. std::stack,
// std::queue, std::priority_queue).
template <typename T> class is_container_adaptor_like {
  template <typename U> static auto check(U* p) -> typename U::container_type;
  template <typename> static void check(...);

 public:
  static constexpr bool value =
      !std::is_void<decltype(check<T>(nullptr))>::value;
};

template <typename Container> struct all {
  const Container& c;
  auto begin() const -> typename Container::const_iterator { return c.begin(); }
  auto end() const -> typename Container::const_iterator { return c.end(); }
};
}  // namespace detail

template <typename T, typename Char>
struct formatter<
    T, Char,
    enable_if_t<conjunction<detail::is_container_adaptor_like<T>,
                            bool_constant<range_format_kind<T, Char>::value ==
                                          range_format::disabled>>::value>>
    : formatter<detail::all<typename T::container_type>, Char> {
  using all = detail::all<typename T::container_type>;
  template <typename FormatContext>
  auto format(const T& value, FormatContext& ctx) const -> decltype(ctx.out()) {
    struct getter : T {
      static auto get(const T& v) -> all {
        return {v.*(&getter::c)};  // Access c through the derived class.
      }
    };
    return formatter<all>::format(getter::get(value), ctx);
  }
};

FMT_BEGIN_EXPORT

/// Returns a view that formats the iterator range `[begin, end)` with elements
/// separated by `sep`.
template <typename It, typename Sentinel>
auto join(It begin, Sentinel end, string_view sep) -> join_view<It, Sentinel> {
  return {std::move(begin), end, sep};
}

/**
 * Returns a view that formats `range` with elements separated by `sep`.
 *
 * **Example**:
 *
 *     auto v = std::vector<int>{1, 2, 3};
 *     fmt::print("{}", fmt::join(v, ", "));
 *     // Output: 1, 2, 3
 *
 * `fmt::join` applies passed format specifiers to the range elements:
 *
 *     fmt::print("{:02}", fmt::join(v, ", "));
 *     // Output: 01, 02, 03
 */
template <typename Range, FMT_ENABLE_IF(!is_tuple_like<Range>::value)>
auto join(Range&& r, string_view sep)
    -> join_view<decltype(detail::range_begin(r)),
                 decltype(detail::range_end(r))> {
  return {detail::range_begin(r), detail::range_end(r), sep};
}

/**
 * Returns an object that formats `std::tuple` with elements separated by `sep`.
 *
 * **Example**:
 *
 *     auto t = std::tuple<int, char>(1, 'a');
 *     fmt::print("{}", fmt::join(t, ", "));
 *     // Output: 1, a
 */
template <typename Tuple, FMT_ENABLE_IF(is_tuple_like<Tuple>::value)>
FMT_CONSTEXPR auto join(const Tuple& tuple FMT_LIFETIMEBOUND, string_view sep)
    -> tuple_join_view<Tuple, char> {
  return {tuple, sep};
}

/**
 * Returns an object that formats `std::initializer_list` with elements
 * separated by `sep`.
 *
 * **Example**:
 *
 *     fmt::print("{}", fmt::join({1, 2, 3}, ", "));
 *     // Output: "1, 2, 3"
 */
template <typename T>
auto join(std::initializer_list<T> list, string_view sep)
    -> join_view<const T*, const T*> {
  return join(std::begin(list), std::end(list), sep);
}

FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_RANGES_H_
