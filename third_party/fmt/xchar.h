// Formatting library for C++ - optional wchar_t and exotic character support
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_XCHAR_H_
#define FMT_XCHAR_H_

#include "color.h"
#include "format.h"
#include "ostream.h"
#include "ranges.h"

#ifndef FMT_MODULE
#  include <cwchar>
#  if FMT_USE_LOCALE
#    include <locale>
#  endif
#endif

FMT_BEGIN_NAMESPACE
namespace detail {

template <typename T>
using is_exotic_char = bool_constant<!std::is_same<T, char>::value>;

template <typename S, typename = void> struct format_string_char {};

template <typename S>
struct format_string_char<
    S, void_t<decltype(sizeof(detail::to_string_view(std::declval<S>())))>> {
  using type = char_t<S>;
};

template <typename S>
struct format_string_char<
    S, enable_if_t<std::is_base_of<detail::compile_string, S>::value>> {
  using type = typename S::char_type;
};

template <typename S>
using format_string_char_t = typename format_string_char<S>::type;

inline auto write_loc(basic_appender<wchar_t> out, loc_value value,
                      const format_specs& specs, locale_ref loc) -> bool {
#if FMT_USE_LOCALE
  auto& numpunct =
      std::use_facet<std::numpunct<wchar_t>>(loc.get<std::locale>());
  auto separator = std::wstring();
  auto grouping = numpunct.grouping();
  if (!grouping.empty()) separator = std::wstring(1, numpunct.thousands_sep());
  return value.visit(loc_writer<wchar_t>{out, specs, separator, grouping, {}});
#endif
  return false;
}

template <typename Char>
void vformat_to(buffer<Char>& buf, basic_string_view<Char> fmt,
                basic_format_args<buffered_context<Char>> args,
                locale_ref loc = {}) {
  static_assert(!std::is_same<Char, char>::value, "");
  auto out = basic_appender<Char>(buf);
  parse_format_string(
      fmt, format_handler<Char>{parse_context<Char>(fmt), {out, args, loc}});
}
}  // namespace detail

FMT_BEGIN_EXPORT

using wstring_view = basic_string_view<wchar_t>;
using wformat_parse_context = parse_context<wchar_t>;
using wformat_context = buffered_context<wchar_t>;
using wformat_args = basic_format_args<wformat_context>;
using wmemory_buffer = basic_memory_buffer<wchar_t>;

template <typename Char, typename... T> struct basic_fstring {
 private:
  basic_string_view<Char> str_;

  static constexpr int num_static_named_args =
      detail::count_static_named_args<T...>();

  using checker = detail::format_string_checker<
      Char, static_cast<int>(sizeof...(T)), num_static_named_args,
      num_static_named_args != detail::count_named_args<T...>()>;

  using arg_pack = detail::arg_pack<T...>;

 public:
  using t = basic_fstring;

  template <typename S,
            FMT_ENABLE_IF(
                std::is_convertible<const S&, basic_string_view<Char>>::value)>
  FMT_CONSTEVAL FMT_ALWAYS_INLINE basic_fstring(const S& s) : str_(s) {
    if (FMT_USE_CONSTEVAL)
      detail::parse_format_string<Char>(s, checker(s, arg_pack()));
  }
  template <typename S,
            FMT_ENABLE_IF(std::is_base_of<detail::compile_string, S>::value&&
                              std::is_same<typename S::char_type, Char>::value)>
  FMT_ALWAYS_INLINE basic_fstring(const S&) : str_(S()) {
    FMT_CONSTEXPR auto sv = basic_string_view<Char>(S());
    FMT_CONSTEXPR int ignore =
        (parse_format_string(sv, checker(sv, arg_pack())), 0);
    detail::ignore_unused(ignore);
  }
  basic_fstring(runtime_format_string<Char> fmt) : str_(fmt.str) {}

  operator basic_string_view<Char>() const { return str_; }
  auto get() const -> basic_string_view<Char> { return str_; }
};

template <typename Char, typename... T>
using basic_format_string = basic_fstring<Char, T...>;

template <typename... T>
using wformat_string = typename basic_format_string<wchar_t, T...>::t;
inline auto runtime(wstring_view s) -> runtime_format_string<wchar_t> {
  return {{s}};
}

template <typename... T>
constexpr auto make_wformat_args(T&... args)
    -> decltype(fmt::make_format_args<wformat_context>(args...)) {
  return fmt::make_format_args<wformat_context>(args...);
}

#if !FMT_USE_NONTYPE_TEMPLATE_ARGS
inline namespace literals {
inline auto operator""_a(const wchar_t* s, size_t) -> detail::udl_arg<wchar_t> {
  return {s};
}
}  // namespace literals
#endif

template <typename It, typename Sentinel>
auto join(It begin, Sentinel end, wstring_view sep)
    -> join_view<It, Sentinel, wchar_t> {
  return {begin, end, sep};
}

template <typename Range, FMT_ENABLE_IF(!is_tuple_like<Range>::value)>
auto join(Range&& range, wstring_view sep)
    -> join_view<decltype(std::begin(range)), decltype(std::end(range)),
                 wchar_t> {
  return join(std::begin(range), std::end(range), sep);
}

template <typename T>
auto join(std::initializer_list<T> list, wstring_view sep)
    -> join_view<const T*, const T*, wchar_t> {
  return join(std::begin(list), std::end(list), sep);
}

template <typename Tuple, FMT_ENABLE_IF(is_tuple_like<Tuple>::value)>
auto join(const Tuple& tuple, basic_string_view<wchar_t> sep)
    -> tuple_join_view<Tuple, wchar_t> {
  return {tuple, sep};
}

template <typename Char, FMT_ENABLE_IF(!std::is_same<Char, char>::value)>
auto vformat(basic_string_view<Char> fmt,
             basic_format_args<buffered_context<Char>> args)
    -> std::basic_string<Char> {
  auto buf = basic_memory_buffer<Char>();
  detail::vformat_to(buf, fmt, args);
  return {buf.data(), buf.size()};
}

template <typename... T>
auto format(wformat_string<T...> fmt, T&&... args) -> std::wstring {
  return vformat(fmt::wstring_view(fmt), fmt::make_wformat_args(args...));
}

template <typename OutputIt, typename... T>
auto format_to(OutputIt out, wformat_string<T...> fmt, T&&... args)
    -> OutputIt {
  return vformat_to(out, fmt::wstring_view(fmt),
                    fmt::make_wformat_args(args...));
}

// Pass char_t as a default template parameter instead of using
// std::basic_string<char_t<S>> to reduce the symbol size.
template <typename S, typename... T,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(!std::is_same<Char, char>::value &&
                        !std::is_same<Char, wchar_t>::value)>
auto format(const S& fmt, T&&... args) -> std::basic_string<Char> {
  return vformat(detail::to_string_view(fmt),
                 fmt::make_format_args<buffered_context<Char>>(args...));
}

template <typename S, typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_exotic_char<Char>::value)>
inline auto vformat(locale_ref loc, const S& fmt,
                    basic_format_args<buffered_context<Char>> args)
    -> std::basic_string<Char> {
  auto buf = basic_memory_buffer<Char>();
  detail::vformat_to(buf, detail::to_string_view(fmt), args, loc);
  return {buf.data(), buf.size()};
}

template <typename S, typename... T,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_exotic_char<Char>::value)>
inline auto format(locale_ref loc, const S& fmt, T&&... args)
    -> std::basic_string<Char> {
  return vformat(loc, detail::to_string_view(fmt),
                 fmt::make_format_args<buffered_context<Char>>(args...));
}

template <typename OutputIt, typename S,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, Char>::value&&
                            detail::is_exotic_char<Char>::value)>
auto vformat_to(OutputIt out, const S& fmt,
                basic_format_args<buffered_context<Char>> args) -> OutputIt {
  auto&& buf = detail::get_buffer<Char>(out);
  detail::vformat_to(buf, detail::to_string_view(fmt), args);
  return detail::get_iterator(buf, out);
}

template <typename OutputIt, typename S, typename... T,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, Char>::value &&
                        !std::is_same<Char, char>::value &&
                        !std::is_same<Char, wchar_t>::value)>
inline auto format_to(OutputIt out, const S& fmt, T&&... args) -> OutputIt {
  return vformat_to(out, detail::to_string_view(fmt),
                    fmt::make_format_args<buffered_context<Char>>(args...));
}

template <typename S, typename OutputIt, typename... Args,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, Char>::value&&
                            detail::is_exotic_char<Char>::value)>
inline auto vformat_to(OutputIt out, locale_ref loc, const S& fmt,
                       basic_format_args<buffered_context<Char>> args)
    -> OutputIt {
  auto&& buf = detail::get_buffer<Char>(out);
  vformat_to(buf, detail::to_string_view(fmt), args, loc);
  return detail::get_iterator(buf, out);
}

template <typename OutputIt, typename S, typename... T,
          typename Char = detail::format_string_char_t<S>,
          bool enable = detail::is_output_iterator<OutputIt, Char>::value &&
                        detail::is_exotic_char<Char>::value>
inline auto format_to(OutputIt out, locale_ref loc, const S& fmt, T&&... args)
    -> typename std::enable_if<enable, OutputIt>::type {
  return vformat_to(out, loc, detail::to_string_view(fmt),
                    fmt::make_format_args<buffered_context<Char>>(args...));
}

template <typename OutputIt, typename Char, typename... Args,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, Char>::value&&
                            detail::is_exotic_char<Char>::value)>
inline auto vformat_to_n(OutputIt out, size_t n, basic_string_view<Char> fmt,
                         basic_format_args<buffered_context<Char>> args)
    -> format_to_n_result<OutputIt> {
  using traits = detail::fixed_buffer_traits;
  auto buf = detail::iterator_buffer<OutputIt, Char, traits>(out, n);
  detail::vformat_to(buf, fmt, args);
  return {buf.out(), buf.count()};
}

template <typename OutputIt, typename S, typename... T,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_output_iterator<OutputIt, Char>::value&&
                            detail::is_exotic_char<Char>::value)>
inline auto format_to_n(OutputIt out, size_t n, const S& fmt, T&&... args)
    -> format_to_n_result<OutputIt> {
  return vformat_to_n(out, n, fmt::basic_string_view<Char>(fmt),
                      fmt::make_format_args<buffered_context<Char>>(args...));
}

template <typename S, typename... T,
          typename Char = detail::format_string_char_t<S>,
          FMT_ENABLE_IF(detail::is_exotic_char<Char>::value)>
inline auto formatted_size(const S& fmt, T&&... args) -> size_t {
  auto buf = detail::counting_buffer<Char>();
  detail::vformat_to(buf, detail::to_string_view(fmt),
                     fmt::make_format_args<buffered_context<Char>>(args...));
  return buf.count();
}

inline void vprint(std::FILE* f, wstring_view fmt, wformat_args args) {
  auto buf = wmemory_buffer();
  detail::vformat_to(buf, fmt, args);
  buf.push_back(L'\0');
  if (std::fputws(buf.data(), f) == -1)
    FMT_THROW(system_error(errno, FMT_STRING("cannot write to file")));
}

inline void vprint(wstring_view fmt, wformat_args args) {
  vprint(stdout, fmt, args);
}

template <typename... T>
void print(std::FILE* f, wformat_string<T...> fmt, T&&... args) {
  return vprint(f, wstring_view(fmt), fmt::make_wformat_args(args...));
}

template <typename... T> void print(wformat_string<T...> fmt, T&&... args) {
  return vprint(wstring_view(fmt), fmt::make_wformat_args(args...));
}

template <typename... T>
void println(std::FILE* f, wformat_string<T...> fmt, T&&... args) {
  return print(f, L"{}\n", fmt::format(fmt, std::forward<T>(args)...));
}

template <typename... T> void println(wformat_string<T...> fmt, T&&... args) {
  return print(L"{}\n", fmt::format(fmt, std::forward<T>(args)...));
}

inline auto vformat(text_style ts, wstring_view fmt, wformat_args args)
    -> std::wstring {
  auto buf = wmemory_buffer();
  detail::vformat_to(buf, ts, fmt, args);
  return {buf.data(), buf.size()};
}

template <typename... T>
inline auto format(text_style ts, wformat_string<T...> fmt, T&&... args)
    -> std::wstring {
  return fmt::vformat(ts, fmt, fmt::make_wformat_args(args...));
}

inline void vprint(std::wostream& os, wstring_view fmt, wformat_args args) {
  auto buffer = basic_memory_buffer<wchar_t>();
  detail::vformat_to(buffer, fmt, args);
  detail::write_buffer(os, buffer);
}

template <typename... T>
void print(std::wostream& os, wformat_string<T...> fmt, T&&... args) {
  vprint(os, fmt, fmt::make_format_args<buffered_context<wchar_t>>(args...));
}

template <typename... T>
void println(std::wostream& os, wformat_string<T...> fmt, T&&... args) {
  print(os, L"{}\n", fmt::format(fmt, std::forward<T>(args)...));
}

/// Converts `value` to `std::wstring` using the default format for type `T`.
template <typename T> inline auto to_wstring(const T& value) -> std::wstring {
  return format(FMT_STRING(L"{}"), value);
}
FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_XCHAR_H_
