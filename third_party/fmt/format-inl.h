// Formatting library for C++ - implementation
//
// Copyright (c) 2012 - 2016, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_FORMAT_INL_H_
#define FMT_FORMAT_INL_H_

#ifndef FMT_MODULE
#  include <algorithm>
#  include <cerrno>  // errno
#  include <climits>
#  include <cmath>
#  include <exception>
#endif

#if defined(_WIN32) && !defined(FMT_USE_WRITE_CONSOLE)
#  include <io.h>  // _isatty
#endif

#include "format.h"

#if FMT_USE_LOCALE && !defined(FMT_MODULE)
#  include <locale>
#endif

#ifndef FMT_FUNC
#  define FMT_FUNC
#endif

FMT_BEGIN_NAMESPACE

#ifndef FMT_CUSTOM_ASSERT_FAIL
FMT_FUNC void assert_fail(const char* file, int line, const char* message) {
  // Use unchecked std::fprintf to avoid triggering another assertion when
  // writing to stderr fails.
  std::fprintf(stderr, "%s:%d: assertion failed: %s", file, line, message);
  abort();
}
#endif

#if FMT_USE_LOCALE
namespace detail {
using std::locale;
using std::numpunct;
using std::use_facet;
}  // namespace detail
#else
namespace detail {
struct locale {};
template <typename Char> struct numpunct {
  auto grouping() const -> std::string { return "\03"; }
  auto thousands_sep() const -> Char { return ','; }
  auto decimal_point() const -> Char { return '.'; }
};
template <typename Facet> Facet use_facet(locale) { return {}; }
}  // namespace detail
#endif  // FMT_USE_LOCALE

template <typename Locale> auto locale_ref::get() const -> Locale {
  using namespace detail;
  static_assert(std::is_same<Locale, locale>::value, "");
#if FMT_USE_LOCALE
  if (locale_) return *static_cast<const locale*>(locale_);
#endif
  return locale();
}

namespace detail {

FMT_FUNC void format_error_code(detail::buffer<char>& out, int error_code,
                                string_view message) noexcept {
  // Report error code making sure that the output fits into
  // inline_buffer_size to avoid dynamic memory allocation and potential
  // bad_alloc.
  out.try_resize(0);
  static const char SEP[] = ": ";
  static const char ERROR_STR[] = "error ";
  // Subtract 2 to account for terminating null characters in SEP and ERROR_STR.
  size_t error_code_size = sizeof(SEP) + sizeof(ERROR_STR) - 2;
  auto abs_value = static_cast<uint32_or_64_or_128_t<int>>(error_code);
  if (detail::is_negative(error_code)) {
    abs_value = 0 - abs_value;
    ++error_code_size;
  }
  error_code_size += detail::to_unsigned(detail::count_digits(abs_value));
  auto it = appender(out);
  if (message.size() <= inline_buffer_size - error_code_size)
    fmt::format_to(it, FMT_STRING("{}{}"), message, SEP);
  fmt::format_to(it, FMT_STRING("{}{}"), ERROR_STR, error_code);
  FMT_ASSERT(out.size() <= inline_buffer_size, "");
}

FMT_FUNC void do_report_error(format_func func, int error_code,
                              const char* message) noexcept {
  memory_buffer full_message;
  func(full_message, error_code, message);
  // Don't use fwrite_all because the latter may throw.
  if (std::fwrite(full_message.data(), full_message.size(), 1, stderr) > 0)
    std::fputc('\n', stderr);
}

// A wrapper around fwrite that throws on error.
inline void fwrite_all(const void* ptr, size_t count, FILE* stream) {
  size_t written = std::fwrite(ptr, 1, count, stream);
  if (written < count)
    FMT_THROW(system_error(errno, FMT_STRING("cannot write to file")));
}

template <typename Char>
FMT_FUNC auto thousands_sep_impl(locale_ref loc) -> thousands_sep_result<Char> {
  auto&& facet = use_facet<numpunct<Char>>(loc.get<locale>());
  auto grouping = facet.grouping();
  auto thousands_sep = grouping.empty() ? Char() : facet.thousands_sep();
  return {std::move(grouping), thousands_sep};
}
template <typename Char>
FMT_FUNC auto decimal_point_impl(locale_ref loc) -> Char {
  return use_facet<numpunct<Char>>(loc.get<locale>()).decimal_point();
}

#if FMT_USE_LOCALE
FMT_FUNC auto write_loc(appender out, loc_value value,
                        const format_specs& specs, locale_ref loc) -> bool {
  auto locale = loc.get<std::locale>();
  // We cannot use the num_put<char> facet because it may produce output in
  // a wrong encoding.
  using facet = format_facet<std::locale>;
  if (std::has_facet<facet>(locale))
    return use_facet<facet>(locale).put(out, value, specs);
  return facet(locale).put(out, value, specs);
}
#endif
}  // namespace detail

FMT_FUNC void report_error(const char* message) {
#if FMT_MSC_VERSION || defined(__NVCC__)
  // Silence unreachable code warnings in MSVC and NVCC because these
  // are nearly impossible to fix in a generic code.
  volatile bool b = true;
  if (!b) return;
#endif
  FMT_THROW(format_error(message));
}

template <typename Locale> typename Locale::id format_facet<Locale>::id;

template <typename Locale> format_facet<Locale>::format_facet(Locale& loc) {
  auto& np = detail::use_facet<detail::numpunct<char>>(loc);
  grouping_ = np.grouping();
  if (!grouping_.empty()) separator_ = std::string(1, np.thousands_sep());
}

#if FMT_USE_LOCALE
template <>
FMT_API FMT_FUNC auto format_facet<std::locale>::do_put(
    appender out, loc_value val, const format_specs& specs) const -> bool {
  return val.visit(
      detail::loc_writer<>{out, specs, separator_, grouping_, decimal_point_});
}
#endif

FMT_FUNC auto vsystem_error(int error_code, string_view fmt, format_args args)
    -> std::system_error {
  auto ec = std::error_code(error_code, std::generic_category());
  return std::system_error(ec, vformat(fmt, args));
}

namespace detail {

template <typename F>
inline auto operator==(basic_fp<F> x, basic_fp<F> y) -> bool {
  return x.f == y.f && x.e == y.e;
}

// Compilers should be able to optimize this into the ror instruction.
FMT_INLINE auto rotr(uint32_t n, uint32_t r) noexcept -> uint32_t {
  r &= 31;
  return (n >> r) | (n << (32 - r));
}
FMT_INLINE auto rotr(uint64_t n, uint32_t r) noexcept -> uint64_t {
  r &= 63;
  return (n >> r) | (n << (64 - r));
}

// Implementation of Dragonbox algorithm: https://github.com/jk-jeon/dragonbox.
namespace dragonbox {
// Computes upper 64 bits of multiplication of a 32-bit unsigned integer and a
// 64-bit unsigned integer.
inline auto umul96_upper64(uint32_t x, uint64_t y) noexcept -> uint64_t {
  return umul128_upper64(static_cast<uint64_t>(x) << 32, y);
}

// Computes lower 128 bits of multiplication of a 64-bit unsigned integer and a
// 128-bit unsigned integer.
inline auto umul192_lower128(uint64_t x, uint128_fallback y) noexcept
    -> uint128_fallback {
  uint64_t high = x * y.high();
  uint128_fallback high_low = umul128(x, y.low());
  return {high + high_low.high(), high_low.low()};
}

// Computes lower 64 bits of multiplication of a 32-bit unsigned integer and a
// 64-bit unsigned integer.
inline auto umul96_lower64(uint32_t x, uint64_t y) noexcept -> uint64_t {
  return x * y;
}

// Various fast log computations.
inline auto floor_log10_pow2_minus_log10_4_over_3(int e) noexcept -> int {
  FMT_ASSERT(e <= 2936 && e >= -2985, "too large exponent");
  return (e * 631305 - 261663) >> 21;
}

FMT_INLINE_VARIABLE constexpr struct div_small_pow10_infos_struct {
  uint32_t divisor;
  int shift_amount;
} div_small_pow10_infos[] = {{10, 16}, {100, 16}};

// Replaces n by floor(n / pow(10, N)) returning true if and only if n is
// divisible by pow(10, N).
// Precondition: n <= pow(10, N + 1).
template <int N>
auto check_divisibility_and_divide_by_pow10(uint32_t& n) noexcept -> bool {
  // The numbers below are chosen such that:
  //   1. floor(n/d) = floor(nm / 2^k) where d=10 or d=100,
  //   2. nm mod 2^k < m if and only if n is divisible by d,
  // where m is magic_number, k is shift_amount
  // and d is divisor.
  //
  // Item 1 is a common technique of replacing division by a constant with
  // multiplication, see e.g. "Division by Invariant Integers Using
  // Multiplication" by Granlund and Montgomery (1994). magic_number (m) is set
  // to ceil(2^k/d) for large enough k.
  // The idea for item 2 originates from Schubfach.
  constexpr auto info = div_small_pow10_infos[N - 1];
  FMT_ASSERT(n <= info.divisor * 10, "n is too large");
  constexpr uint32_t magic_number =
      (1u << info.shift_amount) / info.divisor + 1;
  n *= magic_number;
  const uint32_t comparison_mask = (1u << info.shift_amount) - 1;
  bool result = (n & comparison_mask) < magic_number;
  n >>= info.shift_amount;
  return result;
}

// Computes floor(n / pow(10, N)) for small n and N.
// Precondition: n <= pow(10, N + 1).
template <int N> auto small_division_by_pow10(uint32_t n) noexcept -> uint32_t {
  constexpr auto info = div_small_pow10_infos[N - 1];
  FMT_ASSERT(n <= info.divisor * 10, "n is too large");
  constexpr uint32_t magic_number =
      (1u << info.shift_amount) / info.divisor + 1;
  return (n * magic_number) >> info.shift_amount;
}

// Computes floor(n / 10^(kappa + 1)) (float)
inline auto divide_by_10_to_kappa_plus_1(uint32_t n) noexcept -> uint32_t {
  // 1374389535 = ceil(2^37/100)
  return static_cast<uint32_t>((static_cast<uint64_t>(n) * 1374389535) >> 37);
}
// Computes floor(n / 10^(kappa + 1)) (double)
inline auto divide_by_10_to_kappa_plus_1(uint64_t n) noexcept -> uint64_t {
  // 2361183241434822607 = ceil(2^(64+7)/1000)
  return umul128_upper64(n, 2361183241434822607ull) >> 7;
}

// Various subroutines using pow10 cache
template <typename T> struct cache_accessor;

template <> struct cache_accessor<float> {
  using carrier_uint = float_info<float>::carrier_uint;
  using cache_entry_type = uint64_t;

  static auto get_cached_power(int k) noexcept -> uint64_t {
    FMT_ASSERT(k >= float_info<float>::min_k && k <= float_info<float>::max_k,
               "k is out of range");
    static constexpr uint64_t pow10_significands[] = {
        0x81ceb32c4b43fcf5, 0xa2425ff75e14fc32, 0xcad2f7f5359a3b3f,
        0xfd87b5f28300ca0e, 0x9e74d1b791e07e49, 0xc612062576589ddb,
        0xf79687aed3eec552, 0x9abe14cd44753b53, 0xc16d9a0095928a28,
        0xf1c90080baf72cb2, 0x971da05074da7bef, 0xbce5086492111aeb,
        0xec1e4a7db69561a6, 0x9392ee8e921d5d08, 0xb877aa3236a4b44a,
        0xe69594bec44de15c, 0x901d7cf73ab0acda, 0xb424dc35095cd810,
        0xe12e13424bb40e14, 0x8cbccc096f5088cc, 0xafebff0bcb24aaff,
        0xdbe6fecebdedd5bf, 0x89705f4136b4a598, 0xabcc77118461cefd,
        0xd6bf94d5e57a42bd, 0x8637bd05af6c69b6, 0xa7c5ac471b478424,
        0xd1b71758e219652c, 0x83126e978d4fdf3c, 0xa3d70a3d70a3d70b,
        0xcccccccccccccccd, 0x8000000000000000, 0xa000000000000000,
        0xc800000000000000, 0xfa00000000000000, 0x9c40000000000000,
        0xc350000000000000, 0xf424000000000000, 0x9896800000000000,
        0xbebc200000000000, 0xee6b280000000000, 0x9502f90000000000,
        0xba43b74000000000, 0xe8d4a51000000000, 0x9184e72a00000000,
        0xb5e620f480000000, 0xe35fa931a0000000, 0x8e1bc9bf04000000,
        0xb1a2bc2ec5000000, 0xde0b6b3a76400000, 0x8ac7230489e80000,
        0xad78ebc5ac620000, 0xd8d726b7177a8000, 0x878678326eac9000,
        0xa968163f0a57b400, 0xd3c21bcecceda100, 0x84595161401484a0,
        0xa56fa5b99019a5c8, 0xcecb8f27f4200f3a, 0x813f3978f8940985,
        0xa18f07d736b90be6, 0xc9f2c9cd04674edf, 0xfc6f7c4045812297,
        0x9dc5ada82b70b59e, 0xc5371912364ce306, 0xf684df56c3e01bc7,
        0x9a130b963a6c115d, 0xc097ce7bc90715b4, 0xf0bdc21abb48db21,
        0x96769950b50d88f5, 0xbc143fa4e250eb32, 0xeb194f8e1ae525fe,
        0x92efd1b8d0cf37bf, 0xb7abc627050305ae, 0xe596b7b0c643c71a,
        0x8f7e32ce7bea5c70, 0xb35dbf821ae4f38c, 0xe0352f62a19e306f};
    return pow10_significands[k - float_info<float>::min_k];
  }

  struct compute_mul_result {
    carrier_uint result;
    bool is_integer;
  };
  struct compute_mul_parity_result {
    bool parity;
    bool is_integer;
  };

  static auto compute_mul(carrier_uint u,
                          const cache_entry_type& cache) noexcept
      -> compute_mul_result {
    auto r = umul96_upper64(u, cache);
    return {static_cast<carrier_uint>(r >> 32),
            static_cast<carrier_uint>(r) == 0};
  }

  static auto compute_delta(const cache_entry_type& cache, int beta) noexcept
      -> uint32_t {
    return static_cast<uint32_t>(cache >> (64 - 1 - beta));
  }

  static auto compute_mul_parity(carrier_uint two_f,
                                 const cache_entry_type& cache,
                                 int beta) noexcept
      -> compute_mul_parity_result {
    FMT_ASSERT(beta >= 1, "");
    FMT_ASSERT(beta < 64, "");

    auto r = umul96_lower64(two_f, cache);
    return {((r >> (64 - beta)) & 1) != 0,
            static_cast<uint32_t>(r >> (32 - beta)) == 0};
  }

  static auto compute_left_endpoint_for_shorter_interval_case(
      const cache_entry_type& cache, int beta) noexcept -> carrier_uint {
    return static_cast<carrier_uint>(
        (cache - (cache >> (num_significand_bits<float>() + 2))) >>
        (64 - num_significand_bits<float>() - 1 - beta));
  }

  static auto compute_right_endpoint_for_shorter_interval_case(
      const cache_entry_type& cache, int beta) noexcept -> carrier_uint {
    return static_cast<carrier_uint>(
        (cache + (cache >> (num_significand_bits<float>() + 1))) >>
        (64 - num_significand_bits<float>() - 1 - beta));
  }

  static auto compute_round_up_for_shorter_interval_case(
      const cache_entry_type& cache, int beta) noexcept -> carrier_uint {
    return (static_cast<carrier_uint>(
                cache >> (64 - num_significand_bits<float>() - 2 - beta)) +
            1) /
           2;
  }
};

template <> struct cache_accessor<double> {
  using carrier_uint = float_info<double>::carrier_uint;
  using cache_entry_type = uint128_fallback;

  static auto get_cached_power(int k) noexcept -> uint128_fallback {
    FMT_ASSERT(k >= float_info<double>::min_k && k <= float_info<double>::max_k,
               "k is out of range");

    static constexpr uint128_fallback pow10_significands[] = {
#if FMT_USE_FULL_CACHE_DRAGONBOX
      {0xff77b1fcbebcdc4f, 0x25e8e89c13bb0f7b},
      {0x9faacf3df73609b1, 0x77b191618c54e9ad},
      {0xc795830d75038c1d, 0xd59df5b9ef6a2418},
      {0xf97ae3d0d2446f25, 0x4b0573286b44ad1e},
      {0x9becce62836ac577, 0x4ee367f9430aec33},
      {0xc2e801fb244576d5, 0x229c41f793cda740},
      {0xf3a20279ed56d48a, 0x6b43527578c11110},
      {0x9845418c345644d6, 0x830a13896b78aaaa},
      {0xbe5691ef416bd60c, 0x23cc986bc656d554},
      {0xedec366b11c6cb8f, 0x2cbfbe86b7ec8aa9},
      {0x94b3a202eb1c3f39, 0x7bf7d71432f3d6aa},
      {0xb9e08a83a5e34f07, 0xdaf5ccd93fb0cc54},
      {0xe858ad248f5c22c9, 0xd1b3400f8f9cff69},
      {0x91376c36d99995be, 0x23100809b9c21fa2},
      {0xb58547448ffffb2d, 0xabd40a0c2832a78b},
      {0xe2e69915b3fff9f9, 0x16c90c8f323f516d},
      {0x8dd01fad907ffc3b, 0xae3da7d97f6792e4},
      {0xb1442798f49ffb4a, 0x99cd11cfdf41779d},
      {0xdd95317f31c7fa1d, 0x40405643d711d584},
      {0x8a7d3eef7f1cfc52, 0x482835ea666b2573},
      {0xad1c8eab5ee43b66, 0xda3243650005eed0},
      {0xd863b256369d4a40, 0x90bed43e40076a83},
      {0x873e4f75e2224e68, 0x5a7744a6e804a292},
      {0xa90de3535aaae202, 0x711515d0a205cb37},
      {0xd3515c2831559a83, 0x0d5a5b44ca873e04},
      {0x8412d9991ed58091, 0xe858790afe9486c3},
      {0xa5178fff668ae0b6, 0x626e974dbe39a873},
      {0xce5d73ff402d98e3, 0xfb0a3d212dc81290},
      {0x80fa687f881c7f8e, 0x7ce66634bc9d0b9a},
      {0xa139029f6a239f72, 0x1c1fffc1ebc44e81},
      {0xc987434744ac874e, 0xa327ffb266b56221},
      {0xfbe9141915d7a922, 0x4bf1ff9f0062baa9},
      {0x9d71ac8fada6c9b5, 0x6f773fc3603db4aa},
      {0xc4ce17b399107c22, 0xcb550fb4384d21d4},
      {0xf6019da07f549b2b, 0x7e2a53a146606a49},
      {0x99c102844f94e0fb, 0x2eda7444cbfc426e},
      {0xc0314325637a1939, 0xfa911155fefb5309},
      {0xf03d93eebc589f88, 0x793555ab7eba27cb},
      {0x96267c7535b763b5, 0x4bc1558b2f3458df},
      {0xbbb01b9283253ca2, 0x9eb1aaedfb016f17},
      {0xea9c227723ee8bcb, 0x465e15a979c1cadd},
      {0x92a1958a7675175f, 0x0bfacd89ec191eca},
      {0xb749faed14125d36, 0xcef980ec671f667c},
      {0xe51c79a85916f484, 0x82b7e12780e7401b},
      {0x8f31cc0937ae58d2, 0xd1b2ecb8b0908811},
      {0xb2fe3f0b8599ef07, 0x861fa7e6dcb4aa16},
      {0xdfbdcece67006ac9, 0x67a791e093e1d49b},
      {0x8bd6a141006042bd, 0xe0c8bb2c5c6d24e1},
      {0xaecc49914078536d, 0x58fae9f773886e19},
      {0xda7f5bf590966848, 0xaf39a475506a899f},
      {0x888f99797a5e012d, 0x6d8406c952429604},
      {0xaab37fd7d8f58178, 0xc8e5087ba6d33b84},
      {0xd5605fcdcf32e1d6, 0xfb1e4a9a90880a65},
      {0x855c3be0a17fcd26, 0x5cf2eea09a550680},
      {0xa6b34ad8c9dfc06f, 0xf42faa48c0ea481f},
      {0xd0601d8efc57b08b, 0xf13b94daf124da27},
      {0x823c12795db6ce57, 0x76c53d08d6b70859},
      {0xa2cb1717b52481ed, 0x54768c4b0c64ca6f},
      {0xcb7ddcdda26da268, 0xa9942f5dcf7dfd0a},
      {0xfe5d54150b090b02, 0xd3f93b35435d7c4d},
      {0x9efa548d26e5a6e1, 0xc47bc5014a1a6db0},
      {0xc6b8e9b0709f109a, 0x359ab6419ca1091c},
      {0xf867241c8cc6d4c0, 0xc30163d203c94b63},
      {0x9b407691d7fc44f8, 0x79e0de63425dcf1e},
      {0xc21094364dfb5636, 0x985915fc12f542e5},
      {0xf294b943e17a2bc4, 0x3e6f5b7b17b2939e},
      {0x979cf3ca6cec5b5a, 0xa705992ceecf9c43},
      {0xbd8430bd08277231, 0x50c6ff782a838354},
      {0xece53cec4a314ebd, 0xa4f8bf5635246429},
      {0x940f4613ae5ed136, 0x871b7795e136be9a},
      {0xb913179899f68584, 0x28e2557b59846e40},
      {0xe757dd7ec07426e5, 0x331aeada2fe589d0},
      {0x9096ea6f3848984f, 0x3ff0d2c85def7622},
      {0xb4bca50b065abe63, 0x0fed077a756b53aa},
      {0xe1ebce4dc7f16dfb, 0xd3e8495912c62895},
      {0x8d3360f09cf6e4bd, 0x64712dd7abbbd95d},
      {0xb080392cc4349dec, 0xbd8d794d96aacfb4},
      {0xdca04777f541c567, 0xecf0d7a0fc5583a1},
      {0x89e42caaf9491b60, 0xf41686c49db57245},
      {0xac5d37d5b79b6239, 0x311c2875c522ced6},
      {0xd77485cb25823ac7, 0x7d633293366b828c},
      {0x86a8d39ef77164bc, 0xae5dff9c02033198},
      {0xa8530886b54dbdeb, 0xd9f57f830283fdfd},
      {0xd267caa862a12d66, 0xd072df63c324fd7c},
      {0x8380dea93da4bc60, 0x4247cb9e59f71e6e},
      {0xa46116538d0deb78, 0x52d9be85f074e609},
      {0xcd795be870516656, 0x67902e276c921f8c},
      {0x806bd9714632dff6, 0x00ba1cd8a3db53b7},
      {0xa086cfcd97bf97f3, 0x80e8a40eccd228a5},
      {0xc8a883c0fdaf7df0, 0x6122cd128006b2ce},
      {0xfad2a4b13d1b5d6c, 0x796b805720085f82},
      {0x9cc3a6eec6311a63, 0xcbe3303674053bb1},
      {0xc3f490aa77bd60fc, 0xbedbfc4411068a9d},
      {0xf4f1b4d515acb93b, 0xee92fb5515482d45},
      {0x991711052d8bf3c5, 0x751bdd152d4d1c4b},
      {0xbf5cd54678eef0b6, 0xd262d45a78a0635e},
      {0xef340a98172aace4, 0x86fb897116c87c35},
      {0x9580869f0e7aac0e, 0xd45d35e6ae3d4da1},
      {0xbae0a846d2195712, 0x8974836059cca10a},
      {0xe998d258869facd7, 0x2bd1a438703fc94c},
      {0x91ff83775423cc06, 0x7b6306a34627ddd0},
      {0xb67f6455292cbf08, 0x1a3bc84c17b1d543},
      {0xe41f3d6a7377eeca, 0x20caba5f1d9e4a94},
      {0x8e938662882af53e, 0x547eb47b7282ee9d},
      {0xb23867fb2a35b28d, 0xe99e619a4f23aa44},
      {0xdec681f9f4c31f31, 0x6405fa00e2ec94d5},
      {0x8b3c113c38f9f37e, 0xde83bc408dd3dd05},
      {0xae0b158b4738705e, 0x9624ab50b148d446},
      {0xd98ddaee19068c76, 0x3badd624dd9b0958},
      {0x87f8a8d4cfa417c9, 0xe54ca5d70a80e5d7},
      {0xa9f6d30a038d1dbc, 0x5e9fcf4ccd211f4d},
      {0xd47487cc8470652b, 0x7647c32000696720},
      {0x84c8d4dfd2c63f3b, 0x29ecd9f40041e074},
      {0xa5fb0a17c777cf09, 0xf468107100525891},
      {0xcf79cc9db955c2cc, 0x7182148d4066eeb5},
      {0x81ac1fe293d599bf, 0xc6f14cd848405531},
      {0xa21727db38cb002f, 0xb8ada00e5a506a7d},
      {0xca9cf1d206fdc03b, 0xa6d90811f0e4851d},
      {0xfd442e4688bd304a, 0x908f4a166d1da664},
      {0x9e4a9cec15763e2e, 0x9a598e4e043287ff},
      {0xc5dd44271ad3cdba, 0x40eff1e1853f29fe},
      {0xf7549530e188c128, 0xd12bee59e68ef47d},
      {0x9a94dd3e8cf578b9, 0x82bb74f8301958cf},
      {0xc13a148e3032d6e7, 0xe36a52363c1faf02},
      {0xf18899b1bc3f8ca1, 0xdc44e6c3cb279ac2},
      {0x96f5600f15a7b7e5, 0x29ab103a5ef8c0ba},
      {0xbcb2b812db11a5de, 0x7415d448f6b6f0e8},
      {0xebdf661791d60f56, 0x111b495b3464ad22},
      {0x936b9fcebb25c995, 0xcab10dd900beec35},
      {0xb84687c269ef3bfb, 0x3d5d514f40eea743},
      {0xe65829b3046b0afa, 0x0cb4a5a3112a5113},
      {0x8ff71a0fe2c2e6dc, 0x47f0e785eaba72ac},
      {0xb3f4e093db73a093, 0x59ed216765690f57},
      {0xe0f218b8d25088b8, 0x306869c13ec3532d},
      {0x8c974f7383725573, 0x1e414218c73a13fc},
      {0xafbd2350644eeacf, 0xe5d1929ef90898fb},
      {0xdbac6c247d62a583, 0xdf45f746b74abf3a},
      {0x894bc396ce5da772, 0x6b8bba8c328eb784},
      {0xab9eb47c81f5114f, 0x066ea92f3f326565},
      {0xd686619ba27255a2, 0xc80a537b0efefebe},
      {0x8613fd0145877585, 0xbd06742ce95f5f37},
      {0xa798fc4196e952e7, 0x2c48113823b73705},
      {0xd17f3b51fca3a7a0, 0xf75a15862ca504c6},
      {0x82ef85133de648c4, 0x9a984d73dbe722fc},
      {0xa3ab66580d5fdaf5, 0xc13e60d0d2e0ebbb},
      {0xcc963fee10b7d1b3, 0x318df905079926a9},
      {0xffbbcfe994e5c61f, 0xfdf17746497f7053},
      {0x9fd561f1fd0f9bd3, 0xfeb6ea8bedefa634},
      {0xc7caba6e7c5382c8, 0xfe64a52ee96b8fc1},
      {0xf9bd690a1b68637b, 0x3dfdce7aa3c673b1},
      {0x9c1661a651213e2d, 0x06bea10ca65c084f},
      {0xc31bfa0fe5698db8, 0x486e494fcff30a63},
      {0xf3e2f893dec3f126, 0x5a89dba3c3efccfb},
      {0x986ddb5c6b3a76b7, 0xf89629465a75e01d},
      {0xbe89523386091465, 0xf6bbb397f1135824},
      {0xee2ba6c0678b597f, 0x746aa07ded582e2d},
      {0x94db483840b717ef, 0xa8c2a44eb4571cdd},
      {0xba121a4650e4ddeb, 0x92f34d62616ce414},
      {0xe896a0d7e51e1566, 0x77b020baf9c81d18},
      {0x915e2486ef32cd60, 0x0ace1474dc1d122f},
      {0xb5b5ada8aaff80b8, 0x0d819992132456bb},
      {0xe3231912d5bf60e6, 0x10e1fff697ed6c6a},
      {0x8df5efabc5979c8f, 0xca8d3ffa1ef463c2},
      {0xb1736b96b6fd83b3, 0xbd308ff8a6b17cb3},
      {0xddd0467c64bce4a0, 0xac7cb3f6d05ddbdf},
      {0x8aa22c0dbef60ee4, 0x6bcdf07a423aa96c},
      {0xad4ab7112eb3929d, 0x86c16c98d2c953c7},
      {0xd89d64d57a607744, 0xe871c7bf077ba8b8},
      {0x87625f056c7c4a8b, 0x11471cd764ad4973},
      {0xa93af6c6c79b5d2d, 0xd598e40d3dd89bd0},
      {0xd389b47879823479, 0x4aff1d108d4ec2c4},
      {0x843610cb4bf160cb, 0xcedf722a585139bb},
      {0xa54394fe1eedb8fe, 0xc2974eb4ee658829},
      {0xce947a3da6a9273e, 0x733d226229feea33},
      {0x811ccc668829b887, 0x0806357d5a3f5260},
      {0xa163ff802a3426a8, 0xca07c2dcb0cf26f8},
      {0xc9bcff6034c13052, 0xfc89b393dd02f0b6},
      {0xfc2c3f3841f17c67, 0xbbac2078d443ace3},
      {0x9d9ba7832936edc0, 0xd54b944b84aa4c0e},
      {0xc5029163f384a931, 0x0a9e795e65d4df12},
      {0xf64335bcf065d37d, 0x4d4617b5ff4a16d6},
      {0x99ea0196163fa42e, 0x504bced1bf8e4e46},
      {0xc06481fb9bcf8d39, 0xe45ec2862f71e1d7},
      {0xf07da27a82c37088, 0x5d767327bb4e5a4d},
      {0x964e858c91ba2655, 0x3a6a07f8d510f870},
      {0xbbe226efb628afea, 0x890489f70a55368c},
      {0xeadab0aba3b2dbe5, 0x2b45ac74ccea842f},
      {0x92c8ae6b464fc96f, 0x3b0b8bc90012929e},
      {0xb77ada0617e3bbcb, 0x09ce6ebb40173745},
      {0xe55990879ddcaabd, 0xcc420a6a101d0516},
      {0x8f57fa54c2a9eab6, 0x9fa946824a12232e},
      {0xb32df8e9f3546564, 0x47939822dc96abfa},
      {0xdff9772470297ebd, 0x59787e2b93bc56f8},
      {0x8bfbea76c619ef36, 0x57eb4edb3c55b65b},
      {0xaefae51477a06b03, 0xede622920b6b23f2},
      {0xdab99e59958885c4, 0xe95fab368e45ecee},
      {0x88b402f7fd75539b, 0x11dbcb0218ebb415},
      {0xaae103b5fcd2a881, 0xd652bdc29f26a11a},
      {0xd59944a37c0752a2, 0x4be76d3346f04960},
      {0x857fcae62d8493a5, 0x6f70a4400c562ddc},
      {0xa6dfbd9fb8e5b88e, 0xcb4ccd500f6bb953},
      {0xd097ad07a71f26b2, 0x7e2000a41346a7a8},
      {0x825ecc24c873782f, 0x8ed400668c0c28c9},
      {0xa2f67f2dfa90563b, 0x728900802f0f32fb},
      {0xcbb41ef979346bca, 0x4f2b40a03ad2ffba},
      {0xfea126b7d78186bc, 0xe2f610c84987bfa9},
      {0x9f24b832e6b0f436, 0x0dd9ca7d2df4d7ca},
      {0xc6ede63fa05d3143, 0x91503d1c79720dbc},
      {0xf8a95fcf88747d94, 0x75a44c6397ce912b},
      {0x9b69dbe1b548ce7c, 0xc986afbe3ee11abb},
      {0xc24452da229b021b, 0xfbe85badce996169},
      {0xf2d56790ab41c2a2, 0xfae27299423fb9c4},
      {0x97c560ba6b0919a5, 0xdccd879fc967d41b},
      {0xbdb6b8e905cb600f, 0x5400e987bbc1c921},
      {0xed246723473e3813, 0x290123e9aab23b69},
      {0x9436c0760c86e30b, 0xf9a0b6720aaf6522},
      {0xb94470938fa89bce, 0xf808e40e8d5b3e6a},
      {0xe7958cb87392c2c2, 0xb60b1d1230b20e05},
      {0x90bd77f3483bb9b9, 0xb1c6f22b5e6f48c3},
      {0xb4ecd5f01a4aa828, 0x1e38aeb6360b1af4},
      {0xe2280b6c20dd5232, 0x25c6da63c38de1b1},
      {0x8d590723948a535f, 0x579c487e5a38ad0f},
      {0xb0af48ec79ace837, 0x2d835a9df0c6d852},
      {0xdcdb1b2798182244, 0xf8e431456cf88e66},
      {0x8a08f0f8bf0f156b, 0x1b8e9ecb641b5900},
      {0xac8b2d36eed2dac5, 0xe272467e3d222f40},
      {0xd7adf884aa879177, 0x5b0ed81dcc6abb10},
      {0x86ccbb52ea94baea, 0x98e947129fc2b4ea},
      {0xa87fea27a539e9a5, 0x3f2398d747b36225},
      {0xd29fe4b18e88640e, 0x8eec7f0d19a03aae},
      {0x83a3eeeef9153e89, 0x1953cf68300424ad},
      {0xa48ceaaab75a8e2b, 0x5fa8c3423c052dd8},
      {0xcdb02555653131b6, 0x3792f412cb06794e},
      {0x808e17555f3ebf11, 0xe2bbd88bbee40bd1},
      {0xa0b19d2ab70e6ed6, 0x5b6aceaeae9d0ec5},
      {0xc8de047564d20a8b, 0xf245825a5a445276},
      {0xfb158592be068d2e, 0xeed6e2f0f0d56713},
      {0x9ced737bb6c4183d, 0x55464dd69685606c},
      {0xc428d05aa4751e4c, 0xaa97e14c3c26b887},
      {0xf53304714d9265df, 0xd53dd99f4b3066a9},
      {0x993fe2c6d07b7fab, 0xe546a8038efe402a},
      {0xbf8fdb78849a5f96, 0xde98520472bdd034},
      {0xef73d256a5c0f77c, 0x963e66858f6d4441},
      {0x95a8637627989aad, 0xdde7001379a44aa9},
      {0xbb127c53b17ec159, 0x5560c018580d5d53},
      {0xe9d71b689dde71af, 0xaab8f01e6e10b4a7},
      {0x9226712162ab070d, 0xcab3961304ca70e9},
      {0xb6b00d69bb55c8d1, 0x3d607b97c5fd0d23},
      {0xe45c10c42a2b3b05, 0x8cb89a7db77c506b},
      {0x8eb98a7a9a5b04e3, 0x77f3608e92adb243},
      {0xb267ed1940f1c61c, 0x55f038b237591ed4},
      {0xdf01e85f912e37a3, 0x6b6c46dec52f6689},
      {0x8b61313bbabce2c6, 0x2323ac4b3b3da016},
      {0xae397d8aa96c1b77, 0xabec975e0a0d081b},
      {0xd9c7dced53c72255, 0x96e7bd358c904a22},
      {0x881cea14545c7575, 0x7e50d64177da2e55},
      {0xaa242499697392d2, 0xdde50bd1d5d0b9ea},
      {0xd4ad2dbfc3d07787, 0x955e4ec64b44e865},
      {0x84ec3c97da624ab4, 0xbd5af13bef0b113f},
      {0xa6274bbdd0fadd61, 0xecb1ad8aeacdd58f},
      {0xcfb11ead453994ba, 0x67de18eda5814af3},
      {0x81ceb32c4b43fcf4, 0x80eacf948770ced8},
      {0xa2425ff75e14fc31, 0xa1258379a94d028e},
      {0xcad2f7f5359a3b3e, 0x096ee45813a04331},
      {0xfd87b5f28300ca0d, 0x8bca9d6e188853fd},
      {0x9e74d1b791e07e48, 0x775ea264cf55347e},
      {0xc612062576589dda, 0x95364afe032a819e},
      {0xf79687aed3eec551, 0x3a83ddbd83f52205},
      {0x9abe14cd44753b52, 0xc4926a9672793543},
      {0xc16d9a0095928a27, 0x75b7053c0f178294},
      {0xf1c90080baf72cb1, 0x5324c68b12dd6339},
      {0x971da05074da7bee, 0xd3f6fc16ebca5e04},
      {0xbce5086492111aea, 0x88f4bb1ca6bcf585},
      {0xec1e4a7db69561a5, 0x2b31e9e3d06c32e6},
      {0x9392ee8e921d5d07, 0x3aff322e62439fd0},
      {0xb877aa3236a4b449, 0x09befeb9fad487c3},
      {0xe69594bec44de15b, 0x4c2ebe687989a9b4},
      {0x901d7cf73ab0acd9, 0x0f9d37014bf60a11},
      {0xb424dc35095cd80f, 0x538484c19ef38c95},
      {0xe12e13424bb40e13, 0x2865a5f206b06fba},
      {0x8cbccc096f5088cb, 0xf93f87b7442e45d4},
      {0xafebff0bcb24aafe, 0xf78f69a51539d749},
      {0xdbe6fecebdedd5be, 0xb573440e5a884d1c},
      {0x89705f4136b4a597, 0x31680a88f8953031},
      {0xabcc77118461cefc, 0xfdc20d2b36ba7c3e},
      {0xd6bf94d5e57a42bc, 0x3d32907604691b4d},
      {0x8637bd05af6c69b5, 0xa63f9a49c2c1b110},
      {0xa7c5ac471b478423, 0x0fcf80dc33721d54},
      {0xd1b71758e219652b, 0xd3c36113404ea4a9},
      {0x83126e978d4fdf3b, 0x645a1cac083126ea},
      {0xa3d70a3d70a3d70a, 0x3d70a3d70a3d70a4},
      {0xcccccccccccccccc, 0xcccccccccccccccd},
      {0x8000000000000000, 0x0000000000000000},
      {0xa000000000000000, 0x0000000000000000},
      {0xc800000000000000, 0x0000000000000000},
      {0xfa00000000000000, 0x0000000000000000},
      {0x9c40000000000000, 0x0000000000000000},
      {0xc350000000000000, 0x0000000000000000},
      {0xf424000000000000, 0x0000000000000000},
      {0x9896800000000000, 0x0000000000000000},
      {0xbebc200000000000, 0x0000000000000000},
      {0xee6b280000000000, 0x0000000000000000},
      {0x9502f90000000000, 0x0000000000000000},
      {0xba43b74000000000, 0x0000000000000000},
      {0xe8d4a51000000000, 0x0000000000000000},
      {0x9184e72a00000000, 0x0000000000000000},
      {0xb5e620f480000000, 0x0000000000000000},
      {0xe35fa931a0000000, 0x0000000000000000},
      {0x8e1bc9bf04000000, 0x0000000000000000},
      {0xb1a2bc2ec5000000, 0x0000000000000000},
      {0xde0b6b3a76400000, 0x0000000000000000},
      {0x8ac7230489e80000, 0x0000000000000000},
      {0xad78ebc5ac620000, 0x0000000000000000},
      {0xd8d726b7177a8000, 0x0000000000000000},
      {0x878678326eac9000, 0x0000000000000000},
      {0xa968163f0a57b400, 0x0000000000000000},
      {0xd3c21bcecceda100, 0x0000000000000000},
      {0x84595161401484a0, 0x0000000000000000},
      {0xa56fa5b99019a5c8, 0x0000000000000000},
      {0xcecb8f27f4200f3a, 0x0000000000000000},
      {0x813f3978f8940984, 0x4000000000000000},
      {0xa18f07d736b90be5, 0x5000000000000000},
      {0xc9f2c9cd04674ede, 0xa400000000000000},
      {0xfc6f7c4045812296, 0x4d00000000000000},
      {0x9dc5ada82b70b59d, 0xf020000000000000},
      {0xc5371912364ce305, 0x6c28000000000000},
      {0xf684df56c3e01bc6, 0xc732000000000000},
      {0x9a130b963a6c115c, 0x3c7f400000000000},
      {0xc097ce7bc90715b3, 0x4b9f100000000000},
      {0xf0bdc21abb48db20, 0x1e86d40000000000},
      {0x96769950b50d88f4, 0x1314448000000000},
      {0xbc143fa4e250eb31, 0x17d955a000000000},
      {0xeb194f8e1ae525fd, 0x5dcfab0800000000},
      {0x92efd1b8d0cf37be, 0x5aa1cae500000000},
      {0xb7abc627050305ad, 0xf14a3d9e40000000},
      {0xe596b7b0c643c719, 0x6d9ccd05d0000000},
      {0x8f7e32ce7bea5c6f, 0xe4820023a2000000},
      {0xb35dbf821ae4f38b, 0xdda2802c8a800000},
      {0xe0352f62a19e306e, 0xd50b2037ad200000},
      {0x8c213d9da502de45, 0x4526f422cc340000},
      {0xaf298d050e4395d6, 0x9670b12b7f410000},
      {0xdaf3f04651d47b4c, 0x3c0cdd765f114000},
      {0x88d8762bf324cd0f, 0xa5880a69fb6ac800},
      {0xab0e93b6efee0053, 0x8eea0d047a457a00},
      {0xd5d238a4abe98068, 0x72a4904598d6d880},
      {0x85a36366eb71f041, 0x47a6da2b7f864750},
      {0xa70c3c40a64e6c51, 0x999090b65f67d924},
      {0xd0cf4b50cfe20765, 0xfff4b4e3f741cf6d},
      {0x82818f1281ed449f, 0xbff8f10e7a8921a5},
      {0xa321f2d7226895c7, 0xaff72d52192b6a0e},
      {0xcbea6f8ceb02bb39, 0x9bf4f8a69f764491},
      {0xfee50b7025c36a08, 0x02f236d04753d5b5},
      {0x9f4f2726179a2245, 0x01d762422c946591},
      {0xc722f0ef9d80aad6, 0x424d3ad2b7b97ef6},
      {0xf8ebad2b84e0d58b, 0xd2e0898765a7deb3},
      {0x9b934c3b330c8577, 0x63cc55f49f88eb30},
      {0xc2781f49ffcfa6d5, 0x3cbf6b71c76b25fc},
      {0xf316271c7fc3908a, 0x8bef464e3945ef7b},
      {0x97edd871cfda3a56, 0x97758bf0e3cbb5ad},
      {0xbde94e8e43d0c8ec, 0x3d52eeed1cbea318},
      {0xed63a231d4c4fb27, 0x4ca7aaa863ee4bde},
      {0x945e455f24fb1cf8, 0x8fe8caa93e74ef6b},
      {0xb975d6b6ee39e436, 0xb3e2fd538e122b45},
      {0xe7d34c64a9c85d44, 0x60dbbca87196b617},
      {0x90e40fbeea1d3a4a, 0xbc8955e946fe31ce},
      {0xb51d13aea4a488dd, 0x6babab6398bdbe42},
      {0xe264589a4dcdab14, 0xc696963c7eed2dd2},
      {0x8d7eb76070a08aec, 0xfc1e1de5cf543ca3},
      {0xb0de65388cc8ada8, 0x3b25a55f43294bcc},
      {0xdd15fe86affad912, 0x49ef0eb713f39ebf},
      {0x8a2dbf142dfcc7ab, 0x6e3569326c784338},
      {0xacb92ed9397bf996, 0x49c2c37f07965405},
      {0xd7e77a8f87daf7fb, 0xdc33745ec97be907},
      {0x86f0ac99b4e8dafd, 0x69a028bb3ded71a4},
      {0xa8acd7c0222311bc, 0xc40832ea0d68ce0d},
      {0xd2d80db02aabd62b, 0xf50a3fa490c30191},
      {0x83c7088e1aab65db, 0x792667c6da79e0fb},
      {0xa4b8cab1a1563f52, 0x577001b891185939},
      {0xcde6fd5e09abcf26, 0xed4c0226b55e6f87},
      {0x80b05e5ac60b6178, 0x544f8158315b05b5},
      {0xa0dc75f1778e39d6, 0x696361ae3db1c722},
      {0xc913936dd571c84c, 0x03bc3a19cd1e38ea},
      {0xfb5878494ace3a5f, 0x04ab48a04065c724},
      {0x9d174b2dcec0e47b, 0x62eb0d64283f9c77},
      {0xc45d1df942711d9a, 0x3ba5d0bd324f8395},
      {0xf5746577930d6500, 0xca8f44ec7ee3647a},
      {0x9968bf6abbe85f20, 0x7e998b13cf4e1ecc},
      {0xbfc2ef456ae276e8, 0x9e3fedd8c321a67f},
      {0xefb3ab16c59b14a2, 0xc5cfe94ef3ea101f},
      {0x95d04aee3b80ece5, 0xbba1f1d158724a13},
      {0xbb445da9ca61281f, 0x2a8a6e45ae8edc98},
      {0xea1575143cf97226, 0xf52d09d71a3293be},
      {0x924d692ca61be758, 0x593c2626705f9c57},
      {0xb6e0c377cfa2e12e, 0x6f8b2fb00c77836d},
      {0xe498f455c38b997a, 0x0b6dfb9c0f956448},
      {0x8edf98b59a373fec, 0x4724bd4189bd5ead},
      {0xb2977ee300c50fe7, 0x58edec91ec2cb658},
      {0xdf3d5e9bc0f653e1, 0x2f2967b66737e3ee},
      {0x8b865b215899f46c, 0xbd79e0d20082ee75},
      {0xae67f1e9aec07187, 0xecd8590680a3aa12},
      {0xda01ee641a708de9, 0xe80e6f4820cc9496},
      {0x884134fe908658b2, 0x3109058d147fdcde},
      {0xaa51823e34a7eede, 0xbd4b46f0599fd416},
      {0xd4e5e2cdc1d1ea96, 0x6c9e18ac7007c91b},
      {0x850fadc09923329e, 0x03e2cf6bc604ddb1},
      {0xa6539930bf6bff45, 0x84db8346b786151d},
      {0xcfe87f7cef46ff16, 0xe612641865679a64},
      {0x81f14fae158c5f6e, 0x4fcb7e8f3f60c07f},
      {0xa26da3999aef7749, 0xe3be5e330f38f09e},
      {0xcb090c8001ab551c, 0x5cadf5bfd3072cc6},
      {0xfdcb4fa002162a63, 0x73d9732fc7c8f7f7},
      {0x9e9f11c4014dda7e, 0x2867e7fddcdd9afb},
      {0xc646d63501a1511d, 0xb281e1fd541501b9},
      {0xf7d88bc24209a565, 0x1f225a7ca91a4227},
      {0x9ae757596946075f, 0x3375788de9b06959},
      {0xc1a12d2fc3978937, 0x0052d6b1641c83af},
      {0xf209787bb47d6b84, 0xc0678c5dbd23a49b},
      {0x9745eb4d50ce6332, 0xf840b7ba963646e1},
      {0xbd176620a501fbff, 0xb650e5a93bc3d899},
      {0xec5d3fa8ce427aff, 0xa3e51f138ab4cebf},
      {0x93ba47c980e98cdf, 0xc66f336c36b10138},
      {0xb8a8d9bbe123f017, 0xb80b0047445d4185},
      {0xe6d3102ad96cec1d, 0xa60dc059157491e6},
      {0x9043ea1ac7e41392, 0x87c89837ad68db30},
      {0xb454e4a179dd1877, 0x29babe4598c311fc},
      {0xe16a1dc9d8545e94, 0xf4296dd6fef3d67b},
      {0x8ce2529e2734bb1d, 0x1899e4a65f58660d},
      {0xb01ae745b101e9e4, 0x5ec05dcff72e7f90},
      {0xdc21a1171d42645d, 0x76707543f4fa1f74},
      {0x899504ae72497eba, 0x6a06494a791c53a9},
      {0xabfa45da0edbde69, 0x0487db9d17636893},
      {0xd6f8d7509292d603, 0x45a9d2845d3c42b7},
      {0x865b86925b9bc5c2, 0x0b8a2392ba45a9b3},
      {0xa7f26836f282b732, 0x8e6cac7768d7141f},
      {0xd1ef0244af2364ff, 0x3207d795430cd927},
      {0x8335616aed761f1f, 0x7f44e6bd49e807b9},
      {0xa402b9c5a8d3a6e7, 0x5f16206c9c6209a7},
      {0xcd036837130890a1, 0x36dba887c37a8c10},
      {0x802221226be55a64, 0xc2494954da2c978a},
      {0xa02aa96b06deb0fd, 0xf2db9baa10b7bd6d},
      {0xc83553c5c8965d3d, 0x6f92829494e5acc8},
      {0xfa42a8b73abbf48c, 0xcb772339ba1f17fa},
      {0x9c69a97284b578d7, 0xff2a760414536efc},
      {0xc38413cf25e2d70d, 0xfef5138519684abb},
      {0xf46518c2ef5b8cd1, 0x7eb258665fc25d6a},
      {0x98bf2f79d5993802, 0xef2f773ffbd97a62},
      {0xbeeefb584aff8603, 0xaafb550ffacfd8fb},
      {0xeeaaba2e5dbf6784, 0x95ba2a53f983cf39},
      {0x952ab45cfa97a0b2, 0xdd945a747bf26184},
      {0xba756174393d88df, 0x94f971119aeef9e5},
      {0xe912b9d1478ceb17, 0x7a37cd5601aab85e},
      {0x91abb422ccb812ee, 0xac62e055c10ab33b},
      {0xb616a12b7fe617aa, 0x577b986b314d600a},
      {0xe39c49765fdf9d94, 0xed5a7e85fda0b80c},
      {0x8e41ade9fbebc27d, 0x14588f13be847308},
      {0xb1d219647ae6b31c, 0x596eb2d8ae258fc9},
      {0xde469fbd99a05fe3, 0x6fca5f8ed9aef3bc},
      {0x8aec23d680043bee, 0x25de7bb9480d5855},
      {0xada72ccc20054ae9, 0xaf561aa79a10ae6b},
      {0xd910f7ff28069da4, 0x1b2ba1518094da05},
      {0x87aa9aff79042286, 0x90fb44d2f05d0843},
      {0xa99541bf57452b28, 0x353a1607ac744a54},
      {0xd3fa922f2d1675f2, 0x42889b8997915ce9},
      {0x847c9b5d7c2e09b7, 0x69956135febada12},
      {0xa59bc234db398c25, 0x43fab9837e699096},
      {0xcf02b2c21207ef2e, 0x94f967e45e03f4bc},
      {0x8161afb94b44f57d, 0x1d1be0eebac278f6},
      {0xa1ba1ba79e1632dc, 0x6462d92a69731733},
      {0xca28a291859bbf93, 0x7d7b8f7503cfdcff},
      {0xfcb2cb35e702af78, 0x5cda735244c3d43f},
      {0x9defbf01b061adab, 0x3a0888136afa64a8},
      {0xc56baec21c7a1916, 0x088aaa1845b8fdd1},
      {0xf6c69a72a3989f5b, 0x8aad549e57273d46},
      {0x9a3c2087a63f6399, 0x36ac54e2f678864c},
      {0xc0cb28a98fcf3c7f, 0x84576a1bb416a7de},
      {0xf0fdf2d3f3c30b9f, 0x656d44a2a11c51d6},
      {0x969eb7c47859e743, 0x9f644ae5a4b1b326},
      {0xbc4665b596706114, 0x873d5d9f0dde1fef},
      {0xeb57ff22fc0c7959, 0xa90cb506d155a7eb},
      {0x9316ff75dd87cbd8, 0x09a7f12442d588f3},
      {0xb7dcbf5354e9bece, 0x0c11ed6d538aeb30},
      {0xe5d3ef282a242e81, 0x8f1668c8a86da5fb},
      {0x8fa475791a569d10, 0xf96e017d694487bd},
      {0xb38d92d760ec4455, 0x37c981dcc395a9ad},
      {0xe070f78d3927556a, 0x85bbe253f47b1418},
      {0x8c469ab843b89562, 0x93956d7478ccec8f},
      {0xaf58416654a6babb, 0x387ac8d1970027b3},
      {0xdb2e51bfe9d0696a, 0x06997b05fcc0319f},
      {0x88fcf317f22241e2, 0x441fece3bdf81f04},
      {0xab3c2fddeeaad25a, 0xd527e81cad7626c4},
      {0xd60b3bd56a5586f1, 0x8a71e223d8d3b075},
      {0x85c7056562757456, 0xf6872d5667844e4a},
      {0xa738c6bebb12d16c, 0xb428f8ac016561dc},
      {0xd106f86e69d785c7, 0xe13336d701beba53},
      {0x82a45b450226b39c, 0xecc0024661173474},
      {0xa34d721642b06084, 0x27f002d7f95d0191},
      {0xcc20ce9bd35c78a5, 0x31ec038df7b441f5},
      {0xff290242c83396ce, 0x7e67047175a15272},
      {0x9f79a169bd203e41, 0x0f0062c6e984d387},
      {0xc75809c42c684dd1, 0x52c07b78a3e60869},
      {0xf92e0c3537826145, 0xa7709a56ccdf8a83},
      {0x9bbcc7a142b17ccb, 0x88a66076400bb692},
      {0xc2abf989935ddbfe, 0x6acff893d00ea436},
      {0xf356f7ebf83552fe, 0x0583f6b8c4124d44},
      {0x98165af37b2153de, 0xc3727a337a8b704b},
      {0xbe1bf1b059e9a8d6, 0x744f18c0592e4c5d},
      {0xeda2ee1c7064130c, 0x1162def06f79df74},
      {0x9485d4d1c63e8be7, 0x8addcb5645ac2ba9},
      {0xb9a74a0637ce2ee1, 0x6d953e2bd7173693},
      {0xe8111c87c5c1ba99, 0xc8fa8db6ccdd0438},
      {0x910ab1d4db9914a0, 0x1d9c9892400a22a3},
      {0xb54d5e4a127f59c8, 0x2503beb6d00cab4c},
      {0xe2a0b5dc971f303a, 0x2e44ae64840fd61e},
      {0x8da471a9de737e24, 0x5ceaecfed289e5d3},
      {0xb10d8e1456105dad, 0x7425a83e872c5f48},
      {0xdd50f1996b947518, 0xd12f124e28f7771a},
      {0x8a5296ffe33cc92f, 0x82bd6b70d99aaa70},
      {0xace73cbfdc0bfb7b, 0x636cc64d1001550c},
      {0xd8210befd30efa5a, 0x3c47f7e05401aa4f},
      {0x8714a775e3e95c78, 0x65acfaec34810a72},
      {0xa8d9d1535ce3b396, 0x7f1839a741a14d0e},
      {0xd31045a8341ca07c, 0x1ede48111209a051},
      {0x83ea2b892091e44d, 0x934aed0aab460433},
      {0xa4e4b66b68b65d60, 0xf81da84d56178540},
      {0xce1de40642e3f4b9, 0x36251260ab9d668f},
      {0x80d2ae83e9ce78f3, 0xc1d72b7c6b42601a},
      {0xa1075a24e4421730, 0xb24cf65b8612f820},
      {0xc94930ae1d529cfc, 0xdee033f26797b628},
      {0xfb9b7cd9a4a7443c, 0x169840ef017da3b2},
      {0x9d412e0806e88aa5, 0x8e1f289560ee864f},
      {0xc491798a08a2ad4e, 0xf1a6f2bab92a27e3},
      {0xf5b5d7ec8acb58a2, 0xae10af696774b1dc},
      {0x9991a6f3d6bf1765, 0xacca6da1e0a8ef2a},
      {0xbff610b0cc6edd3f, 0x17fd090a58d32af4},
      {0xeff394dcff8a948e, 0xddfc4b4cef07f5b1},
      {0x95f83d0a1fb69cd9, 0x4abdaf101564f98f},
      {0xbb764c4ca7a4440f, 0x9d6d1ad41abe37f2},
      {0xea53df5fd18d5513, 0x84c86189216dc5ee},
      {0x92746b9be2f8552c, 0x32fd3cf5b4e49bb5},
      {0xb7118682dbb66a77, 0x3fbc8c33221dc2a2},
      {0xe4d5e82392a40515, 0x0fabaf3feaa5334b},
      {0x8f05b1163ba6832d, 0x29cb4d87f2a7400f},
      {0xb2c71d5bca9023f8, 0x743e20e9ef511013},
      {0xdf78e4b2bd342cf6, 0x914da9246b255417},
      {0x8bab8eefb6409c1a, 0x1ad089b6c2f7548f},
      {0xae9672aba3d0c320, 0xa184ac2473b529b2},
      {0xda3c0f568cc4f3e8, 0xc9e5d72d90a2741f},
      {0x8865899617fb1871, 0x7e2fa67c7a658893},
      {0xaa7eebfb9df9de8d, 0xddbb901b98feeab8},
      {0xd51ea6fa85785631, 0x552a74227f3ea566},
      {0x8533285c936b35de, 0xd53a88958f872760},
      {0xa67ff273b8460356, 0x8a892abaf368f138},
      {0xd01fef10a657842c, 0x2d2b7569b0432d86},
      {0x8213f56a67f6b29b, 0x9c3b29620e29fc74},
      {0xa298f2c501f45f42, 0x8349f3ba91b47b90},
      {0xcb3f2f7642717713, 0x241c70a936219a74},
      {0xfe0efb53d30dd4d7, 0xed238cd383aa0111},
      {0x9ec95d1463e8a506, 0xf4363804324a40ab},
      {0xc67bb4597ce2ce48, 0xb143c6053edcd0d6},
      {0xf81aa16fdc1b81da, 0xdd94b7868e94050b},
      {0x9b10a4e5e9913128, 0xca7cf2b4191c8327},
      {0xc1d4ce1f63f57d72, 0xfd1c2f611f63a3f1},
      {0xf24a01a73cf2dccf, 0xbc633b39673c8ced},
      {0x976e41088617ca01, 0xd5be0503e085d814},
      {0xbd49d14aa79dbc82, 0x4b2d8644d8a74e19},
      {0xec9c459d51852ba2, 0xddf8e7d60ed1219f},
      {0x93e1ab8252f33b45, 0xcabb90e5c942b504},
      {0xb8da1662e7b00a17, 0x3d6a751f3b936244},
      {0xe7109bfba19c0c9d, 0x0cc512670a783ad5},
      {0x906a617d450187e2, 0x27fb2b80668b24c6},
      {0xb484f9dc9641e9da, 0xb1f9f660802dedf7},
      {0xe1a63853bbd26451, 0x5e7873f8a0396974},
      {0x8d07e33455637eb2, 0xdb0b487b6423e1e9},
      {0xb049dc016abc5e5f, 0x91ce1a9a3d2cda63},
      {0xdc5c5301c56b75f7, 0x7641a140cc7810fc},
      {0x89b9b3e11b6329ba, 0xa9e904c87fcb0a9e},
      {0xac2820d9623bf429, 0x546345fa9fbdcd45},
      {0xd732290fbacaf133, 0xa97c177947ad4096},
      {0x867f59a9d4bed6c0, 0x49ed8eabcccc485e},
      {0xa81f301449ee8c70, 0x5c68f256bfff5a75},
      {0xd226fc195c6a2f8c, 0x73832eec6fff3112},
      {0x83585d8fd9c25db7, 0xc831fd53c5ff7eac},
      {0xa42e74f3d032f525, 0xba3e7ca8b77f5e56},
      {0xcd3a1230c43fb26f, 0x28ce1bd2e55f35ec},
      {0x80444b5e7aa7cf85, 0x7980d163cf5b81b4},
      {0xa0555e361951c366, 0xd7e105bcc3326220},
      {0xc86ab5c39fa63440, 0x8dd9472bf3fefaa8},
      {0xfa856334878fc150, 0xb14f98f6f0feb952},
      {0x9c935e00d4b9d8d2, 0x6ed1bf9a569f33d4},
      {0xc3b8358109e84f07, 0x0a862f80ec4700c9},
      {0xf4a642e14c6262c8, 0xcd27bb612758c0fb},
      {0x98e7e9cccfbd7dbd, 0x8038d51cb897789d},
      {0xbf21e44003acdd2c, 0xe0470a63e6bd56c4},
      {0xeeea5d5004981478, 0x1858ccfce06cac75},
      {0x95527a5202df0ccb, 0x0f37801e0c43ebc9},
      {0xbaa718e68396cffd, 0xd30560258f54e6bb},
      {0xe950df20247c83fd, 0x47c6b82ef32a206a},
      {0x91d28b7416cdd27e, 0x4cdc331d57fa5442},
      {0xb6472e511c81471d, 0xe0133fe4adf8e953},
      {0xe3d8f9e563a198e5, 0x58180fddd97723a7},
      {0x8e679c2f5e44ff8f, 0x570f09eaa7ea7649},
      {0xb201833b35d63f73, 0x2cd2cc6551e513db},
      {0xde81e40a034bcf4f, 0xf8077f7ea65e58d2},
      {0x8b112e86420f6191, 0xfb04afaf27faf783},
      {0xadd57a27d29339f6, 0x79c5db9af1f9b564},
      {0xd94ad8b1c7380874, 0x18375281ae7822bd},
      {0x87cec76f1c830548, 0x8f2293910d0b15b6},
      {0xa9c2794ae3a3c69a, 0xb2eb3875504ddb23},
      {0xd433179d9c8cb841, 0x5fa60692a46151ec},
      {0x849feec281d7f328, 0xdbc7c41ba6bcd334},
      {0xa5c7ea73224deff3, 0x12b9b522906c0801},
      {0xcf39e50feae16bef, 0xd768226b34870a01},
      {0x81842f29f2cce375, 0xe6a1158300d46641},
      {0xa1e53af46f801c53, 0x60495ae3c1097fd1},
      {0xca5e89b18b602368, 0x385bb19cb14bdfc5},
      {0xfcf62c1dee382c42, 0x46729e03dd9ed7b6},
      {0x9e19db92b4e31ba9, 0x6c07a2c26a8346d2},
      {0xc5a05277621be293, 0xc7098b7305241886},
      {0xf70867153aa2db38, 0xb8cbee4fc66d1ea8},
      {0x9a65406d44a5c903, 0x737f74f1dc043329},
      {0xc0fe908895cf3b44, 0x505f522e53053ff3},
      {0xf13e34aabb430a15, 0x647726b9e7c68ff0},
      {0x96c6e0eab509e64d, 0x5eca783430dc19f6},
      {0xbc789925624c5fe0, 0xb67d16413d132073},
      {0xeb96bf6ebadf77d8, 0xe41c5bd18c57e890},
      {0x933e37a534cbaae7, 0x8e91b962f7b6f15a},
      {0xb80dc58e81fe95a1, 0x723627bbb5a4adb1},
      {0xe61136f2227e3b09, 0xcec3b1aaa30dd91d},
      {0x8fcac257558ee4e6, 0x213a4f0aa5e8a7b2},
      {0xb3bd72ed2af29e1f, 0xa988e2cd4f62d19e},
      {0xe0accfa875af45a7, 0x93eb1b80a33b8606},
      {0x8c6c01c9498d8b88, 0xbc72f130660533c4},
      {0xaf87023b9bf0ee6a, 0xeb8fad7c7f8680b5},
      {0xdb68c2ca82ed2a05, 0xa67398db9f6820e2},
#else
      {0xff77b1fcbebcdc4f, 0x25e8e89c13bb0f7b},
      {0xce5d73ff402d98e3, 0xfb0a3d212dc81290},
      {0xa6b34ad8c9dfc06f, 0xf42faa48c0ea481f},
      {0x86a8d39ef77164bc, 0xae5dff9c02033198},
      {0xd98ddaee19068c76, 0x3badd624dd9b0958},
      {0xafbd2350644eeacf, 0xe5d1929ef90898fb},
      {0x8df5efabc5979c8f, 0xca8d3ffa1ef463c2},
      {0xe55990879ddcaabd, 0xcc420a6a101d0516},
      {0xb94470938fa89bce, 0xf808e40e8d5b3e6a},
      {0x95a8637627989aad, 0xdde7001379a44aa9},
      {0xf1c90080baf72cb1, 0x5324c68b12dd6339},
      {0xc350000000000000, 0x0000000000000000},
      {0x9dc5ada82b70b59d, 0xf020000000000000},
      {0xfee50b7025c36a08, 0x02f236d04753d5b5},
      {0xcde6fd5e09abcf26, 0xed4c0226b55e6f87},
      {0xa6539930bf6bff45, 0x84db8346b786151d},
      {0x865b86925b9bc5c2, 0x0b8a2392ba45a9b3},
      {0xd910f7ff28069da4, 0x1b2ba1518094da05},
      {0xaf58416654a6babb, 0x387ac8d1970027b3},
      {0x8da471a9de737e24, 0x5ceaecfed289e5d3},
      {0xe4d5e82392a40515, 0x0fabaf3feaa5334b},
      {0xb8da1662e7b00a17, 0x3d6a751f3b936244},
      {0x95527a5202df0ccb, 0x0f37801e0c43ebc9},
      {0xf13e34aabb430a15, 0x647726b9e7c68ff0}
#endif
    };

#if FMT_USE_FULL_CACHE_DRAGONBOX
    return pow10_significands[k - float_info<double>::min_k];
#else
    static constexpr uint64_t powers_of_5_64[] = {
        0x0000000000000001, 0x0000000000000005, 0x0000000000000019,
        0x000000000000007d, 0x0000000000000271, 0x0000000000000c35,
        0x0000000000003d09, 0x000000000001312d, 0x000000000005f5e1,
        0x00000000001dcd65, 0x00000000009502f9, 0x0000000002e90edd,
        0x000000000e8d4a51, 0x0000000048c27395, 0x000000016bcc41e9,
        0x000000071afd498d, 0x0000002386f26fc1, 0x000000b1a2bc2ec5,
        0x000003782dace9d9, 0x00001158e460913d, 0x000056bc75e2d631,
        0x0001b1ae4d6e2ef5, 0x000878678326eac9, 0x002a5a058fc295ed,
        0x00d3c21bcecceda1, 0x0422ca8b0a00a425, 0x14adf4b7320334b9};

    static const int compression_ratio = 27;

    // Compute base index.
    int cache_index = (k - float_info<double>::min_k) / compression_ratio;
    int kb = cache_index * compression_ratio + float_info<double>::min_k;
    int offset = k - kb;

    // Get base cache.
    uint128_fallback base_cache = pow10_significands[cache_index];
    if (offset == 0) return base_cache;

    // Compute the required amount of bit-shift.
    int alpha = floor_log2_pow10(kb + offset) - floor_log2_pow10(kb) - offset;
    FMT_ASSERT(alpha > 0 && alpha < 64, "shifting error detected");

    // Try to recover the real cache.
    uint64_t pow5 = powers_of_5_64[offset];
    uint128_fallback recovered_cache = umul128(base_cache.high(), pow5);
    uint128_fallback middle_low = umul128(base_cache.low(), pow5);

    recovered_cache += middle_low.high();

    uint64_t high_to_middle = recovered_cache.high() << (64 - alpha);
    uint64_t middle_to_low = recovered_cache.low() << (64 - alpha);

    recovered_cache =
        uint128_fallback{(recovered_cache.low() >> alpha) | high_to_middle,
                         ((middle_low.low() >> alpha) | middle_to_low)};
    FMT_ASSERT(recovered_cache.low() + 1 != 0, "");
    return {recovered_cache.high(), recovered_cache.low() + 1};
#endif
  }

  struct compute_mul_result {
    carrier_uint result;
    bool is_integer;
  };
  struct compute_mul_parity_result {
    bool parity;
    bool is_integer;
  };

  static auto compute_mul(carrier_uint u,
                          const cache_entry_type& cache) noexcept
      -> compute_mul_result {
    auto r = umul192_upper128(u, cache);
    return {r.high(), r.low() == 0};
  }

  static auto compute_delta(const cache_entry_type& cache, int beta) noexcept
      -> uint32_t {
    return static_cast<uint32_t>(cache.high() >> (64 - 1 - beta));
  }

  static auto compute_mul_parity(carrier_uint two_f,
                                 const cache_entry_type& cache,
                                 int beta) noexcept
      -> compute_mul_parity_result {
    FMT_ASSERT(beta >= 1, "");
    FMT_ASSERT(beta < 64, "");

    auto r = umul192_lower128(two_f, cache);
    return {((r.high() >> (64 - beta)) & 1) != 0,
            ((r.high() << beta) | (r.low() >> (64 - beta))) == 0};
  }

  static auto compute_left_endpoint_for_shorter_interval_case(
      const cache_entry_type& cache, int beta) noexcept -> carrier_uint {
    return (cache.high() -
            (cache.high() >> (num_significand_bits<double>() + 2))) >>
           (64 - num_significand_bits<double>() - 1 - beta);
  }

  static auto compute_right_endpoint_for_shorter_interval_case(
      const cache_entry_type& cache, int beta) noexcept -> carrier_uint {
    return (cache.high() +
            (cache.high() >> (num_significand_bits<double>() + 1))) >>
           (64 - num_significand_bits<double>() - 1 - beta);
  }

  static auto compute_round_up_for_shorter_interval_case(
      const cache_entry_type& cache, int beta) noexcept -> carrier_uint {
    return ((cache.high() >> (64 - num_significand_bits<double>() - 2 - beta)) +
            1) /
           2;
  }
};

FMT_FUNC auto get_cached_power(int k) noexcept -> uint128_fallback {
  return cache_accessor<double>::get_cached_power(k);
}

// Various integer checks
template <typename T>
auto is_left_endpoint_integer_shorter_interval(int exponent) noexcept -> bool {
  const int case_shorter_interval_left_endpoint_lower_threshold = 2;
  const int case_shorter_interval_left_endpoint_upper_threshold = 3;
  return exponent >= case_shorter_interval_left_endpoint_lower_threshold &&
         exponent <= case_shorter_interval_left_endpoint_upper_threshold;
}

// Remove trailing zeros from n and return the number of zeros removed (float).
FMT_INLINE auto remove_trailing_zeros(uint32_t& n, int s = 0) noexcept -> int {
  FMT_ASSERT(n != 0, "");
  // Modular inverse of 5 (mod 2^32): (mod_inv_5 * 5) mod 2^32 = 1.
  constexpr uint32_t mod_inv_5 = 0xcccccccd;
  constexpr uint32_t mod_inv_25 = 0xc28f5c29;  // = mod_inv_5 * mod_inv_5

  while (true) {
    auto q = rotr(n * mod_inv_25, 2);
    if (q > max_value<uint32_t>() / 100) break;
    n = q;
    s += 2;
  }
  auto q = rotr(n * mod_inv_5, 1);
  if (q <= max_value<uint32_t>() / 10) {
    n = q;
    s |= 1;
  }
  return s;
}

// Removes trailing zeros and returns the number of zeros removed (double).
FMT_INLINE auto remove_trailing_zeros(uint64_t& n) noexcept -> int {
  FMT_ASSERT(n != 0, "");

  // Is n is divisible by 10^8?
  constexpr uint32_t ten_pow_8 = 100000000u;
  if ((n % ten_pow_8) == 0) {
    // If yes, work with the quotient...
    auto n32 = static_cast<uint32_t>(n / ten_pow_8);
    // ... and use the 32 bit variant of the function
    int num_zeros = remove_trailing_zeros(n32, 8);
    n = n32;
    return num_zeros;
  }

  // If n is not divisible by 10^8, work with n itself.
  constexpr uint64_t mod_inv_5 = 0xcccccccccccccccd;
  constexpr uint64_t mod_inv_25 = 0x8f5c28f5c28f5c29;  // mod_inv_5 * mod_inv_5

  int s = 0;
  while (true) {
    auto q = rotr(n * mod_inv_25, 2);
    if (q > max_value<uint64_t>() / 100) break;
    n = q;
    s += 2;
  }
  auto q = rotr(n * mod_inv_5, 1);
  if (q <= max_value<uint64_t>() / 10) {
    n = q;
    s |= 1;
  }

  return s;
}

// The main algorithm for shorter interval case
template <typename T>
FMT_INLINE auto shorter_interval_case(int exponent) noexcept -> decimal_fp<T> {
  decimal_fp<T> ret_value;
  // Compute k and beta
  const int minus_k = floor_log10_pow2_minus_log10_4_over_3(exponent);
  const int beta = exponent + floor_log2_pow10(-minus_k);

  // Compute xi and zi
  using cache_entry_type = typename cache_accessor<T>::cache_entry_type;
  const cache_entry_type cache = cache_accessor<T>::get_cached_power(-minus_k);

  auto xi = cache_accessor<T>::compute_left_endpoint_for_shorter_interval_case(
      cache, beta);
  auto zi = cache_accessor<T>::compute_right_endpoint_for_shorter_interval_case(
      cache, beta);

  // If the left endpoint is not an integer, increase it
  if (!is_left_endpoint_integer_shorter_interval<T>(exponent)) ++xi;

  // Try bigger divisor
  ret_value.significand = zi / 10;

  // If succeed, remove trailing zeros if necessary and return
  if (ret_value.significand * 10 >= xi) {
    ret_value.exponent = minus_k + 1;
    ret_value.exponent += remove_trailing_zeros(ret_value.significand);
    return ret_value;
  }

  // Otherwise, compute the round-up of y
  ret_value.significand =
      cache_accessor<T>::compute_round_up_for_shorter_interval_case(cache,
                                                                    beta);
  ret_value.exponent = minus_k;

  // When tie occurs, choose one of them according to the rule
  if (exponent >= float_info<T>::shorter_interval_tie_lower_threshold &&
      exponent <= float_info<T>::shorter_interval_tie_upper_threshold) {
    ret_value.significand = ret_value.significand % 2 == 0
                                ? ret_value.significand
                                : ret_value.significand - 1;
  } else if (ret_value.significand < xi) {
    ++ret_value.significand;
  }
  return ret_value;
}

template <typename T> auto to_decimal(T x) noexcept -> decimal_fp<T> {
  // Step 1: integer promotion & Schubfach multiplier calculation.

  using carrier_uint = typename float_info<T>::carrier_uint;
  using cache_entry_type = typename cache_accessor<T>::cache_entry_type;
  auto br = bit_cast<carrier_uint>(x);

  // Extract significand bits and exponent bits.
  const carrier_uint significand_mask =
      (static_cast<carrier_uint>(1) << num_significand_bits<T>()) - 1;
  carrier_uint significand = (br & significand_mask);
  int exponent =
      static_cast<int>((br & exponent_mask<T>()) >> num_significand_bits<T>());

  if (exponent != 0) {  // Check if normal.
    exponent -= exponent_bias<T>() + num_significand_bits<T>();

    // Shorter interval case; proceed like Schubfach.
    // In fact, when exponent == 1 and significand == 0, the interval is
    // regular. However, it can be shown that the end-results are anyway same.
    if (significand == 0) return shorter_interval_case<T>(exponent);

    significand |= (static_cast<carrier_uint>(1) << num_significand_bits<T>());
  } else {
    // Subnormal case; the interval is always regular.
    if (significand == 0) return {0, 0};
    exponent =
        std::numeric_limits<T>::min_exponent - num_significand_bits<T>() - 1;
  }

  const bool include_left_endpoint = (significand % 2 == 0);
  const bool include_right_endpoint = include_left_endpoint;

  // Compute k and beta.
  const int minus_k = floor_log10_pow2(exponent) - float_info<T>::kappa;
  const cache_entry_type cache = cache_accessor<T>::get_cached_power(-minus_k);
  const int beta = exponent + floor_log2_pow10(-minus_k);

  // Compute zi and deltai.
  // 10^kappa <= deltai < 10^(kappa + 1)
  const uint32_t deltai = cache_accessor<T>::compute_delta(cache, beta);
  const carrier_uint two_fc = significand << 1;

  // For the case of binary32, the result of integer check is not correct for
  // 29711844 * 2^-82
  // = 6.1442653300000000008655037797566933477355632930994033813476... * 10^-18
  // and 29711844 * 2^-81
  // = 1.2288530660000000001731007559513386695471126586198806762695... * 10^-17,
  // and they are the unique counterexamples. However, since 29711844 is even,
  // this does not cause any problem for the endpoints calculations; it can only
  // cause a problem when we need to perform integer check for the center.
  // Fortunately, with these inputs, that branch is never executed, so we are
  // fine.
  const typename cache_accessor<T>::compute_mul_result z_mul =
      cache_accessor<T>::compute_mul((two_fc | 1) << beta, cache);

  // Step 2: Try larger divisor; remove trailing zeros if necessary.

  // Using an upper bound on zi, we might be able to optimize the division
  // better than the compiler; we are computing zi / big_divisor here.
  decimal_fp<T> ret_value;
  ret_value.significand = divide_by_10_to_kappa_plus_1(z_mul.result);
  uint32_t r = static_cast<uint32_t>(z_mul.result - float_info<T>::big_divisor *
                                                        ret_value.significand);

  if (r < deltai) {
    // Exclude the right endpoint if necessary.
    if (r == 0 && (z_mul.is_integer & !include_right_endpoint)) {
      --ret_value.significand;
      r = float_info<T>::big_divisor;
      goto small_divisor_case_label;
    }
  } else if (r > deltai) {
    goto small_divisor_case_label;
  } else {
    // r == deltai; compare fractional parts.
    const typename cache_accessor<T>::compute_mul_parity_result x_mul =
        cache_accessor<T>::compute_mul_parity(two_fc - 1, cache, beta);

    if (!(x_mul.parity | (x_mul.is_integer & include_left_endpoint)))
      goto small_divisor_case_label;
  }
  ret_value.exponent = minus_k + float_info<T>::kappa + 1;

  // We may need to remove trailing zeros.
  ret_value.exponent += remove_trailing_zeros(ret_value.significand);
  return ret_value;

  // Step 3: Find the significand with the smaller divisor.

small_divisor_case_label:
  ret_value.significand *= 10;
  ret_value.exponent = minus_k + float_info<T>::kappa;

  uint32_t dist = r - (deltai / 2) + (float_info<T>::small_divisor / 2);
  const bool approx_y_parity =
      ((dist ^ (float_info<T>::small_divisor / 2)) & 1) != 0;

  // Is dist divisible by 10^kappa?
  const bool divisible_by_small_divisor =
      check_divisibility_and_divide_by_pow10<float_info<T>::kappa>(dist);

  // Add dist / 10^kappa to the significand.
  ret_value.significand += dist;

  if (!divisible_by_small_divisor) return ret_value;

  // Check z^(f) >= epsilon^(f).
  // We have either yi == zi - epsiloni or yi == (zi - epsiloni) - 1,
  // where yi == zi - epsiloni if and only if z^(f) >= epsilon^(f).
  // Since there are only 2 possibilities, we only need to care about the
  // parity. Also, zi and r should have the same parity since the divisor
  // is an even number.
  const auto y_mul = cache_accessor<T>::compute_mul_parity(two_fc, cache, beta);

  // If z^(f) >= epsilon^(f), we might have a tie when z^(f) == epsilon^(f),
  // or equivalently, when y is an integer.
  if (y_mul.parity != approx_y_parity)
    --ret_value.significand;
  else if (y_mul.is_integer & (ret_value.significand % 2 != 0))
    --ret_value.significand;
  return ret_value;
}
}  // namespace dragonbox
}  // namespace detail

template <> struct formatter<detail::bigint> {
  FMT_CONSTEXPR auto parse(format_parse_context& ctx)
      -> format_parse_context::iterator {
    return ctx.begin();
  }

  auto format(const detail::bigint& n, format_context& ctx) const
      -> format_context::iterator {
    auto out = ctx.out();
    bool first = true;
    for (auto i = n.bigits_.size(); i > 0; --i) {
      auto value = n.bigits_[i - 1u];
      if (first) {
        out = fmt::format_to(out, FMT_STRING("{:x}"), value);
        first = false;
        continue;
      }
      out = fmt::format_to(out, FMT_STRING("{:08x}"), value);
    }
    if (n.exp_ > 0)
      out = fmt::format_to(out, FMT_STRING("p{}"),
                           n.exp_ * detail::bigint::bigit_bits);
    return out;
  }
};

FMT_FUNC detail::utf8_to_utf16::utf8_to_utf16(string_view s) {
  for_each_codepoint(s, [this](uint32_t cp, string_view) {
    if (cp == invalid_code_point) FMT_THROW(std::runtime_error("invalid utf8"));
    if (cp <= 0xFFFF) {
      buffer_.push_back(static_cast<wchar_t>(cp));
    } else {
      cp -= 0x10000;
      buffer_.push_back(static_cast<wchar_t>(0xD800 + (cp >> 10)));
      buffer_.push_back(static_cast<wchar_t>(0xDC00 + (cp & 0x3FF)));
    }
    return true;
  });
  buffer_.push_back(0);
}

FMT_FUNC void format_system_error(detail::buffer<char>& out, int error_code,
                                  const char* message) noexcept {
  FMT_TRY {
    auto ec = std::error_code(error_code, std::generic_category());
    detail::write(appender(out), std::system_error(ec, message).what());
    return;
  }
  FMT_CATCH(...) {}
  format_error_code(out, error_code, message);
}

FMT_FUNC void report_system_error(int error_code,
                                  const char* message) noexcept {
  do_report_error(format_system_error, error_code, message);
}

FMT_FUNC auto vformat(string_view fmt, format_args args) -> std::string {
  // Don't optimize the "{}" case to keep the binary size small and because it
  // can be better optimized in fmt::format anyway.
  auto buffer = memory_buffer();
  detail::vformat_to(buffer, fmt, args);
  return to_string(buffer);
}

namespace detail {

FMT_FUNC void vformat_to(buffer<char>& buf, string_view fmt, format_args args,
                         locale_ref loc) {
  auto out = appender(buf);
  if (fmt.size() == 2 && equal2(fmt.data(), "{}"))
    return args.get(0).visit(default_arg_formatter<char>{out});
  parse_format_string(fmt,
                      format_handler<>{parse_context<>(fmt), {out, args, loc}});
}

template <typename T> struct span {
  T* data;
  size_t size;
};

template <typename F> auto flockfile(F* f) -> decltype(_lock_file(f)) {
  _lock_file(f);
}
template <typename F> auto funlockfile(F* f) -> decltype(_unlock_file(f)) {
  _unlock_file(f);
}

#ifndef getc_unlocked
template <typename F> auto getc_unlocked(F* f) -> decltype(_fgetc_nolock(f)) {
  return _fgetc_nolock(f);
}
#endif

template <typename F = FILE, typename Enable = void>
struct has_flockfile : std::false_type {};

template <typename F>
struct has_flockfile<F, void_t<decltype(flockfile(&std::declval<F&>()))>>
    : std::true_type {};

// A FILE wrapper. F is FILE defined as a template parameter to make system API
// detection work.
template <typename F> class file_base {
 public:
  F* file_;

 public:
  file_base(F* file) : file_(file) {}
  operator F*() const { return file_; }

  // Reads a code unit from the stream.
  auto get() -> int {
    int result = getc_unlocked(file_);
    if (result == EOF && ferror(file_) != 0)
      FMT_THROW(system_error(errno, FMT_STRING("getc failed")));
    return result;
  }

  // Puts the code unit back into the stream buffer.
  void unget(char c) {
    if (ungetc(c, file_) == EOF)
      FMT_THROW(system_error(errno, FMT_STRING("ungetc failed")));
  }

  void flush() { fflush(this->file_); }
};

// A FILE wrapper for glibc.
template <typename F> class glibc_file : public file_base<F> {
 private:
  enum {
    line_buffered = 0x200,  // _IO_LINE_BUF
    unbuffered = 2          // _IO_UNBUFFERED
  };

 public:
  using file_base<F>::file_base;

  auto is_buffered() const -> bool {
    return (this->file_->_flags & unbuffered) == 0;
  }

  void init_buffer() {
    if (this->file_->_IO_write_ptr < this->file_->_IO_write_end) return;
    // Force buffer initialization by placing and removing a char in a buffer.
    putc_unlocked(0, this->file_);
    --this->file_->_IO_write_ptr;
  }

  // Returns the file's read buffer.
  auto get_read_buffer() const -> span<const char> {
    auto ptr = this->file_->_IO_read_ptr;
    return {ptr, to_unsigned(this->file_->_IO_read_end - ptr)};
  }

  // Returns the file's write buffer.
  auto get_write_buffer() const -> span<char> {
    auto ptr = this->file_->_IO_write_ptr;
    return {ptr, to_unsigned(this->file_->_IO_buf_end - ptr)};
  }

  void advance_write_buffer(size_t size) { this->file_->_IO_write_ptr += size; }

  auto needs_flush() const -> bool {
    if ((this->file_->_flags & line_buffered) == 0) return false;
    char* end = this->file_->_IO_write_end;
    auto size = max_of<ptrdiff_t>(this->file_->_IO_write_ptr - end, 0);
    return memchr(end, '\n', static_cast<size_t>(size));
  }

  void flush() { fflush_unlocked(this->file_); }
};

// A FILE wrapper for Apple's libc.
template <typename F> class apple_file : public file_base<F> {
 private:
  enum {
    line_buffered = 1,  // __SNBF
    unbuffered = 2      // __SLBF
  };

 public:
  using file_base<F>::file_base;

  auto is_buffered() const -> bool {
    return (this->file_->_flags & unbuffered) == 0;
  }

  void init_buffer() {
    if (this->file_->_p) return;
    // Force buffer initialization by placing and removing a char in a buffer.
    if (!FMT_CLANG_ANALYZER) putc_unlocked(0, this->file_);
    --this->file_->_p;
    ++this->file_->_w;
  }

  auto get_read_buffer() const -> span<const char> {
    return {reinterpret_cast<char*>(this->file_->_p),
            to_unsigned(this->file_->_r)};
  }

  auto get_write_buffer() const -> span<char> {
    return {reinterpret_cast<char*>(this->file_->_p),
            to_unsigned(this->file_->_bf._base + this->file_->_bf._size -
                        this->file_->_p)};
  }

  void advance_write_buffer(size_t size) {
    this->file_->_p += size;
    this->file_->_w -= size;
  }

  auto needs_flush() const -> bool {
    if ((this->file_->_flags & line_buffered) == 0) return false;
    return memchr(this->file_->_p + this->file_->_w, '\n',
                  to_unsigned(-this->file_->_w));
  }
};

// A fallback FILE wrapper.
template <typename F> class fallback_file : public file_base<F> {
 private:
  char next_;  // The next unconsumed character in the buffer.
  bool has_next_ = false;

 public:
  using file_base<F>::file_base;

  auto is_buffered() const -> bool { return false; }
  auto needs_flush() const -> bool { return false; }
  void init_buffer() {}

  auto get_read_buffer() const -> span<const char> {
    return {&next_, has_next_ ? 1u : 0u};
  }

  auto get_write_buffer() const -> span<char> { return {nullptr, 0}; }

  void advance_write_buffer(size_t) {}

  auto get() -> int {
    has_next_ = false;
    return file_base<F>::get();
  }

  void unget(char c) {
    file_base<F>::unget(c);
    next_ = c;
    has_next_ = true;
  }
};

#ifndef FMT_USE_FALLBACK_FILE
#  define FMT_USE_FALLBACK_FILE 0
#endif

template <typename F,
          FMT_ENABLE_IF(sizeof(F::_p) != 0 && !FMT_USE_FALLBACK_FILE)>
auto get_file(F* f, int) -> apple_file<F> {
  return f;
}
template <typename F,
          FMT_ENABLE_IF(sizeof(F::_IO_read_ptr) != 0 && !FMT_USE_FALLBACK_FILE)>
inline auto get_file(F* f, int) -> glibc_file<F> {
  return f;
}

inline auto get_file(FILE* f, ...) -> fallback_file<FILE> { return f; }

using file_ref = decltype(get_file(static_cast<FILE*>(nullptr), 0));

template <typename F = FILE, typename Enable = void>
class file_print_buffer : public buffer<char> {
 public:
  explicit file_print_buffer(F*) : buffer(nullptr, size_t()) {}
};

template <typename F>
class file_print_buffer<F, enable_if_t<has_flockfile<F>::value>>
    : public buffer<char> {
 private:
  file_ref file_;

  static void grow(buffer<char>& base, size_t) {
    auto& self = static_cast<file_print_buffer&>(base);
    self.file_.advance_write_buffer(self.size());
    if (self.file_.get_write_buffer().size == 0) self.file_.flush();
    auto buf = self.file_.get_write_buffer();
    FMT_ASSERT(buf.size > 0, "");
    self.set(buf.data, buf.size);
    self.clear();
  }

 public:
  explicit file_print_buffer(F* f) : buffer(grow, size_t()), file_(f) {
    flockfile(f);
    file_.init_buffer();
    auto buf = file_.get_write_buffer();
    set(buf.data, buf.size);
  }
  ~file_print_buffer() {
    file_.advance_write_buffer(size());
    bool flush = file_.needs_flush();
    F* f = file_;    // Make funlockfile depend on the template parameter F
    funlockfile(f);  // for the system API detection to work.
    if (flush) fflush(file_);
  }
};

#if !defined(_WIN32) || defined(FMT_USE_WRITE_CONSOLE)
FMT_FUNC auto write_console(int, string_view) -> bool { return false; }
#else
using dword = conditional_t<sizeof(long) == 4, unsigned long, unsigned>;
extern "C" __declspec(dllimport) int __stdcall WriteConsoleW(  //
    void*, const void*, dword, dword*, void*);

FMT_FUNC bool write_console(int fd, string_view text) {
  auto u16 = utf8_to_utf16(text);
  return WriteConsoleW(reinterpret_cast<void*>(_get_osfhandle(fd)), u16.c_str(),
                       static_cast<dword>(u16.size()), nullptr, nullptr) != 0;
}
#endif

#ifdef _WIN32
// Print assuming legacy (non-Unicode) encoding.
FMT_FUNC void vprint_mojibake(std::FILE* f, string_view fmt, format_args args,
                              bool newline) {
  auto buffer = memory_buffer();
  detail::vformat_to(buffer, fmt, args);
  if (newline) buffer.push_back('\n');
  fwrite_all(buffer.data(), buffer.size(), f);
}
#endif

FMT_FUNC void print(std::FILE* f, string_view text) {
#if defined(_WIN32) && !defined(FMT_USE_WRITE_CONSOLE)
  int fd = _fileno(f);
  if (_isatty(fd)) {
    std::fflush(f);
    if (write_console(fd, text)) return;
  }
#endif
  fwrite_all(text.data(), text.size(), f);
}
}  // namespace detail

FMT_FUNC void vprint_buffered(std::FILE* f, string_view fmt, format_args args) {
  auto buffer = memory_buffer();
  detail::vformat_to(buffer, fmt, args);
  detail::print(f, {buffer.data(), buffer.size()});
}

FMT_FUNC void vprint(std::FILE* f, string_view fmt, format_args args) {
  if (!detail::file_ref(f).is_buffered() || !detail::has_flockfile<>())
    return vprint_buffered(f, fmt, args);
  auto&& buffer = detail::file_print_buffer<>(f);
  return detail::vformat_to(buffer, fmt, args);
}

FMT_FUNC void vprintln(std::FILE* f, string_view fmt, format_args args) {
  auto buffer = memory_buffer();
  detail::vformat_to(buffer, fmt, args);
  buffer.push_back('\n');
  detail::print(f, {buffer.data(), buffer.size()});
}

FMT_FUNC void vprint(string_view fmt, format_args args) {
  vprint(stdout, fmt, args);
}

namespace detail {

struct singleton {
  unsigned char upper;
  unsigned char lower_count;
};

inline auto is_printable(uint16_t x, const singleton* singletons,
                         size_t singletons_size,
                         const unsigned char* singleton_lowers,
                         const unsigned char* normal, size_t normal_size)
    -> bool {
  auto upper = x >> 8;
  auto lower_start = 0;
  for (size_t i = 0; i < singletons_size; ++i) {
    auto s = singletons[i];
    auto lower_end = lower_start + s.lower_count;
    if (upper < s.upper) break;
    if (upper == s.upper) {
      for (auto j = lower_start; j < lower_end; ++j) {
        if (singleton_lowers[j] == (x & 0xff)) return false;
      }
    }
    lower_start = lower_end;
  }

  auto xsigned = static_cast<int>(x);
  auto current = true;
  for (size_t i = 0; i < normal_size; ++i) {
    auto v = static_cast<int>(normal[i]);
    auto len = (v & 0x80) != 0 ? (v & 0x7f) << 8 | normal[++i] : v;
    xsigned -= len;
    if (xsigned < 0) break;
    current = !current;
  }
  return current;
}

// This code is generated by support/printable.py.
FMT_FUNC auto is_printable(uint32_t cp) -> bool {
  static constexpr singleton singletons0[] = {
      {0x00, 1},  {0x03, 5},  {0x05, 6},  {0x06, 3},  {0x07, 6},  {0x08, 8},
      {0x09, 17}, {0x0a, 28}, {0x0b, 25}, {0x0c, 20}, {0x0d, 16}, {0x0e, 13},
      {0x0f, 4},  {0x10, 3},  {0x12, 18}, {0x13, 9},  {0x16, 1},  {0x17, 5},
      {0x18, 2},  {0x19, 3},  {0x1a, 7},  {0x1c, 2},  {0x1d, 1},  {0x1f, 22},
      {0x20, 3},  {0x2b, 3},  {0x2c, 2},  {0x2d, 11}, {0x2e, 1},  {0x30, 3},
      {0x31, 2},  {0x32, 1},  {0xa7, 2},  {0xa9, 2},  {0xaa, 4},  {0xab, 8},
      {0xfa, 2},  {0xfb, 5},  {0xfd, 4},  {0xfe, 3},  {0xff, 9},
  };
  static constexpr unsigned char singletons0_lower[] = {
      0xad, 0x78, 0x79, 0x8b, 0x8d, 0xa2, 0x30, 0x57, 0x58, 0x8b, 0x8c, 0x90,
      0x1c, 0x1d, 0xdd, 0x0e, 0x0f, 0x4b, 0x4c, 0xfb, 0xfc, 0x2e, 0x2f, 0x3f,
      0x5c, 0x5d, 0x5f, 0xb5, 0xe2, 0x84, 0x8d, 0x8e, 0x91, 0x92, 0xa9, 0xb1,
      0xba, 0xbb, 0xc5, 0xc6, 0xc9, 0xca, 0xde, 0xe4, 0xe5, 0xff, 0x00, 0x04,
      0x11, 0x12, 0x29, 0x31, 0x34, 0x37, 0x3a, 0x3b, 0x3d, 0x49, 0x4a, 0x5d,
      0x84, 0x8e, 0x92, 0xa9, 0xb1, 0xb4, 0xba, 0xbb, 0xc6, 0xca, 0xce, 0xcf,
      0xe4, 0xe5, 0x00, 0x04, 0x0d, 0x0e, 0x11, 0x12, 0x29, 0x31, 0x34, 0x3a,
      0x3b, 0x45, 0x46, 0x49, 0x4a, 0x5e, 0x64, 0x65, 0x84, 0x91, 0x9b, 0x9d,
      0xc9, 0xce, 0xcf, 0x0d, 0x11, 0x29, 0x45, 0x49, 0x57, 0x64, 0x65, 0x8d,
      0x91, 0xa9, 0xb4, 0xba, 0xbb, 0xc5, 0xc9, 0xdf, 0xe4, 0xe5, 0xf0, 0x0d,
      0x11, 0x45, 0x49, 0x64, 0x65, 0x80, 0x84, 0xb2, 0xbc, 0xbe, 0xbf, 0xd5,
      0xd7, 0xf0, 0xf1, 0x83, 0x85, 0x8b, 0xa4, 0xa6, 0xbe, 0xbf, 0xc5, 0xc7,
      0xce, 0xcf, 0xda, 0xdb, 0x48, 0x98, 0xbd, 0xcd, 0xc6, 0xce, 0xcf, 0x49,
      0x4e, 0x4f, 0x57, 0x59, 0x5e, 0x5f, 0x89, 0x8e, 0x8f, 0xb1, 0xb6, 0xb7,
      0xbf, 0xc1, 0xc6, 0xc7, 0xd7, 0x11, 0x16, 0x17, 0x5b, 0x5c, 0xf6, 0xf7,
      0xfe, 0xff, 0x80, 0x0d, 0x6d, 0x71, 0xde, 0xdf, 0x0e, 0x0f, 0x1f, 0x6e,
      0x6f, 0x1c, 0x1d, 0x5f, 0x7d, 0x7e, 0xae, 0xaf, 0xbb, 0xbc, 0xfa, 0x16,
      0x17, 0x1e, 0x1f, 0x46, 0x47, 0x4e, 0x4f, 0x58, 0x5a, 0x5c, 0x5e, 0x7e,
      0x7f, 0xb5, 0xc5, 0xd4, 0xd5, 0xdc, 0xf0, 0xf1, 0xf5, 0x72, 0x73, 0x8f,
      0x74, 0x75, 0x96, 0x2f, 0x5f, 0x26, 0x2e, 0x2f, 0xa7, 0xaf, 0xb7, 0xbf,
      0xc7, 0xcf, 0xd7, 0xdf, 0x9a, 0x40, 0x97, 0x98, 0x30, 0x8f, 0x1f, 0xc0,
      0xc1, 0xce, 0xff, 0x4e, 0x4f, 0x5a, 0x5b, 0x07, 0x08, 0x0f, 0x10, 0x27,
      0x2f, 0xee, 0xef, 0x6e, 0x6f, 0x37, 0x3d, 0x3f, 0x42, 0x45, 0x90, 0x91,
      0xfe, 0xff, 0x53, 0x67, 0x75, 0xc8, 0xc9, 0xd0, 0xd1, 0xd8, 0xd9, 0xe7,
      0xfe, 0xff,
  };
  static constexpr singleton singletons1[] = {
      {0x00, 6},  {0x01, 1}, {0x03, 1},  {0x04, 2}, {0x08, 8},  {0x09, 2},
      {0x0a, 5},  {0x0b, 2}, {0x0e, 4},  {0x10, 1}, {0x11, 2},  {0x12, 5},
      {0x13, 17}, {0x14, 1}, {0x15, 2},  {0x17, 2}, {0x19, 13}, {0x1c, 5},
      {0x1d, 8},  {0x24, 1}, {0x6a, 3},  {0x6b, 2}, {0xbc, 2},  {0xd1, 2},
      {0xd4, 12}, {0xd5, 9}, {0xd6, 2},  {0xd7, 2}, {0xda, 1},  {0xe0, 5},
      {0xe1, 2},  {0xe8, 2}, {0xee, 32}, {0xf0, 4}, {0xf8, 2},  {0xf9, 2},
      {0xfa, 2},  {0xfb, 1},
  };
  static constexpr unsigned char singletons1_lower[] = {
      0x0c, 0x27, 0x3b, 0x3e, 0x4e, 0x4f, 0x8f, 0x9e, 0x9e, 0x9f, 0x06, 0x07,
      0x09, 0x36, 0x3d, 0x3e, 0x56, 0xf3, 0xd0, 0xd1, 0x04, 0x14, 0x18, 0x36,
      0x37, 0x56, 0x57, 0x7f, 0xaa, 0xae, 0xaf, 0xbd, 0x35, 0xe0, 0x12, 0x87,
      0x89, 0x8e, 0x9e, 0x04, 0x0d, 0x0e, 0x11, 0x12, 0x29, 0x31, 0x34, 0x3a,
      0x45, 0x46, 0x49, 0x4a, 0x4e, 0x4f, 0x64, 0x65, 0x5c, 0xb6, 0xb7, 0x1b,
      0x1c, 0x07, 0x08, 0x0a, 0x0b, 0x14, 0x17, 0x36, 0x39, 0x3a, 0xa8, 0xa9,
      0xd8, 0xd9, 0x09, 0x37, 0x90, 0x91, 0xa8, 0x07, 0x0a, 0x3b, 0x3e, 0x66,
      0x69, 0x8f, 0x92, 0x6f, 0x5f, 0xee, 0xef, 0x5a, 0x62, 0x9a, 0x9b, 0x27,
      0x28, 0x55, 0x9d, 0xa0, 0xa1, 0xa3, 0xa4, 0xa7, 0xa8, 0xad, 0xba, 0xbc,
      0xc4, 0x06, 0x0b, 0x0c, 0x15, 0x1d, 0x3a, 0x3f, 0x45, 0x51, 0xa6, 0xa7,
      0xcc, 0xcd, 0xa0, 0x07, 0x19, 0x1a, 0x22, 0x25, 0x3e, 0x3f, 0xc5, 0xc6,
      0x04, 0x20, 0x23, 0x25, 0x26, 0x28, 0x33, 0x38, 0x3a, 0x48, 0x4a, 0x4c,
      0x50, 0x53, 0x55, 0x56, 0x58, 0x5a, 0x5c, 0x5e, 0x60, 0x63, 0x65, 0x66,
      0x6b, 0x73, 0x78, 0x7d, 0x7f, 0x8a, 0xa4, 0xaa, 0xaf, 0xb0, 0xc0, 0xd0,
      0xae, 0xaf, 0x79, 0xcc, 0x6e, 0x6f, 0x93,
  };
  static constexpr unsigned char normal0[] = {
      0x00, 0x20, 0x5f, 0x22, 0x82, 0xdf, 0x04, 0x82, 0x44, 0x08, 0x1b, 0x04,
      0x06, 0x11, 0x81, 0xac, 0x0e, 0x80, 0xab, 0x35, 0x28, 0x0b, 0x80, 0xe0,
      0x03, 0x19, 0x08, 0x01, 0x04, 0x2f, 0x04, 0x34, 0x04, 0x07, 0x03, 0x01,
      0x07, 0x06, 0x07, 0x11, 0x0a, 0x50, 0x0f, 0x12, 0x07, 0x55, 0x07, 0x03,
      0x04, 0x1c, 0x0a, 0x09, 0x03, 0x08, 0x03, 0x07, 0x03, 0x02, 0x03, 0x03,
      0x03, 0x0c, 0x04, 0x05, 0x03, 0x0b, 0x06, 0x01, 0x0e, 0x15, 0x05, 0x3a,
      0x03, 0x11, 0x07, 0x06, 0x05, 0x10, 0x07, 0x57, 0x07, 0x02, 0x07, 0x15,
      0x0d, 0x50, 0x04, 0x43, 0x03, 0x2d, 0x03, 0x01, 0x04, 0x11, 0x06, 0x0f,
      0x0c, 0x3a, 0x04, 0x1d, 0x25, 0x5f, 0x20, 0x6d, 0x04, 0x6a, 0x25, 0x80,
      0xc8, 0x05, 0x82, 0xb0, 0x03, 0x1a, 0x06, 0x82, 0xfd, 0x03, 0x59, 0x07,
      0x15, 0x0b, 0x17, 0x09, 0x14, 0x0c, 0x14, 0x0c, 0x6a, 0x06, 0x0a, 0x06,
      0x1a, 0x06, 0x59, 0x07, 0x2b, 0x05, 0x46, 0x0a, 0x2c, 0x04, 0x0c, 0x04,
      0x01, 0x03, 0x31, 0x0b, 0x2c, 0x04, 0x1a, 0x06, 0x0b, 0x03, 0x80, 0xac,
      0x06, 0x0a, 0x06, 0x21, 0x3f, 0x4c, 0x04, 0x2d, 0x03, 0x74, 0x08, 0x3c,
      0x03, 0x0f, 0x03, 0x3c, 0x07, 0x38, 0x08, 0x2b, 0x05, 0x82, 0xff, 0x11,
      0x18, 0x08, 0x2f, 0x11, 0x2d, 0x03, 0x20, 0x10, 0x21, 0x0f, 0x80, 0x8c,
      0x04, 0x82, 0x97, 0x19, 0x0b, 0x15, 0x88, 0x94, 0x05, 0x2f, 0x05, 0x3b,
      0x07, 0x02, 0x0e, 0x18, 0x09, 0x80, 0xb3, 0x2d, 0x74, 0x0c, 0x80, 0xd6,
      0x1a, 0x0c, 0x05, 0x80, 0xff, 0x05, 0x80, 0xdf, 0x0c, 0xee, 0x0d, 0x03,
      0x84, 0x8d, 0x03, 0x37, 0x09, 0x81, 0x5c, 0x14, 0x80, 0xb8, 0x08, 0x80,
      0xcb, 0x2a, 0x38, 0x03, 0x0a, 0x06, 0x38, 0x08, 0x46, 0x08, 0x0c, 0x06,
      0x74, 0x0b, 0x1e, 0x03, 0x5a, 0x04, 0x59, 0x09, 0x80, 0x83, 0x18, 0x1c,
      0x0a, 0x16, 0x09, 0x4c, 0x04, 0x80, 0x8a, 0x06, 0xab, 0xa4, 0x0c, 0x17,
      0x04, 0x31, 0xa1, 0x04, 0x81, 0xda, 0x26, 0x07, 0x0c, 0x05, 0x05, 0x80,
      0xa5, 0x11, 0x81, 0x6d, 0x10, 0x78, 0x28, 0x2a, 0x06, 0x4c, 0x04, 0x80,
      0x8d, 0x04, 0x80, 0xbe, 0x03, 0x1b, 0x03, 0x0f, 0x0d,
  };
  static constexpr unsigned char normal1[] = {
      0x5e, 0x22, 0x7b, 0x05, 0x03, 0x04, 0x2d, 0x03, 0x66, 0x03, 0x01, 0x2f,
      0x2e, 0x80, 0x82, 0x1d, 0x03, 0x31, 0x0f, 0x1c, 0x04, 0x24, 0x09, 0x1e,
      0x05, 0x2b, 0x05, 0x44, 0x04, 0x0e, 0x2a, 0x80, 0xaa, 0x06, 0x24, 0x04,
      0x24, 0x04, 0x28, 0x08, 0x34, 0x0b, 0x01, 0x80, 0x90, 0x81, 0x37, 0x09,
      0x16, 0x0a, 0x08, 0x80, 0x98, 0x39, 0x03, 0x63, 0x08, 0x09, 0x30, 0x16,
      0x05, 0x21, 0x03, 0x1b, 0x05, 0x01, 0x40, 0x38, 0x04, 0x4b, 0x05, 0x2f,
      0x04, 0x0a, 0x07, 0x09, 0x07, 0x40, 0x20, 0x27, 0x04, 0x0c, 0x09, 0x36,
      0x03, 0x3a, 0x05, 0x1a, 0x07, 0x04, 0x0c, 0x07, 0x50, 0x49, 0x37, 0x33,
      0x0d, 0x33, 0x07, 0x2e, 0x08, 0x0a, 0x81, 0x26, 0x52, 0x4e, 0x28, 0x08,
      0x2a, 0x56, 0x1c, 0x14, 0x17, 0x09, 0x4e, 0x04, 0x1e, 0x0f, 0x43, 0x0e,
      0x19, 0x07, 0x0a, 0x06, 0x48, 0x08, 0x27, 0x09, 0x75, 0x0b, 0x3f, 0x41,
      0x2a, 0x06, 0x3b, 0x05, 0x0a, 0x06, 0x51, 0x06, 0x01, 0x05, 0x10, 0x03,
      0x05, 0x80, 0x8b, 0x62, 0x1e, 0x48, 0x08, 0x0a, 0x80, 0xa6, 0x5e, 0x22,
      0x45, 0x0b, 0x0a, 0x06, 0x0d, 0x13, 0x39, 0x07, 0x0a, 0x36, 0x2c, 0x04,
      0x10, 0x80, 0xc0, 0x3c, 0x64, 0x53, 0x0c, 0x48, 0x09, 0x0a, 0x46, 0x45,
      0x1b, 0x48, 0x08, 0x53, 0x1d, 0x39, 0x81, 0x07, 0x46, 0x0a, 0x1d, 0x03,
      0x47, 0x49, 0x37, 0x03, 0x0e, 0x08, 0x0a, 0x06, 0x39, 0x07, 0x0a, 0x81,
      0x36, 0x19, 0x80, 0xb7, 0x01, 0x0f, 0x32, 0x0d, 0x83, 0x9b, 0x66, 0x75,
      0x0b, 0x80, 0xc4, 0x8a, 0xbc, 0x84, 0x2f, 0x8f, 0xd1, 0x82, 0x47, 0xa1,
      0xb9, 0x82, 0x39, 0x07, 0x2a, 0x04, 0x02, 0x60, 0x26, 0x0a, 0x46, 0x0a,
      0x28, 0x05, 0x13, 0x82, 0xb0, 0x5b, 0x65, 0x4b, 0x04, 0x39, 0x07, 0x11,
      0x40, 0x05, 0x0b, 0x02, 0x0e, 0x97, 0xf8, 0x08, 0x84, 0xd6, 0x2a, 0x09,
      0xa2, 0xf7, 0x81, 0x1f, 0x31, 0x03, 0x11, 0x04, 0x08, 0x81, 0x8c, 0x89,
      0x04, 0x6b, 0x05, 0x0d, 0x03, 0x09, 0x07, 0x10, 0x93, 0x60, 0x80, 0xf6,
      0x0a, 0x73, 0x08, 0x6e, 0x17, 0x46, 0x80, 0x9a, 0x14, 0x0c, 0x57, 0x09,
      0x19, 0x80, 0x87, 0x81, 0x47, 0x03, 0x85, 0x42, 0x0f, 0x15, 0x85, 0x50,
      0x2b, 0x80, 0xd5, 0x2d, 0x03, 0x1a, 0x04, 0x02, 0x81, 0x70, 0x3a, 0x05,
      0x01, 0x85, 0x00, 0x80, 0xd7, 0x29, 0x4c, 0x04, 0x0a, 0x04, 0x02, 0x83,
      0x11, 0x44, 0x4c, 0x3d, 0x80, 0xc2, 0x3c, 0x06, 0x01, 0x04, 0x55, 0x05,
      0x1b, 0x34, 0x02, 0x81, 0x0e, 0x2c, 0x04, 0x64, 0x0c, 0x56, 0x0a, 0x80,
      0xae, 0x38, 0x1d, 0x0d, 0x2c, 0x04, 0x09, 0x07, 0x02, 0x0e, 0x06, 0x80,
      0x9a, 0x83, 0xd8, 0x08, 0x0d, 0x03, 0x0d, 0x03, 0x74, 0x0c, 0x59, 0x07,
      0x0c, 0x14, 0x0c, 0x04, 0x38, 0x08, 0x0a, 0x06, 0x28, 0x08, 0x22, 0x4e,
      0x81, 0x54, 0x0c, 0x15, 0x03, 0x03, 0x05, 0x07, 0x09, 0x19, 0x07, 0x07,
      0x09, 0x03, 0x0d, 0x07, 0x29, 0x80, 0xcb, 0x25, 0x0a, 0x84, 0x06,
  };
  auto lower = static_cast<uint16_t>(cp);
  if (cp < 0x10000) {
    return is_printable(lower, singletons0,
                        sizeof(singletons0) / sizeof(*singletons0),
                        singletons0_lower, normal0, sizeof(normal0));
  }
  if (cp < 0x20000) {
    return is_printable(lower, singletons1,
                        sizeof(singletons1) / sizeof(*singletons1),
                        singletons1_lower, normal1, sizeof(normal1));
  }
  if (0x2a6de <= cp && cp < 0x2a700) return false;
  if (0x2b735 <= cp && cp < 0x2b740) return false;
  if (0x2b81e <= cp && cp < 0x2b820) return false;
  if (0x2cea2 <= cp && cp < 0x2ceb0) return false;
  if (0x2ebe1 <= cp && cp < 0x2f800) return false;
  if (0x2fa1e <= cp && cp < 0x30000) return false;
  if (0x3134b <= cp && cp < 0xe0100) return false;
  if (0xe01f0 <= cp && cp < 0x110000) return false;
  return cp < 0x110000;
}

}  // namespace detail

FMT_END_NAMESPACE

#endif  // FMT_FORMAT_INL_H_
