// Formatting library for C++ - optional OS-specific functionality
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_OS_H_
#define FMT_OS_H_

#include "format.h"

#ifndef FMT_MODULE
#  include <cerrno>
#  include <cstddef>
#  include <cstdio>
#  include <system_error>  // std::system_error

#  if FMT_HAS_INCLUDE(<xlocale.h>)
#    include <xlocale.h>  // LC_NUMERIC_MASK on macOS
#  endif
#endif  // FMT_MODULE

#ifndef FMT_USE_FCNTL
// UWP doesn't provide _pipe.
#  if FMT_HAS_INCLUDE("winapifamily.h")
#    include <winapifamily.h>
#  endif
#  if (FMT_HAS_INCLUDE(<fcntl.h>) || defined(__APPLE__) || \
       defined(__linux__)) &&                              \
      (!defined(WINAPI_FAMILY) ||                          \
       (WINAPI_FAMILY == WINAPI_FAMILY_DESKTOP_APP)) &&    \
      !defined(__wasm__)
#    include <fcntl.h>  // for O_RDONLY
#    define FMT_USE_FCNTL 1
#  else
#    define FMT_USE_FCNTL 0
#  endif
#endif

#ifndef FMT_POSIX
#  if defined(_WIN32) && !defined(__MINGW32__)
// Fix warnings about deprecated symbols.
#    define FMT_POSIX(call) _##call
#  else
#    define FMT_POSIX(call) call
#  endif
#endif

// Calls to system functions are wrapped in FMT_SYSTEM for testability.
#ifdef FMT_SYSTEM
#  define FMT_HAS_SYSTEM
#  define FMT_POSIX_CALL(call) FMT_SYSTEM(call)
#else
#  define FMT_SYSTEM(call) ::call
#  ifdef _WIN32
// Fix warnings about deprecated symbols.
#    define FMT_POSIX_CALL(call) ::_##call
#  else
#    define FMT_POSIX_CALL(call) ::call
#  endif
#endif

// Retries the expression while it evaluates to error_result and errno
// equals to EINTR.
#ifndef _WIN32
#  define FMT_RETRY_VAL(result, expression, error_result) \
    do {                                                  \
      (result) = (expression);                            \
    } while ((result) == (error_result) && errno == EINTR)
#else
#  define FMT_RETRY_VAL(result, expression, error_result) result = (expression)
#endif

#define FMT_RETRY(result, expression) FMT_RETRY_VAL(result, expression, -1)

FMT_BEGIN_NAMESPACE
FMT_BEGIN_EXPORT

/**
 * A reference to a null-terminated string. It can be constructed from a C
 * string or `std::string`.
 *
 * You can use one of the following type aliases for common character types:
 *
 * +---------------+-----------------------------+
 * | Type          | Definition                  |
 * +===============+=============================+
 * | cstring_view  | basic_cstring_view<char>    |
 * +---------------+-----------------------------+
 * | wcstring_view | basic_cstring_view<wchar_t> |
 * +---------------+-----------------------------+
 *
 * This class is most useful as a parameter type for functions that wrap C APIs.
 */
template <typename Char> class basic_cstring_view {
 private:
  const Char* data_;

 public:
  /// Constructs a string reference object from a C string.
  basic_cstring_view(const Char* s) : data_(s) {}

  /// Constructs a string reference from an `std::string` object.
  basic_cstring_view(const std::basic_string<Char>& s) : data_(s.c_str()) {}

  /// Returns the pointer to a C string.
  auto c_str() const -> const Char* { return data_; }
};

using cstring_view = basic_cstring_view<char>;
using wcstring_view = basic_cstring_view<wchar_t>;

#ifdef _WIN32
FMT_API const std::error_category& system_category() noexcept;

namespace detail {
FMT_API void format_windows_error(buffer<char>& out, int error_code,
                                  const char* message) noexcept;
}

FMT_API std::system_error vwindows_error(int error_code, string_view fmt,
                                         format_args args);

/**
 * Constructs a `std::system_error` object with the description of the form
 *
 *     <message>: <system-message>
 *
 * where `<message>` is the formatted message and `<system-message>` is the
 * system message corresponding to the error code.
 * `error_code` is a Windows error code as given by `GetLastError`.
 * If `error_code` is not a valid error code such as -1, the system message
 * will look like "error -1".
 *
 * **Example**:
 *
 *     // This throws a system_error with the description
 *     //   cannot open file 'foo': The system cannot find the file specified.
 *     // or similar (system message may vary) if the file doesn't exist.
 *     const char *filename = "foo";
 *     LPOFSTRUCT of = LPOFSTRUCT();
 *     HFILE file = OpenFile(filename, &of, OF_READ);
 *     if (file == HFILE_ERROR) {
 *       throw fmt::windows_error(GetLastError(),
 *                                "cannot open file '{}'", filename);
 *     }
 */
template <typename... T>
auto windows_error(int error_code, string_view message, const T&... args)
    -> std::system_error {
  return vwindows_error(error_code, message, vargs<T...>{{args...}});
}

// Reports a Windows error without throwing an exception.
// Can be used to report errors from destructors.
FMT_API void report_windows_error(int error_code, const char* message) noexcept;
#else
inline auto system_category() noexcept -> const std::error_category& {
  return std::system_category();
}
#endif  // _WIN32

// std::system is not available on some platforms such as iOS (#2248).
#ifdef __OSX__
template <typename S, typename... Args, typename Char = char_t<S>>
void say(const S& fmt, Args&&... args) {
  std::system(format("say \"{}\"", format(fmt, args...)).c_str());
}
#endif

// A buffered file.
class buffered_file {
 private:
  FILE* file_;

  friend class file;

  inline explicit buffered_file(FILE* f) : file_(f) {}

 public:
  buffered_file(const buffered_file&) = delete;
  void operator=(const buffered_file&) = delete;

  // Constructs a buffered_file object which doesn't represent any file.
  inline buffered_file() noexcept : file_(nullptr) {}

  // Destroys the object closing the file it represents if any.
  FMT_API ~buffered_file() noexcept;

 public:
  inline buffered_file(buffered_file&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }

  inline auto operator=(buffered_file&& other) -> buffered_file& {
    close();
    file_ = other.file_;
    other.file_ = nullptr;
    return *this;
  }

  // Opens a file.
  FMT_API buffered_file(cstring_view filename, cstring_view mode);

  // Closes the file.
  FMT_API void close();

  // Returns the pointer to a FILE object representing this file.
  inline auto get() const noexcept -> FILE* { return file_; }

  FMT_API auto descriptor() const -> int;

  template <typename... T>
  inline void print(string_view fmt, const T&... args) {
    fmt::vargs<T...> vargs = {{args...}};
    detail::is_locking<T...>() ? fmt::vprint_buffered(file_, fmt, vargs)
                               : fmt::vprint(file_, fmt, vargs);
  }
};

#if FMT_USE_FCNTL

// A file. Closed file is represented by a file object with descriptor -1.
// Methods that are not declared with noexcept may throw
// fmt::system_error in case of failure. Note that some errors such as
// closing the file multiple times will cause a crash on Windows rather
// than an exception. You can get standard behavior by overriding the
// invalid parameter handler with _set_invalid_parameter_handler.
class FMT_API file {
 private:
  int fd_;  // File descriptor.

  // Constructs a file object with a given descriptor.
  explicit file(int fd) : fd_(fd) {}

  friend struct pipe;

 public:
  // Possible values for the oflag argument to the constructor.
  enum {
    RDONLY = FMT_POSIX(O_RDONLY),  // Open for reading only.
    WRONLY = FMT_POSIX(O_WRONLY),  // Open for writing only.
    RDWR = FMT_POSIX(O_RDWR),      // Open for reading and writing.
    CREATE = FMT_POSIX(O_CREAT),   // Create if the file doesn't exist.
    APPEND = FMT_POSIX(O_APPEND),  // Open in append mode.
    TRUNC = FMT_POSIX(O_TRUNC)     // Truncate the content of the file.
  };

  // Constructs a file object which doesn't represent any file.
  inline file() noexcept : fd_(-1) {}

  // Opens a file and constructs a file object representing this file.
  file(cstring_view path, int oflag);

 public:
  file(const file&) = delete;
  void operator=(const file&) = delete;

  inline file(file&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  // Move assignment is not noexcept because close may throw.
  inline auto operator=(file&& other) -> file& {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    return *this;
  }

  // Destroys the object closing the file it represents if any.
  ~file() noexcept;

  // Returns the file descriptor.
  inline auto descriptor() const noexcept -> int { return fd_; }

  // Closes the file.
  void close();

  // Returns the file size. The size has signed type for consistency with
  // stat::st_size.
  auto size() const -> long long;

  // Attempts to read count bytes from the file into the specified buffer.
  auto read(void* buffer, size_t count) -> size_t;

  // Attempts to write count bytes from the specified buffer to the file.
  auto write(const void* buffer, size_t count) -> size_t;

  // Duplicates a file descriptor with the dup function and returns
  // the duplicate as a file object.
  static auto dup(int fd) -> file;

  // Makes fd be the copy of this file descriptor, closing fd first if
  // necessary.
  void dup2(int fd);

  // Makes fd be the copy of this file descriptor, closing fd first if
  // necessary.
  void dup2(int fd, std::error_code& ec) noexcept;

  // Creates a buffered_file object associated with this file and detaches
  // this file object from the file.
  auto fdopen(const char* mode) -> buffered_file;

#  if defined(_WIN32) && !defined(__MINGW32__)
  // Opens a file and constructs a file object representing this file by
  // wcstring_view filename. Windows only.
  static file open_windows_file(wcstring_view path, int oflag);
#  endif
};

struct FMT_API pipe {
  file read_end;
  file write_end;

  // Creates a pipe setting up read_end and write_end file objects for reading
  // and writing respectively.
  pipe();
};

// Returns the memory page size.
auto getpagesize() -> long;

namespace detail {

struct buffer_size {
  constexpr buffer_size() = default;
  size_t value = 0;
  FMT_CONSTEXPR auto operator=(size_t val) const -> buffer_size {
    auto bs = buffer_size();
    bs.value = val;
    return bs;
  }
};

struct ostream_params {
  int oflag = file::WRONLY | file::CREATE | file::TRUNC;
  size_t buffer_size = BUFSIZ > 32768 ? BUFSIZ : 32768;

  constexpr ostream_params() {}

  template <typename... T>
  ostream_params(T... params, int new_oflag) : ostream_params(params...) {
    oflag = new_oflag;
  }

  template <typename... T>
  ostream_params(T... params, detail::buffer_size bs)
      : ostream_params(params...) {
    this->buffer_size = bs.value;
  }

// Intel has a bug that results in failure to deduce a constructor
// for empty parameter packs.
#  if defined(__INTEL_COMPILER) && __INTEL_COMPILER < 2000
  ostream_params(int new_oflag) : oflag(new_oflag) {}
  ostream_params(detail::buffer_size bs) : buffer_size(bs.value) {}
#  endif
};

}  // namespace detail

FMT_INLINE_VARIABLE constexpr auto buffer_size = detail::buffer_size();

/// A fast buffered output stream for writing from a single thread. Writing from
/// multiple threads without external synchronization may result in a data race.
class ostream : private detail::buffer<char> {
 private:
  file file_;

  FMT_API ostream(cstring_view path, const detail::ostream_params& params);

  FMT_API static void grow(buffer<char>& buf, size_t);

 public:
  FMT_API ostream(ostream&& other) noexcept;
  FMT_API ~ostream();

  operator writer() {
    detail::buffer<char>& buf = *this;
    return buf;
  }

  inline void flush() {
    if (size() == 0) return;
    file_.write(data(), size() * sizeof(data()[0]));
    clear();
  }

  template <typename... T>
  friend auto output_file(cstring_view path, T... params) -> ostream;

  inline void close() {
    flush();
    file_.close();
  }

  /// Formats `args` according to specifications in `fmt` and writes the
  /// output to the file.
  template <typename... T> void print(format_string<T...> fmt, T&&... args) {
    vformat_to(appender(*this), fmt.str, vargs<T...>{{args...}});
  }
};

/**
 * Opens a file for writing. Supported parameters passed in `params`:
 *
 * - `<integer>`: Flags passed to [open](
 *   https://pubs.opengroup.org/onlinepubs/007904875/functions/open.html)
 *   (`file::WRONLY | file::CREATE | file::TRUNC` by default)
 * - `buffer_size=<integer>`: Output buffer size
 *
 * **Example**:
 *
 *     auto out = fmt::output_file("guide.txt");
 *     out.print("Don't {}", "Panic");
 */
template <typename... T>
inline auto output_file(cstring_view path, T... params) -> ostream {
  return {path, detail::ostream_params(params...)};
}
#endif  // FMT_USE_FCNTL

FMT_END_EXPORT
FMT_END_NAMESPACE

#endif  // FMT_OS_H_
