// Formatting library for C++ - dynamic argument lists
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_ARGS_H_
#define FMT_ARGS_H_

#ifndef FMT_MODULE
#  include <functional>  // std::reference_wrapper
#  include <memory>      // std::unique_ptr
#  include <vector>
#endif

#include "format.h"  // std_string_view

FMT_BEGIN_NAMESPACE
namespace detail {

template <typename T> struct is_reference_wrapper : std::false_type {};
template <typename T>
struct is_reference_wrapper<std::reference_wrapper<T>> : std::true_type {};

template <typename T> auto unwrap(const T& v) -> const T& { return v; }
template <typename T>
auto unwrap(const std::reference_wrapper<T>& v) -> const T& {
  return static_cast<const T&>(v);
}

// node is defined outside dynamic_arg_list to workaround a C2504 bug in MSVC
// 2022 (v17.10.0).
//
// Workaround for clang's -Wweak-vtables. Unlike for regular classes, for
// templates it doesn't complain about inability to deduce single translation
// unit for placing vtable. So node is made a fake template.
template <typename = void> struct node {
  virtual ~node() = default;
  std::unique_ptr<node<>> next;
};

class dynamic_arg_list {
  template <typename T> struct typed_node : node<> {
    T value;

    template <typename Arg>
    FMT_CONSTEXPR typed_node(const Arg& arg) : value(arg) {}

    template <typename Char>
    FMT_CONSTEXPR typed_node(const basic_string_view<Char>& arg)
        : value(arg.data(), arg.size()) {}
  };

  std::unique_ptr<node<>> head_;

 public:
  template <typename T, typename Arg> auto push(const Arg& arg) -> const T& {
    auto new_node = std::unique_ptr<typed_node<T>>(new typed_node<T>(arg));
    auto& value = new_node->value;
    new_node->next = std::move(head_);
    head_ = std::move(new_node);
    return value;
  }
};
}  // namespace detail

/**
 * A dynamic list of formatting arguments with storage.
 *
 * It can be implicitly converted into `fmt::basic_format_args` for passing
 * into type-erased formatting functions such as `fmt::vformat`.
 */
FMT_EXPORT template <typename Context> class dynamic_format_arg_store {
 private:
  using char_type = typename Context::char_type;

  template <typename T> struct need_copy {
    static constexpr detail::type mapped_type =
        detail::mapped_type_constant<T, char_type>::value;

    enum {
      value = !(detail::is_reference_wrapper<T>::value ||
                std::is_same<T, basic_string_view<char_type>>::value ||
                std::is_same<T, detail::std_string_view<char_type>>::value ||
                (mapped_type != detail::type::cstring_type &&
                 mapped_type != detail::type::string_type &&
                 mapped_type != detail::type::custom_type))
    };
  };

  template <typename T>
  using stored_t = conditional_t<
      std::is_convertible<T, std::basic_string<char_type>>::value &&
          !detail::is_reference_wrapper<T>::value,
      std::basic_string<char_type>, T>;

  // Storage of basic_format_arg must be contiguous.
  std::vector<basic_format_arg<Context>> data_;
  std::vector<detail::named_arg_info<char_type>> named_info_;

  // Storage of arguments not fitting into basic_format_arg must grow
  // without relocation because items in data_ refer to it.
  detail::dynamic_arg_list dynamic_args_;

  friend class basic_format_args<Context>;

  auto data() const -> const basic_format_arg<Context>* {
    return named_info_.empty() ? data_.data() : data_.data() + 1;
  }

  template <typename T> void emplace_arg(const T& arg) {
    data_.emplace_back(arg);
  }

  template <typename T>
  void emplace_arg(const detail::named_arg<char_type, T>& arg) {
    if (named_info_.empty())
      data_.insert(data_.begin(), basic_format_arg<Context>(nullptr, 0));
    data_.emplace_back(detail::unwrap(arg.value));
    auto pop_one = [](std::vector<basic_format_arg<Context>>* data) {
      data->pop_back();
    };
    std::unique_ptr<std::vector<basic_format_arg<Context>>, decltype(pop_one)>
        guard{&data_, pop_one};
    named_info_.push_back({arg.name, static_cast<int>(data_.size() - 2u)});
    data_[0] = {named_info_.data(), named_info_.size()};
    guard.release();
  }

 public:
  constexpr dynamic_format_arg_store() = default;

  operator basic_format_args<Context>() const {
    return basic_format_args<Context>(data(), static_cast<int>(data_.size()),
                                      !named_info_.empty());
  }

  /**
   * Adds an argument into the dynamic store for later passing to a formatting
   * function.
   *
   * Note that custom types and string types (but not string views) are copied
   * into the store dynamically allocating memory if necessary.
   *
   * **Example**:
   *
   *     fmt::dynamic_format_arg_store<fmt::format_context> store;
   *     store.push_back(42);
   *     store.push_back("abc");
   *     store.push_back(1.5f);
   *     std::string result = fmt::vformat("{} and {} and {}", store);
   */
  template <typename T> void push_back(const T& arg) {
    if (detail::const_check(need_copy<T>::value))
      emplace_arg(dynamic_args_.push<stored_t<T>>(arg));
    else
      emplace_arg(detail::unwrap(arg));
  }

  /**
   * Adds a reference to the argument into the dynamic store for later passing
   * to a formatting function.
   *
   * **Example**:
   *
   *     fmt::dynamic_format_arg_store<fmt::format_context> store;
   *     char band[] = "Rolling Stones";
   *     store.push_back(std::cref(band));
   *     band[9] = 'c'; // Changing str affects the output.
   *     std::string result = fmt::vformat("{}", store);
   *     // result == "Rolling Scones"
   */
  template <typename T> void push_back(std::reference_wrapper<T> arg) {
    static_assert(
        need_copy<T>::value,
        "objects of built-in types and string views are always copied");
    emplace_arg(arg.get());
  }

  /**
   * Adds named argument into the dynamic store for later passing to a
   * formatting function. `std::reference_wrapper` is supported to avoid
   * copying of the argument. The name is always copied into the store.
   */
  template <typename T>
  void push_back(const detail::named_arg<char_type, T>& arg) {
    const char_type* arg_name =
        dynamic_args_.push<std::basic_string<char_type>>(arg.name).c_str();
    if (detail::const_check(need_copy<T>::value)) {
      emplace_arg(
          fmt::arg(arg_name, dynamic_args_.push<stored_t<T>>(arg.value)));
    } else {
      emplace_arg(fmt::arg(arg_name, arg.value));
    }
  }

  /// Erase all elements from the store.
  void clear() {
    data_.clear();
    named_info_.clear();
    dynamic_args_ = {};
  }

  /// Reserves space to store at least `new_cap` arguments including
  /// `new_cap_named` named arguments.
  void reserve(size_t new_cap, size_t new_cap_named) {
    FMT_ASSERT(new_cap >= new_cap_named,
               "set of arguments includes set of named arguments");
    data_.reserve(new_cap);
    named_info_.reserve(new_cap_named);
  }

  /// Returns the number of elements in the store.
  auto size() const noexcept -> size_t { return data_.size(); }
};

FMT_END_NAMESPACE

#endif  // FMT_ARGS_H_
