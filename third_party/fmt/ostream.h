// Formatting library for C++ - std::ostream support
//
// Copyright (c) 2012 - present, Victor Zverovich
// All rights reserved.
//
// For the license information refer to format.h.

#ifndef FMT_OSTREAM_H_
#define FMT_OSTREAM_H_

#ifndef FMT_MODULE
#  include <fstream>  // std::filebuf
#endif

#ifdef _WIN32
#  ifdef __GLIBCXX__
#    include <ext/stdio_filebuf.h>
#    include <ext/stdio_sync_filebuf.h>
#  endif
#  include <io.h>
#endif

#include "chrono.h"  // formatbuf

#ifdef _MSVC_STL_UPDATE
#  define FMT_MSVC_STL_UPDATE _MSVC_STL_UPDATE
#elif defined(_MSC_VER) && _MSC_VER < 1912  // VS 15.5
#  define FMT_MSVC_STL_UPDATE _MSVC_LANG
#else
#  define FMT_MSVC_STL_UPDATE 0
#endif

FMT_BEGIN_NAMESPACE
namespace detail {

// Generate a unique explicit instantiation in every translation unit using a
// tag type in an anonymous namespace.
namespace {
struct file_access_tag {};
}  // namespace
template <typename Tag, typename BufType, FILE* BufType::*FileMemberPtr>
class file_access {
  friend auto get_file(BufType& obj) -> FILE* { return obj.*FileMemberPtr; }
};

#if FMT_MSVC_STL_UPDATE
template class file_access<file_access_tag, std::filebuf,
                           &std::filebuf::_Myfile>;
auto get_file(std::filebuf&) -> FILE*;
#endif

// Write the content of buf to os.
// It is a separate function rather than a part of vprint to simplify testing.
template <typename Char>
void write_buffer(std::basic_ostream<Char>& os, buffer<Char>& buf) {
  const Char* buf_data = buf.data();
  using unsigned_streamsize = make_unsigned_t<std::streamsize>;
  unsigned_streamsize size = buf.size();
  unsigned_streamsize max_size = to_unsigned(max_value<std::streamsize>());
  do {
    unsigned_streamsize n = size <= max_size ? size : max_size;
    os.write(buf_data, static_cast<std::streamsize>(n));
    buf_data += n;
    size -= n;
  } while (size != 0);
}

template <typename T> struct streamed_view {
  const T& value;
};
}  // namespace detail

// Formats an object of type T that has an overloaded ostream operator<<.
template <typename Char>
struct basic_ostream_formatter : formatter<basic_string_view<Char>, Char> {
  void set_debug_format() = delete;

  template <typename T, typename Context>
  auto format(const T& value, Context& ctx) const -> decltype(ctx.out()) {
    auto buffer = basic_memory_buffer<Char>();
    auto&& formatbuf = detail::formatbuf<std::basic_streambuf<Char>>(buffer);
    auto&& output = std::basic_ostream<Char>(&formatbuf);
    output.imbue(std::locale::classic());  // The default is always unlocalized.
    output << value;
    output.exceptions(std::ios_base::failbit | std::ios_base::badbit);
    return formatter<basic_string_view<Char>, Char>::format(
        {buffer.data(), buffer.size()}, ctx);
  }
};

using ostream_formatter = basic_ostream_formatter<char>;

template <typename T, typename Char>
struct formatter<detail::streamed_view<T>, Char>
    : basic_ostream_formatter<Char> {
  template <typename Context>
  auto format(detail::streamed_view<T> view, Context& ctx) const
      -> decltype(ctx.out()) {
    return basic_ostream_formatter<Char>::format(view.value, ctx);
  }
};

/**
 * Returns a view that formats `value` via an ostream `operator<<`.
 *
 * **Example**:
 *
 *     fmt::print("Current thread id: {}\n",
 *                fmt::streamed(std::this_thread::get_id()));
 */
template <typename T>
constexpr auto streamed(const T& value) -> detail::streamed_view<T> {
  return {value};
}

inline void vprint(std::ostream& os, string_view fmt, format_args args) {
  auto buffer = memory_buffer();
  detail::vformat_to(buffer, fmt, args);
  FILE* f = nullptr;
#if FMT_MSVC_STL_UPDATE && FMT_USE_RTTI
  if (auto* buf = dynamic_cast<std::filebuf*>(os.rdbuf()))
    f = detail::get_file(*buf);
#elif defined(_WIN32) && defined(__GLIBCXX__) && FMT_USE_RTTI
  auto* rdbuf = os.rdbuf();
  if (auto* sfbuf = dynamic_cast<__gnu_cxx::stdio_sync_filebuf<char>*>(rdbuf))
    f = sfbuf->file();
  else if (auto* fbuf = dynamic_cast<__gnu_cxx::stdio_filebuf<char>*>(rdbuf))
    f = fbuf->file();
#endif
#ifdef _WIN32
  if (f) {
    int fd = _fileno(f);
    if (_isatty(fd)) {
      os.flush();
      if (detail::write_console(fd, {buffer.data(), buffer.size()})) return;
    }
  }
#endif
  detail::ignore_unused(f);
  detail::write_buffer(os, buffer);
}

/**
 * Prints formatted data to the stream `os`.
 *
 * **Example**:
 *
 *     fmt::print(cerr, "Don't {}!", "panic");
 */
FMT_EXPORT template <typename... T>
void print(std::ostream& os, format_string<T...> fmt, T&&... args) {
  fmt::vargs<T...> vargs = {{args...}};
  if (detail::const_check(detail::use_utf8)) return vprint(os, fmt.str, vargs);
  auto buffer = memory_buffer();
  detail::vformat_to(buffer, fmt.str, vargs);
  detail::write_buffer(os, buffer);
}

FMT_EXPORT template <typename... T>
void println(std::ostream& os, format_string<T...> fmt, T&&... args) {
  fmt::print(os, FMT_STRING("{}\n"),
             fmt::format(fmt, std::forward<T>(args)...));
}

FMT_END_NAMESPACE

#endif  // FMT_OSTREAM_H_
