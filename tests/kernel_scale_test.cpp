// Run-twice determinism at scale: the kernel's totally ordered event queue
// (and its pool/compaction machinery) must yield bit-identical trace hashes
// at 64 and 256 ranks — the regime where event records are recycled through
// the freelist millions of times and the dead-entry compactor actually
// fires — for every checkpointing scheme, with and without tracing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/sor.hpp"
#include "des/time.hpp"
#include "harness/experiment.hpp"

namespace chk {
namespace {

using chklib::Scheme;
using des::Duration;

constexpr Scheme kSchemes[] = {Scheme::kCoordNB, Scheme::kCoordNBM, Scheme::kCoordNBMS,
                               Scheme::kIndep, Scheme::kIndepM};

harness::ExperimentResult run_cell(std::size_t ranks, Scheme scheme, bool observe) {
  harness::ExperimentConfig config;
  config.label = "SOR-scale";
  // Small grid, few iterations: the point is many ranks exchanging halos
  // (event volume and churn), not numerical work.
  config.app = apps::make_sor(apps::SorParams{.n = 256, .iterations = 6});
  config.scheme = scheme;
  config.machine.num_nodes = ranks;
  config.seed = 2026;
  config.checkpoints = 2;
  config.interval = Duration::millis(200);
  config.observe = observe;
  return harness::run_experiment(config);
}

class KernelScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelScale, TraceHashBitIdenticalAcrossRunsAndTracing) {
  const std::size_t ranks = GetParam();
  for (Scheme scheme : kSchemes) {
    const std::string what =
        std::string(to_string(scheme)) + " @ " + std::to_string(ranks) + " ranks";
    const auto first = run_cell(ranks, scheme, /*observe=*/false);
    const auto second = run_cell(ranks, scheme, /*observe=*/false);
    EXPECT_EQ(first.trace_hash, second.trace_hash) << what;
    EXPECT_EQ(first.exec_time_s, second.exec_time_s) << what;
    EXPECT_EQ(first.events, second.events) << what;
    // Observation must not perturb the schedule.
    const auto traced = run_cell(ranks, scheme, /*observe=*/true);
    EXPECT_EQ(traced.trace_hash, first.trace_hash) << what << " (traced)";
    EXPECT_EQ(traced.exec_time_s, first.exec_time_s) << what << " (traced)";
    EXPECT_EQ(traced.events, first.events) << what << " (traced)";
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, KernelScale, ::testing::Values(std::size_t{64}, std::size_t{256}),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           return "ranks" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace chk
