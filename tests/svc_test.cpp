// svc workload tests: open-loop determinism, LWW digest invariance across
// all five schemes, latency accounting under frozen windows and recovery,
// the dynamic checkpoint regions that carry the shard, and the bounded
// receive primitive the event loop is built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "chklib/ckpt/registry.hpp"
#include "harness/experiment.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "svc/kvstore.hpp"

namespace {

using namespace chk;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Scheme;

constexpr std::size_t kNodes = 4;
constexpr std::uint64_t kSeed = 2026;

svc::SvcParams small_params() {
  svc::SvcParams p;
  p.keys = 256;
  p.prefill = 64;
  p.arrival_hz = 250.0;
  p.horizon_s = 1.2;
  return p;
}

ExperimentConfig svc_config(const svc::SvcParams& params, Scheme scheme) {
  ExperimentConfig config;
  config.label = "svc";
  config.app = svc::make_svc(params);
  config.scheme = scheme;
  config.interval = des::Duration::seconds(0.3);
  config.checkpoints = 0;  // checkpoint until the service drains
  config.machine.num_nodes = kNodes;
  config.seed = kSeed;
  return config;
}

std::uint64_t count_sum(const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

}  // namespace

TEST(Svc, OpenLoopDeterminism) {
  // Same seed => byte-identical event trace and latency histogram.
  svc::SvcParams params = small_params();
  params.sink = std::make_shared<svc::SvcMetrics>();
  const auto report = harness::check_determinism(svc_config(params, Scheme::kCoordNB));
  EXPECT_TRUE(report.deterministic)
      << report.first.trace_hash << " vs " << report.second.trace_hash;

  // An independent pair of runs with separate sinks: merged metrics match.
  svc::SvcParams pa = small_params();
  pa.sink = std::make_shared<svc::SvcMetrics>();
  svc::SvcParams pb = small_params();
  pb.sink = std::make_shared<svc::SvcMetrics>();
  const ExperimentResult ra = harness::run_experiment(svc_config(pa, Scheme::kIndep));
  const ExperimentResult rb = harness::run_experiment(svc_config(pb, Scheme::kIndep));
  EXPECT_EQ(ra.trace_hash, rb.trace_hash);
  EXPECT_EQ(pa.sink->issued, pb.sink->issued);
  EXPECT_EQ(pa.sink->latency_sum_ns, pb.sink->latency_sum_ns);
  EXPECT_EQ(pa.sink->latency_counts, pb.sink->latency_counts);
}

TEST(Svc, AllSchemesReproduceReferenceDigest) {
  const svc::SvcParams base = small_params();
  const double reference = svc::svc_reference_digest(base, kNodes, kSeed);
  for (const Scheme scheme : {Scheme::kCoordNB, Scheme::kIndep, Scheme::kCoordNBM,
                              Scheme::kIndepM, Scheme::kCoordNBMS}) {
    svc::SvcParams params = base;
    params.sink = std::make_shared<svc::SvcMetrics>();
    const ExperimentResult r = harness::run_experiment(svc_config(params, scheme));
    ASSERT_TRUE(r.digest.has_value()) << to_string(scheme);
    EXPECT_EQ(*r.digest, reference) << to_string(scheme);
    // Open-loop conservation: every generated request completed, and every
    // completion landed in exactly one histogram bucket.
    EXPECT_GT(params.sink->issued, 0u) << to_string(scheme);
    EXPECT_EQ(params.sink->completed, params.sink->issued) << to_string(scheme);
    EXPECT_EQ(count_sum(params.sink->latency_counts), params.sink->completed)
        << to_string(scheme);
    EXPECT_EQ(params.sink->issued,
              params.sink->gets + params.sink->puts + params.sink->deletes)
        << to_string(scheme);
  }
}

TEST(Svc, CheckpointImageTracksShardGrowth) {
  // The shard's registered size moves with the put/delete mix: the
  // per-capture image log is a measured curve, not a constant.
  svc::SvcParams params = small_params();
  const ExperimentResult r = harness::run_experiment(svc_config(params, Scheme::kCoordNB));
  ASSERT_FALSE(r.image_log.empty());
  std::set<std::uint64_t> sizes;
  for (const chklib::ProtocolStats::ImageRecord& img : r.image_log) {
    EXPECT_LT(img.rank, kNodes);
    EXPECT_GT(img.bytes, 0u);
    sizes.insert(img.bytes);
  }
  EXPECT_GT(sizes.size(), 1u) << "every capture had identical bytes";
}

TEST(Svc, FrozenWindowLandsInLatencyTail) {
  // Freeze every rank's application gate for a window mid-run (no
  // checkpointing scheme — the window is the isolated variable). Requests
  // scheduled during the freeze are served late; the open-loop measurement
  // must charge that wait to the tail and to the svc_queue_wait bucket.
  svc::SvcParams params = small_params();
  params.sink = std::make_shared<svc::SvcMetrics>();
  const double reference = svc::svc_reference_digest(params, kNodes, kSeed);

  des::Simulator sim;
  xplorer::MachineConfig machine = xplorer::MachineConfig::parsytec_xplorer();
  machine.num_nodes = kNodes;
  chklib::Runtime runtime(sim, machine, kSeed);
  obs::Tracer tracer;
  runtime.set_tracer(&tracer);
  runtime.set_app("svc", svc::make_svc(params));
  const auto freeze_at = des::TimePoint::origin() + des::Duration::seconds(0.5);
  const auto thaw_at = des::TimePoint::origin() + des::Duration::seconds(0.8);
  (void)sim.schedule_at(freeze_at, [&runtime] {
    for (std::size_t r = 0; r < kNodes; ++r) runtime.comm().endpoint(r).gate().freeze();
  });
  (void)sim.schedule_at(thaw_at, [&runtime] {
    for (std::size_t r = 0; r < kNodes; ++r) runtime.comm().endpoint(r).gate().unfreeze();
  });
  runtime.start_apps();
  runtime.run_to_completion();

  ASSERT_TRUE(runtime.result_digest().has_value());
  EXPECT_EQ(*runtime.result_digest(), reference);
  EXPECT_EQ(params.sink->completed, params.sink->issued);
  // A request scheduled right as the freeze began waited ~the whole window.
  EXPECT_GE(params.sink->latency_max_ns, std::uint64_t{200'000'000});
  const obs::AttributionReport attrib = obs::attribute(tracer.take(), kNodes);
  EXPECT_GT(attrib.total.svc_queue_wait_s, 0.2);
  EXPECT_GT(attrib.total.frozen_stall_s, 0.0);
}

TEST(Svc, RecoveryDowntimeLandsInLatencyTail) {
  // A failure mid-run: the service must drain to the same digest, and a
  // request scheduled before the crash completes only after the recovery
  // window — the measured tail is at least the downtime.
  svc::SvcParams params = small_params();
  params.sink = std::make_shared<svc::SvcMetrics>();
  const double reference = svc::svc_reference_digest(params, kNodes, kSeed);
  ExperimentConfig config = svc_config(params, Scheme::kCoordNB);
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(0.7), 1};
  const ExperimentResult r = harness::run_experiment(config);
  ASSERT_TRUE(r.digest.has_value());
  EXPECT_EQ(*r.digest, reference);
  ASSERT_EQ(r.recoveries.size(), 1u);
  const auto downtime_ns =
      static_cast<std::uint64_t>(r.recoveries[0].recovery_latency.to_nanos());
  EXPECT_GT(downtime_ns, 0u);
  EXPECT_EQ(params.sink->completed, params.sink->issued);
  EXPECT_GE(params.sink->latency_max_ns, downtime_ns);
}

TEST(Svc, OwnerPartitionIsTotalAndSpread) {
  std::vector<std::uint64_t> per_rank(kNodes, 0);
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const std::size_t owner = svc::svc_owner(key, kNodes);
    ASSERT_LT(owner, kNodes);
    ++per_rank[owner];
  }
  for (const std::uint64_t n : per_rank) EXPECT_GT(n, 4096u / kNodes / 2);
}

TEST(DynamicRegions, VectorRoundTripGrowShrink) {
  chklib::CheckpointRegistry reg;
  std::vector<std::uint64_t> v{1, 2, 3};
  reg.register_dynamic_vector("v", v);
  const std::vector<std::byte> at3 = reg.capture();
  v.assign({9, 8, 7, 6, 5});
  const std::vector<std::byte> at5 = reg.capture();
  EXPECT_EQ(at5.size(), at3.size() + 2 * sizeof(std::uint64_t));

  reg.restore(at3);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
  reg.restore(at5);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{9, 8, 7, 6, 5}));

  v.clear();
  reg.restore(at3);  // restore into an emptied vector resizes it back
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(DynamicRegions, RestoreRejectsMisalignedBytes) {
  chklib::CheckpointRegistry a;
  std::vector<std::byte> raw{std::byte{1}, std::byte{2}, std::byte{3}};
  a.register_dynamic_vector("r", raw);
  const std::vector<std::byte> blob = a.capture();

  chklib::CheckpointRegistry b;
  std::vector<std::uint64_t> wide;
  b.register_dynamic_vector("r", wide);  // 3 bytes is not a multiple of 8
  EXPECT_THROW(b.restore(blob), chklib::RegistryError);
}

TEST(RecvUntil, DeadlineMessageAndPastDeadline) {
  des::Simulator sim;
  xplorer::MachineConfig machine = xplorer::MachineConfig::parsytec_xplorer();
  machine.num_nodes = 2;
  chklib::Runtime runtime(sim, machine, 7);
  runtime.set_app("recv_until", [](chklib::AppContext& ctx) {
    const auto t0 = des::TimePoint::origin();
    if (ctx.rank() == 0) {
      // No sender yet: times out exactly at the deadline.
      const auto none = ctx.recv_until(t0 + des::Duration::millis(1));
      EXPECT_FALSE(none.has_value());
      EXPECT_EQ(ctx.now().to_nanos(), des::Duration::millis(1).to_nanos());
      // Deadline already in the past, no message: immediate nullopt.
      const auto past = ctx.recv_until(t0);
      EXPECT_FALSE(past.has_value());
      EXPECT_EQ(ctx.now().to_nanos(), des::Duration::millis(1).to_nanos());
      // A message lands well before this deadline: delivered, not timed out.
      const auto some = ctx.recv_until(t0 + des::Duration::secs(30));
      ASSERT_TRUE(some.has_value());
      EXPECT_EQ(some->tag, 7);
      EXPECT_LT(ctx.now().to_nanos(), des::Duration::secs(30).to_nanos());
      // FIFO: after the barrier the tag-8 message (sent before the peer
      // entered the barrier) has certainly arrived — a deadline in the
      // past must still deliver an already-queued message.
      ctx.barrier();
      const auto queued = ctx.recv_until(t0, 1, 8);
      ASSERT_TRUE(queued.has_value());
      EXPECT_EQ(queued->tag, 8);
    } else {
      ctx.compute(2000.0);  // ~a few ms of simulated work before sending
      ctx.send_value(0, 7, std::uint64_t{42});
      ctx.send_value(0, 8, std::uint64_t{43});
      ctx.barrier();
    }
  });
  runtime.start_apps();
  runtime.run_to_completion();
}
