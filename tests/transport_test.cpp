// Tests for the unreliable-link model, the reliable FIFO transport and the
// checkpoint-round watchdogs.
//
//   * determinism guard: with faults disabled, trace hashes and completion
//     times are bit-identical to the pre-transport baselines (the fault
//     model and transport are zero-overhead when off);
//   * fault-model validation: out-of-range probabilities and negative
//     delays are rejected with clear errors;
//   * exactly-once FIFO: under heavy drop/duplicate/corrupt rates the
//     transport repairs every channel — the application digest matches the
//     perfect-link run and the invariant monitor sees a loss-free FIFO
//     stream above the transport;
//   * control-plane loss: a dropped channel marker, ack, commit or stagger
//     token is repaired by retransmission (transport on) or by the round /
//     token watchdogs (transport off) for every coordinated scheme;
//   * acceptance sweep: every paper scheme completes the workload under
//     heavy link faults with digests intact.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/gauss.hpp"
#include "apps/nqueens.hpp"
#include "apps/sor.hpp"
#include "chklib/comm/link_fault.hpp"
#include "chklib/proto/coordinated.hpp"
#include "chklib/runtime.hpp"
#include "chklib/verify/monitor.hpp"
#include "des/simulator.hpp"
#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "util/rng.hpp"

namespace chk {
namespace {

using chklib::ControlKind;
using chklib::ControlMsg;
using chklib::LinkFaultConfig;
using chklib::LinkFaultModel;
using chklib::Rank;
using chklib::Scheme;
using chklib::verify::Monitor;
using chklib::verify::Policy;
using des::Duration;

// ---------------------------------------------------------------------------
// Determinism guard: faults off => bit-identical to the pre-transport repo.
// ---------------------------------------------------------------------------

struct PinnedRow {
  const char* label;
  Scheme scheme;
  std::uint64_t trace_hash;
  double exec_time_s;
};

// Captured on the tree immediately before the transport layer landed
// (seed 2026, 8 nodes, 3 checkpoints, 3 s interval). Any drift here means
// the fault model or transport perturbs fault-free executions.
const PinnedRow kPinned[] = {
    {"SOR-384", Scheme::kNone, 0x48cbdcb214e83a01ull, 16.569530568000001},
    {"SOR-384", Scheme::kCoordNB, 0xd93ccedafd07f2bfull, 19.73585765},
    {"SOR-384", Scheme::kCoordNBM, 0xff1f9d266946e0e1ull, 18.087658350000002},
    {"SOR-384", Scheme::kCoordNBMS, 0x61f27678c952f6d0ull, 17.197612419000002},
    {"SOR-384", Scheme::kIndep, 0xc1ebb057981c7b23ull, 20.372140246000001},
    {"SOR-384", Scheme::kIndepM, 0x4f07c72445cb8dbfull, 17.642822625000001},
    {"NQUEENS-14", Scheme::kCoordNBMS, 0x545b6cd50cd8a4edull, 50.346957506000003},
};

TEST(DeterminismGuard, FaultFreeTracesMatchPreTransportBaselines) {
  for (const PinnedRow& row : kPinned) {
    harness::ExperimentConfig config;
    config.label = row.label;
    config.app = harness::find_row(row.label).app;
    config.scheme = row.scheme;
    config.machine.num_nodes = 8;
    config.seed = 2026;
    config.checkpoints = 3;
    config.interval = Duration::secs(3);
    const auto result = harness::run_experiment(config);
    const std::string what =
        std::string(row.label) + " + " + std::string(to_string(row.scheme));
    EXPECT_EQ(result.trace_hash, row.trace_hash) << what;
    EXPECT_EQ(result.exec_time_s, row.exec_time_s) << what;
    EXPECT_EQ(result.retransmits, 0u) << what;
    EXPECT_EQ(result.link_drops, 0u) << what;
    EXPECT_EQ(result.aborted_rounds, 0u) << what;
  }
}

// ---------------------------------------------------------------------------
// Fault-model validation.
// ---------------------------------------------------------------------------

TEST(LinkFaults, RejectsOutOfRangeProbabilities) {
  LinkFaultConfig config;
  config.drop = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.drop = 1.0;  // certain loss can never be repaired
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.drop = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.drop = 0.0;
  config.duplicate = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.duplicate = 0.0;
  config.corrupt = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.corrupt = 0.0;
  config.delay_prob = 1.25;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(LinkFaults, RejectsNegativeDelays) {
  LinkFaultConfig config;
  config.delay_mean_s = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.delay_mean_s = 1e-3;
  config.dup_lag_mean_s = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(LinkFaults, ModelConstructorValidatesToo) {
  LinkFaultConfig config;
  config.corrupt = 7.0;
  EXPECT_THROW(LinkFaultModel(config, util::Rng(1)), std::invalid_argument);
}

TEST(LinkFaults, ValidConfigsPass) {
  LinkFaultConfig config;
  EXPECT_NO_THROW(config.validate());  // all-zero = disabled
  EXPECT_FALSE(config.enabled());
  config.drop = 0.2;
  config.duplicate = 0.1;
  config.corrupt = 0.05;
  config.delay_prob = 0.999;
  EXPECT_NO_THROW(config.validate());
  EXPECT_TRUE(config.enabled());
}

// ---------------------------------------------------------------------------
// Exactly-once FIFO delivery over heavily faulted links.
// ---------------------------------------------------------------------------

harness::ExperimentConfig lossy_sor(Scheme scheme) {
  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.interval = Duration::millis(200);
  config.checkpoints = 0;
  config.verify = true;
  LinkFaultConfig faults;
  faults.drop = 0.2;
  faults.duplicate = 0.1;
  faults.corrupt = 0.05;
  config.link_faults = faults;
  return config;
}

TEST(Transport, ExactlyOnceUnderHeavyFaults) {
  auto config = lossy_sor(Scheme::kCoordNB);
  const auto clean = harness::run_normal(config);  // resets link faults too
  ASSERT_TRUE(clean.digest.has_value());
  EXPECT_EQ(clean.retransmits, 0u);

  const auto faulted = harness::run_experiment(config);
  EXPECT_EQ(faulted.digest, clean.digest)
      << "lossy links changed the application's answer";
  EXPECT_EQ(faulted.invariant_violations, 0u);
  EXPECT_GT(faulted.invariant_checks, 0u);
  EXPECT_GT(faulted.link_drops, 0u);
  EXPECT_GT(faulted.link_duplicates, 0u);
  EXPECT_GT(faulted.link_corrupted, 0u);
  EXPECT_GT(faulted.retransmits, 0u);
  EXPECT_GT(faulted.dups_suppressed, 0u);
  EXPECT_GT(faulted.corrupt_detected, 0u);
  EXPECT_GT(faulted.committed_rounds, 0u);
}

TEST(Transport, FaultedRunsAreDeterministic) {
  const auto report = harness::check_determinism(lossy_sor(Scheme::kCoordNBM));
  EXPECT_TRUE(report.deterministic);
  EXPECT_NE(report.first.trace_hash, 0u);
  EXPECT_GT(report.first.retransmits, 0u);
}

TEST(Transport, FaultStreamVariesTheLossRealization) {
  auto config = lossy_sor(Scheme::kCoordNB);
  const auto a = harness::run_experiment(config);
  config.link_faults->stream = 7;
  const auto b = harness::run_experiment(config);
  EXPECT_EQ(a.digest, b.digest);          // the answer is loss-free either way
  EXPECT_NE(a.trace_hash, b.trace_hash);  // the loss schedule is not
}

// ---------------------------------------------------------------------------
// Control-plane loss: first-copy drops repaired by retransmission.
// ---------------------------------------------------------------------------

// Toy SPMD ring application (same shape as verify_test's): deterministic,
// message-per-iteration, digest-sensitive to any channel anomaly.
struct RingState {
  std::uint32_t iter = 0;
  std::uint64_t acc = 0;
};

chklib::AppFn make_ring_app(std::uint32_t iterations, double flops_per_iter) {
  return [iterations, flops_per_iter](chklib::AppContext& ctx) {
    auto& st = ctx.state<RingState>();
    if (ctx.fresh()) st = RingState{};
    ctx.register_value("iter", st.iter);
    ctx.register_value("acc", st.acc);
    ctx.ready();
    const Rank right = (ctx.rank() + 1) % ctx.nprocs();
    for (; st.iter < iterations; ++st.iter) {
      ctx.checkpoint_here();
      ctx.compute(flops_per_iter);
      ctx.send_value<std::uint32_t>(right, 1, st.iter);
      st.acc += ctx.recv_value<std::uint32_t>(chklib::kAnySource, 1);
    }
    const double digest = ctx.allreduce_sum(static_cast<double>(st.acc) +
                                            static_cast<double>(ctx.rank()));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

struct World {
  des::Simulator sim;
  std::unique_ptr<chklib::Runtime> rt;

  explicit World(std::size_t nodes = 8, std::uint64_t seed = 42) {
    auto mc = xplorer::MachineConfig::parsytec_xplorer();
    mc.num_nodes = nodes;
    rt = std::make_unique<chklib::Runtime>(sim, mc, seed);
  }
};

/// Runs a coordinated scheme over the reliable transport with the FIRST
/// control frame matching `kind` swallowed by the link; the transport's
/// retransmission must deliver the second copy and the run must commit.
void run_first_copy_drop(Scheme scheme, ControlKind kind) {
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  w.rt->comm().enable_transport();
  bool dropped = false;
  w.rt->comm().set_control_drop_filter([&dropped, kind](const ControlMsg& msg) {
    if (!dropped && msg.kind == kind) {
      dropped = true;
      return true;
    }
    return false;
  });
  chklib::CoordinatedProtocol proto(
      *w.rt, {.scheme = scheme, .interval = Duration::secs(8), .rounds = 2});
  Monitor monitor(*w.rt, Monitor::options_for(scheme, Policy::kRecord));
  monitor.install();
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  const std::string what = std::string(to_string(scheme)) + " losing control kind " +
                           std::to_string(static_cast<int>(kind));
  EXPECT_TRUE(dropped) << what << ": the filter never fired";
  EXPECT_GE(proto.stats().committed_rounds, 1u) << what;
  EXPECT_EQ(proto.stats().aborted_rounds, 0u)
      << what << ": retransmission, not the watchdog, should repair this";
  EXPECT_EQ(monitor.violations(), 0u) << what;
  EXPECT_GT(w.rt->comm().retransmits(), 0u) << what;
}

TEST(ControlLoss, DroppedMarkerIsRetransmitted) {
  for (Scheme scheme : {Scheme::kCoordNB, Scheme::kCoordNBM, Scheme::kCoordNBMS}) {
    run_first_copy_drop(scheme, ControlKind::kChannelMarker);
  }
}

TEST(ControlLoss, DroppedAckIsRetransmitted) {
  for (Scheme scheme : {Scheme::kCoordNB, Scheme::kCoordNBM, Scheme::kCoordNBMS}) {
    run_first_copy_drop(scheme, ControlKind::kCkptAck);
  }
}

TEST(ControlLoss, DroppedCommitIsRetransmitted) {
  for (Scheme scheme : {Scheme::kCoordNB, Scheme::kCoordNBM, Scheme::kCoordNBMS}) {
    run_first_copy_drop(scheme, ControlKind::kCommit);
  }
}

TEST(ControlLoss, DroppedStaggerTokenIsRetransmitted) {
  run_first_copy_drop(Scheme::kCoordNBMS, ControlKind::kToken);
}

// ---------------------------------------------------------------------------
// Watchdogs: recovery when there is no transport to retransmit.
// ---------------------------------------------------------------------------

TEST(Watchdog, RoundAbortRecoversALostAck) {
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  // No transport: rank 3's epoch-1 ack is gone for good; only the round
  // watchdog can unwedge the coordinator.
  w.rt->comm().set_control_drop_filter([](const ControlMsg& msg) {
    return msg.kind == ControlKind::kCkptAck && msg.src == 3 && msg.epoch == 1;
  });
  chklib::CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNB,
                                            .interval = Duration::secs(8),
                                            .rounds = 2,
                                            .round_timeout = Duration::secs(2)});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_GE(proto.stats().aborted_rounds, 1u);
  EXPECT_GE(proto.stats().committed_rounds, 1u);
  EXPECT_GE(proto.committed_epoch(), 2u) << "the re-initiated round never committed";
}

TEST(Watchdog, TokenRegenerationRecoversALostRingToken) {
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  // Swallow the first ring token rank 2 passes to rank 3 (no transport):
  // the stagger ring stalls mid-round until the token watchdog re-issues
  // the token toward the next expected holder. The round watchdog is armed
  // far looser as a backstop — it must NOT fire.
  bool dropped = false;
  w.rt->comm().set_control_drop_filter([&dropped](const ControlMsg& msg) {
    if (!dropped && msg.kind == ControlKind::kToken && msg.src == 2) {
      dropped = true;
      return true;
    }
    return false;
  });
  chklib::CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNBMS,
                                            .interval = Duration::secs(8),
                                            .rounds = 2,
                                            .round_timeout = Duration::secs(5),
                                            .token_timeout = Duration::millis(500)});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_TRUE(dropped);
  EXPECT_GE(proto.stats().tokens_regenerated, 1u);
  EXPECT_EQ(proto.stats().aborted_rounds, 0u)
      << "the token watchdog should repair the ring without a round abort";
  EXPECT_GE(proto.stats().committed_rounds, 2u);
}

TEST(Watchdog, QuietRoundsNeverTimeOut) {
  // Perfect links, watchdogs armed: no aborts, no regenerated tokens, and
  // the protocol commits normally (the watchdogs are pure insurance).
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  chklib::CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNBMS,
                                            .interval = Duration::secs(8),
                                            .rounds = 2,
                                            .round_timeout = Duration::secs(30),
                                            .token_timeout = Duration::secs(5)});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_EQ(proto.stats().aborted_rounds, 0u);
  EXPECT_EQ(proto.stats().tokens_regenerated, 0u);
  EXPECT_GE(proto.stats().committed_rounds, 2u);
}

// ---------------------------------------------------------------------------
// Acceptance sweep: every paper scheme, heavy faults, digests intact.
// ---------------------------------------------------------------------------

TEST(Acceptance, EverySchemeCompletesUnderHeavyFaults) {
  struct Entry {
    const char* label;
    chklib::AppFn app;
  };
  std::vector<Entry> catalog;
  catalog.push_back({"SOR", apps::make_sor({.n = 96, .iterations = 80})});
  catalog.push_back({"GAUSS", apps::make_gauss({.n = 96})});
  catalog.push_back({"NQUEENS", apps::make_nqueens({.n = 9})});
  const Scheme schemes[] = {Scheme::kCoordNB, Scheme::kCoordNBM, Scheme::kCoordNBMS,
                            Scheme::kIndep, Scheme::kIndepM};
  for (const Entry& entry : catalog) {
    harness::ExperimentConfig config;
    config.label = entry.label;
    config.app = entry.app;
    config.verify = true;
    const auto normal = harness::run_normal(config);
    ASSERT_TRUE(normal.digest.has_value()) << entry.label;

    config.interval = Duration::seconds(normal.exec_time_s / 3.0);
    config.checkpoints = 2;
    LinkFaultConfig faults;
    faults.drop = 0.2;
    faults.duplicate = 0.1;
    faults.corrupt = 0.05;
    config.link_faults = faults;
    for (Scheme scheme : schemes) {
      config.scheme = scheme;
      const auto result = harness::run_experiment(config);
      const std::string what =
          std::string(entry.label) + " + " + std::string(to_string(scheme));
      EXPECT_EQ(result.digest, normal.digest) << what;
      EXPECT_GT(result.local_checkpoints, 0u) << what;
      EXPECT_EQ(result.invariant_violations, 0u) << what;
      EXPECT_GT(result.retransmits, 0u) << what;
    }
  }
}

}  // namespace
}  // namespace chk
