// Unit tests for the discrete-event kernel: event ordering, process
// lifecycle, kill semantics, synchronization primitives, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "des/async.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"
#include "des/sync.hpp"
#include "des/time.hpp"

namespace chk::des {
namespace {

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(Duration::millis(3).to_nanos(), 3'000'000);
  EXPECT_EQ((Duration::secs(1) + Duration::millis(500)).to_seconds(), 1.5);
  EXPECT_EQ(Duration::seconds(2.5).to_nanos(), 2'500'000'000);
  EXPECT_LT(Duration::micros(1), Duration::millis(1));
  EXPECT_EQ(Duration::millis(10) / Duration::millis(5), 2.0);
  EXPECT_EQ(Duration::millis(9).scaled(2.0), Duration::millis(18));
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::origin() + Duration::secs(3);
  EXPECT_EQ(t.to_seconds(), 3.0);
  EXPECT_EQ(t - TimePoint::origin(), Duration::secs(3));
  EXPECT_EQ((t - Duration::secs(1)).to_seconds(), 2.0);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::origin() + Duration::millis(20), [&] { order.push_back(2); });
  sim.schedule_at(TimePoint::origin() + Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::origin() + Duration::millis(30), [&] { order.push_back(3); });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(30));
}

TEST(Simulator, EqualTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = TimePoint::origin() + Duration::millis(5);
  for (int i = 0; i < 10; ++i) sim.schedule_at(t, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_after(Duration::millis(10), [&] {
    EXPECT_THROW(sim.schedule_at(TimePoint::origin(), [] {}), SimError);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.schedule_after(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, HandleNotPendingAfterRun) {
  Simulator sim;
  auto handle = sim.schedule_after(Duration::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int count = 0;
  // self-rescheduling ticker
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_after(Duration::millis(10), tick);
  };
  sim.schedule_after(Duration::millis(10), tick);
  const auto result = sim.run(TimePoint::origin() + Duration::millis(55));
  EXPECT_EQ(result.reason, StopReason::kTimeLimit);
  EXPECT_EQ(count, 5);
  // continuing picks up where we left off
  const auto result2 = sim.run(TimePoint::origin() + Duration::millis(105));
  EXPECT_EQ(result2.reason, StopReason::kTimeLimit);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventLimitStops) {
  Simulator sim;
  std::function<void()> tick = [&] { sim.schedule_after(Duration::millis(1), tick); };
  sim.schedule_now(tick);
  const auto result = sim.run(TimePoint::max(), 100);
  EXPECT_EQ(result.reason, StopReason::kEventLimit);
  EXPECT_EQ(result.events_executed, 100u);
}

TEST(Simulator, StopRequest) {
  Simulator sim;
  sim.schedule_after(Duration::millis(1), [&] { sim.stop(); });
  sim.schedule_after(Duration::millis(2), [] { FAIL() << "should not run"; });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kStopped);
}

TEST(Process, BodyRunsAndAdvancesTime) {
  Simulator sim;
  std::vector<double> timestamps;
  sim.spawn("p", [&](Process& self) {
    timestamps.push_back(self.now().to_seconds());
    self.delay(Duration::secs(2));
    timestamps.push_back(self.now().to_seconds());
    self.delay(Duration::millis(500));
    timestamps.push_back(self.now().to_seconds());
  });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  ASSERT_EQ(timestamps.size(), 3u);
  EXPECT_DOUBLE_EQ(timestamps[0], 0.0);
  EXPECT_DOUBLE_EQ(timestamps[1], 2.0);
  EXPECT_DOUBLE_EQ(timestamps[2], 2.5);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn("a", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      log.push_back(std::string("a") + std::to_string(i));
      self.delay(Duration::millis(10));
    }
  });
  sim.spawn("b", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      log.push_back(std::string("b") + std::to_string(i));
      self.delay(Duration::millis(15));
    }
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Process, SpawnAtDelaysStart) {
  Simulator sim;
  double started = -1;
  sim.spawn_at(TimePoint::origin() + Duration::secs(5), "late",
               [&](Process& self) { started = self.now().to_seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(started, 5.0);
}

TEST(Process, UncaughtExceptionIsRecorded) {
  Simulator sim;
  auto& proc = sim.spawn("bad", [](Process&) { throw std::runtime_error("boom"); });
  sim.run();
  EXPECT_TRUE(proc.finished());
  EXPECT_EQ(proc.error(), "boom");
}

TEST(Process, KillWhileBlockedUnwindsRaii) {
  Simulator sim;
  bool cleaned_up = false;
  bool after_delay = false;
  auto& victim = sim.spawn("victim", [&](Process& self) {
    struct Guard {
      bool* flag;
      ~Guard() { *flag = true; }
    } guard{&cleaned_up};
    self.delay(Duration::secs(100));
    after_delay = true;
  });
  sim.schedule_after(Duration::secs(1), [&] { sim.kill(victim); });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  EXPECT_TRUE(victim.finished());
  EXPECT_TRUE(cleaned_up);
  EXPECT_FALSE(after_delay);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::secs(1));
}

TEST(Process, KillBeforeStartPreventsBody) {
  Simulator sim;
  bool ran = false;
  auto& victim = sim.spawn_at(TimePoint::origin() + Duration::secs(10), "victim",
                              [&](Process&) { ran = true; });
  sim.schedule_after(Duration::secs(1), [&] { sim.kill(victim); });
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(victim.finished());
}

TEST(Process, SelfKillThrows) {
  Simulator sim;
  bool after = false;
  auto& victim = sim.spawn("self", [&](Process& self) {
    self.sim().kill(self);
    after = true;
  });
  sim.run();
  EXPECT_TRUE(victim.finished());
  EXPECT_FALSE(after);
  EXPECT_TRUE(victim.error().empty());  // ProcessKilled is not an error
}

TEST(Process, KillFinishedIsNoop) {
  Simulator sim;
  auto& proc = sim.spawn("done", [](Process&) {});
  sim.run();
  EXPECT_TRUE(proc.finished());
  sim.kill(proc);  // must not throw or deadlock
  sim.run();
}

TEST(Process, DestructorTearsDownBlockedProcesses) {
  bool cleaned_up = false;
  {
    Simulator sim;
    sim.spawn("stuck", [&](Process& self) {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } guard{&cleaned_up};
      self.delay(Duration::secs(1000));
    });
    sim.run(TimePoint::origin() + Duration::secs(1));
    // sim destroyed with the process still blocked
  }
  EXPECT_TRUE(cleaned_up);
}

TEST(Semaphore, BlocksUntilRelease) {
  Simulator sim;
  SimSemaphore sem(sim, 0);
  std::vector<std::string> log;
  sim.spawn("waiter", [&](Process& self) {
    log.push_back(std::string("wait@") + std::to_string(self.now().to_nanos()));
    sem.acquire(self);
    log.push_back(std::string("got@") + std::to_string(self.now().to_nanos()));
  });
  sim.spawn("poster", [&](Process& self) {
    self.delay(Duration::nanos(50));
    sem.release();
  });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "got@50");
}

TEST(Semaphore, InitialCountAdmitsWithoutBlocking) {
  Simulator sim;
  SimSemaphore sem(sim, 2);
  int acquired = 0;
  sim.spawn("p", [&](Process& self) {
    sem.acquire(self);
    sem.acquire(self);
    acquired = 2;
    EXPECT_FALSE(sem.try_acquire());
  });
  sim.run();
  EXPECT_EQ(acquired, 2);
}

TEST(Semaphore, FifoWakeOrder) {
  Simulator sim;
  SimSemaphore sem(sim, 0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn_at(TimePoint::origin() + Duration::millis(i), std::string("w") + std::to_string(i),
                 [&, i](Process& self) {
                   sem.acquire(self);
                   order.push_back(i);
                 });
  }
  sim.schedule_after(Duration::secs(1), [&] { sem.release(); sem.release(); sem.release(); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Semaphore, KilledWaiterDoesNotConsumeUnit) {
  Simulator sim;
  SimSemaphore sem(sim, 0);
  bool second_got = false;
  auto& first = sim.spawn("first", [&](Process& self) { sem.acquire(self); });
  sim.spawn_at(TimePoint::origin() + Duration::millis(1), "second", [&](Process& self) {
    sem.acquire(self);
    second_got = true;
  });
  sim.schedule_after(Duration::millis(2), [&] { sim.kill(first); });
  sim.schedule_after(Duration::millis(3), [&] { sem.release(); });
  sim.run();
  EXPECT_TRUE(second_got);
  EXPECT_EQ(sem.count(), 0);
}

TEST(Mailbox, DeliversInOrder) {
  Simulator sim;
  SimMailbox<int> box(sim);
  std::vector<int> received;
  sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 3; ++i) received.push_back(box.recv(self));
  });
  sim.spawn("tx", [&](Process& self) {
    for (int i = 1; i <= 3; ++i) {
      box.send(i * 10);
      self.delay(Duration::millis(1));
    }
  });
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, TryRecvNonBlocking) {
  Simulator sim;
  SimMailbox<int> box(sim);
  sim.spawn("p", [&](Process&) {
    EXPECT_FALSE(box.try_recv().has_value());
    box.send(5);
    auto v = box.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5);
  });
  sim.run();
}

TEST(Mailbox, ClearDropsQueued) {
  Simulator sim;
  SimMailbox<int> box(sim);
  sim.spawn("p", [&](Process&) {
    box.send(1);
    box.send(2);
    box.clear();
    EXPECT_TRUE(box.empty());
  });
  sim.run();
}

TEST(Mailbox, KilledReceiverLeavesMessageForOthers) {
  Simulator sim;
  SimMailbox<int> box(sim);
  int got = 0;
  auto& victim = sim.spawn("victim", [&](Process& self) { got = box.recv(self) * 100; });
  sim.spawn_at(TimePoint::origin() + Duration::millis(1), "other",
               [&](Process& self) { got = box.recv(self); });
  sim.schedule_after(Duration::millis(2), [&] { sim.kill(victim); });
  sim.schedule_after(Duration::millis(3), [&] { box.send(7); });
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(Barrier, ReleasesAllTogether) {
  Simulator sim;
  SimBarrier barrier(sim, 3);
  std::vector<double> release_times;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(std::string("p") + std::to_string(i), [&, i](Process& self) {
      self.delay(Duration::millis(10 * (i + 1)));
      barrier.arrive_and_wait(self);
      release_times.push_back(self.now().to_seconds());
    });
  }
  sim.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (double t : release_times) EXPECT_DOUBLE_EQ(t, 0.030);
}

TEST(Barrier, Reusable) {
  Simulator sim;
  SimBarrier barrier(sim, 2);
  int rounds_done = 0;
  for (int p = 0; p < 2; ++p) {
    sim.spawn(std::string("p") + std::to_string(p), [&, p](Process& self) {
      for (int round = 0; round < 5; ++round) {
        self.delay(Duration::millis(p == 0 ? 3 : 7));
        barrier.arrive_and_wait(self);
      }
      ++rounds_done;
    });
  }
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  EXPECT_EQ(rounds_done, 2);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 0.035);
}

TEST(Resource, SerializesUsers) {
  Simulator sim;
  SimResource res(sim, "disk");
  std::vector<double> done_times;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(std::string("u") + std::to_string(i), [&](Process& self) {
      res.use(self, Duration::secs(1));
      done_times.push_back(self.now().to_seconds());
    });
  }
  sim.run();
  ASSERT_EQ(done_times.size(), 3u);
  EXPECT_DOUBLE_EQ(done_times[0], 1.0);
  EXPECT_DOUBLE_EQ(done_times[1], 2.0);
  EXPECT_DOUBLE_EQ(done_times[2], 3.0);
  EXPECT_DOUBLE_EQ(res.busy_time().to_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(res.queue_time().to_seconds(), 3.0);  // 0 + 1 + 2
}

TEST(Resource, KilledHolderReleases) {
  Simulator sim;
  SimResource res(sim, "r");
  bool second_done = false;
  auto& holder = sim.spawn("holder", [&](Process& self) { res.use(self, Duration::secs(100)); });
  sim.spawn_at(TimePoint::origin() + Duration::millis(1), "second", [&](Process& self) {
    res.use(self, Duration::secs(1));
    second_done = true;
  });
  sim.schedule_after(Duration::secs(2), [&] { sim.kill(holder); });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  EXPECT_TRUE(second_done);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.0);
}

TEST(Completion, AwaitBlocksUntilCallback) {
  Simulator sim;
  Completion done(sim);
  double when = -1;
  sim.spawn("p", [&](Process& self) {
    done.await(self);
    when = self.now().to_seconds();
  });
  sim.schedule_after(Duration::secs(3), done.callback());
  sim.run();
  EXPECT_DOUBLE_EQ(when, 3.0);
}

TEST(Completion, LateCallbackAfterKillIsSafe) {
  Simulator sim;
  Completion done(sim);
  auto& victim = sim.spawn("p", [&](Process& self) { done.await(self); });
  sim.schedule_after(Duration::secs(1), [&] { sim.kill(victim); });
  sim.schedule_after(Duration::secs(2), done.callback());
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  EXPECT_TRUE(victim.finished());
}

TEST(Simulator, DeadlockDetected) {
  Simulator sim;
  SimSemaphore sem(sim, 0);
  sim.spawn("stuck", [&](Process& self) { sem.acquire(self); });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kDeadlock);
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    SimMailbox<int> box(sim);
    std::vector<std::int64_t> trace;
    sim.spawn("a", [&](Process& self) {
      for (int i = 0; i < 50; ++i) {
        self.delay(Duration::micros(7));
        box.send(i);
        trace.push_back(self.now().to_nanos());
      }
    });
    sim.spawn("b", [&](Process& self) {
      for (int i = 0; i < 50; ++i) {
        trace.push_back(static_cast<std::int64_t>(box.recv(self)));
        self.delay(Duration::micros(3));
      }
    });
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// EventHandle semantics during the event's own callback (pinned contract:
// the event is consumed before the callback is invoked).
// ---------------------------------------------------------------------------

TEST(EventHandle, NotPendingInsideOwnCallback) {
  Simulator sim;
  EventHandle handle;
  bool checked = false;
  handle = sim.schedule_after(Duration::millis(1), [&] {
    EXPECT_FALSE(handle.pending());
    checked = true;
  });
  EXPECT_TRUE(handle.pending());
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(EventHandle, CancelInsideOwnCallbackIsNoop) {
  Simulator sim;
  EventHandle handle;
  int self_runs = 0;
  int later_runs = 0;
  handle = sim.schedule_after(Duration::millis(1), [&] {
    ++self_runs;
    handle.cancel();  // must not disturb the kernel or any other event
  });
  sim.schedule_after(Duration::millis(2), [&] { ++later_runs; });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
  EXPECT_EQ(self_runs, 1);
  EXPECT_EQ(later_runs, 1);
}

TEST(EventHandle, RearmedFromOwnCallbackGetsFreshHandle) {
  Simulator sim;
  EventHandle handle;
  int runs = 0;
  // A self-re-arming timer: the stale handle is dead inside the callback,
  // but the re-schedule returns a live one (possibly recycling the same
  // pool slot — the generation tag must still distinguish them).
  std::function<void()> tick = [&] {
    ++runs;
    if (runs < 3) {
      handle = sim.schedule_after(Duration::millis(1), tick);
      EXPECT_TRUE(handle.pending());
    }
  };
  handle = sim.schedule_after(Duration::millis(1), tick);
  sim.run();
  EXPECT_EQ(runs, 3);
  EXPECT_FALSE(handle.pending());
}

TEST(EventHandle, StaleHandleDoesNotAliasRecycledSlot) {
  Simulator sim;
  // Schedule + cancel so the record returns to the freelist, then schedule
  // a new event that recycles the slot. The stale handle must stay dead and
  // its cancel() must not kill the new occupant.
  auto stale = sim.schedule_after(Duration::millis(1), [] { FAIL() << "cancelled event ran"; });
  stale.cancel();
  bool ran = false;
  auto fresh = sim.schedule_after(Duration::millis(2), [&] { ran = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  stale.cancel();  // idempotent no-op, must not affect `fresh`
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(EventHandle, DefaultConstructedIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op, no crash
}

// ---------------------------------------------------------------------------
// Dead-event reclamation: cancel releases resources eagerly, and the heap
// stays O(live events) under sustained cancel/re-arm churn.
// ---------------------------------------------------------------------------

TEST(Simulator, CancelReleasesCapturedResourcesImmediately) {
  Simulator sim;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  // Far-future timer: with lazy reclamation its captures would be pinned
  // until the fire time is popped (or the simulator dies).
  auto handle = sim.schedule_after(Duration::secs(3600), [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // capture pins it while pending
  handle.cancel();
  EXPECT_TRUE(watch.expired());  // cancel destroys the callback eagerly
  sim.run(TimePoint::origin() + Duration::secs(1));
}

TEST(Simulator, HeapStaysBoundedUnderCancelRearmChurn) {
  Simulator sim;
  constexpr int kTimers = 32;
  constexpr int kRounds = 2000;
  std::vector<EventHandle> timers(kTimers);
  std::size_t live_peak = 0;
  int rounds_done = 0;  // outside the closure: scheduling copies the function
  std::function<void()> round = [&] {
    for (auto& t : timers) {
      t.cancel();
      t = sim.schedule_after(Duration::secs(60), [] {});
    }
    live_peak = std::max(live_peak, sim.live_events());
    if (++rounds_done < kRounds) sim.schedule_after(Duration::micros(1), round);
  };
  sim.schedule_now(round);
  sim.run(TimePoint::origin() + Duration::secs(30));
  // kTimers * kRounds = 64000 cancellations; without compaction the queue
  // would hold every dead entry until its 60 s fire time.
  EXPECT_GT(sim.compactions(), 0u);
  EXPECT_LE(sim.queue_peak(), static_cast<std::size_t>(4 * kTimers + 64));
  EXPECT_LE(live_peak, static_cast<std::size_t>(kTimers + 2));
  for (auto& t : timers) t.cancel();
}

TEST(Simulator, CompactionPreservesScheduleAndTraceHash) {
  // Identical schedules, one copy driven through heavy cancel churn that
  // triggers compaction: executed events, end time, and trace hash must be
  // bit-identical (cancelled events never execute, and pop order depends
  // only on the unique (time, seq) keys).
  auto run_once = [](bool churn) {
    Simulator sim;
    std::vector<std::int64_t> fired;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(Duration::millis(i + 1), [&fired, &sim] {
        fired.push_back(sim.now().to_nanos());
      });
    }
    // Decoys are scheduled after every survivor so the survivors' sequence
    // numbers are identical in both runs; the decoys never execute.
    if (churn) {
      std::vector<EventHandle> decoys;
      for (int i = 0; i < 500; ++i) {
        decoys.push_back(sim.schedule_after(Duration::secs(100), [] {}));
      }
      for (auto& d : decoys) d.cancel();
    }
    const auto result = sim.run(TimePoint::origin() + Duration::secs(1));
    return std::tuple{fired, result.events_executed, sim.trace_hash()};
  };
  const auto quiet = run_once(false);
  const auto churned = run_once(true);
  EXPECT_EQ(std::get<0>(quiet), std::get<0>(churned));
  EXPECT_EQ(std::get<1>(quiet), std::get<1>(churned));
  EXPECT_EQ(std::get<2>(quiet), std::get<2>(churned));
}

// ---------------------------------------------------------------------------
// Shutdown double-release guard.
// ---------------------------------------------------------------------------

TEST(Simulator, ShutdownTwiceIsIdempotent) {
  Simulator sim;
  SimSemaphore sem(sim, 0);
  sim.spawn("stuck", [&](Process& self) { sem.acquire(self); });
  sim.run();
  sim.shutdown();
  EXPECT_EQ(sim.live_processes(), 0u);
  sim.shutdown();  // every process already kFinished: must be a no-op
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulator, ShutdownAfterNaturalFinishIsNoop) {
  Simulator sim;
  sim.spawn("quick", [](Process& self) { self.delay(Duration::millis(1)); });
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0u);
  sim.shutdown();  // thread already exited; must not release its baton
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulator, ShutdownWithReadyProcessThenRunAgain) {
  Simulator sim;
  SimSemaphore sem(sim, 0);
  auto& waiter = sim.spawn("waiter", [&](Process& self) {
    sem.acquire(self);
    FAIL() << "woke after shutdown";
  });
  sim.schedule_after(Duration::millis(1), [&] { sem.release(); });
  // Stop right after the release event: the waiter is kReady with its
  // resume event still queued.
  sim.run(TimePoint::max(), 2);
  sim.shutdown();
  EXPECT_TRUE(waiter.finished());
  // The stale resume event must be inert — running again must neither hand
  // the baton to the dead thread (hang) nor crash.
  const auto result = sim.run();
  EXPECT_EQ(result.reason, StopReason::kIdle);
}

// ---------------------------------------------------------------------------
// InlineFn: the kernel's SBO callback type.
// ---------------------------------------------------------------------------

TEST(InlineFn, InvokesInlineAndBoxedCallables) {
  int small_calls = 0;
  InlineFn small([&small_calls] { ++small_calls; });
  ASSERT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(small_calls, 1);

  // Oversized capture forces the heap-boxed path.
  std::array<std::uint64_t, 16> big_payload{};
  big_payload.fill(7);
  std::uint64_t sum = 0;
  InlineFn big([big_payload, &sum] { for (auto v : big_payload) sum += v; });
  big();
  EXPECT_EQ(sum, 7u * 16u);
}

TEST(InlineFn, MoveTransfersOwnershipAndResetReleases) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFn a([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): moved-from is empty by contract
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_FALSE(watch.expired());
  b.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(b));
}

}  // namespace
}  // namespace chk::des
