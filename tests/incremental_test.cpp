// Tests for incremental checkpointing: the dirty-chunk tracker, delta
// serialization/apply, protocol integration (bytes written, GC keeps the
// chain) and recovery through a delta chain with bit-exact verification.
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "apps/ising.hpp"
#include "apps/sor.hpp"
#include "chklib/ckpt/incremental.hpp"
#include "harness/experiment.hpp"
#include "util/rng.hpp"

namespace chk::chklib {
namespace {

std::vector<std::byte> random_blob(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> blob(size);
  for (auto& b : blob) b = static_cast<std::byte>(rng() & 0xff);
  return blob;
}

TEST(Incremental, NoChangeYieldsEmptyDelta) {
  const auto blob = random_blob(10'000, 1);
  IncrementalTracker tracker(1024);
  tracker.rebase(blob);
  const auto delta = tracker.capture_delta(blob);
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->chunks.empty());
  EXPECT_EQ(delta->payload_bytes(), 0u);
}

TEST(Incremental, SingleByteDirtyCapturesOneChunk) {
  auto blob = random_blob(10'000, 2);
  IncrementalTracker tracker(1024);
  tracker.rebase(blob);
  blob[5000] ^= std::byte{0xff};
  const auto delta = tracker.capture_delta(blob);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->chunks.size(), 1u);
  EXPECT_EQ(delta->chunks[0], 5000u / 1024u);
  EXPECT_EQ(delta->payload_bytes(), 1024u);
}

TEST(Incremental, ApplyReconstructsExactly) {
  auto base = random_blob(7'777, 3);  // odd size: last chunk is short
  IncrementalTracker tracker(512);
  tracker.rebase(base);
  auto modified = base;
  modified[0] ^= std::byte{1};
  modified[7'776] ^= std::byte{1};  // dirty the short tail chunk
  modified[3'000] ^= std::byte{1};
  const auto delta = tracker.capture_delta(modified);
  ASSERT_TRUE(delta.has_value());
  // round-trip through serialization
  const auto wire = delta->serialize();
  auto patched = base;
  StateDelta::deserialize(wire).apply(patched);
  EXPECT_EQ(patched, modified);
}

TEST(Incremental, ChainOfDeltasComposes) {
  auto state = random_blob(20'000, 4);
  IncrementalTracker tracker;
  tracker.rebase(state);
  auto reconstructed = state;
  util::Rng rng(99);
  for (int step = 0; step < 5; ++step) {
    for (int k = 0; k < 50; ++k) {
      state[rng.uniform_u64(state.size())] = static_cast<std::byte>(rng() & 0xff);
    }
    const auto delta = tracker.capture_delta(state);
    ASSERT_TRUE(delta.has_value());
    delta->apply(reconstructed);
  }
  EXPECT_EQ(reconstructed, state);
}

TEST(Incremental, SizeChangeRequiresRebase) {
  IncrementalTracker tracker;
  tracker.rebase(random_blob(1000, 5));
  EXPECT_FALSE(tracker.capture_delta(random_blob(2000, 6)).has_value());
}

TEST(Incremental, ApplyRejectsWrongBase) {
  auto base = random_blob(4096, 7);
  IncrementalTracker tracker;
  tracker.rebase(base);
  auto modified = base;
  modified[0] ^= std::byte{1};
  const auto delta = tracker.capture_delta(modified);
  std::vector<std::byte> wrong(1234);
  EXPECT_THROW(delta->apply(wrong), util::SerializeError);
}

// ---- protocol integration --------------------------------------------------

harness::ExperimentConfig config_for(AppFn app, bool incremental) {
  harness::ExperimentConfig config;
  config.label = "inc";
  config.app = std::move(app);
  config.scheme = harness::Scheme::kCoordNBM;
  config.checkpoints = 6;
  config.incremental = incremental;
  config.full_every = 3;
  return config;
}

TEST(Incremental, IsingWritesFarFewerBytes) {
  // The quenched coupling arrays never change: deltas carry only spins and
  // counters, a fraction of the full image.
  auto app = [] { return apps::make_ising({.n = 96, .sweeps = 120}); };
  auto base_cfg = config_for(app(), false);
  const auto normal = harness::run_normal(base_cfg);
  base_cfg.interval = des::Duration::seconds(normal.exec_time_s / 7.0);
  auto inc_cfg = config_for(app(), true);
  inc_cfg.interval = base_cfg.interval;

  const auto full = harness::run_experiment(base_cfg);
  const auto inc = harness::run_experiment(inc_cfg);
  EXPECT_EQ(full.digest, inc.digest);
  EXPECT_GT(inc.local_checkpoints, 0u);
  EXPECT_LT(inc.bytes_written, full.bytes_written * 3 / 4) << "deltas should shrink writes";
}

TEST(Incremental, SorGainsLittle) {
  // SOR dirties its whole grid every iteration: incremental buys ~nothing.
  auto app = [] { return apps::make_sor({.n = 96, .iterations = 120}); };
  auto base_cfg = config_for(app(), false);
  const auto normal = harness::run_normal(base_cfg);
  base_cfg.interval = des::Duration::seconds(normal.exec_time_s / 7.0);
  auto inc_cfg = config_for(app(), true);
  inc_cfg.interval = base_cfg.interval;

  const auto full = harness::run_experiment(base_cfg);
  const auto inc = harness::run_experiment(inc_cfg);
  EXPECT_EQ(full.digest, inc.digest);
  EXPECT_GT(inc.bytes_written, full.bytes_written / 2);  // no big win
}

TEST(Incremental, RecoveryThroughDeltaChain) {
  // Crash after several delta checkpoints: recovery must read the chain
  // back to the last full image and reconstruct the exact state.
  auto app = [] { return apps::make_gauss({.n = 96}); };
  auto cfg = config_for(app(), true);
  const auto normal = harness::run_normal(cfg);
  cfg.checkpoints = 0;
  cfg.interval = des::Duration::seconds(normal.exec_time_s / 9.0);
  cfg.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.8), 2};
  const auto result = harness::run_experiment(cfg);
  ASSERT_EQ(result.recoveries.size(), 1u);
  EXPECT_FALSE(result.recoveries[0].rolled_to_origin);
  EXPECT_EQ(result.digest, normal.digest);
}

TEST(Incremental, CommitGcKeepsTheChain) {
  auto cfg = config_for(apps::make_ising({.n = 96, .sweeps = 150}), true);
  const auto normal = harness::run_normal(cfg);
  cfg.interval = des::Duration::seconds(normal.exec_time_s / 7.0);
  const auto result = harness::run_experiment(cfg);
  // Deltas were actually taken, and GC never removed an image a committed
  // chain still needs (otherwise recovery tests above would fail); the
  // retained count per rank is at most full_every.
  EXPECT_GT(result.committed_rounds, 0u);
  EXPECT_LE(result.final_stored_checkpoints, 8u * cfg.full_every);
}

}  // namespace
}  // namespace chk::chklib
