// chklint fixture suite: every rule must fire on its known-bad snippet,
// stay silent on disciplined code, honor suppression comments, and produce
// byte-identical machine reports run-over-run. The last tests run the
// analyzer over the real tree — the discipline gate that keeps the repo
// lint-clean is itself tier-1 tested.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#ifndef CHKLINT_BIN
#error "CHKLINT_BIN must point at the chklint executable"
#endif
#ifndef CHKLINT_FIXTURES
#error "CHKLINT_FIXTURES must point at tests/chklint_fixtures"
#endif
#ifndef CHKLINT_SOURCE_ROOT
#error "CHKLINT_SOURCE_ROOT must point at the repository root"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_chklint(const std::string& args) {
  const std::string cmd = std::string(CHKLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    result.output.append(buf.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string("--root ") + CHKLINT_FIXTURES + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST(ChklintRules, NoAmbientNondeterminismFires) {
  const RunResult r = run_chklint(fixture("bad_nondet"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("no-ambient-nondeterminism"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("src/worker.cpp"), std::string::npos) << r.output;
  // All five banned constructs in the fixture are reported.
  for (const char* banned : {"random_device", "mt19937", "system_clock", "time", "rand"})
    EXPECT_NE(r.output.find(banned), std::string::npos) << banned << "\n" << r.output;
}

TEST(ChklintRules, UniqueForkTagsFiresOnCollisionAndNonLiteral) {
  const RunResult r = run_chklint(fixture("bad_fork_tags"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The collision is charged to the later site, naming the canonical owner.
  EXPECT_NE(r.output.find("src/timers.cpp"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("collides with src/faultsim/quake.cpp"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("0xAB1E"), std::string::npos) << r.output;
  // The runtime-valued tag in fault-domain code is its own finding.
  EXPECT_NE(r.output.find("non-literal Rng::fork tag"), std::string::npos) << r.output;
}

TEST(ChklintRules, ReservedFaultDomainTagFiresOutsideOwner) {
  // 0xBEA7 (membership detector phases) forked outside its owning file is
  // a finding even with no second site to collide with.
  const RunResult r = run_chklint(fixture("bad_reserved_tag"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unique-fork-tags"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0xBEA7"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("membership detector phases"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("harness/experiment.cpp"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintRules, FreshTagNearReservedSetIsClean) {
  // The negative control: same code shape, fresh tag — silent.
  const RunResult r = run_chklint(fixture("clean_reserved_tag"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintRules, OneDoorStorageFires) {
  const RunResult r = run_chklint(fixture("bad_one_door"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("one-door-storage"), std::string::npos) << r.output;
  // Both receiver shapes: storage() accessor chain and storage_ member.
  EXPECT_NE(r.output.find("StableStorage::write_blocking"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("StableStorage::read_blocking"), std::string::npos)
      << r.output;
}

TEST(ChklintRules, DurationArithmeticFires) {
  const RunResult r = run_chklint(fixture("bad_duration"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("duration-arithmetic"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Duration::scaled"), std::string::npos) << r.output;
  // Three sites: / 2.0, * 1.5, service_time(...) * factor.
  EXPECT_NE(r.output.find("3 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintRules, OrderedEmissionFires) {
  const RunResult r = run_chklint(fixture("bad_ordered"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("ordered-emission"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unordered_map"), std::string::npos) << r.output;
  // src/svc is an emission path too (digest + checkpoint image bytes).
  EXPECT_NE(r.output.find("unordered_set"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("src/svc/shard.cpp"), std::string::npos) << r.output;
}

TEST(ChklintRules, BucketPartitionRegistrationFires) {
  const RunResult r =
      run_chklint(fixture("bad_buckets") + " --partition-list partition.txt");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("bucket-partition-registration"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"mystery_s\""), std::string::npos) << r.output;
  // sync_wait_s is in the partition list, so exactly one bucket fires.
  EXPECT_NE(r.output.find("1 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintControls, CleanFixtureIsSilent) {
  const RunResult r = run_chklint(fixture("clean"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintControls, SuppressionCommentsSilenceFindings) {
  // Same violation classes as the positive controls, each carrying a
  // chklint:allow justification (line-above and trailing forms).
  const RunResult r = run_chklint(fixture("suppressed"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintControls, RuleFilterRunsOnlyNamedRule) {
  // With the filter on a rule the fixture does not violate, even the
  // known-bad tree comes back clean.
  const RunResult r =
      run_chklint(fixture("bad_ordered") + " --rule one-door-storage");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const RunResult unknown = run_chklint(fixture("bad_ordered") + " --rule no-such-rule");
  EXPECT_EQ(unknown.exit_code, 2) << unknown.output;
}

TEST(ChklintControls, ListRulesNamesAllSix) {
  const RunResult r = run_chklint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule :
       {"no-ambient-nondeterminism", "unique-fork-tags", "one-door-storage",
        "duration-arithmetic", "ordered-emission", "bucket-partition-registration"})
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule << "\n" << r.output;
}

TEST(ChklintTree, RngHeaderIsClean) {
  // The one file allowed to own raw generator machinery must itself be
  // finding-free (it is exempt from rule 1, not from the other five).
  const RunResult r = run_chklint(std::string("--root ") + CHKLINT_SOURCE_ROOT +
                                  " src/util/rng.hpp src/util/rng.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(ChklintTree, WholeTreeIsClean) {
  // The discipline gate: src/, bench/ and tests/ must lint clean with all
  // six rules enabled (deliberate exceptions carry chklint:allow comments).
  const RunResult r = run_chklint(std::string("--root ") + CHKLINT_SOURCE_ROOT);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(ChklintReports, JsonAndSarifAreByteIdenticalAcrossRuns) {
  const std::string json1 = testing::TempDir() + "chklint_run1.json";
  const std::string json2 = testing::TempDir() + "chklint_run2.json";
  const std::string sarif1 = testing::TempDir() + "chklint_run1.sarif";
  const std::string sarif2 = testing::TempDir() + "chklint_run2.sarif";
  const std::string args = fixture("bad_fork_tags") + " -q";
  EXPECT_EQ(run_chklint(args + " --json " + json1 + " --sarif " + sarif1).exit_code, 1);
  EXPECT_EQ(run_chklint(args + " --json " + json2 + " --sarif " + sarif2).exit_code, 1);

  const std::string json_a = slurp(json1);
  EXPECT_EQ(json_a, slurp(json2));
  EXPECT_EQ(slurp(sarif1), slurp(sarif2));

  // Spot-check the JSON shape without a parser dependency.
  EXPECT_NE(json_a.find("\"tool\": \"chklint\""), std::string::npos) << json_a;
  EXPECT_NE(json_a.find("\"finding_count\": 2"), std::string::npos) << json_a;
  EXPECT_NE(json_a.find("\"rule\": \"unique-fork-tags\""), std::string::npos) << json_a;
  const std::string sarif_a = slurp(sarif1);
  EXPECT_NE(sarif_a.find("\"version\": \"2.1.0\""), std::string::npos) << sarif_a;
  EXPECT_NE(sarif_a.find("\"ruleId\": \"unique-fork-tags\""), std::string::npos)
      << sarif_a;
}

TEST(ChklintReports, FindingsAreSortedByPathLineRule) {
  const std::string json_path = testing::TempDir() + "chklint_sorted.json";
  EXPECT_EQ(run_chklint(fixture("bad_fork_tags") + " -q --json " + json_path).exit_code,
            1);
  const std::string doc = slurp(json_path);
  const std::size_t first = doc.find("src/faultsim/quake.cpp");
  const std::size_t second = doc.find("src/timers.cpp");
  ASSERT_NE(first, std::string::npos) << doc;
  ASSERT_NE(second, std::string::npos) << doc;
  EXPECT_LT(first, second) << doc;
}
