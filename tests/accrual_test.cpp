// Unit tests for the phi-accrual failure detector's estimator
// (chklib/membership/accrual.hpp): deterministic integer phi values for a
// pinned sample sequence, warm-up/bootstrap behavior, the minimum-stddev
// floor, window eviction, the implied timeout, and config validation. The
// service-level behavior (storms, hysteresis, rejoin resets) lives in
// membership_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "chklib/membership/accrual.hpp"
#include "des/time.hpp"

namespace chk::chklib::membership {
namespace {

using des::Duration;
using des::TimePoint;

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::millis(ms);
}

AccrualConfig small_config() {
  AccrualConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 4;
  cfg.threshold_milli = 8000;
  cfg.min_stddev = Duration::millis(10);
  cfg.bootstrap = Duration::millis(600);
  return cfg;
}

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(AccrualConfig, DefaultsValidate) { EXPECT_NO_THROW(AccrualConfig{}.validate()); }

TEST(AccrualConfig, RejectsNonsense) {
  AccrualConfig cfg;
  cfg.min_samples = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AccrualConfig{};
  cfg.window = cfg.min_samples - 1;  // window must hold a warm-up's worth
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AccrualConfig{};
  cfg.window = 2000;  // sum-of-squares overflow guard
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AccrualConfig{};
  cfg.threshold_milli = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AccrualConfig{};
  cfg.min_stddev = Duration::millis(-1);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AccrualConfig{};
  cfg.bootstrap = Duration::millis(-1);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Integer square root (the only nontrivial arithmetic primitive).
// ---------------------------------------------------------------------------

TEST(Accrual, IsqrtIsExactFloor) {
  EXPECT_EQ(isqrt64(0), 0);
  EXPECT_EQ(isqrt64(1), 1);
  EXPECT_EQ(isqrt64(3), 1);
  EXPECT_EQ(isqrt64(4), 2);
  EXPECT_EQ(isqrt64(99), 9);
  EXPECT_EQ(isqrt64(100), 10);
  EXPECT_EQ(isqrt64(1'000'000'000'000), 1'000'000);
  EXPECT_EQ(isqrt64((std::int64_t{1} << 62) - 1), 2147483647);
  // Exhaustive floor check around every square in a small range.
  for (std::int64_t r = 1; r < 2000; ++r) {
    EXPECT_EQ(isqrt64(r * r), r);
    EXPECT_EQ(isqrt64(r * r - 1), r - 1);
    EXPECT_EQ(isqrt64(r * r + 1), r);
  }
}

TEST(Accrual, ThresholdZStarMatchesClosedForm) {
  // z*^2 * 0.217147 = phi  =>  phi 8 crosses near z = 6.07.
  EXPECT_EQ(phi_threshold_z_milli(8000), 6069);
  // phi 1 crosses near z = 2.146.
  EXPECT_EQ(phi_threshold_z_milli(1000), 2145);
}

// ---------------------------------------------------------------------------
// Warm-up / bootstrap.
// ---------------------------------------------------------------------------

TEST(Accrual, BootstrapBinarySemanticsBeforeWarmup) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  w.heard(cfg, at_ms(0));  // starts the clock, no sample yet
  w.heard(cfg, at_ms(100));
  EXPECT_EQ(w.samples(), 1u);
  EXPECT_FALSE(w.warmed_up(cfg));

  // Below the bootstrap interval: no suspicion at all.
  EXPECT_EQ(w.phi_milli(cfg, at_ms(100 + 600)), 0);
  // Above it: exactly the threshold (binary semantics).
  EXPECT_EQ(w.phi_milli(cfg, at_ms(100 + 601)), cfg.threshold_milli);
  // The implied timeout during warm-up is the bootstrap interval.
  EXPECT_EQ(w.implied_timeout(cfg), cfg.bootstrap);
}

TEST(Accrual, NeverHeardAccruesNothingUntilGapRestart) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  EXPECT_EQ(w.phi_milli(cfg, at_ms(10'000)), 0);  // no clock: no suspicion
  w.restart_gap(at_ms(0));                        // slate reset primes the clock
  EXPECT_EQ(w.phi_milli(cfg, at_ms(601)), cfg.threshold_milli);
}

// ---------------------------------------------------------------------------
// Pinned deterministic phi values for a fixed sample sequence.
// ---------------------------------------------------------------------------

TEST(Accrual, PinnedPhiValuesForFixedSequence) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  // Inter-arrivals: 250, 250, 260, 240 ms -> mean 250 ms, variance 50 us^2
  // in ms units: samples {250000, 250000, 260000, 240000} us.
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  for (const std::int64_t gap_ms : {250, 250, 260, 240}) {
    t += gap_ms;
    w.heard(cfg, at_ms(t));
  }
  ASSERT_EQ(w.samples(), 4u);
  ASSERT_TRUE(w.warmed_up(cfg));
  EXPECT_EQ(w.mean_us(), 250'000);
  // var = ((0)^2 + (0)^2 + (10ms)^2 + (10ms)^2) / 4 = 50e6 us^2 -> sd 7071 us.
  EXPECT_EQ(w.stddev_us(), 7071);
  EXPECT_EQ(w.max_sample_us(), 260'000);
  // The envelope scale is the largest of sd (7071), the min_stddev floor
  // (10 ms) and the heavy-tail guard 2 * (max - mean) = 20 ms -> 20 ms.

  // Silence 250 ms = the mean: z = 0, phi = 0.
  EXPECT_EQ(w.phi_milli(cfg, at_ms(t + 250)), 0);
  // Silence 450 ms: z = (450-250)ms / 20ms = 10, z_milli = 10000,
  // phi_milli = 1e8 * 217147 / 1e9 = 21714.
  EXPECT_EQ(w.phi_milli(cfg, at_ms(t + 450)), 21'714);
  // Silence 350 ms: z = 5, phi_milli = 25e6 * 217147 / 1e9 = 5428 — below
  // the phi-8 threshold; the crossing sits at mean + 6.069 * 20 ms.
  EXPECT_EQ(w.phi_milli(cfg, at_ms(t + 350)), 5'428);
  EXPECT_LT(w.phi_milli(cfg, at_ms(t + 371)), cfg.threshold_milli);
  EXPECT_GE(w.phi_milli(cfg, at_ms(t + 372)), cfg.threshold_milli);

  // Implied timeout = mean + z* sd = 250 ms + 6.069 * 20 ms = 371.38 ms.
  EXPECT_EQ(w.implied_timeout(cfg), Duration::micros(250'000 + 2 * 60'690));
}

TEST(Accrual, PhiGrowsMonotonicallyWithSilence) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  for (int i = 0; i < 6; ++i) {
    t += 250;
    w.heard(cfg, at_ms(t));
  }
  std::int64_t last = -1;
  for (std::int64_t silence_ms = 0; silence_ms <= 2000; silence_ms += 50) {
    const std::int64_t phi = w.phi_milli(cfg, at_ms(t + silence_ms));
    EXPECT_GE(phi, last) << "silence " << silence_ms << " ms";
    last = phi;
  }
  EXPECT_GT(last, cfg.threshold_milli);
}

// ---------------------------------------------------------------------------
// Minimum-stddev floor: a perfectly regular link must not hair-trigger.
// ---------------------------------------------------------------------------

TEST(Accrual, MinStddevFloorsQuietLinks) {
  AccrualConfig cfg = small_config();
  cfg.min_stddev = Duration::millis(50);
  AccrualWindow w;
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  for (int i = 0; i < 4; ++i) {
    t += 250;  // zero variance: every inter-arrival identical
    w.heard(cfg, at_ms(t));
  }
  EXPECT_EQ(w.stddev_us(), 0);
  // Without the floor a 1 ms wobble would be infinitely improbable. With
  // it, the threshold crossing sits at mean + z* floor = 250 + 6.069*50 =
  // ~553 ms.
  EXPECT_LT(w.phi_milli(cfg, at_ms(t + 400)), cfg.threshold_milli);
  EXPECT_GE(w.phi_milli(cfg, at_ms(t + 560)), cfg.threshold_milli);
  EXPECT_EQ(w.implied_timeout(cfg), Duration::micros(250'000 + 50 * 6069));
}

// ---------------------------------------------------------------------------
// Heavy-tail guard: an observed loss gap widens the envelope so a repeat of
// it cannot cross the threshold.
// ---------------------------------------------------------------------------

TEST(Accrual, TailGuardAbsorbsRepeatOfWorstObservedGap) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  // Seven clean beats plus one 750 ms gap (two dropped beacons on a 250 ms
  // period): mean = 2500/8 = 312.5 ms, max - mean = 437.5 ms, so the
  // envelope scale is the tail guard 2 * 437.5 = 875 ms — far above both
  // the sample stddev (~165 ms) and the 10 ms floor.
  for (const std::int64_t gap_ms : {250, 250, 250, 750, 250, 250, 250, 250}) {
    t += gap_ms;
    w.heard(cfg, at_ms(t));
  }
  ASSERT_EQ(w.samples(), 8u);
  EXPECT_EQ(w.mean_us(), 312'500);
  EXPECT_EQ(w.max_sample_us(), 750'000);
  // A three-beat (1 s) silence — one beat beyond the observed worst — is
  // ordinary under 20% loss and must accrue almost nothing.
  EXPECT_LT(w.phi_milli(cfg, at_ms(t + 1000)), 1'000);
  // Crossing sits at mean + z* * envelope = 312.5 ms + 6.069 * 875 ms.
  EXPECT_EQ(w.implied_timeout(cfg), Duration::micros(312'500 + 875 * 6069));
}

// ---------------------------------------------------------------------------
// Window eviction: old samples age out, the estimate adapts.
// ---------------------------------------------------------------------------

TEST(Accrual, WindowEvictsOldestSamples) {
  const AccrualConfig cfg = small_config();  // capacity 8
  AccrualWindow w;
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  for (int i = 0; i < 8; ++i) {
    t += 100;
    w.heard(cfg, at_ms(t));
  }
  EXPECT_EQ(w.samples(), 8u);
  EXPECT_EQ(w.mean_us(), 100'000);
  // Eight slower beats push every 100 ms sample out of the ring.
  for (int i = 0; i < 8; ++i) {
    t += 400;
    w.heard(cfg, at_ms(t));
  }
  EXPECT_EQ(w.samples(), 8u);
  EXPECT_EQ(w.mean_us(), 400'000);
  EXPECT_EQ(w.stddev_us(), 0);
  // The adapted window tolerates silence the young window would not have.
  EXPECT_EQ(w.phi_milli(cfg, at_ms(t + 400)), 0);
}

TEST(Accrual, SamplesAreClampedToTheBound) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  w.heard(cfg, at_ms(0));
  w.heard(cfg, at_ms(10'000'000));  // ~2.8 h gap: clamped to 60 s
  EXPECT_EQ(w.samples(), 1u);
  AccrualWindow regular;
  regular.heard(cfg, at_ms(0));
  regular.heard(cfg, TimePoint::origin() + Duration::secs(60));
  EXPECT_EQ(w.mean_us(), regular.mean_us());
}

// ---------------------------------------------------------------------------
// Reset / gap restart.
// ---------------------------------------------------------------------------

TEST(Accrual, ResetForgetsHistory) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  for (int i = 0; i < 6; ++i) {
    t += 250;
    w.heard(cfg, at_ms(t));
  }
  ASSERT_TRUE(w.warmed_up(cfg));
  w.reset();
  EXPECT_EQ(w.samples(), 0u);
  EXPECT_FALSE(w.warmed_up(cfg));
  EXPECT_EQ(w.phi_milli(cfg, at_ms(t + 10'000)), 0);  // clock stopped too
}

TEST(Accrual, RestartGapForgivesArtificialSilence) {
  const AccrualConfig cfg = small_config();
  AccrualWindow w;
  std::int64_t t = 0;
  w.heard(cfg, at_ms(t));
  for (int i = 0; i < 6; ++i) {
    t += 250;
    w.heard(cfg, at_ms(t));
  }
  // A long pause (e.g. rollback restart) would cross any threshold...
  EXPECT_GT(w.phi_milli(cfg, at_ms(t + 5'000)), cfg.threshold_milli);
  // ...but restarting the gap forgives it without forgetting the samples.
  w.restart_gap(at_ms(t + 5'000));
  EXPECT_EQ(w.samples(), 6u);
  EXPECT_EQ(w.phi_milli(cfg, at_ms(t + 5'000)), 0);
  // And the next heartbeat records the gap since the restart, not the
  // artificial 5 s pause.
  w.heard(cfg, at_ms(t + 5'250));
  EXPECT_EQ(w.samples(), 7u);
  EXPECT_EQ(w.mean_us(), 250'000);
}

}  // namespace
}  // namespace chk::chklib::membership
