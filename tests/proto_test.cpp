// Integration tests for the checkpointing protocols on a toy ring
// application: commit rounds, epochs, storage footprints, induced
// checkpoints, blocking windows, staggering, and full failure/recovery
// round-trips with bit-exact result verification.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "chklib/proto/coordinated.hpp"
#include "chklib/proto/independent.hpp"
#include "chklib/recovery/manager.hpp"
#include "chklib/runtime.hpp"
#include "des/simulator.hpp"

namespace chk::chklib {
namespace {

using des::Duration;

// Toy SPMD ring application: each iteration computes, sends the iteration
// number to the right neighbour and accumulates the value received from
// the left. The final digest is deterministic and sensitive to any lost,
// duplicated or reordered message — ideal for recovery verification.
struct RingState {
  std::uint32_t iter = 0;
  std::uint64_t acc = 0;
};

AppFn make_ring_app(std::uint32_t iterations, double flops_per_iter) {
  return [iterations, flops_per_iter](AppContext& ctx) {
    auto& st = ctx.state<RingState>();
    if (ctx.fresh()) st = RingState{};
    ctx.register_value("iter", st.iter);
    ctx.register_value("acc", st.acc);
    ctx.ready();
    const Rank right = (ctx.rank() + 1) % ctx.nprocs();
    for (; st.iter < iterations; ++st.iter) {
      ctx.checkpoint_here();
      ctx.compute(flops_per_iter);
      ctx.send_value<std::uint32_t>(right, 1, st.iter);
      st.acc += ctx.recv_value<std::uint32_t>(kAnySource, 1);
    }
    const double digest = ctx.allreduce_sum(static_cast<double>(st.acc) +
                                            static_cast<double>(ctx.rank()));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

struct World {
  des::Simulator sim;
  std::unique_ptr<Runtime> rt;

  explicit World(std::size_t nodes = 8, std::uint64_t seed = 42) {
    auto mc = xplorer::MachineConfig::parsytec_xplorer();
    mc.num_nodes = nodes;
    rt = std::make_unique<Runtime>(sim, mc, seed);
  }
};

double normal_digest(std::uint32_t iterations, double flops) {
  World w;
  w.rt->set_app("ring", make_ring_app(iterations, flops));
  w.rt->start_apps();
  w.rt->run_to_completion();
  return w.rt->result_digest().value();
}

TEST(Baseline, RingAppCompletesAndIsDeterministic) {
  const double a = normal_digest(50, 1e5);
  const double b = normal_digest(50, 1e5);
  EXPECT_EQ(a, b);
  // analytic check: every rank accumulates sum 0..49 of neighbour iters
  // plus its own rank; allreduce over 8 ranks.
  const double expected = 8.0 * (50.0 * 49.0 / 2.0) + 28.0;
  EXPECT_DOUBLE_EQ(a, expected);
}

TEST(Coordinated, CommitsRequestedRounds) {
  World w;
  // ~0.14s per iteration on the T805 model; 200 iterations ~ 30s or so.
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNB,
                                    .interval = Duration::secs(8),
                                    .rounds = 3});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_EQ(proto.committed_epoch(), 3u);
  EXPECT_EQ(proto.stats().committed_rounds, 3u);
  EXPECT_EQ(proto.stats().local_checkpoints, 3u * 8u);
  // all ranks ended on the same epoch
  for (Rank r = 0; r < 8; ++r) EXPECT_EQ(proto.epoch_of(r), 3u);
  // commit GC keeps only the newest epoch per rank
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(w.rt->store().saved_indices(r), (std::vector<std::uint32_t>{3}));
  }
  // synchronization used control messages, but not absurdly many:
  // request+marker*(N-1)+ack+commit per rank per round, plus slack.
  EXPECT_GT(w.rt->comm().control_messages(), 0u);
  EXPECT_LT(w.rt->comm().control_messages(), 3u * 8u * 12u);
}

TEST(Coordinated, CheckpointingAddsOverheadAndNbmReducesIt) {
  auto run_with = [](Scheme scheme) {
    World w;
    w.rt->set_app("ring", make_ring_app(200, 1e5));
    std::unique_ptr<CoordinatedProtocol> proto;
    if (scheme != Scheme::kNone) {
      proto = std::make_unique<CoordinatedProtocol>(
          *w.rt, CoordinatedProtocol::Config{.scheme = scheme,
                                             .interval = Duration::secs(8),
                                             .rounds = 3});
      proto->start();
    }
    w.rt->start_apps();
    w.rt->run_to_completion();
    return w.rt->apps_finished_at().to_seconds();
  };
  const double normal = run_with(Scheme::kNone);
  const double nb = run_with(Scheme::kCoordNB);
  const double nbm = run_with(Scheme::kCoordNBM);
  EXPECT_GT(nb, normal);
  EXPECT_GT(nbm, normal);
  EXPECT_LT(nbm, nb);  // main-memory checkpointing shrinks the window
}

TEST(Coordinated, ResultUnchangedByCheckpointing) {
  const double expected = normal_digest(120, 1e5);
  World w;
  w.rt->set_app("ring", make_ring_app(120, 1e5));
  CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNBMS,
                                    .interval = Duration::secs(5),
                                    .rounds = 3});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_EQ(w.rt->result_digest().value(), expected);
}

TEST(Coordinated, CaptureDeferredToSafePoint) {
  // A checkpoint request marks the capture pending; the application takes
  // it at its next declared safe point, not at an arbitrary instant.
  World w;
  w.rt->set_app("ring", make_ring_app(100, 1e6));  // ~1.4 s per iteration
  CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNB,
                                    .interval = Duration::secs(5),
                                    .rounds = 1});
  proto.start();
  w.rt->start_apps();
  // Just after the request lands, the capture is pending but not yet taken
  // (every rank is mid-iteration).
  w.sim.run(des::TimePoint::origin() + Duration::millis(5'100));
  EXPECT_EQ(proto.pending_epoch_of(0), 1u);
  std::size_t captured = 0;
  for (Rank r = 0; r < 8; ++r) captured += (proto.epoch_of(r) == 1u);
  EXPECT_LT(captured, 8u);
  // Within roughly one iteration, every rank reaches its safe point.
  w.sim.run(des::TimePoint::origin() + Duration::secs(10));
  for (Rank r = 0; r < 8; ++r) EXPECT_EQ(proto.epoch_of(r), 1u);
  w.rt->run_to_completion();
  EXPECT_EQ(proto.committed_epoch(), 1u);
}

TEST(Coordinated, MarkerCatchesUpPendingEpoch) {
  // A marker from a peer that already checkpointed must make the local
  // agent catch up even if the coordinator's request is still in flight.
  World w;
  w.rt->set_app("ring", make_ring_app(50, 1e5));
  CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNB,
                                    .interval = Duration::secs(1000),  // never fires
                                    .rounds = 1});
  proto.start();
  w.sim.schedule_after(Duration::secs(1), [&] {
    w.rt->comm().send_control(1, 0, ControlMsg{ControlKind::kChannelMarker, 1, 3, 0});
  });
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_GE(proto.epoch_of(0), 3u);
}

TEST(Coordinated, StaggeringSerializesBackgroundWrites) {
  auto disk_wait = [](Scheme scheme) {
    World w;
    w.rt->set_app("ring", make_ring_app(300, 2e5));
    CoordinatedProtocol proto(*w.rt, {.scheme = scheme,
                                      .interval = Duration::secs(20),
                                      .rounds = 2});
    proto.start();
    w.rt->start_apps();
    w.rt->run_to_completion();
    return w.rt->machine().storage().disk().wait_time().to_seconds();
  };
  // With staggering, writes arrive at the disk one at a time: queueing
  // time at the disk collapses.
  EXPECT_LT(disk_wait(Scheme::kCoordNBMS), disk_wait(Scheme::kCoordNBM) * 0.5);
}

TEST(Coordinated, RecoveryReproducesResult) {
  const double expected = normal_digest(200, 1e5);
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNB,
                                    .interval = Duration::secs(6),
                                    .rounds = 0});  // checkpoint until done
  RecoveryManager recovery(*w.rt, proto);
  proto.start();
  recovery.inject_failure_at(des::TimePoint::origin() + Duration::secs(15), 3);
  w.rt->start_apps();
  w.rt->run_to_completion();
  ASSERT_EQ(recovery.reports().size(), 1u);
  const auto& report = recovery.reports()[0];
  EXPECT_FALSE(report.rolled_to_origin);  // at least one epoch committed by 15s
  EXPECT_GT(report.recovery_latency.to_seconds(), 0.0);
  EXPECT_EQ(w.rt->result_digest().value(), expected);
}

TEST(Coordinated, RecoveryBeforeFirstCommitRestartsFromOrigin) {
  const double expected = normal_digest(60, 1e5);
  World w;
  w.rt->set_app("ring", make_ring_app(60, 1e5));
  CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNB,
                                    .interval = Duration::secs(500),
                                    .rounds = 1});
  RecoveryManager recovery(*w.rt, proto);
  proto.start();
  recovery.inject_failure_at(des::TimePoint::origin() + Duration::secs(3), 0);
  w.rt->start_apps();
  w.rt->run_to_completion();
  ASSERT_EQ(recovery.reports().size(), 1u);
  EXPECT_TRUE(recovery.reports()[0].rolled_to_origin);
  EXPECT_EQ(w.rt->result_digest().value(), expected);
}

TEST(Independent, EachRankSavesItsCheckpoints) {
  World w;
  w.rt->set_app("ring", make_ring_app(220, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                    .interval = Duration::secs(7),
                                    .count = 3});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_EQ(proto.stats().local_checkpoints, 3u * 8u);
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(w.rt->store().saved_indices(r),
              (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ(proto.intervals_of(r), 3u);
  }
  // no synchronization at all
  EXPECT_EQ(w.rt->comm().control_messages(), 0u);
  // storage holds 3 generations (vs 1 for coordinated): the paper's
  // storage-overhead argument.
  EXPECT_EQ(w.rt->store().checkpoint_count(), 24u);
}

TEST(Independent, ResultUnchangedByCheckpointing) {
  const double expected = normal_digest(120, 1e5);
  World w;
  w.rt->set_app("ring", make_ring_app(120, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndepM,
                                    .interval = Duration::secs(5),
                                    .count = 3});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_EQ(w.rt->result_digest().value(), expected);
}

TEST(Independent, DominoRecoveryStillCorrect) {
  // Tightly-coupled ring + unsynchronized checkpoints: the strict line
  // collapses to the origin (domino effect), and the rerun must still
  // produce the exact result.
  const double expected = normal_digest(150, 1e5);
  World w;
  w.rt->set_app("ring", make_ring_app(150, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                    .interval = Duration::secs(6),
                                    .count = 2});
  RecoveryManager recovery(*w.rt, proto);
  proto.start();
  recovery.inject_failure_at(des::TimePoint::origin() + Duration::secs(16), 5);
  w.rt->start_apps();
  w.rt->run_to_completion();
  ASSERT_EQ(recovery.reports().size(), 1u);
  EXPECT_TRUE(recovery.reports()[0].rolled_to_origin);  // domino
  EXPECT_GT(recovery.reports()[0].rollback_distance[5].to_seconds(), 10.0);
  EXPECT_EQ(w.rt->result_digest().value(), expected);
}

// A communication-free application: independent checkpoints form a
// consistent line trivially, so recovery does NOT domino.
AppFn make_silent_app(std::uint32_t iterations, double flops) {
  return [iterations, flops](AppContext& ctx) {
    auto& st = ctx.state<RingState>();
    if (ctx.fresh()) st = RingState{};
    ctx.register_value("iter", st.iter);
    ctx.register_value("acc", st.acc);
    ctx.ready();
    for (; st.iter < iterations; ++st.iter) {
      ctx.checkpoint_here();
      ctx.compute(flops);
      st.acc += st.iter;
    }
    const double digest = ctx.allreduce_sum(static_cast<double>(st.acc));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

TEST(Independent, LooselyCoupledAppAvoidsDomino) {
  World w;
  w.rt->set_app("silent", make_silent_app(300, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                    .interval = Duration::secs(10),
                                    .count = 2});
  RecoveryManager recovery(*w.rt, proto);
  proto.start();
  recovery.inject_failure_at(des::TimePoint::origin() + Duration::secs(25), 2);
  w.rt->start_apps();
  w.rt->run_to_completion();
  ASSERT_EQ(recovery.reports().size(), 1u);
  const auto& report = recovery.reports()[0];
  EXPECT_FALSE(report.rolled_to_origin);
  for (Rank r = 0; r < 8; ++r) EXPECT_GE(report.line.index[r], 1u);
  // the rollback lost less work than a full restart would have
  EXPECT_LT(report.rollback_distance[2].to_seconds(), 25.0);
}

TEST(Independent, GcReclaimsWhenLineAdvances) {
  World w;
  w.rt->set_app("silent", make_silent_app(400, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                    .interval = Duration::secs(10),
                                    .count = 4,
                                    .gc = true,
                                    .gc_mode = LineMode::kStrict});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_GT(proto.stats().gc_reclaimed, 0u);
  // only the newest generation survives per rank
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(w.rt->store().saved_indices(r).size(), 1u);
  }
}

TEST(Independent, GcCannotReclaimUnderHeavyCoupling) {
  World w;
  w.rt->set_app("ring", make_ring_app(300, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                    .interval = Duration::secs(8),
                                    .count = 3,
                                    .gc = true,
                                    .gc_mode = LineMode::kStrict});
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  // the strict line stays pinned at the origin, so nothing is collectable:
  // the paper's "large storage overhead even with garbage collection".
  EXPECT_EQ(proto.stats().gc_reclaimed, 0u);
  EXPECT_EQ(w.rt->store().checkpoint_count(), 24u);
}

TEST(Independent, MessageLoggingDefeatsTheDomino) {
  // The paper's §1 remedy: with pessimistic sender logging, the recovery
  // line only needs to be orphan-free; lost in-transit messages are
  // replayed from the logs, so the tightly coupled ring no longer rolls
  // back to the origin — and the result is still bit-exact.
  const double expected = normal_digest(150, 1e5);
  World w;
  w.rt->set_app("ring", make_ring_app(150, 1e5));
  IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                    .interval = Duration::secs(6),
                                    .count = 0,
                                    .recovery_mode = LineMode::kOrphanFree,
                                    .message_logging = true});
  RecoveryManager recovery(*w.rt, proto);
  proto.start();
  recovery.inject_failure_at(des::TimePoint::origin() + Duration::secs(16), 5);
  w.rt->start_apps();
  w.rt->run_to_completion();
  ASSERT_EQ(recovery.reports().size(), 1u);
  const auto& report = recovery.reports()[0];
  EXPECT_FALSE(report.rolled_to_origin);  // contrast: DominoRecoveryStillCorrect
  for (Rank r = 0; r < 8; ++r) EXPECT_GE(report.line.index[r], 1u);
  EXPECT_EQ(w.rt->result_digest().value(), expected);
}

TEST(Independent, MessageLoggingCostsStorage) {
  auto bytes_with = [](bool logging) {
    World w;
    w.rt->set_app("ring", make_ring_app(200, 1e5));
    IndependentProtocol proto(*w.rt, {.scheme = Scheme::kIndep,
                                      .interval = Duration::secs(7),
                                      .count = 3,
                                      .message_logging = logging});
    proto.start();
    w.rt->start_apps();
    w.rt->run_to_completion();
    return w.rt->machine().storage().bytes_written();
  };
  EXPECT_GT(bytes_with(true), bytes_with(false));
}

TEST(Independent, StaggeredVariantSerializesDiskWrites) {
  auto disk_wait = [](Scheme scheme) {
    World w;
    w.rt->set_app("ring", make_ring_app(300, 2e5));
    IndependentProtocol proto(*w.rt, {.scheme = scheme,
                                      .interval = Duration::secs(15),
                                      .count = 2,
                                      .jitter = 0.02});  // near-collisions
    proto.start();
    w.rt->start_apps();
    w.rt->run_to_completion();
    return w.rt->machine().storage().disk().wait_time().to_seconds();
  };
  EXPECT_LE(disk_wait(Scheme::kIndepMS), disk_wait(Scheme::kIndepM));
}

// Randomized-pattern application: every iteration the ranks pair up
// according to a deterministic shuffle of the iteration number and
// exchange random-sized payloads; receivers fold the bytes into an
// accumulator. Any lost, duplicated or reordered message after a rollback
// changes the digest.
AppFn make_random_pairs_app(std::uint32_t iterations, std::uint64_t pattern_seed) {
  return [iterations, pattern_seed](AppContext& ctx) {
    struct State {
      std::uint32_t iter = 0;
      std::uint64_t acc = 0;
      util::Rng rng;
    };
    auto& st = ctx.state<State>();
    if (ctx.fresh()) {
      st.iter = 0;
      st.acc = 0;
      st.rng = util::Rng(pattern_seed).fork(ctx.rank());
    }
    ctx.register_value("iter", st.iter);
    ctx.register_value("acc", st.acc);
    ctx.register_value("rng", st.rng);
    ctx.ready();
    const auto n = ctx.nprocs();
    for (; st.iter < iterations; ++st.iter) {
      ctx.checkpoint_here();
      ctx.compute(5e4);
      // Deterministic perfect matching for this iteration, identical on
      // every rank: Fisher-Yates with an iteration-seeded stream.
      std::vector<Rank> order(n);
      for (Rank r = 0; r < n; ++r) order[r] = r;
      util::Rng shuffle(pattern_seed ^ (0x9e37u + st.iter));
      for (std::size_t i = n - 1; i > 0; --i) {
        std::swap(order[i], order[shuffle.uniform_u64(i + 1)]);
      }
      Rank partner = ctx.rank();
      for (std::size_t i = 0; i + 1 < n; i += 2) {
        if (order[i] == ctx.rank()) partner = order[i + 1];
        if (order[i + 1] == ctx.rank()) partner = order[i];
      }
      if (partner == ctx.rank()) continue;  // odd rank count: sit out
      const auto size = 1 + st.rng.uniform_u64(4096);
      std::vector<std::byte> payload(size);
      for (auto& b : payload) b = static_cast<std::byte>(st.rng() & 0xff);
      ctx.send(partner, 7, std::move(payload));
      const auto got = ctx.recv(static_cast<int>(partner), 7);
      for (std::byte b : got.payload) st.acc += static_cast<std::uint64_t>(b) + 1;
    }
    const double digest = ctx.allreduce_sum(static_cast<double>(st.acc % 1000003));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

class RandomPatternRecovery
    : public ::testing::TestWithParam<std::tuple<Scheme, std::uint64_t>> {};

TEST_P(RandomPatternRecovery, DigestSurvivesFailure) {
  const auto [scheme, seed] = GetParam();
  auto run = [&](bool with_failure) {
    World w(8, seed);
    w.rt->set_app("randpairs", make_random_pairs_app(120, seed * 31 + 7));
    std::unique_ptr<Protocol> proto;
    std::unique_ptr<RecoveryManager> recovery;
    if (is_coordinated(scheme)) {
      proto = std::make_unique<CoordinatedProtocol>(
          *w.rt, CoordinatedProtocol::Config{.scheme = scheme,
                                             .interval = Duration::secs(3),
                                             .rounds = 0});
    } else {
      proto = std::make_unique<IndependentProtocol>(
          *w.rt, IndependentProtocol::Config{.scheme = scheme,
                                             .interval = Duration::secs(3),
                                             .count = 0});
    }
    proto->start();
    if (with_failure) {
      recovery = std::make_unique<RecoveryManager>(*w.rt, *proto);
      recovery->inject_failure_at(
          des::TimePoint::origin() + Duration::millis(7000 + 100 * static_cast<int>(seed)),
          static_cast<Rank>(seed % 8));
    }
    w.rt->start_apps();
    w.rt->run_to_completion();
    return w.rt->result_digest().value();
  };
  EXPECT_EQ(run(true), run(false)) << to_string(scheme) << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPatternRecovery,
    ::testing::Combine(::testing::Values(Scheme::kCoordNB, Scheme::kCoordNBMS,
                                         Scheme::kIndep, Scheme::kIndepM),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, std::uint64_t>>& param_info) {
      std::string name(to_string(std::get<0>(param_info.param)));
      for (char& c : name) {
        if (c == '_') c = '0';
      }
      return name + "s" + std::to_string(std::get<1>(param_info.param));
    });

// Collective-heavy application: barrier + rotating-root broadcast +
// allreduce every iteration. Collectives are built from tagged
// point-to-point messages, so a checkpoint cut that lands between their
// phases stresses the channel-log/replay machinery hardest.
AppFn make_collective_app(std::uint32_t iterations) {
  return [iterations](AppContext& ctx) {
    struct State {
      std::uint32_t iter = 0;
      double acc = 0;
    };
    auto& st = ctx.state<State>();
    if (ctx.fresh()) st = State{};
    ctx.register_value("iter", st.iter);
    ctx.register_value("acc", st.acc);
    ctx.ready();
    for (; st.iter < iterations; ++st.iter) {
      ctx.checkpoint_here();
      ctx.compute(8e4);
      ctx.barrier();
      const Rank root = st.iter % ctx.nprocs();
      auto data = ctx.rank() == root
                      ? chklib::to_bytes<double>(static_cast<double>(st.iter))
                      : std::vector<std::byte>{};
      const double got = chklib::from_bytes<double>(ctx.broadcast(root, std::move(data)));
      st.acc += ctx.allreduce_sum(got + static_cast<double>(ctx.rank()));
    }
    if (ctx.rank() == 0) ctx.report_result(st.acc);
  };
}

TEST(Collectives, SurviveCheckpointingAndFailure) {
  auto run = [](Scheme scheme, bool fail) {
    World w;
    w.rt->set_app("coll", make_collective_app(60));
    std::unique_ptr<Protocol> proto;
    std::unique_ptr<RecoveryManager> recovery;
    if (scheme != Scheme::kNone) {
      if (is_coordinated(scheme)) {
        proto = std::make_unique<CoordinatedProtocol>(
            *w.rt, CoordinatedProtocol::Config{.scheme = scheme,
                                               .interval = Duration::secs(4),
                                               .rounds = 0});
      } else {
        proto = std::make_unique<IndependentProtocol>(
            *w.rt, IndependentProtocol::Config{.scheme = scheme,
                                               .interval = Duration::secs(4),
                                               .count = 0});
      }
      proto->start();
      if (fail) {
        recovery = std::make_unique<RecoveryManager>(*w.rt, *proto);
        recovery->inject_failure_at(des::TimePoint::origin() + Duration::secs(11), 2);
      }
    }
    w.rt->start_apps();
    w.rt->run_to_completion();
    return w.rt->result_digest().value();
  };
  const double expected = run(Scheme::kNone, false);
  EXPECT_EQ(run(Scheme::kCoordNB, false), expected);
  EXPECT_EQ(run(Scheme::kCoordNB, true), expected);
  EXPECT_EQ(run(Scheme::kCoordNBMS, true), expected);
  EXPECT_EQ(run(Scheme::kIndep, true), expected);
  EXPECT_EQ(run(Scheme::kIndepM, true), expected);
}

TEST(Protocols, DeterministicAcrossRuns) {
  auto run_once = [] {
    World w(8, 7);
    w.rt->set_app("ring", make_ring_app(150, 1e5));
    CoordinatedProtocol proto(*w.rt, {.scheme = Scheme::kCoordNBMS,
                                      .interval = Duration::secs(6),
                                      .rounds = 3});
    proto.start();
    w.rt->start_apps();
    w.rt->run_to_completion();
    return std::pair{w.rt->apps_finished_at().to_nanos(), w.rt->result_digest().value()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace chk::chklib
