// Application benchmark tests: every app's parallel result is verified
// against a sequential reference (bit-exact where the algorithm allows),
// runs deterministically, and survives checkpoint/rollback cycles with an
// unchanged result.
#include <gtest/gtest.h>

#include "apps/asp.hpp"
#include "apps/gauss.hpp"
#include "apps/ising.hpp"
#include "apps/nbody.hpp"
#include "apps/nqueens.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "harness/experiment.hpp"

namespace chk::apps {
namespace {

using harness::ExperimentConfig;
using harness::run_experiment;
using harness::Scheme;

ExperimentConfig base_config(std::string label, AppFn app) {
  ExperimentConfig config;
  config.label = std::move(label);
  config.app = std::move(app);
  return config;
}

double run_digest(AppFn app, std::size_t nodes = 8) {
  ExperimentConfig config = base_config("t", std::move(app));
  config.machine.num_nodes = nodes;
  const auto result = run_experiment(config);
  return result.digest.value();
}

TEST(Sor, MatchesSequentialReference) {
  const SorParams params{.n = 64, .iterations = 30};
  EXPECT_EQ(run_digest(make_sor(params)), sor_reference_digest(params));
}

TEST(Sor, MatchesReferenceOnOtherRankCounts) {
  const SorParams params{.n = 48, .iterations = 20};
  const double expected = sor_reference_digest(params);
  for (std::size_t nodes : {1u, 2u, 4u}) {
    EXPECT_EQ(run_digest(make_sor(params), nodes), expected) << nodes << " nodes";
  }
}

TEST(Sor, HeatSpreadsFromBoundary) {
  // After enough iterations the interior must be warmer than at start.
  const SorParams params{.n = 32, .iterations = 200};
  EXPECT_GT(run_digest(make_sor(params)), 0.0);
}

TEST(Asp, MatchesSequentialFloyd) {
  const AspParams params{.n = 48};
  EXPECT_EQ(run_digest(make_asp(params)), asp_reference_digest(params));
}

TEST(Asp, PartitionIndependent) {
  const AspParams params{.n = 40};
  const double expected = asp_reference_digest(params);
  for (std::size_t nodes : {1u, 4u, 8u}) {
    EXPECT_EQ(run_digest(make_asp(params), nodes), expected);
  }
}

TEST(Asp, TriangleInequalityHolds) {
  // Property of the output: d(i,j) <= d(i,k) + d(k,j) for the final matrix.
  const std::size_t n = 24;
  std::vector<std::int32_t> dist(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) dist[i * n + j] = asp_edge_weight(i, j, 100);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dist[i * n + j] = std::min(dist[i * n + j], dist[i * n + k] + dist[k * n + j]);
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_LE(dist[i * n + j], dist[i * n + k] + dist[k * n + j]);
      }
    }
  }
}

TEST(Gauss, MatchesSequentialElimination) {
  const GaussParams params{.n = 48};
  EXPECT_EQ(run_digest(make_gauss(params)), gauss_reference_digest(params));
}

TEST(Gauss, PartitionIndependent) {
  const GaussParams params{.n = 40};
  const double expected = gauss_reference_digest(params);
  for (std::size_t nodes : {1u, 2u, 8u}) {
    EXPECT_EQ(run_digest(make_gauss(params), nodes), expected);
  }
}

TEST(Nbody, MatchesBlockOrderedReference) {
  const NbodyParams params{.bodies = 64, .steps = 5};
  EXPECT_EQ(run_digest(make_nbody(params)), nbody_reference_digest(params, 8));
}

TEST(Nbody, UnevenBlocksStillCorrect) {
  const NbodyParams params{.bodies = 61, .steps = 3};  // 61 % 8 != 0
  EXPECT_EQ(run_digest(make_nbody(params)), nbody_reference_digest(params, 8));
}

TEST(Tsp, FindsTheOptimum) {
  const TspParams params{.cities = 9};
  EXPECT_EQ(run_digest(make_tsp(params)), tsp_reference_digest(params));
}

TEST(Tsp, OptimumIndependentOfWorkerCount) {
  const TspParams params{.cities = 9};
  const double expected = tsp_reference_digest(params);
  for (std::size_t nodes : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(run_digest(make_tsp(params), nodes), expected);
  }
}

TEST(NQueens, KnownCounts) {
  EXPECT_EQ(run_digest(make_nqueens({.n = 8})), 92.0);
  EXPECT_EQ(run_digest(make_nqueens({.n = 10})), 724.0);
}

TEST(NQueens, CountIndependentOfRankCount) {
  for (std::size_t nodes : {1u, 3u, 8u}) {
    EXPECT_EQ(run_digest(make_nqueens({.n = 9}), nodes), 352.0);
  }
}

TEST(Ising, DeterministicAcrossRuns) {
  const IsingParams params{.n = 64, .sweeps = 10};
  EXPECT_EQ(run_digest(make_ising(params)), run_digest(make_ising(params)));
}

TEST(Ising, MagnetizationWithinBounds) {
  const IsingParams params{.n = 64, .sweeps = 10};
  const double m = run_digest(make_ising(params));
  EXPECT_LE(std::abs(m), 64.0 * 64.0);
}

TEST(Ising, ColdFerromagnetOrdersHotDoesNot) {
  // Physical sanity (uniform couplings): far below the critical
  // temperature the lattice magnetizes; far above it stays disordered.
  const double cold =
      run_digest(make_ising({.n = 48, .sweeps = 60, .beta = 1.2, .glass = false}));
  const double hot =
      run_digest(make_ising({.n = 48, .sweeps = 60, .beta = 0.05, .glass = false}));
  const double sites = 48.0 * 48.0;
  EXPECT_GT(std::abs(cold) / sites, 0.7);
  EXPECT_LT(std::abs(hot) / sites, 0.2);
}

TEST(Ising, SpinGlassStaysFrustrated) {
  // With quenched random couplings the system cannot globally magnetize
  // even at low temperature (frustration).
  const double cold = run_digest(make_ising({.n = 48, .sweeps = 60, .beta = 1.2}));
  EXPECT_LT(std::abs(cold) / (48.0 * 48.0), 0.3);
}

// ---- checkpoint/recovery round trips for every app ------------------------

struct RecoveryCase {
  const char* name;
  AppFn app;
};

class AppRecoveryTest : public ::testing::TestWithParam<int> {};

std::vector<RecoveryCase> recovery_cases() {
  std::vector<RecoveryCase> cases;
  cases.push_back({"SOR", make_sor({.n = 64, .iterations = 60})});
  cases.push_back({"ISING", make_ising({.n = 64, .sweeps = 60})});
  cases.push_back({"ASP", make_asp({.n = 96})});
  cases.push_back({"GAUSS", make_gauss({.n = 96})});
  cases.push_back({"NBODY", make_nbody({.bodies = 96, .steps = 30})});
  cases.push_back({"TSP", make_tsp({.cities = 10})});
  cases.push_back({"NQUEENS", make_nqueens({.n = 10})});
  return cases;
}

TEST_P(AppRecoveryTest, CoordinatedRecoveryPreservesResult) {
  const auto test_case = recovery_cases()[static_cast<std::size_t>(GetParam())];
  ExperimentConfig config = base_config(test_case.name, test_case.app);
  const auto normal = run_experiment(config);

  config.scheme = Scheme::kCoordNB;
  config.checkpoints = 0;  // checkpoint until the run ends
  config.interval = des::Duration::seconds(normal.exec_time_s / 5.0);
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.6), 1};
  const auto recovered = run_experiment(config);
  ASSERT_EQ(recovered.recoveries.size(), 1u) << test_case.name;
  EXPECT_EQ(recovered.digest.value(), normal.digest.value()) << test_case.name;
  EXPECT_GT(recovered.exec_time_s, normal.exec_time_s) << test_case.name;
}

TEST_P(AppRecoveryTest, IndependentDominoRecoveryPreservesResult) {
  const auto test_case = recovery_cases()[static_cast<std::size_t>(GetParam())];
  ExperimentConfig config = base_config(test_case.name, test_case.app);
  const auto normal = run_experiment(config);

  config.scheme = Scheme::kIndep;
  config.checkpoints = 2;
  config.interval = des::Duration::seconds(normal.exec_time_s / 4.0);
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.7), 4};
  const auto recovered = run_experiment(config);
  ASSERT_EQ(recovered.recoveries.size(), 1u) << test_case.name;
  EXPECT_EQ(recovered.digest.value(), normal.digest.value()) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppRecoveryTest, ::testing::Range(0, 7),
    [](const ::testing::TestParamInfo<int>& param_info) {
      return std::string(recovery_cases()[static_cast<std::size_t>(param_info.param)].name);
    });

}  // namespace
}  // namespace chk::apps
