// Tests for the cluster-membership service: heartbeat failure detection,
// quorum-tracked views, deterministic coordinator election and fencing.
//
//   * config validation: nonsense timeouts/quorums are rejected;
//   * zero-overhead when off is covered by the transport determinism guard
//     (no membership config => bit-identical pre-membership traces);
//   * clean links: heartbeats flow, nobody is suspected, the answer and
//     the invariants are untouched;
//   * false-suspicion storm (the headline regime): an aggressive detection
//     timeout under 20% link loss plus periodic partitions of a live rank
//     wrongly evicts it — the rank is fenced, not rolled back, rejoins
//     after the partition heals, and every scheme still produces the
//     loss-free digest;
//   * coordinator death mid-round: the elected coordinator is killed while
//     a checkpoint round is in flight; the cluster detects the death,
//     elects a successor (view % N), recovers, and completes — including
//     the NBMS stagger-token handoff;
//   * wiring guards: coordinator-targeted strikes without a membership
//     service, and membership over raw lossy links, are configuration
//     errors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "apps/sor.hpp"
#include "chklib/comm/link_fault.hpp"
#include "chklib/membership/service.hpp"
#include "des/simulator.hpp"
#include "faultsim/injector.hpp"
#include "harness/experiment.hpp"

namespace chk {
namespace {

using chklib::LinkFaultConfig;
using chklib::Scheme;
using chklib::membership::MembershipConfig;
using des::Duration;

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(MembershipConfig, DefaultsValidate) {
  MembershipConfig config;
  EXPECT_NO_THROW(config.validate(8));
  EXPECT_NO_THROW(config.validate(64));
}

TEST(MembershipConfig, RejectsNonsense) {
  MembershipConfig config;
  EXPECT_THROW(config.validate(0), std::invalid_argument);
  EXPECT_THROW(config.validate(65), std::invalid_argument);  // 64-bit bitmap

  config = MembershipConfig{};
  config.hb_period = Duration::zero();
  EXPECT_THROW(config.validate(8), std::invalid_argument);

  config = MembershipConfig{};
  config.detect_timeout = config.hb_period;  // <= hb_period can never settle
  EXPECT_THROW(config.validate(8), std::invalid_argument);

  config = MembershipConfig{};
  config.rejoin_grace = Duration::seconds(-1);
  EXPECT_THROW(config.validate(8), std::invalid_argument);

  config = MembershipConfig{};
  config.suspect_quorum = 0;
  EXPECT_THROW(config.validate(8), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

harness::ExperimentConfig membership_sor(Scheme scheme) {
  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.machine.num_nodes = 8;
  config.interval = Duration::millis(200);
  config.checkpoints = 0;  // keep checkpointing while the run lasts
  config.verify = true;
  return config;
}

// The false-suspicion storm: an aggressive 600 ms detection timeout under
// 20% loss, with rank 3 periodically cut off for longer than the timeout.
// The partition windows are deterministic (no RNG draws), so every run of
// this config wrongly evicts the same live rank.
harness::ExperimentConfig storm_config(Scheme scheme) {
  auto config = membership_sor(scheme);
  LinkFaultConfig faults;
  faults.drop = 0.2;
  faults.duplicate = 0.1;
  faults.corrupt = 0.05;
  faults.partition_rank = 3;
  faults.partition_period_s = 6.0;
  faults.partition_duration_s = 1.5;
  config.link_faults = faults;
  MembershipConfig membership;
  membership.hb_period = Duration::millis(250);
  membership.detect_timeout = Duration::millis(600);
  config.membership = membership;
  return config;
}

// ---------------------------------------------------------------------------
// Clean links: detection never fires, the run is untouched.
// ---------------------------------------------------------------------------

TEST(Membership, CleanLinksNoFalseSuspicions) {
  auto config = membership_sor(Scheme::kCoordNBM);
  const auto normal = harness::run_normal(config);
  ASSERT_TRUE(normal.digest.has_value());

  config.membership = MembershipConfig{};  // default 2 s timeout
  const auto result = harness::run_experiment(config);
  EXPECT_GT(result.heartbeats_sent, 0u);
  EXPECT_EQ(result.suspicions, 0u);
  EXPECT_EQ(result.views_established, 0u);
  EXPECT_EQ(result.evictions, 0u);
  EXPECT_EQ(result.membership_crashes, 0u);
  EXPECT_EQ(result.digest, normal.digest);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_GT(result.invariant_checks, 0u);
}

TEST(Membership, MembershipRunsAreDeterministic) {
  const auto report = harness::check_determinism(storm_config(Scheme::kCoordNB));
  EXPECT_TRUE(report.deterministic);
  EXPECT_GT(report.first.heartbeats_sent, 0u);
  EXPECT_GT(report.first.suspicions, 0u);
}

// ---------------------------------------------------------------------------
// The false-suspicion storm.
// ---------------------------------------------------------------------------

TEST(Membership, FalseSuspicionStormFencesAndRejoinsEveryScheme) {
  const Scheme schemes[] = {Scheme::kCoordNB, Scheme::kCoordNBM,
                            Scheme::kCoordNBMS, Scheme::kIndep, Scheme::kIndepM};
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  for (Scheme scheme : schemes) {
    const auto config = storm_config(scheme);
    const auto result = harness::run_experiment(config);
    const std::string what = std::string(to_string(scheme));

    // The partition starved rank 3's heartbeats past the timeout: it was
    // suspected, evicted by an established view, and — being alive —
    // fenced rather than rolled back, then re-admitted after the heal.
    EXPECT_GT(result.partition_drops, 0u) << what;
    EXPECT_GT(result.suspicions, 0u) << what;
    EXPECT_GE(result.views_established, 2u) << what;  // eviction + rejoin
    EXPECT_GE(result.evictions, 1u) << what;
    EXPECT_GE(result.wrongful_evictions, 1u) << what;
    EXPECT_GE(result.rejoins, 1u) << what;

    // Nobody actually died: no crash was absorbed, no rollback ran.
    EXPECT_EQ(result.membership_crashes, 0u) << what;
    EXPECT_EQ(result.forced_recoveries, 0u) << what;
    EXPECT_TRUE(result.recoveries.empty()) << what;

    // Fencing is safe: the answer and the invariants survive the storm.
    EXPECT_EQ(result.digest, normal.digest) << what;
    EXPECT_EQ(result.invariant_violations, 0u) << what;
    EXPECT_GT(result.invariant_checks, 0u) << what;
  }
}

// ---------------------------------------------------------------------------
// Coordinator death mid-round: detection, election, recovery, completion.
// ---------------------------------------------------------------------------

TEST(Membership, CoordinatorDeathMidRoundElectsSuccessor) {
  // Rank 0 is the initial coordinator (view 0, coordinator = view % N).
  // Killing it mid-run forces the full path: silence -> suspicion ->
  // quorum -> view change (electing rank 1) -> crash-eviction recovery.
  // kCoordNBMS doubles as the stagger-token handoff test: the ring token
  // may be at the dead coordinator, and the run must still complete.
  const Scheme schemes[] = {Scheme::kCoordNB, Scheme::kCoordNBS,
                            Scheme::kCoordNBMS};
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  for (Scheme scheme : schemes) {
    auto config = membership_sor(scheme);
    MembershipConfig membership;
    membership.detect_timeout = Duration::millis(600);
    config.membership = membership;
    config.failure = harness::FailureSpec{
        des::TimePoint::origin() + Duration::seconds(normal.exec_time_s * 0.5), 0};
    const auto result = harness::run_experiment(config);
    const std::string what = std::string(to_string(scheme));

    EXPECT_EQ(result.membership_crashes, 1u) << what;
    EXPECT_GE(result.views_established, 1u) << what;
    EXPECT_GE(result.evictions, 1u) << what;
    EXPECT_EQ(result.wrongful_evictions, 0u) << what;  // rank 0 really died
    // Detection beat the deadman fallback: the eviction started recovery.
    EXPECT_EQ(result.forced_recoveries, 0u) << what;
    ASSERT_GE(result.recoveries.size(), 1u) << what;

    EXPECT_EQ(result.digest, normal.digest) << what;
    EXPECT_GT(result.committed_rounds, 0u) << what;
    EXPECT_EQ(result.invariant_violations, 0u) << what;
    EXPECT_GT(result.exec_time_s, normal.exec_time_s) << what;
  }
}

// ---------------------------------------------------------------------------
// Detector selection (binary vs phi-accrual).
// ---------------------------------------------------------------------------

TEST(MembershipConfig, DetectorParsingAndValidation) {
  using chklib::membership::Detector;
  using chklib::membership::parse_detector;
  EXPECT_EQ(parse_detector("binary"), Detector::kBinaryTimeout);
  EXPECT_EQ(parse_detector("phi"), Detector::kPhiAccrual);
  EXPECT_THROW((void)parse_detector("adaptive"), std::invalid_argument);
  EXPECT_STREQ(to_string(Detector::kBinaryTimeout), "binary");
  EXPECT_STREQ(to_string(Detector::kPhiAccrual), "phi");

  // Accrual tuning is validated only when the phi detector is selected.
  MembershipConfig config;
  config.accrual.threshold_milli = 0;
  EXPECT_NO_THROW(config.validate(8));  // binary mode: accrual unused
  config.detector = Detector::kPhiAccrual;
  EXPECT_THROW(config.validate(8), std::invalid_argument);
  config.accrual.threshold_milli = 8000;
  EXPECT_NO_THROW(config.validate(8));
}

// A 20% loss storm with NO partition: every rank is live and beaconing,
// only retransmission bursts delay heartbeats. The headline A/B — under the
// same seed the aggressive binary timeout evicts live ranks while the phi
// detector, which learns the loss-widened inter-arrival distribution, does
// not. Mirrors the BENCH_membership.json pin.
harness::ExperimentConfig loss_storm_config(Scheme scheme) {
  auto config = membership_sor(scheme);
  LinkFaultConfig faults;
  faults.drop = 0.2;
  config.link_faults = faults;
  return config;
}

TEST(Membership, LossStormBinaryEvictsLiveRanksPhiDoesNot) {
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  // Binary, aggressive 600 ms timeout: loss alone wrongly evicts.
  auto binary = loss_storm_config(Scheme::kCoordNB);
  MembershipConfig membership;
  membership.hb_period = Duration::millis(250);
  membership.detect_timeout = Duration::millis(600);
  binary.membership = membership;
  const auto binary_result = harness::run_experiment(binary);
  EXPECT_GE(binary_result.wrongful_evictions, 1u);
  EXPECT_GE(binary_result.rejoins, 1u);
  // Hysteresis: plenty of single-observer suspicions receded before any
  // quorum assembled — retracted without a fence or view change.
  EXPECT_GE(binary_result.suspicions_cleared, 1u);
  EXPECT_EQ(binary_result.membership_crashes, 0u);
  EXPECT_EQ(binary_result.digest, normal.digest);
  EXPECT_EQ(binary_result.invariant_violations, 0u);

  // Phi at the classic threshold 8, same seed, same loss: zero evictions.
  auto phi = loss_storm_config(Scheme::kCoordNB);
  MembershipConfig phi_membership;
  phi_membership.hb_period = Duration::millis(250);
  phi_membership.detector = chklib::membership::Detector::kPhiAccrual;
  phi.membership = phi_membership;
  const auto phi_result = harness::run_experiment(phi);
  EXPECT_GT(phi_result.heartbeats_sent, 0u);
  EXPECT_EQ(phi_result.wrongful_evictions, 0u);
  EXPECT_EQ(phi_result.evictions, 0u);
  EXPECT_EQ(phi_result.views_established, 0u);
  EXPECT_EQ(phi_result.membership_crashes, 0u);
  EXPECT_EQ(phi_result.digest, normal.digest);
  EXPECT_EQ(phi_result.invariant_violations, 0u);
  EXPECT_GT(phi_result.invariant_checks, 0u);
}

// An aggressive phi threshold under the partition storm walks the full
// phi-mode eviction path: fence, join petitions, accrual-window reset and
// beacon re-phase on rejoin — and the answer still survives.
harness::ExperimentConfig phi_storm_config(Scheme scheme) {
  auto config = storm_config(scheme);
  config.membership->detector = chklib::membership::Detector::kPhiAccrual;
  config.membership->accrual.threshold_milli = 1000;  // phi 1: hair-trigger
  return config;
}

TEST(Membership, PhiStormFencesRejoinsAndStaysDeterministic) {
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  const auto config = phi_storm_config(Scheme::kCoordNBM);
  const auto result = harness::run_experiment(config);
  EXPECT_GT(result.suspicions, 0u);
  EXPECT_GE(result.evictions, 1u);
  EXPECT_GE(result.wrongful_evictions, 1u);
  EXPECT_GE(result.rejoins, 1u);
  EXPECT_EQ(result.membership_crashes, 0u);
  EXPECT_EQ(result.forced_recoveries, 0u);
  EXPECT_EQ(result.digest, normal.digest);
  EXPECT_EQ(result.invariant_violations, 0u);

  // The rejoin re-phase is draw-free: run-twice bit-identity holds.
  const auto report = harness::check_determinism(phi_storm_config(Scheme::kCoordNBM));
  EXPECT_TRUE(report.deterministic);
}

// ---------------------------------------------------------------------------
// Real crash: phi detects it, within the binary detector's envelope.
// ---------------------------------------------------------------------------

TEST(Membership, PhiDetectsRealCrashWithinBinaryEnvelope) {
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  const auto kill_run = [&](chklib::membership::Detector detector) {
    auto config = membership_sor(Scheme::kCoordNB);
    MembershipConfig membership;
    membership.detect_timeout = Duration::millis(600);
    membership.detector = detector;
    config.membership = membership;
    config.failure = harness::FailureSpec{
        des::TimePoint::origin() + Duration::seconds(normal.exec_time_s * 0.5), 0};
    return harness::run_experiment(config);
  };

  const auto binary = kill_run(chklib::membership::Detector::kBinaryTimeout);
  const auto phi = kill_run(chklib::membership::Detector::kPhiAccrual);

  for (const auto* result : {&binary, &phi}) {
    EXPECT_EQ(result->membership_crashes, 1u);
    EXPECT_EQ(result->detections, 1u);
    ASSERT_EQ(result->detection_latency_ns.size(), 1u);
    EXPECT_GT(result->detection_latency_ns[0], 0);
    EXPECT_EQ(result->wrongful_evictions, 0u);
    EXPECT_EQ(result->forced_recoveries, 0u);  // detection beat the deadman
    EXPECT_EQ(result->digest, normal.digest);
    EXPECT_EQ(result->invariant_violations, 0u);
  }
  // The learned distribution must not cost more than 2x the hand-tuned
  // binary timeout on a real death (the acceptance envelope).
  EXPECT_LE(phi.detection_latency_ns[0], 2 * binary.detection_latency_ns[0]);
}

// ---------------------------------------------------------------------------
// Wiring guards.
// ---------------------------------------------------------------------------

TEST(Membership, TargetCoordinatorRequiresMembership) {
  auto config = membership_sor(Scheme::kCoordNB);
  faultsim::FaultPlan plan;
  plan.max_failures = 1;
  plan.target_coordinator = true;
  config.faults = plan;
  EXPECT_THROW((void)harness::run_experiment(config), std::invalid_argument);
}

TEST(Membership, TargetCoordinatorRequiresCoordinatedScheme) {
  auto config = membership_sor(Scheme::kIndep);
  config.membership = MembershipConfig{};
  faultsim::FaultPlan plan;
  plan.max_failures = 1;
  plan.target_coordinator = true;
  config.faults = plan;
  EXPECT_THROW((void)harness::run_experiment(config), std::invalid_argument);
}

TEST(Membership, MembershipOverRawLossyLinksIsRejected) {
  auto config = storm_config(Scheme::kCoordNB);
  config.reliable_transport = false;
  EXPECT_THROW((void)harness::run_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace chk
