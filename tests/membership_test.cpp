// Tests for the cluster-membership service: heartbeat failure detection,
// quorum-tracked views, deterministic coordinator election and fencing.
//
//   * config validation: nonsense timeouts/quorums are rejected;
//   * zero-overhead when off is covered by the transport determinism guard
//     (no membership config => bit-identical pre-membership traces);
//   * clean links: heartbeats flow, nobody is suspected, the answer and
//     the invariants are untouched;
//   * false-suspicion storm (the headline regime): an aggressive detection
//     timeout under 20% link loss plus periodic partitions of a live rank
//     wrongly evicts it — the rank is fenced, not rolled back, rejoins
//     after the partition heals, and every scheme still produces the
//     loss-free digest;
//   * coordinator death mid-round: the elected coordinator is killed while
//     a checkpoint round is in flight; the cluster detects the death,
//     elects a successor (view % N), recovers, and completes — including
//     the NBMS stagger-token handoff;
//   * wiring guards: coordinator-targeted strikes without a membership
//     service, and membership over raw lossy links, are configuration
//     errors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "apps/sor.hpp"
#include "chklib/comm/link_fault.hpp"
#include "chklib/membership/service.hpp"
#include "des/simulator.hpp"
#include "faultsim/injector.hpp"
#include "harness/experiment.hpp"

namespace chk {
namespace {

using chklib::LinkFaultConfig;
using chklib::Scheme;
using chklib::membership::MembershipConfig;
using des::Duration;

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(MembershipConfig, DefaultsValidate) {
  MembershipConfig config;
  EXPECT_NO_THROW(config.validate(8));
  EXPECT_NO_THROW(config.validate(64));
}

TEST(MembershipConfig, RejectsNonsense) {
  MembershipConfig config;
  EXPECT_THROW(config.validate(0), std::invalid_argument);
  EXPECT_THROW(config.validate(65), std::invalid_argument);  // 64-bit bitmap

  config = MembershipConfig{};
  config.hb_period = Duration::zero();
  EXPECT_THROW(config.validate(8), std::invalid_argument);

  config = MembershipConfig{};
  config.detect_timeout = config.hb_period;  // <= hb_period can never settle
  EXPECT_THROW(config.validate(8), std::invalid_argument);

  config = MembershipConfig{};
  config.rejoin_grace = Duration::seconds(-1);
  EXPECT_THROW(config.validate(8), std::invalid_argument);

  config = MembershipConfig{};
  config.suspect_quorum = 0;
  EXPECT_THROW(config.validate(8), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

harness::ExperimentConfig membership_sor(Scheme scheme) {
  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.machine.num_nodes = 8;
  config.interval = Duration::millis(200);
  config.checkpoints = 0;  // keep checkpointing while the run lasts
  config.verify = true;
  return config;
}

// The false-suspicion storm: an aggressive 600 ms detection timeout under
// 20% loss, with rank 3 periodically cut off for longer than the timeout.
// The partition windows are deterministic (no RNG draws), so every run of
// this config wrongly evicts the same live rank.
harness::ExperimentConfig storm_config(Scheme scheme) {
  auto config = membership_sor(scheme);
  LinkFaultConfig faults;
  faults.drop = 0.2;
  faults.duplicate = 0.1;
  faults.corrupt = 0.05;
  faults.partition_rank = 3;
  faults.partition_period_s = 6.0;
  faults.partition_duration_s = 1.5;
  config.link_faults = faults;
  MembershipConfig membership;
  membership.hb_period = Duration::millis(250);
  membership.detect_timeout = Duration::millis(600);
  config.membership = membership;
  return config;
}

// ---------------------------------------------------------------------------
// Clean links: detection never fires, the run is untouched.
// ---------------------------------------------------------------------------

TEST(Membership, CleanLinksNoFalseSuspicions) {
  auto config = membership_sor(Scheme::kCoordNBM);
  const auto normal = harness::run_normal(config);
  ASSERT_TRUE(normal.digest.has_value());

  config.membership = MembershipConfig{};  // default 2 s timeout
  const auto result = harness::run_experiment(config);
  EXPECT_GT(result.heartbeats_sent, 0u);
  EXPECT_EQ(result.suspicions, 0u);
  EXPECT_EQ(result.views_established, 0u);
  EXPECT_EQ(result.evictions, 0u);
  EXPECT_EQ(result.membership_crashes, 0u);
  EXPECT_EQ(result.digest, normal.digest);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_GT(result.invariant_checks, 0u);
}

TEST(Membership, MembershipRunsAreDeterministic) {
  const auto report = harness::check_determinism(storm_config(Scheme::kCoordNB));
  EXPECT_TRUE(report.deterministic);
  EXPECT_GT(report.first.heartbeats_sent, 0u);
  EXPECT_GT(report.first.suspicions, 0u);
}

// ---------------------------------------------------------------------------
// The false-suspicion storm.
// ---------------------------------------------------------------------------

TEST(Membership, FalseSuspicionStormFencesAndRejoinsEveryScheme) {
  const Scheme schemes[] = {Scheme::kCoordNB, Scheme::kCoordNBM,
                            Scheme::kCoordNBMS, Scheme::kIndep, Scheme::kIndepM};
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  for (Scheme scheme : schemes) {
    const auto config = storm_config(scheme);
    const auto result = harness::run_experiment(config);
    const std::string what = std::string(to_string(scheme));

    // The partition starved rank 3's heartbeats past the timeout: it was
    // suspected, evicted by an established view, and — being alive —
    // fenced rather than rolled back, then re-admitted after the heal.
    EXPECT_GT(result.partition_drops, 0u) << what;
    EXPECT_GT(result.suspicions, 0u) << what;
    EXPECT_GE(result.views_established, 2u) << what;  // eviction + rejoin
    EXPECT_GE(result.evictions, 1u) << what;
    EXPECT_GE(result.wrongful_evictions, 1u) << what;
    EXPECT_GE(result.rejoins, 1u) << what;

    // Nobody actually died: no crash was absorbed, no rollback ran.
    EXPECT_EQ(result.membership_crashes, 0u) << what;
    EXPECT_EQ(result.forced_recoveries, 0u) << what;
    EXPECT_TRUE(result.recoveries.empty()) << what;

    // Fencing is safe: the answer and the invariants survive the storm.
    EXPECT_EQ(result.digest, normal.digest) << what;
    EXPECT_EQ(result.invariant_violations, 0u) << what;
    EXPECT_GT(result.invariant_checks, 0u) << what;
  }
}

// ---------------------------------------------------------------------------
// Coordinator death mid-round: detection, election, recovery, completion.
// ---------------------------------------------------------------------------

TEST(Membership, CoordinatorDeathMidRoundElectsSuccessor) {
  // Rank 0 is the initial coordinator (view 0, coordinator = view % N).
  // Killing it mid-run forces the full path: silence -> suspicion ->
  // quorum -> view change (electing rank 1) -> crash-eviction recovery.
  // kCoordNBMS doubles as the stagger-token handoff test: the ring token
  // may be at the dead coordinator, and the run must still complete.
  const Scheme schemes[] = {Scheme::kCoordNB, Scheme::kCoordNBS,
                            Scheme::kCoordNBMS};
  auto baseline = membership_sor(Scheme::kNone);
  const auto normal = harness::run_normal(baseline);
  ASSERT_TRUE(normal.digest.has_value());

  for (Scheme scheme : schemes) {
    auto config = membership_sor(scheme);
    MembershipConfig membership;
    membership.detect_timeout = Duration::millis(600);
    config.membership = membership;
    config.failure = harness::FailureSpec{
        des::TimePoint::origin() + Duration::seconds(normal.exec_time_s * 0.5), 0};
    const auto result = harness::run_experiment(config);
    const std::string what = std::string(to_string(scheme));

    EXPECT_EQ(result.membership_crashes, 1u) << what;
    EXPECT_GE(result.views_established, 1u) << what;
    EXPECT_GE(result.evictions, 1u) << what;
    EXPECT_EQ(result.wrongful_evictions, 0u) << what;  // rank 0 really died
    // Detection beat the deadman fallback: the eviction started recovery.
    EXPECT_EQ(result.forced_recoveries, 0u) << what;
    ASSERT_GE(result.recoveries.size(), 1u) << what;

    EXPECT_EQ(result.digest, normal.digest) << what;
    EXPECT_GT(result.committed_rounds, 0u) << what;
    EXPECT_EQ(result.invariant_violations, 0u) << what;
    EXPECT_GT(result.exec_time_s, normal.exec_time_s) << what;
  }
}

// ---------------------------------------------------------------------------
// Wiring guards.
// ---------------------------------------------------------------------------

TEST(Membership, TargetCoordinatorRequiresMembership) {
  auto config = membership_sor(Scheme::kCoordNB);
  faultsim::FaultPlan plan;
  plan.max_failures = 1;
  plan.target_coordinator = true;
  config.faults = plan;
  EXPECT_THROW((void)harness::run_experiment(config), std::invalid_argument);
}

TEST(Membership, TargetCoordinatorRequiresCoordinatedScheme) {
  auto config = membership_sor(Scheme::kIndep);
  config.membership = MembershipConfig{};
  faultsim::FaultPlan plan;
  plan.max_failures = 1;
  plan.target_coordinator = true;
  config.faults = plan;
  EXPECT_THROW((void)harness::run_experiment(config), std::invalid_argument);
}

TEST(Membership, MembershipOverRawLossyLinksIsRejected) {
  auto config = storm_config(Scheme::kCoordNB);
  config.reliable_transport = false;
  EXPECT_THROW((void)harness::run_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace chk
