// Tests for the stable-storage fault domain: the storage fault model
// (transient I/O errors, degraded windows, bit-rot), the retrying storage
// client, verified multi-generation recovery, checkpoint retention GC, and
// the fault domain's composition with crashes and lossy links.
//
//   * determinism guard: a present-but-inactive storage fault config, an
//     explicit retry policy and keep_depth=1 leave trace hashes and
//     completion times bit-identical to the pinned baselines;
//   * fault-model validation + determinism: out-of-range parameters are
//     rejected; equal seeds yield equal verdict streams;
//   * StableStorage semantics: a failed write leaves the previous version
//     intact, bit-rot flips exactly one byte of the durable image, a failed
//     read delivers no data but is fully timed;
//   * StorageClient: transient errors are retried with backoff until
//     success; exhausted budgets surface a terminal error; retry waits are
//     measured;
//   * protocols: independent schemes skip an interval on a terminal write
//     failure and still verify; coordinated recovery falls back past rotted
//     generations (generations_skipped) and still verifies; retention GC
//     keeps exactly keep_depth committed generations per rank;
//   * attribution: the blocked-window buckets (including
//     storage_retry_wait) stay an exact partition with retries present;
//   * Coord_NBS over raw lossy links fails fast with an actionable error
//     when a write-grant release is lost (instead of live-locking);
//   * campaigns: all five paper schemes verify under crashes + storage
//     faults; link + storage fault domains compose with independent
//     streams and byte-identical same-seed JSON.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/sor.hpp"
#include "chklib/ckpt/storage_client.hpp"
#include "chklib/comm/link_fault.hpp"
#include "chklib/proto/coordinated.hpp"
#include "chklib/runtime.hpp"
#include "des/simulator.hpp"
#include "faultsim/campaign.hpp"
#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "obs/attribution.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"
#include "xplorer/machine.hpp"
#include "xplorer/storage_fault.hpp"

namespace chk {
namespace {

using harness::ExperimentConfig;
using harness::Scheme;
using xplorer::IoStatus;
using xplorer::StorageFaultConfig;
using xplorer::StorageFaultModel;

#define CHK_REQUIRE_OBS() \
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with CHK_OBS=OFF"

ExperimentConfig small_sor(Scheme scheme) {
  ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.interval = des::Duration::millis(200);
  config.checkpoints = 0;  // keep checkpointing while failures extend the run
  return config;
}

/// Failure-free baseline (digest + exec-time anchor), computed once.
const harness::ExperimentResult& normal_run() {
  static const harness::ExperimentResult result = [] {
    auto config = small_sor(Scheme::kNone);
    return harness::run_normal(config);
  }();
  return result;
}

/// The default faulted-storage weather most tests use: transient errors on
/// a tenth of the operations, occasional bit-rot, mild degraded windows.
StorageFaultConfig default_weather() {
  StorageFaultConfig faults;
  faults.write_error = 0.1;
  faults.read_error = 0.1;
  faults.bitrot = 0.02;
  faults.degrade_factor = 1.5;
  return faults;
}

// ---------------------------------------------------------------------------
// Determinism guard: inactive storage faults + explicit retry policy +
// keep_depth=1 => bit-identical to the pinned pre-fault-domain baselines.
// ---------------------------------------------------------------------------

struct PinnedRow {
  const char* label;
  Scheme scheme;
  std::uint64_t trace_hash;
  double exec_time_s;
};

// Same values transport_test.cpp pins (seed 2026, 8 nodes, 3 checkpoints,
// 3 s interval). Any drift here means the storage fault domain, the retry
// client or the retained-set GC perturbs fault-free executions.
const PinnedRow kPinned[] = {
    {"SOR-384", Scheme::kNone, 0x48cbdcb214e83a01ull, 16.569530568000001},
    {"SOR-384", Scheme::kCoordNB, 0xd93ccedafd07f2bfull, 19.73585765},
    {"SOR-384", Scheme::kCoordNBM, 0xff1f9d266946e0e1ull, 18.087658350000002},
    {"SOR-384", Scheme::kCoordNBMS, 0x61f27678c952f6d0ull, 17.197612419000002},
    {"SOR-384", Scheme::kIndep, 0xc1ebb057981c7b23ull, 20.372140246000001},
    {"SOR-384", Scheme::kIndepM, 0x4f07c72445cb8dbfull, 17.642822625000001},
    {"NQUEENS-14", Scheme::kCoordNBMS, 0x545b6cd50cd8a4edull, 50.346957506000003},
};

TEST(StorageDeterminismGuard, InactiveFaultsMatchPinnedBaselines) {
  for (const PinnedRow& row : kPinned) {
    harness::ExperimentConfig config;
    config.label = row.label;
    config.app = harness::find_row(row.label).app;
    config.scheme = row.scheme;
    config.machine.num_nodes = 8;
    config.seed = 2026;
    config.checkpoints = 3;
    config.interval = des::Duration::secs(3);
    // Present but inactive: all probabilities zero, degradation off. The
    // model is not even installed; the client runs its single-attempt path.
    config.storage_faults = StorageFaultConfig{};
    config.storage_retry = chklib::RetryPolicy{};
    config.keep_depth = 1;
    const auto result = harness::run_experiment(config);
    const std::string what =
        std::string(row.label) + " + " + std::string(to_string(row.scheme));
    EXPECT_EQ(result.trace_hash, row.trace_hash) << what;
    EXPECT_EQ(result.exec_time_s, row.exec_time_s) << what;
    EXPECT_EQ(result.io_write_errors, 0u) << what;
    EXPECT_EQ(result.storage_retries, 0u) << what;
    EXPECT_EQ(result.ckpt_write_failures, 0u) << what;
    EXPECT_EQ(result.generations_skipped, 0u) << what;
  }
}

// ---------------------------------------------------------------------------
// Fault-model validation and determinism.
// ---------------------------------------------------------------------------

TEST(StorageFaults, RejectsOutOfRangeParameters) {
  StorageFaultConfig config;
  config.write_error = 1.0;  // certain loss would defeat any retry budget
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.write_error = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.write_error = 0.0;
  config.read_error = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.read_error = 0.0;
  config.bitrot = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.bitrot = 0.0;
  config.degrade_factor = 0.5;  // a speed-up is not a fault
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.degrade_factor = 2.0;
  config.degrade_gap_mean_s = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.degrade_gap_mean_s = 5.0;
  config.degrade_len_mean_s = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(StorageFaults, ModelConstructorValidatesToo) {
  StorageFaultConfig config;
  config.read_error = 2.0;
  EXPECT_THROW(StorageFaultModel(config, util::Rng(1)), std::invalid_argument);
}

TEST(StorageFaults, EnabledDetectsEachActiveFault) {
  StorageFaultConfig config;
  EXPECT_FALSE(config.enabled());  // all-zero = perfect storage
  EXPECT_NO_THROW(config.validate());
  config.write_error = 0.1;
  EXPECT_TRUE(config.enabled());
  config = {};
  config.read_error = 0.1;
  EXPECT_TRUE(config.enabled());
  config = {};
  config.bitrot = 0.01;
  EXPECT_TRUE(config.enabled());
  config = {};
  config.degrade_factor = 1.5;
  EXPECT_TRUE(config.enabled());
}

TEST(StorageFaults, EqualSeedsYieldEqualVerdictStreams) {
  auto config = default_weather();
  // chklint:allow(unique-fork-tags): deliberately mirrors the harness's
  // 0x510F storage-domain stream so the test pins the exact fault schedule
  // an experiment with this seed would see.
  StorageFaultModel a(config, util::Rng(7).fork(0x510Fu));
  // chklint:allow(unique-fork-tags): same pinned stream again on purpose.
  StorageFaultModel b(config, util::Rng(7).fork(0x510Fu));
  for (int i = 0; i < 200; ++i) {
    const auto va = a.judge_write();
    const auto vb = b.judge_write();
    EXPECT_EQ(va.io_error, vb.io_error);
    EXPECT_EQ(va.bitrot, vb.bitrot);
    EXPECT_EQ(va.rot_offset, vb.rot_offset);
    EXPECT_EQ(va.rot_mask, vb.rot_mask);
    EXPECT_EQ(a.judge_read().io_error, b.judge_read().io_error);
  }
  EXPECT_EQ(a.write_errors(), b.write_errors());
  EXPECT_EQ(a.read_errors(), b.read_errors());
  EXPECT_EQ(a.bitrot_flagged(), b.bitrot_flagged());
  // The weather actually happened at these rates.
  EXPECT_GT(a.write_errors(), 0u);
  EXPECT_GT(a.read_errors(), 0u);
}

// ---------------------------------------------------------------------------
// StableStorage under faults: failed writes, bit-rot, failed reads.
// ---------------------------------------------------------------------------

std::vector<std::byte> patterned_blob(std::size_t n) {
  std::vector<std::byte> blob(n);
  for (std::size_t i = 0; i < n; ++i) blob[i] = static_cast<std::byte>(i * 31 & 0xff);
  return blob;
}

TEST(StorageFaults, FailedWriteLeavesPreviousVersionIntact) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  const auto old_version = patterned_blob(512);

  sim.spawn("p", [&](des::Process& self) {
    // Establish a durable version on perfect storage, then make every
    // subsequent write fail.
    ASSERT_EQ(storage.write_blocking(self, 0, "k", old_version), IoStatus::kOk);
    StorageFaultConfig faults;
    faults.write_error = 0.999;
    storage.set_faults(faults, util::Rng(3));
    bool saw_failure = false;
    for (int attempt = 0; attempt < 20 && !saw_failure; ++attempt) {
      saw_failure =
          storage.write_blocking(self, 0, "k", patterned_blob(256)) == IoStatus::kIoError;
    }
    ASSERT_TRUE(saw_failure);
    // The failed attempt was fully timed but took no effect.
    EXPECT_EQ(storage.peek("k"), old_version);
    EXPECT_EQ(storage.size("k"), old_version.size());
  });
  sim.run();
  EXPECT_GE(storage.writes_failed(), 1u);
  EXPECT_EQ(storage.writes_failed(), storage.faults()->write_errors());
}

TEST(StorageFaults, BitrotFlipsExactlyOneDurableByte) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  StorageFaultConfig faults;
  faults.bitrot = 0.999;
  storage.set_faults(faults, util::Rng(5));
  const auto blob = patterned_blob(1024);

  sim.spawn("p", [&](des::Process& self) {
    // The write itself reports success — corruption is silent.
    ASSERT_EQ(storage.write_blocking(self, 0, "k", blob), IoStatus::kOk);
  });
  sim.run();
  ASSERT_GE(storage.faults()->bitrot_flagged(), 1u);
  const auto& durable = storage.peek("k");
  ASSERT_EQ(durable.size(), blob.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < blob.size(); ++i) diffs += durable[i] != blob[i];
  EXPECT_EQ(diffs, 1u);
}

TEST(StorageFaults, FailedReadDeliversNoDataButKeepsTheKey) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  const auto blob = patterned_blob(2048);

  sim.spawn("p", [&](des::Process& self) {
    ASSERT_EQ(storage.write_blocking(self, 0, "k", blob), IoStatus::kOk);
    StorageFaultConfig faults;
    faults.read_error = 0.999;
    storage.set_faults(faults, util::Rng(11));
    bool saw_failure = false;
    for (int attempt = 0; attempt < 20 && !saw_failure; ++attempt) {
      IoStatus status = IoStatus::kOk;
      const auto data = storage.read_blocking(self, 0, "k", &status);
      if (status == IoStatus::kIoError) {
        saw_failure = true;
        EXPECT_TRUE(data.empty());  // the error delivers nothing
      } else {
        EXPECT_EQ(data, blob);
      }
    }
    ASSERT_TRUE(saw_failure);
    EXPECT_TRUE(storage.exists("k"));  // the durable copy is untouched
  });
  sim.run();
  EXPECT_GE(storage.faults()->read_errors(), 1u);
}

// ---------------------------------------------------------------------------
// StorageClient: bounded retries with backoff, terminal failure, timing.
// ---------------------------------------------------------------------------

TEST(RetryPolicy, RejectsDegenerateParameters) {
  chklib::RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = {};
  policy.multiplier = 0.5;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = {};
  policy.initial_backoff = des::Duration::millis(-1);
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = {};
  EXPECT_NO_THROW(policy.validate());
}

TEST(StorageClient, RetriesTransientErrorsUntilSuccess) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  StorageFaultConfig faults;
  faults.write_error = 0.9;
  storage.set_faults(faults, util::Rng(21));
  chklib::StorageClient client(storage);
  chklib::RetryPolicy policy;
  policy.max_attempts = 64;
  policy.deadline = des::Duration::max();
  client.set_policy(policy);
  const auto blob = patterned_blob(4096);

  IoStatus status = IoStatus::kIoError;
  sim.spawn("p", [&](des::Process& self) {
    status = client.write_blocking(self, 0, "k", blob, obs::EventKind::kStableWrite,
                                   /*arg=*/0, /*app_blocking=*/true);
  });
  sim.run();
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_TRUE(storage.exists("k"));
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.write_failures(), 0u);
  // Every retry slept a backoff; the waits are measured.
  EXPECT_GT(client.retry_wait(), des::Duration::zero());
}

TEST(StorageClient, ExhaustedBudgetSurfacesTerminalError) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  StorageFaultConfig faults;
  faults.write_error = 0.999;
  storage.set_faults(faults, util::Rng(23));
  chklib::StorageClient client(storage);
  chklib::RetryPolicy policy;
  policy.max_attempts = 3;
  client.set_policy(policy);

  IoStatus status = IoStatus::kOk;
  sim.spawn("p", [&](des::Process& self) {
    status = client.write_blocking(self, 0, "k", patterned_blob(256),
                                   obs::EventKind::kStableWrite, 0, true);
  });
  sim.run();
  EXPECT_EQ(status, IoStatus::kIoError);
  EXPECT_FALSE(storage.exists("k"));
  EXPECT_EQ(client.write_failures(), 1u);
  EXPECT_EQ(client.retries(), 2u);  // attempts 2 and 3 of the budget
}

TEST(StorageClient, MissingKeyReadIsOkAndEmpty) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  chklib::StorageClient client(machine.storage());
  IoStatus status = IoStatus::kIoError;
  std::vector<std::byte> out;
  sim.spawn("p", [&](des::Process& self) {
    status = client.read_blocking(self, 0, "nope", &out);
  });
  sim.run();
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(client.read_failures(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol behaviour under storage faults (failure-free runs).
// ---------------------------------------------------------------------------

TEST(StorageFaults, IndependentSkipsIntervalOnTerminalWriteFailure) {
  // A short retry budget against a high error rate forces terminal write
  // failures; the independent scheme skips those intervals, keeps the
  // previous generation and still computes the right answer.
  auto config = small_sor(Scheme::kIndep);
  StorageFaultConfig faults;
  faults.write_error = 0.45;
  config.storage_faults = faults;
  chklib::RetryPolicy policy;
  policy.max_attempts = 2;
  config.storage_retry = policy;
  const auto result = harness::run_experiment(config);
  EXPECT_GE(result.ckpt_write_failures, 1u);
  EXPECT_GE(result.storage_retries, 1u);
  EXPECT_GT(result.local_checkpoints, 0u);
  EXPECT_EQ(result.digest, normal_run().digest);
  EXPECT_EQ(result.invariant_violations, 0u);
}

TEST(StorageFaults, StreamVariesTheWeatherNotTheAnswer) {
  auto config = small_sor(Scheme::kCoordNB);
  config.storage_faults = default_weather();
  const auto a = harness::run_experiment(config);
  config.storage_faults->stream = 7;
  const auto b = harness::run_experiment(config);
  EXPECT_EQ(a.digest, b.digest);          // the answer is fault-free either way
  EXPECT_NE(a.trace_hash, b.trace_hash);  // the disk weather is not
  EXPECT_EQ(a.digest, normal_run().digest);
  EXPECT_GT(a.io_write_errors + a.io_read_errors, 0u);
}

// ---------------------------------------------------------------------------
// Verified multi-generation recovery: rotted generations are discarded and
// the restore falls back to an older one.
// ---------------------------------------------------------------------------

TEST(StorageFaults, RecoveryFallsBackPastRottedGenerations) {
  // Nearly every durable image rots; the crash forces a restore whose
  // loaders detect the corruption, erase the bad generation and re-plan on
  // an older line — repeatedly, if needed, down to the initial state.
  auto config = small_sor(Scheme::kCoordNB);
  StorageFaultConfig faults;
  faults.bitrot = 0.9;
  config.storage_faults = faults;
  config.failure =
      harness::FailureSpec{des::TimePoint::origin() +
                               des::Duration::seconds(normal_run().exec_time_s * 0.55),
                           3};
  const auto result = harness::run_experiment(config);
  ASSERT_GE(result.recoveries.size(), 1u);
  EXPECT_GE(result.generations_skipped, 1u);
  EXPECT_GE(result.corrupt_discarded + result.generations_skipped, 1u);
  EXPECT_EQ(result.digest, normal_run().digest);
  EXPECT_EQ(result.invariant_violations, 0u);
}

// ---------------------------------------------------------------------------
// Retention GC: keep_depth generations per rank survive, older ones are
// reclaimed, and the default depth doubles when storage faults are on.
// ---------------------------------------------------------------------------

TEST(RetentionGc, CoordinatedKeepsExactlyKeepDepthGenerations) {
  auto base = small_sor(Scheme::kCoordNB);
  base.machine.num_nodes = 8;
  base.checkpoints = 4;

  auto depth1 = base;
  depth1.keep_depth = 1;
  const auto r1 = harness::run_experiment(depth1);
  auto depth2 = base;
  depth2.keep_depth = 2;
  const auto r2 = harness::run_experiment(depth2);

  // Non-incremental images: one per retained committed epoch per rank.
  EXPECT_EQ(r1.final_stored_checkpoints, 8u);
  EXPECT_EQ(r2.final_stored_checkpoints, 16u);
  EXPECT_GT(r1.reclaimed_bytes, 0u);  // pruned generations free real bytes
  EXPECT_GT(r1.reclaimed_bytes, r2.reclaimed_bytes);
  // Retention depth changes what is kept, not what is executed.
  EXPECT_EQ(r1.exec_time_s, r2.exec_time_s);
  EXPECT_EQ(r1.digest, r2.digest);
}

TEST(RetentionGc, AutoDepthRaisesToTwoUnderStorageFaults) {
  auto config = small_sor(Scheme::kCoordNB);
  config.machine.num_nodes = 8;
  config.checkpoints = 4;
  // Active-but-negligible faults: the auto policy must still engage.
  StorageFaultConfig faults;
  faults.write_error = 1e-12;
  config.storage_faults = faults;
  const auto result = harness::run_experiment(config);
  EXPECT_EQ(result.final_stored_checkpoints, 16u);
  EXPECT_EQ(result.digest, normal_run().digest);
}

TEST(RetentionGc, IndependentKeepDepthFloorsTheGc) {
  auto base = small_sor(Scheme::kIndep);
  base.gc = true;

  auto depth1 = base;
  depth1.keep_depth = 1;
  const auto r1 = harness::run_experiment(depth1);
  auto depth2 = base;
  depth2.keep_depth = 2;
  const auto r2 = harness::run_experiment(depth2);

  EXPECT_GE(r2.final_stored_checkpoints, r1.final_stored_checkpoints);
  EXPECT_GE(r1.gc_reclaimed, r2.gc_reclaimed);
  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_EQ(r1.exec_time_s, r2.exec_time_s);
}

// ---------------------------------------------------------------------------
// Attribution: the blocked-window partition stays exact with retries in it.
// ---------------------------------------------------------------------------

TEST(StorageFaults, AttributionPartitionStaysExactWithRetries) {
  CHK_REQUIRE_OBS();
  auto config = small_sor(Scheme::kCoordNB);
  config.checkpoints = 3;
  StorageFaultConfig faults;
  faults.write_error = 0.3;  // writes only: every backoff is app-blocking
  config.storage_faults = faults;
  config.observe = true;
  const auto result = harness::run_experiment(config);
  ASSERT_TRUE(result.obs);
  ASSERT_GT(result.storage_retries, 0u);

  const obs::AttributionReport& report = result.obs->attribution;
  double retry_wait = 0;
  for (const obs::RankBuckets& rank : report.ranks) {
    // The six window buckets partition each rank's blocking windows exactly.
    EXPECT_NEAR(rank.sync_wait_s + rank.mem_copy_s + rank.stable_write_s +
                    rank.storage_contention_s + rank.logging_s +
                    rank.storage_retry_wait_s,
                rank.blocked_total_s, 1e-9);
    EXPECT_NEAR(rank.bucket_sum_s(), rank.total_s(), 1e-9);
    EXPECT_GE(rank.storage_retry_wait_s, 0.0);
    retry_wait += rank.storage_retry_wait_s;
  }
  EXPECT_NEAR(report.total.storage_retry_wait_s, retry_wait, 1e-9);
  EXPECT_GT(report.total.storage_retry_wait_s, 0.0);
  // App-blocking backoffs can never exceed the client's total backoff time
  // (the coordinator's commit-write retries are outside the windows).
  EXPECT_LE(report.total.storage_retry_wait_s, result.storage_retry_wait_s + 1e-9);
  EXPECT_NEAR(report.total.blocked_total_s, result.app_blocked_s, 1e-9);
}

// ---------------------------------------------------------------------------
// Coord_NBS over raw lossy links: a lost grant-release fails fast with the
// cure in the message instead of live-locking through endless aborts.
// ---------------------------------------------------------------------------

TEST(StorageFaults, CoordNbsLostGrantReleaseFailsFastWithoutTransport) {
  auto config = small_sor(Scheme::kCoordNBS);
  des::Simulator sim;
  chklib::Runtime runtime(sim, config.machine, config.seed);
  runtime.set_app(config.label, config.app);
  // No transport: every write-grant release vanishes on the raw links, so
  // the grant parks at its first holder forever and no watchdog can
  // regenerate it (a release is not re-requestable the way a grant is).
  runtime.comm().set_control_drop_filter([](const chklib::ControlMsg& msg) {
    return msg.kind == chklib::ControlKind::kTokenRelease;
  });
  chklib::CoordinatedProtocol protocol(runtime,
                                       {.scheme = Scheme::kCoordNBS,
                                        .interval = des::Duration::millis(300),
                                        .rounds = 0,
                                        .round_timeout = des::Duration::millis(200)});
  protocol.start();
  runtime.start_apps();
  try {
    runtime.run_to_completion();
    FAIL() << "Coord_NBS live-locked instead of failing fast";
  } catch (const des::SimError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("Coord_NBS"), std::string::npos) << what;
    EXPECT_NE(what.find("grant"), std::string::npos) << what;
    EXPECT_NE(what.find("reliable transport"), std::string::npos)
        << "the diagnostic must name the cure: " << what;
  }
  EXPECT_GE(protocol.stats().aborted_rounds, 3u);
  EXPECT_EQ(protocol.stats().committed_rounds, 0u);
}

// ---------------------------------------------------------------------------
// Campaigns: crashes + storage faults across all five paper schemes, and
// composition with lossy links.
// ---------------------------------------------------------------------------

faultsim::CampaignConfig storm_campaign(Scheme scheme) {
  faultsim::CampaignConfig config;
  config.base = small_sor(scheme);
  config.base.storage_faults = default_weather();
  config.mtbf = des::Duration::seconds(normal_run().exec_time_s * 0.35);
  config.runs = 1;
  config.max_failures_per_run = 5;
  config.expected_digest = normal_run().digest;
  return config;
}

class StorageFaultSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(StorageFaultSweep, SurvivesCrashesOnFaultyStorage) {
  auto config = storm_campaign(GetParam());
  const faultsim::RunOutcome outcome = faultsim::run_one(config, 0);
  const std::string what(to_string(GetParam()));
  EXPECT_TRUE(outcome.digest_ok) << what;
  EXPECT_GE(outcome.failures, 2u) << what;
  EXPECT_GE(outcome.recoveries, 1u) << what;
  EXPECT_GT(outcome.io_write_errors + outcome.io_read_errors, 0u) << what;
  EXPECT_GT(outcome.storage_retries, 0u) << what;
  EXPECT_EQ(outcome.recoveries + outcome.interrupted_recoveries, outcome.failures)
      << what;
}

INSTANTIATE_TEST_SUITE_P(FiveSchemes, StorageFaultSweep,
                         ::testing::Values(Scheme::kCoordNB, Scheme::kIndep,
                                           Scheme::kCoordNBM, Scheme::kIndepM,
                                           Scheme::kCoordNBMS),
                         [](const ::testing::TestParamInfo<Scheme>& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '_') c = '0';
                           }
                           return name;
                         });

TEST(StorageFaults, LinkAndStorageDomainsComposeByteIdentically) {
  // Both fault domains at once, independent per-domain streams: the run
  // verifies and same seeds reproduce byte-identical campaign JSON.
  auto config = storm_campaign(Scheme::kCoordNBM);
  chklib::LinkFaultConfig link;
  link.drop = 0.1;
  link.duplicate = 0.05;
  link.corrupt = 0.02;
  config.link_faults = link;
  config.runs = 2;
  const auto dump = [](const faultsim::CampaignResult& result) {
    obs::json::Value doc = obs::json::Value::array();
    for (const auto& outcome : result.outcomes) {
      doc.push_back(faultsim::outcome_to_json(outcome));
    }
    doc.push_back(faultsim::summary_to_json(result.summary));
    return doc.dump();
  };
  const auto first = faultsim::run_campaign(config);
  const std::string a = dump(first);
  const std::string b = dump(faultsim::run_campaign(config));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(first.summary.all_verified);
  // Both domains actually fired.
  std::uint64_t drops = 0, io_errors = 0;
  for (const auto& outcome : first.outcomes) {
    drops += outcome.link_drops;
    io_errors += outcome.io_write_errors + outcome.io_read_errors;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(io_errors, 0u);
}

}  // namespace
}  // namespace chk
