// Recovery-path hardening tests: multi-failure campaigns, failures landing
// during an in-flight recovery (serialization/coalescing), failures landing
// inside stable-storage checkpoint writes (in-flight write discard),
// RecoveryReport storage-counter consistency, and campaign determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/sor.hpp"
#include "chklib/ckpt/store.hpp"
#include "chklib/proto/coordinated.hpp"
#include "chklib/recovery/manager.hpp"
#include "faultsim/campaign.hpp"
#include "harness/experiment.hpp"
#include "xplorer/machine.hpp"

namespace chk {
namespace {

using harness::ExperimentConfig;
using harness::Scheme;

ExperimentConfig small_sor(Scheme scheme) {
  ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.interval = des::Duration::millis(200);
  config.checkpoints = 0;  // keep checkpointing while failures extend the run
  return config;
}

/// Failure-free baseline, computed once (digest + exec time anchor for MTBF).
const harness::ExperimentResult& normal_run() {
  static const harness::ExperimentResult result = [] {
    auto config = small_sor(Scheme::kNone);
    return harness::run_normal(config);
  }();
  return result;
}

/// Snapshots per-rank image sizes and delta bases at recovery begin (after
/// tentative post-line images are dropped, before any loader read): the
/// protocol's GC erases the line's images once post-recovery checkpoints
/// commit, so the end-of-run store cannot reconstruct what the restore read.
struct StoreSnapshot final : public chklib::RecoveryObserver {
  explicit StoreSnapshot(chklib::Runtime& runtime) : rt(&runtime) {}

  void on_recovery_begin(chklib::Rank /*failed*/) override {
    images.assign(rt->num_ranks(), {});
    for (chklib::Rank r = 0; r < rt->num_ranks(); ++r) {
      for (std::uint32_t index : rt->store().saved_indices(r)) {
        images[r][index] = {
            rt->machine().storage().size(chklib::CheckpointStore::image_key(r, index)),
            rt->store().peek_image(r, index).delta_base};
      }
    }
  }

  chklib::Runtime* rt;
  /// Per rank: saved index -> (image blob bytes, delta_base).
  std::vector<std::map<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>>> images;
};

faultsim::CampaignConfig small_campaign(Scheme scheme) {
  faultsim::CampaignConfig config;
  config.base = small_sor(scheme);
  config.mtbf = des::Duration::seconds(normal_run().exec_time_s * 0.35);
  config.runs = 1;
  config.max_failures_per_run = 5;
  config.expected_digest = normal_run().digest;
  return config;
}

// ---------------------------------------------------------------------------
// Unit: guarded domino-depth subtraction.

TEST(DominoDepth, ClampsInsteadOfWrapping) {
  EXPECT_EQ(chklib::domino_depth(5, 2), 3u);
  EXPECT_EQ(chklib::domino_depth(2, 2), 0u);
  // GC-reclaimed / discarded-write indices can leave newest < restored;
  // the unsigned subtraction must clamp, not wrap to ~4 billion.
  EXPECT_EQ(chklib::domino_depth(0, 5), 0u);
  EXPECT_EQ(chklib::domino_depth(3, 7), 0u);
}

// ---------------------------------------------------------------------------
// Unit: StableStorage discards in-flight writes on failure.

TEST(StableStorage, DiscardInflightWritesDropsThePayload) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  const std::vector<std::byte> blob(4096);

  bool durable = false;
  storage.write(0, "ckpt/p0/v00000001", blob, [&durable](xplorer::IoStatus) { durable = true; });
  EXPECT_EQ(storage.inflight_writes(), 1u);

  // Let the pipeline advance partway (strictly inside the uncontended write
  // time), then crash: the write must never surface.
  const auto half = storage.pure_write_time(0, blob.size()).scaled(0.5);
  sim.run(des::TimePoint::origin() + half);
  EXPECT_EQ(storage.inflight_writes(), 1u);
  EXPECT_EQ(storage.discard_inflight_writes(), 1u);
  sim.run();

  EXPECT_FALSE(durable);
  EXPECT_FALSE(storage.exists("ckpt/p0/v00000001"));
  EXPECT_EQ(storage.bytes_written(), 0u);
  EXPECT_EQ(storage.writes_completed(), 0u);
  EXPECT_EQ(storage.writes_discarded(), 1u);
  EXPECT_EQ(storage.inflight_writes(), 0u);

  // A write submitted after the crash belongs to the new generation and
  // completes normally.
  bool durable2 = false;
  storage.write(0, "ckpt/p0/v00000001", blob, [&durable2](xplorer::IoStatus) { durable2 = true; });
  sim.run();
  EXPECT_TRUE(durable2);
  EXPECT_TRUE(storage.exists("ckpt/p0/v00000001"));
  EXPECT_EQ(storage.bytes_written(), blob.size());
  EXPECT_EQ(storage.writes_completed(), 1u);
  EXPECT_EQ(storage.writes_discarded(), 1u);
}

TEST(StableStorage, WriteHookSeesEverySubmission) {
  des::Simulator sim;
  xplorer::Machine machine(sim, xplorer::MachineConfig::parsytec_xplorer());
  auto& storage = machine.storage();
  std::vector<std::string> seen;
  storage.set_write_hook([&seen](xplorer::NodeId from, const std::string& key,
                                 std::size_t bytes) {
    seen.push_back(util::format("{}:{}:{}", from, key, bytes));
  });
  storage.write(2, "ckpt/p2/v00000001", std::vector<std::byte>(64), nullptr);
  storage.write(3, "other", std::vector<std::byte>(8), nullptr);
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "2:ckpt/p2/v00000001:64");
  EXPECT_EQ(seen[1], "3:other:8");
}

// ---------------------------------------------------------------------------
// Multi-failure campaigns across the paper's five schemes.

class CampaignSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(CampaignSweep, SurvivesAMultiFailureCampaignRun) {
  auto config = small_campaign(GetParam());
  config.ensure_midwrite = true;
  config.ensure_during_recovery = true;
  const faultsim::RunOutcome outcome = faultsim::run_one(config, 0);

  EXPECT_TRUE(outcome.digest_ok) << to_string(GetParam());
  EXPECT_GE(outcome.failures, 2u) << to_string(GetParam());
  EXPECT_GE(outcome.mid_write_failures, 1u) << to_string(GetParam());
  EXPECT_GE(outcome.overlap_failures, 1u) << to_string(GetParam());
  EXPECT_GE(outcome.recoveries, 1u) << to_string(GetParam());
  EXPECT_GT(outcome.completion_s, normal_run().exec_time_s) << to_string(GetParam());
  // Counter consistency: every injected failure produced exactly one report
  // (completed or interrupted), and the chain re-read share never exceeds
  // the total read volume.
  EXPECT_EQ(outcome.recoveries + outcome.interrupted_recoveries, outcome.failures)
      << to_string(GetParam());
  EXPECT_LE(outcome.bytes_reread, outcome.bytes_read) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(FiveSchemes, CampaignSweep,
                         ::testing::Values(Scheme::kCoordNB, Scheme::kIndep,
                                           Scheme::kCoordNBM, Scheme::kIndepM,
                                           Scheme::kCoordNBMS),
                         [](const ::testing::TestParamInfo<Scheme>& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '_') c = '0';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Overlapping failures are serialized: the interrupted restore is aborted
// and published as a partial report; the final recovery completes cleanly.

TEST(Recovery, FailureDuringRecoveryIsSerialized) {
  auto config = small_sor(Scheme::kCoordNB);
  faultsim::FaultPlan plan;
  plan.mtbf = des::Duration::seconds(normal_run().exec_time_s * 0.5);
  plan.max_failures = 5;
  plan.ensure_during_recovery = true;
  config.faults = plan;
  const auto result = harness::run_experiment(config);

  ASSERT_GE(result.injections.during_recovery, 1u);
  std::size_t interrupted = 0;
  for (const auto& report : result.recoveries) {
    interrupted += report.interrupted ? 1 : 0;
    EXPECT_TRUE(report.logged_sends.empty());
    EXPECT_GE(report.recovery_latency.to_nanos(), 0);
  }
  // Every during-recovery strike aborted exactly one in-flight restore.
  EXPECT_EQ(interrupted, result.injections.during_recovery);
  ASSERT_FALSE(result.recoveries.empty());
  EXPECT_FALSE(result.recoveries.back().interrupted);
  EXPECT_EQ(result.digest, normal_run().digest);
}

// ---------------------------------------------------------------------------
// Mid-write failures: the in-flight image write is discarded, never visible
// in the store and never counted, and the run still verifies.

TEST(Recovery, FailureDuringCheckpointWriteDiscardsTheImage) {
  auto config = small_sor(Scheme::kCoordNB);
  faultsim::FaultPlan plan;
  plan.mtbf = des::Duration::seconds(normal_run().exec_time_s * 2.0);
  plan.max_failures = 3;
  plan.ensure_midwrite = true;
  config.faults = plan;
  const auto result = harness::run_experiment(config);

  ASSERT_GE(result.injections.mid_write, 1u);
  EXPECT_GE(result.writes_discarded, 1u);
  bool mid_write_report = false;
  for (const auto& report : result.recoveries) {
    mid_write_report = mid_write_report || report.mid_write;
    if (report.mid_write) {
      EXPECT_GE(report.inflight_discarded, 1u);
    }
  }
  EXPECT_TRUE(mid_write_report);
  EXPECT_EQ(result.digest, normal_run().digest);
}

// ---------------------------------------------------------------------------
// RecoveryReport byte accounting matches the stored images exactly.

TEST(Recovery, BytesReadMatchesTheRestoredImages) {
  auto config = small_sor(Scheme::kCoordNB);
  config.checkpoints = 2;  // stop checkpointing after the failure: the line
                           // images survive to the end of the run unchanged

  des::Simulator sim;
  chklib::Runtime runtime(sim, config.machine, config.seed);
  runtime.set_app(config.label, config.app);
  chklib::CoordinatedProtocol protocol(
      runtime, {.scheme = config.scheme, .interval = config.interval, .rounds = 2});
  chklib::RecoveryManager recovery(runtime, protocol);
  StoreSnapshot snapshot(runtime);
  recovery.add_observer(&snapshot);
  protocol.start();
  recovery.inject_failure_at(des::TimePoint::origin() +
                                 des::Duration::seconds(normal_run().exec_time_s * 0.55),
                             3);
  runtime.start_apps();
  runtime.run_to_completion();

  ASSERT_EQ(recovery.reports().size(), 1u);
  const chklib::RecoveryReport& report = recovery.reports().front();
  ASSERT_FALSE(report.interrupted);
  EXPECT_FALSE(report.rolled_to_origin);
  std::uint64_t expected = 0;
  for (chklib::Rank r = 0; r < runtime.num_ranks(); ++r) {
    const std::uint32_t index = report.line.index[r];
    if (index == 0) continue;
    expected += snapshot.images[r].at(index).first;
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(report.bytes_read, expected);
  EXPECT_EQ(report.bytes_reread, 0u);  // non-incremental: no chain re-reads
  EXPECT_EQ(runtime.result_digest(), normal_run().digest);
}

TEST(Recovery, IncrementalChainRereadsAreCounted) {
  // The committed epoch at the failure instant must be a *delta* image for
  // the chain-read path to trigger, and which epoch is committed at a given
  // fraction of the run depends on checkpoint timing. Probe a few failure
  // fractions (each probe is an independent deterministic sim) and verify
  // the accounting on the first one whose line is a delta.
  bool chain_verified = false;
  for (const double frac : {0.40, 0.55, 0.70, 0.85}) {
    auto config = small_sor(Scheme::kCoordNB);

    des::Simulator sim;
    chklib::Runtime runtime(sim, config.machine, config.seed);
    runtime.set_app(config.label, config.app);
    chklib::CoordinatedProtocol protocol(runtime, {.scheme = config.scheme,
                                                   .interval = config.interval,
                                                   .rounds = 0,
                                                   .incremental = true,
                                                   .full_every = 3});
    chklib::RecoveryManager recovery(runtime, protocol);
    StoreSnapshot snapshot(runtime);
    recovery.add_observer(&snapshot);
    protocol.start();
    recovery.inject_failure_at(des::TimePoint::origin() +
                                   des::Duration::seconds(normal_run().exec_time_s * frac),
                               5);
    runtime.start_apps();
    runtime.run_to_completion();

    ASSERT_EQ(recovery.reports().size(), 1u);
    const chklib::RecoveryReport& report = recovery.reports().front();
    EXPECT_EQ(runtime.result_digest(), normal_run().digest);
    // Reconstruct the expected read volume from the recovery-time snapshot:
    // each rank reads its line image plus (incremental) the delta chain down
    // to the last full image; the chain share is the re-read cost.
    std::uint64_t expected_read = 0;
    std::uint64_t expected_reread = 0;
    bool chain_restore = false;
    for (chklib::Rank r = 0; r < runtime.num_ranks(); ++r) {
      const std::uint32_t index = report.line.index[r];
      if (index == 0) continue;
      expected_read += snapshot.images[r].at(index).first;
      std::uint32_t base = snapshot.images[r].at(index).second;
      while (base != 0) {
        chain_restore = true;
        const auto& [bytes, next_base] = snapshot.images[r].at(base);
        expected_read += bytes;
        expected_reread += bytes;
        base = next_base;
      }
    }
    EXPECT_EQ(report.bytes_read, expected_read);
    EXPECT_EQ(report.bytes_reread, expected_reread);
    if (chain_restore) {
      EXPECT_GT(report.bytes_reread, 0u);
      chain_verified = true;
      break;
    }
  }
  EXPECT_TRUE(chain_verified)
      << "no probed failure fraction produced a delta-image line";
}

// ---------------------------------------------------------------------------
// fail_now edge cases.

TEST(Recovery, FailNowAfterCompletionIsIgnored) {
  auto config = small_sor(Scheme::kCoordNB);
  config.checkpoints = 2;

  des::Simulator sim;
  chklib::Runtime runtime(sim, config.machine, config.seed);
  runtime.set_app(config.label, config.app);
  chklib::CoordinatedProtocol protocol(
      runtime, {.scheme = config.scheme, .interval = config.interval, .rounds = 2});
  chklib::RecoveryManager recovery(runtime, protocol);
  protocol.start();
  runtime.start_apps();
  runtime.run_to_completion();
  recovery.fail_now(0);
  EXPECT_TRUE(recovery.reports().empty());
  EXPECT_FALSE(recovery.recovering());
}

// ---------------------------------------------------------------------------
// Campaign determinism: same seeds => byte-identical JSON.

TEST(Campaign, SameSeedsProduceByteIdenticalJson) {
  for (Scheme scheme : {Scheme::kCoordNBM, Scheme::kIndepM}) {
    auto config = small_campaign(scheme);
    config.runs = 2;
    const auto dump = [](const faultsim::CampaignResult& result) {
      obs::json::Value doc = obs::json::Value::array();
      for (const auto& outcome : result.outcomes) {
        doc.push_back(faultsim::outcome_to_json(outcome));
      }
      doc.push_back(faultsim::summary_to_json(result.summary));
      return doc.dump();
    };
    const std::string a = dump(faultsim::run_campaign(config));
    const std::string b = dump(faultsim::run_campaign(config));
    EXPECT_EQ(a, b) << to_string(scheme);
    EXPECT_NE(a.find("\"digest_ok\":true"), std::string::npos) << to_string(scheme);
  }
}

TEST(Campaign, DifferentStreamsProduceDifferentFailureSchedules) {
  auto config = small_campaign(Scheme::kCoordNB);
  config.runs = 2;
  const auto result = faultsim::run_campaign(config);
  ASSERT_EQ(result.outcomes.size(), 2u);
  // Different runs draw different arrival realizations, so the executed
  // schedules (and trace hashes) differ; both still verify.
  EXPECT_NE(result.outcomes[0].trace_hash, result.outcomes[1].trace_hash);
  EXPECT_TRUE(result.summary.all_verified);
}

}  // namespace
}  // namespace chk
