// Tests for the CHK-LIB communication layer: FIFO point-to-point,
// matching, collectives, freeze gate, control plane, incarnation drops.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chklib/comm/comm_system.hpp"
#include "chklib/comm/typed.hpp"
#include "chklib/runtime.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"

namespace chk::chklib {
namespace {

using des::Duration;
using des::Process;
using des::Simulator;

struct Fixture {
  Simulator sim;
  xplorer::Machine machine;
  CommSystem comm;

  explicit Fixture(std::size_t nodes = 8)
      : machine(sim, [nodes] {
          auto config = xplorer::MachineConfig::parsytec_xplorer();
          config.num_nodes = nodes;
          return config;
        }()),
        comm(machine) {}
};

TEST(Comm, PointToPointDelivers) {
  Fixture f;
  int got = -1;
  f.sim.spawn("tx", [&](Process& self) { send_value<int>(f.comm.endpoint(0), self, 5, 7, 42); });
  f.sim.spawn("rx", [&](Process& self) { got = recv_value<int>(f.comm.endpoint(5), self, 0, 7); });
  const auto result = f.sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kIdle);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(f.comm.app_messages(), 1u);
}

TEST(Comm, FifoOrderPerChannel) {
  Fixture f;
  std::vector<int> got;
  f.sim.spawn("tx", [&](Process& self) {
    for (int i = 0; i < 20; ++i) send_value<int>(f.comm.endpoint(0), self, 1, 1, i);
  });
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 20; ++i) got.push_back(recv_value<int>(f.comm.endpoint(1), self, 0, 1));
  });
  f.sim.run();
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(Comm, TagMatchingSkipsNonMatching) {
  Fixture f;
  std::vector<int> order;
  f.sim.spawn("tx", [&](Process& self) {
    send_value<int>(f.comm.endpoint(0), self, 1, /*tag=*/10, 100);
    send_value<int>(f.comm.endpoint(0), self, 1, /*tag=*/20, 200);
  });
  f.sim.spawn("rx", [&](Process& self) {
    // Ask for tag 20 first even though tag 10 arrives first.
    order.push_back(recv_value<int>(f.comm.endpoint(1), self, kAnySource, 20));
    order.push_back(recv_value<int>(f.comm.endpoint(1), self, kAnySource, 10));
  });
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{200, 100}));
}

TEST(Comm, AnySourceMatches) {
  Fixture f;
  int total = 0;
  for (Rank r = 1; r <= 3; ++r) {
    f.sim.spawn("tx", [&, r](Process& self) {
      send_value<int>(f.comm.endpoint(r), self, 0, 5, static_cast<int>(r));
    });
  }
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 3; ++i) total += recv_value<int>(f.comm.endpoint(0), self);
  });
  f.sim.run();
  EXPECT_EQ(total, 6);
}

TEST(Comm, ProbeSeesPending) {
  Fixture f;
  bool before = true, after = false;
  f.sim.spawn("rx", [&](Process& self) {
    before = f.comm.endpoint(1).probe(0, 3);
    self.delay(Duration::secs(1));  // let the message arrive
    after = f.comm.endpoint(1).probe(0, 3);
    (void)f.comm.endpoint(1).recv(self, 0, 3);
  });
  f.sim.spawn("tx", [&](Process& self) { send_value<int>(f.comm.endpoint(0), self, 1, 3, 9); });
  f.sim.run();
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(Comm, TransferTimeGrowsWithSize) {
  auto elapsed_for = [](std::size_t bytes) {
    Fixture f;
    double done = -1;
    f.sim.spawn("tx", [&, bytes](Process& self) {
      f.comm.endpoint(0).send(self, 7, 0, std::vector<std::byte>(bytes));
    });
    f.sim.spawn("rx", [&](Process& self) {
      (void)f.comm.endpoint(7).recv(self);
      done = self.now().to_seconds();
    });
    f.sim.run();
    return done;
  };
  const double small = elapsed_for(100);
  const double large = elapsed_for(1'000'000);
  EXPECT_GT(large, small * 10);
}

TEST(Comm, BarrierSynchronizesAllRanks) {
  Fixture f;
  std::vector<double> passed(8);
  for (Rank r = 0; r < 8; ++r) {
    f.sim.spawn("p", [&, r](Process& self) {
      self.delay(Duration::millis(static_cast<std::int64_t>(r) * 10));
      f.comm.endpoint(r).barrier(self);
      passed[r] = self.now().to_seconds();
    });
  }
  const auto result = f.sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kIdle);
  // nobody passes before the slowest arrival (70 ms)
  for (double t : passed) EXPECT_GE(t, 0.070);
}

TEST(Comm, BroadcastReachesEveryRank) {
  Fixture f;
  std::vector<int> got(8, -1);
  for (Rank r = 0; r < 8; ++r) {
    f.sim.spawn("p", [&, r](Process& self) {
      auto data = r == 3 ? to_bytes<int>(77) : std::vector<std::byte>{};
      got[r] = from_bytes<int>(f.comm.endpoint(r).broadcast(self, 3, std::move(data)));
    });
  }
  f.sim.run();
  for (int v : got) EXPECT_EQ(v, 77);
}

TEST(Comm, ReduceSumsContributions) {
  Fixture f;
  double at_root = -1;
  for (Rank r = 0; r < 8; ++r) {
    f.sim.spawn("p", [&, r](Process& self) {
      const double result = f.comm.endpoint(r).reduce_sum(self, 2, static_cast<double>(r + 1));
      if (r == 2) at_root = result;
    });
  }
  f.sim.run();
  EXPECT_DOUBLE_EQ(at_root, 36.0);  // 1+2+...+8
}

TEST(Comm, AllreduceGivesSameValueEverywhere) {
  Fixture f;
  std::vector<double> got(8, -1);
  for (Rank r = 0; r < 8; ++r) {
    f.sim.spawn("p", [&, r](Process& self) {
      got[r] = f.comm.endpoint(r).allreduce_sum(self, static_cast<double>(r));
    });
  }
  f.sim.run();
  for (double v : got) EXPECT_DOUBLE_EQ(v, 28.0);
}

TEST(Comm, ReduceVecSumsElementwise) {
  Fixture f(4);
  std::vector<double> at_root;
  for (Rank r = 0; r < 4; ++r) {
    f.sim.spawn("p", [&, r](Process& self) {
      auto result = f.comm.endpoint(r).reduce_sum_vec(
          self, 0, {static_cast<double>(r), 1.0});
      if (r == 0) at_root = result;
    });
  }
  f.sim.run();
  ASSERT_EQ(at_root.size(), 2u);
  EXPECT_DOUBLE_EQ(at_root[0], 6.0);
  EXPECT_DOUBLE_EQ(at_root[1], 4.0);
}

TEST(Comm, CollectivesWorkOnSingleRank) {
  Fixture f(1);
  bool done = false;
  f.sim.spawn("p", [&](Process& self) {
    f.comm.endpoint(0).barrier(self);
    EXPECT_DOUBLE_EQ(f.comm.endpoint(0).allreduce_sum(self, 5.0), 5.0);
    done = true;
  });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(FreezeGateTest, BlocksOperationsWhileFrozen) {
  Fixture f;
  auto& gate = f.comm.endpoint(1).gate();
  double sent_at = -1;
  f.sim.spawn("tx", [&](Process& self) {
    self.delay(Duration::secs(1));
    f.comm.endpoint(1).send(self, 0, 0, {});  // rank 1's gate applies
    sent_at = self.now().to_seconds();
  });
  f.sim.schedule_now([&] { gate.freeze(); });
  f.sim.schedule_after(Duration::secs(5), [&] { gate.unfreeze(); });
  f.sim.run();
  EXPECT_GE(sent_at, 5.0);
  EXPECT_GE(gate.blocked_time().to_seconds(), 3.9);
}

TEST(FreezeGateTest, NestedFreezeNeedsMatchingUnfreeze) {
  Fixture f;
  auto& gate = f.comm.endpoint(0).gate();
  gate.freeze();
  gate.freeze();
  gate.unfreeze();
  EXPECT_TRUE(gate.frozen());
  gate.unfreeze();
  EXPECT_FALSE(gate.frozen());
}

TEST(Comm, ControlPlaneDelivers) {
  Fixture f;
  ControlMsg got{};
  f.sim.spawn("daemon", [&](Process& self) { got = f.comm.endpoint(3).recv_control(self); });
  f.sim.schedule_now([&] {
    f.comm.send_control(0, 3, ControlMsg{ControlKind::kCkptRequest, 0, 9, 0});
  });
  f.sim.run();
  EXPECT_EQ(got.kind, ControlKind::kCkptRequest);
  EXPECT_EQ(got.epoch, 9u);
  EXPECT_EQ(f.comm.control_messages(), 1u);
}

TEST(Comm, StaleIncarnationDropped) {
  Fixture f;
  f.sim.spawn("tx", [&](Process& self) {
    send_value<int>(f.comm.endpoint(0), self, 6, 0, 1);
  });
  // Bump the incarnation while the message is in flight.
  f.sim.schedule_after(Duration::micros(100), [&] { f.comm.bump_incarnation(); });
  bool received = false;
  f.sim.spawn("rx", [&](Process& self) {
    (void)f.comm.endpoint(6).recv(self);
    received = true;
  });
  const auto result = f.sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kDeadlock);  // rx waits forever
  EXPECT_FALSE(received);
  EXPECT_EQ(f.comm.dropped_stale(), 1u);
}

TEST(Comm, FlushDropsPending) {
  Fixture f;
  f.sim.spawn("tx", [&](Process& self) { send_value<int>(f.comm.endpoint(0), self, 1, 0, 5); });
  f.sim.run();
  EXPECT_EQ(f.comm.endpoint(1).pending_count(), 1u);
  f.comm.flush_all();
  EXPECT_EQ(f.comm.endpoint(1).pending_count(), 0u);
}

TEST(Comm, ReinjectedMessagesPrecedeNewArrivals) {
  Fixture f;
  std::vector<int> order;
  f.sim.spawn("rx", [&](Process& self) {
    self.delay(Duration::secs(1));
    for (int i = 0; i < 2; ++i) {
      order.push_back(recv_value<int>(f.comm.endpoint(1), self));
    }
  });
  f.sim.spawn("tx", [&](Process& self) { send_value<int>(f.comm.endpoint(0), self, 1, 0, 2); });
  f.sim.schedule_after(Duration::millis(500), [&] {
    Envelope env;
    env.src = 0;
    env.dst = 1;
    env.tag = 0;
    env.payload = to_bytes<int>(1);
    f.comm.endpoint(1).reinject({env});
  });
  f.sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // reinjected message consumed first
  EXPECT_EQ(order[1], 2);
}

TEST(Comm, HookStampsAndObserves) {
  struct CountingHooks : ProtocolHooks {
    int sends = 0, arrivals = 0, delivers = 0;
    void on_send(Rank, Envelope& env) override {
      ++sends;
      env.epoch = 42;
    }
    void on_arrival(Rank, const Envelope& env) override {
      ++arrivals;
      EXPECT_EQ(env.epoch, 42u);
    }
    void on_deliver(des::Process&, Rank, const Envelope&) override { ++delivers; }
  };
  Fixture f;
  CountingHooks hooks;
  f.comm.set_hooks(&hooks);
  f.sim.spawn("tx", [&](Process& self) { send_value<int>(f.comm.endpoint(0), self, 1, 0, 5); });
  f.sim.spawn("rx", [&](Process& self) { (void)f.comm.endpoint(1).recv(self); });
  f.sim.run();
  EXPECT_EQ(hooks.sends, 1);
  EXPECT_EQ(hooks.arrivals, 1);
  EXPECT_EQ(hooks.delivers, 1);
}

TEST(SeqState, ConsumptionTrackingAndDedup) {
  Fixture f;
  auto& ep = f.comm.endpoint(1);
  f.sim.spawn("tx", [&](Process& self) {
    for (int i = 0; i < 3; ++i) send_value<int>(f.comm.endpoint(0), self, 1, 0, i);
  });
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 3; ++i) (void)ep.recv(self, 0, 0);
  });
  f.sim.run();
  EXPECT_TRUE(ep.already_consumed(0, 0));
  EXPECT_TRUE(ep.already_consumed(0, 2));
  EXPECT_FALSE(ep.already_consumed(0, 3));
  // A "re-sent" duplicate of seq 1 must be dropped at arrival.
  Envelope dup;
  dup.src = 0;
  dup.dst = 1;
  dup.seq = 1;
  dup.payload = to_bytes<int>(1);
  ep.deliver(std::move(dup));
  EXPECT_EQ(ep.pending_count(), 0u);
  EXPECT_EQ(ep.duplicates_dropped(), 1u);
}

TEST(SeqState, SnapshotRestoreRoundTrip) {
  Fixture f;
  auto& ep = f.comm.endpoint(2);
  f.sim.spawn("tx", [&](Process& self) {
    for (int i = 0; i < 5; ++i) send_value<int>(f.comm.endpoint(0), self, 2, 0, i);
  });
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 5; ++i) (void)ep.recv(self, 0, 0);
    (void)ep.next_seq(7);
    (void)ep.next_seq(7);
  });
  f.sim.run();
  const ChannelSeqState snapshot = ep.seq_snapshot();
  ep.reset_seq();
  EXPECT_FALSE(ep.already_consumed(0, 0));
  ep.restore_seq(snapshot);
  EXPECT_TRUE(ep.already_consumed(0, 4));
  EXPECT_FALSE(ep.already_consumed(0, 5));
  EXPECT_EQ(ep.next_seq(7), 2u);  // send counter continues where it was
}

TEST(SeqState, OutOfOrderConsumptionTrackedExactly) {
  // Tag-selective receives can consume a channel out of order; the
  // consumed set must stay exact (prefix + exceptions).
  Fixture f;
  auto& ep = f.comm.endpoint(1);
  f.sim.spawn("tx", [&](Process& self) {
    send_value<int>(f.comm.endpoint(0), self, 1, /*tag=*/10, 0);  // seq 0
    send_value<int>(f.comm.endpoint(0), self, 1, /*tag=*/20, 1);  // seq 1
    send_value<int>(f.comm.endpoint(0), self, 1, /*tag=*/10, 2);  // seq 2
  });
  f.sim.spawn("rx", [&](Process& self) {
    self.delay(Duration::secs(1));
    (void)ep.recv(self, 0, 20);  // consumes seq 1 first
    EXPECT_TRUE(ep.already_consumed(0, 1));
    EXPECT_FALSE(ep.already_consumed(0, 0));
    (void)ep.recv(self, 0, 10);  // seq 0: prefix absorbs the exception
    EXPECT_TRUE(ep.already_consumed(0, 0));
    EXPECT_TRUE(ep.already_consumed(0, 1));
    EXPECT_FALSE(ep.already_consumed(0, 2));
    (void)ep.recv(self, 0, 10);  // seq 2
  });
  const auto result = f.sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kIdle);
}

TEST(Comm, ResetStatsZeroesEveryCounter) {
  // Drive enough traffic through faulted links + the reliable transport to
  // light up every statistics accessor, then verify reset_stats() clears
  // them all — including the transport and fault-model counters.
  Fixture f;
  LinkFaultConfig faults;
  faults.drop = 0.25;
  faults.duplicate = 0.2;
  faults.corrupt = 0.1;
  faults.delay_prob = 0.2;
  faults.delay_mean_s = 1e-4;
  f.comm.set_link_faults(faults, util::Rng(99));
  f.comm.enable_transport();
  f.comm.send_control(0, 1, ControlMsg{ControlKind::kCkptRequest, 0, 1, 0});
  std::vector<int> got;
  f.sim.spawn("tx", [&](Process& self) {
    for (int i = 0; i < 200; ++i) send_value<int>(f.comm.endpoint(0), self, 1, 1, i);
  });
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 200; ++i)
      got.push_back(recv_value<int>(f.comm.endpoint(1), self, 0, 1));
  });
  const auto result = f.sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kIdle);
  ASSERT_EQ(got.size(), 200u);  // exactly-once FIFO in spite of the weather
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);

  EXPECT_GT(f.comm.app_messages(), 0u);
  EXPECT_GT(f.comm.app_bytes(), 0u);
  EXPECT_GT(f.comm.control_messages(), 0u);
  EXPECT_GT(f.comm.control_bytes(), 0u);
  EXPECT_GT(f.comm.retransmits(), 0u);
  EXPECT_GT(f.comm.dups_suppressed(), 0u);
  EXPECT_GT(f.comm.corrupt_detected(), 0u);
  EXPECT_GT(f.comm.link_drops(), 0u);
  EXPECT_GT(f.comm.link_duplicates(), 0u);
  EXPECT_GT(f.comm.link_corrupted(), 0u);
  EXPECT_GT(f.comm.link_delayed(), 0u);

  f.comm.reset_stats();
  EXPECT_EQ(f.comm.app_messages(), 0u);
  EXPECT_EQ(f.comm.app_bytes(), 0u);
  EXPECT_EQ(f.comm.control_messages(), 0u);
  EXPECT_EQ(f.comm.control_bytes(), 0u);
  EXPECT_EQ(f.comm.dropped_stale(), 0u);
  EXPECT_EQ(f.comm.retransmits(), 0u);
  EXPECT_EQ(f.comm.dups_suppressed(), 0u);
  EXPECT_EQ(f.comm.corrupt_detected(), 0u);
  EXPECT_EQ(f.comm.link_drops(), 0u);
  EXPECT_EQ(f.comm.link_duplicates(), 0u);
  EXPECT_EQ(f.comm.link_corrupted(), 0u);
  EXPECT_EQ(f.comm.link_delayed(), 0u);
}

TEST(Comm, TransportPreservesFifoUnderReordering) {
  // Delay-only faults (no loss): frames overtake each other on the wire,
  // and the transport's sequence numbers must put them back in order.
  Fixture f;
  LinkFaultConfig faults;
  faults.delay_prob = 0.5;
  faults.delay_mean_s = 5e-4;
  f.comm.set_link_faults(faults, util::Rng(7));
  f.comm.enable_transport();
  std::vector<int> got;
  f.sim.spawn("tx", [&](Process& self) {
    for (int i = 0; i < 100; ++i) send_value<int>(f.comm.endpoint(2), self, 6, 1, i);
  });
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < 100; ++i)
      got.push_back(recv_value<int>(f.comm.endpoint(6), self, 2, 1));
  });
  f.sim.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_GT(f.comm.link_delayed(), 0u);
}

TEST(Comm, DeterministicByteTotals) {
  auto run_once = [] {
    Fixture f;
    for (Rank r = 0; r < 8; ++r) {
      f.sim.spawn("p", [&f, r](Process& self) {
        for (int i = 0; i < 10; ++i) {
          f.comm.endpoint(r).send(self, (r + 1) % 8, 0, std::vector<std::byte>(100));
          (void)f.comm.endpoint(r).recv(self);
        }
      });
    }
    f.sim.run();
    return std::pair{f.sim.now().to_nanos(), f.comm.app_bytes()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Comm, AckChurnKeepsEventQueueBounded) {
  // Regression for dead-event heap bloat: every cumulative ack cancels the
  // link's armed RTO timer and re-arms it while frames are in flight, so a
  // long ping-style exchange manufactures one dead 50 ms timer entry per
  // message. The kernel must reclaim them as it goes — the queue high-water
  // mark has to track the handful of live events, not the cancellation
  // history.
  Fixture f(2);
  f.comm.enable_transport();
  constexpr int kMessages = 2000;
  f.sim.spawn("tx", [&](Process& self) {
    for (int i = 0; i < kMessages; ++i) {
      send_value<int>(f.comm.endpoint(0), self, 1, 7, i);
      // Pace the sends so each message is acked before the next leaves:
      // in-flight stays O(1) while the RTO churn accumulates.
      self.delay(Duration::micros(10));
    }
  });
  int got = 0;
  f.sim.spawn("rx", [&](Process& self) {
    for (int i = 0; i < kMessages; ++i) {
      if (recv_value<int>(f.comm.endpoint(1), self, 0, 7) == i) ++got;
    }
  });
  const auto result = f.sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kIdle);
  EXPECT_EQ(got, kMessages);

  const TransportStats& stats = f.comm.transport()->stats();
  // The exchange finishes in ~20 ms of simulated time — well inside the
  // 50 ms RTO — so every cancelled timer would linger to the end of the
  // run without reclamation.
  EXPECT_GE(stats.rto_cancelled, static_cast<std::uint64_t>(kMessages) / 2);
  EXPECT_LE(stats.rto_cancelled, stats.rto_armed);
  EXPECT_GT(f.sim.compactions(), 0u);
  // Live events per message are a small constant (frame hop, ack hop, RTO
  // timer, sender delay); the bound is the compaction floor plus slack —
  // far below the ~2000 dead entries an unreclaimed heap would hold.
  EXPECT_LE(f.sim.queue_peak(), 512u);
}

}  // namespace
}  // namespace chk::chklib
