// Unit tests for chk::util — RNG determinism/quality, stats, tables, CLI.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace chk::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.fork(3);
  // chklint:allow(unique-fork-tags): the same tag twice is the point — the
  // test proves equal (seed, tag) pairs reproduce the identical stream.
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForkTagDecorrelates) {
  Rng parent(7);
  Rng a = Rng(7).fork(1);
  Rng b = Rng(7).fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(17);
  std::vector<int> counts(7, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u64(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 7, kDraws / 7 / 5);  // within 20%
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, part1, part2;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    whole.add(x);
    (i < 200 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Table, RendersAlignedGrid) {
  Table t({"app", "overhead"});
  t.add_row({"SOR", "1.25"});
  t.add_row({"NQUEENS", "0.07"});
  const std::string out = t.render("Demo");
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("SOR"), std::string::npos);
  EXPECT_NE(out.find("NQUEENS"), std::string::npos);
  // every data line has the same width
  std::size_t width = 0;
  std::size_t pos = out.find('\n');
  for (std::size_t start = pos + 1; start < out.size();) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    if (width == 0) width = end - start;
    EXPECT_EQ(end - start, width);
    start = end + 1;
  }
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::percent(0.0123, 2), "1.23 %");
  EXPECT_EQ(Table::bytes(2048), "2.0 KiB");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=4.5", "--flag", "pos", "--no-gamma"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0), 4.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("gamma", true));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, StrictProbabilityAcceptsTheValidRange) {
  const char* argv[] = {"prog", "--p0=0", "--p1=1", "--mid=0.25"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_prob("p0", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cli.get_prob("p1", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(cli.get_prob("mid", 0.5), 0.25);
  EXPECT_DOUBLE_EQ(cli.get_prob("missing", 0.5), 0.5);
}

TEST(Cli, StrictProbabilityRejectsOutOfRangeAndGarbage) {
  const char* argv[] = {"prog", "--loss=1.5", "--dup=-0.1", "--junk=0.5x",
                        "--empty=",  "--word=lots", "--nan=nan"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_prob("loss", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_prob("dup", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_prob("junk", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_prob("empty", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_prob("word", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_prob("nan", 0), std::invalid_argument);
  // The error names the offending flag so the user can fix the right one.
  try {
    (void)cli.get_prob("loss", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("--loss"), std::string::npos);
  }
}

TEST(Cli, StrictNonNegativeRejectsNegativesAndGarbage) {
  const char* argv[] = {"prog", "--mean=0.002", "--neg=-1", "--junk=abc"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_nonneg_double("mean", 1), 0.002);
  EXPECT_DOUBLE_EQ(cli.get_nonneg_double("missing", 3.5), 3.5);
  EXPECT_THROW((void)cli.get_nonneg_double("neg", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_nonneg_double("junk", 0), std::invalid_argument);
}

}  // namespace
}  // namespace chk::util
