// Fixture: positive control for duration-arithmetic — the PR-5 bug class.
// Duration's * and / take int64, so a floating operand converts and
// truncates silently instead of scaling.
#include "time_stub.hpp"

namespace fixture {

des::Duration stagger_delay(des::Duration interval, double factor, Disk& disk) {
  des::Duration half = interval / 2.0;             // truncates: 2.0 -> 2
  des::Duration jittered = interval * 1.5;         // truncates: 1.5 -> 1
  des::Duration svc = disk.service_time(4096) * factor;  // factor is double
  return half + jittered + svc;
}

}  // namespace fixture
