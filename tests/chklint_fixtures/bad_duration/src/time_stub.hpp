// Token-level stand-ins; fixtures are linted, never compiled.
#pragma once
#include <cstdint>

namespace fixture {
namespace des {
struct Duration {
  Duration operator+(Duration) const;
  Duration operator*(std::int64_t) const;
  Duration operator/(std::int64_t) const;
};
}  // namespace des
struct Disk {
  des::Duration service_time(std::size_t bytes);
};
}  // namespace fixture
