// Minimal stand-ins so the fixture reads like real code (chklint never
// compiles fixtures; only the token stream matters).
#pragma once
#include <cstdint>

namespace fixture {
namespace util {
struct Rng {
  Rng fork(std::uint64_t tag);
};
}  // namespace util
}  // namespace fixture
