// Fixture: positive control for the reserved fault-domain tag registry.
// 0xBEA7 is the membership detector's stream tag, owned by
// harness/experiment.cpp — forking it from anywhere else correlates the
// new stream with the detector's timer phases. There is no second site in
// this tree, so the plain collision check stays silent; only the registry
// catches the reuse.
#include "rng_stub.hpp"

namespace fixture {

util::Rng beacon_stream(util::Rng& parent) { return parent.fork(0xBEA7u); }

}  // namespace fixture
