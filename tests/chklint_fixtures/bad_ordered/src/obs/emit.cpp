// Fixture: positive control for ordered-emission — hash containers in a
// JSON emission path make the artifact's byte order implementation-defined.
#include <string>
#include <unordered_map>

namespace fixture {

std::string counters_to_json(const std::unordered_map<std::string, long>& counters) {
  std::string out = "{";
  for (const auto& [name, value] : counters) {
    out += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  out += "}";
  return out;
}

}  // namespace fixture
