// Fixture: ordered-emission must also cover src/svc — shard state feeds
// the result digest and the checkpoint image, so hash-container iteration
// order would leak implementation-defined bytes into both.
#include <cstdint>
#include <unordered_set>

namespace fixture {

std::uint64_t digest_keys(const std::unordered_set<std::uint64_t>& keys) {
  std::uint64_t h = 0;
  for (const std::uint64_t k : keys) h = h * 31 + k;
  return h;
}

}  // namespace fixture
