// Fixture: positive control for no-ambient-nondeterminism. Every construct
// in here is banned outside util/rng.*.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned jitter_seed() {
  std::random_device rd;                     // banned: hardware entropy
  std::mt19937 gen(rd());                    // banned: raw engine
  return static_cast<unsigned>(gen());
}

long stamp() {
  auto wall = std::chrono::system_clock::now();  // banned: wall clock
  (void)wall;
  return time(nullptr) + rand();             // banned: libc time + rand
}

}  // namespace fixture
