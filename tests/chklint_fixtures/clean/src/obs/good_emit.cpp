// Fixture: negative control. Disciplined code in an emission path — ordered
// containers, forked RNG streams with unique literal tags, Duration::scaled
// for fractional arithmetic, storage I/O behind the client door.
#include <map>
#include <string>

#include "stubs.hpp"

namespace fixture {

std::string counters_to_json(const std::map<std::string, long>& counters) {
  std::string out = "{";
  for (const auto& [name, value] : counters) {
    out += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  out += "}";
  return out;
}

des::Duration backoff(des::Duration initial, double multiplier) {
  // Fractional scaling goes through Duration::scaled, never operator*.
  return initial.scaled(multiplier);
}

util::Rng emit_stream(util::Rng& parent) {
  // Integer multiplies of a Duration are exact and allowed.
  des::Duration two = des::Duration{} * 2;
  (void)two;
  return parent.fork(0xE317u);
}

}  // namespace fixture
