// Token-level stand-ins; fixtures are linted, never compiled.
#pragma once
#include <cstdint>

namespace fixture {
namespace des {
struct Duration {
  Duration operator*(std::int64_t) const;
};
}  // namespace des
namespace util {
struct Rng {
  Rng fork(std::uint64_t tag);
};
}  // namespace util
}  // namespace fixture
