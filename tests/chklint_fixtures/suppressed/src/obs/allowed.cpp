// Fixture: the same violations as the positive controls, every one carrying
// a `chklint:allow` justification — the run must come back clean.
#include <string>
#include <unordered_map>
#include "stubs.hpp"

namespace fixture {

// chklint:allow(ordered-emission): keys are sorted into a vector before
// serialization below; the container itself never drives emission order.
std::string lookup(const std::unordered_map<std::string, long>& idx) {
  return std::to_string(idx.size());
}

util::Rng tags(util::Rng& parent) {
  util::Rng a = parent.fork(0xD0D0u);
  util::Rng b = a.fork(0xD0D0u);  // chklint:allow(unique-fork-tags): reuse is the point of this fixture.
  return b;
}

des::Duration shrink(des::Duration d) {
  return d * 0.5;  // chklint:allow(duration-arithmetic): fixture demonstrates inline suppression.
}

}  // namespace fixture
