// Fixture: the canonical owner of tag 0xAB1E (reported sites are the later
// duplicates, in path order).
#include "rng_stub.hpp"

namespace fixture {

util::Rng timer_stream(util::Rng& parent) { return parent.fork(0xAB1Eu); }

}  // namespace fixture
