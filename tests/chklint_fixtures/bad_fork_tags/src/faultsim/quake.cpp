// Fixture: positive control for unique-fork-tags. The 0xAB1E literal here
// collides with the one in src/timers.cpp, and the runtime-valued tag is
// non-literal fault-domain code.
#include "rng_stub.hpp"

namespace fixture {

util::Rng quake_stream(util::Rng& parent, const Plan& plan) {
  util::Rng collided = parent.fork(0xAB1Eu);  // collides with timers.cpp
  return collided.fork(plan.stream);          // non-literal in fault domain
}

}  // namespace fixture
