// Token-level stand-ins; fixtures are linted, never compiled.
#pragma once

namespace fixture {
struct RankBuckets {
  double sync_wait_s;
  double mystery_s;
};
namespace json {
struct Value {
  static Value object();
  static Value number(double);
  void set(const char* key, Value v);
};
}  // namespace json
}  // namespace fixture
