// Fixture: positive control for bucket-partition-registration. The
// "mystery_s" bucket is emitted here but absent from partition.txt, so the
// exact-partition test would never catch it drifting.
#include "json_stub.hpp"

namespace fixture {

json::Value buckets_to_json(const RankBuckets& b) {
  json::Value v = json::Value::object();
  v.set("sync_wait_s", json::Value::number(b.sync_wait_s));
  v.set("mystery_s", json::Value::number(b.mystery_s));
  return v;
}

}  // namespace fixture
