// Fixture: positive control for one-door-storage — chklib code doing
// blocking stable-storage I/O without going through the StorageClient.
#include "stubs.hpp"

namespace fixture {

void sneaky_checkpoint(Runtime& rt, des::Process& self, std::vector<std::byte> blob) {
  // Both receiver shapes the rule recognizes: a storage() accessor chain
  // and a storage_ member pointer.
  rt.store().storage().write_blocking(self, 0, "ckpt/p0/v1", std::move(blob));
  std::vector<std::byte> out = rt.storage_->read_blocking(self, 0, "ckpt/p0/v1");
  (void)out;
}

}  // namespace fixture
