// Token-level stand-ins; fixtures are linted, never compiled.
#pragma once
#include <cstddef>
#include <string>
#include <vector>

namespace fixture {
namespace des {
struct Process {};
}  // namespace des

struct StableStorage {
  void write_blocking(des::Process&, int, const std::string&, std::vector<std::byte>);
  std::vector<std::byte> read_blocking(des::Process&, int, const std::string&);
};
struct Store {
  StableStorage& storage();
};
struct Runtime {
  Store& store();
  StableStorage* storage_;
};
}  // namespace fixture
