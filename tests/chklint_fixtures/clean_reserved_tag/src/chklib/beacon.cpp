// Fixture: negative control for the reserved fault-domain tag registry.
// Same shape as bad_reserved_tag, but the stream uses a fresh tag nowhere
// near the reserved set — the run must come back clean.
#include "rng_stub.hpp"

namespace fixture {

util::Rng beacon_stream(util::Rng& parent) { return parent.fork(0xC1EAu); }

}  // namespace fixture
