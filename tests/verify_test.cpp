// Tests for the verify/ protocol-invariant subsystem.
//
//   * clean runs: every checkpointing scheme runs a reduced app catalog
//     under the invariant monitor with zero violations;
//   * positive controls: a deliberately broken protocol (a message leaked
//     across the coordinated freeze gate), reordered channel deliveries and
//     unserialized stable-storage writes are each caught by their checker;
//   * checkpoint image integrity: serialized images/logs are checksummed
//     and corruption or truncation is rejected on load;
//   * DES determinism: identical configs produce identical event-trace
//     hashes, different seeds do not;
//   * recovery-line oracle: the brute-force enumeration agrees with the
//     production fixpoint on randomized histories in both line modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "apps/asp.hpp"
#include "apps/gauss.hpp"
#include "apps/ising.hpp"
#include "apps/nbody.hpp"
#include "apps/nqueens.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "chklib/comm/hooks.hpp"
#include "chklib/proto/coordinated.hpp"
#include "chklib/runtime.hpp"
#include "chklib/verify/monitor.hpp"
#include "chklib/verify/oracle.hpp"
#include "des/simulator.hpp"
#include "harness/experiment.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace chk {
namespace {

using chklib::Envelope;
using chklib::LineMode;
using chklib::ProcessHistory;
using chklib::Rank;
using chklib::RecvRecord;
using chklib::Scheme;
using chklib::SendRecord;
using chklib::verify::Monitor;
using chklib::verify::Policy;
using des::Duration;

// ---------------------------------------------------------------------------
// Clean runs: the full scheme set over a reduced app catalog, monitored.
// ---------------------------------------------------------------------------

struct CatalogEntry {
  const char* label;
  chklib::AppFn app;
};

std::vector<CatalogEntry> small_catalog() {
  std::vector<CatalogEntry> entries;
  entries.push_back({"SOR", apps::make_sor({.n = 64, .iterations = 40})});
  entries.push_back({"ISING", apps::make_ising({.n = 48, .sweeps = 20})});
  entries.push_back({"GAUSS", apps::make_gauss({.n = 96})});
  entries.push_back({"ASP", apps::make_asp({.n = 48})});
  entries.push_back({"NBODY", apps::make_nbody({.bodies = 96, .steps = 10})});
  entries.push_back({"TSP", apps::make_tsp({.cities = 10})});
  entries.push_back({"NQUEENS", apps::make_nqueens({.n = 9})});
  return entries;
}

TEST(MonitorSweep, EverySchemeRunsTheCatalogWithZeroViolations) {
  const Scheme schemes[] = {Scheme::kCoordNB, Scheme::kCoordNBM, Scheme::kCoordNBMS,
                            Scheme::kIndep, Scheme::kIndepM};
  for (const auto& entry : small_catalog()) {
    harness::ExperimentConfig config;
    config.label = entry.label;
    config.app = entry.app;
    config.verify = true;
    const auto normal = harness::run_normal(config);
    ASSERT_TRUE(normal.digest.has_value()) << entry.label;
    EXPECT_GT(normal.invariant_checks, 0u) << entry.label;
    EXPECT_EQ(normal.invariant_violations, 0u) << entry.label;

    config.interval = Duration::seconds(normal.exec_time_s / 3.0);
    config.checkpoints = 2;
    for (Scheme scheme : schemes) {
      config.scheme = scheme;
      const auto result = harness::run_experiment(config);
      const std::string what =
          std::string(entry.label) + " + " + std::string(to_string(scheme));
      EXPECT_EQ(result.digest, normal.digest) << what;
      EXPECT_GT(result.local_checkpoints, 0u) << what;
      EXPECT_GT(result.invariant_checks, 0u) << what;
      EXPECT_EQ(result.invariant_violations, 0u) << what;
      EXPECT_EQ(result.messages_in_flight_at_end, 0u) << what;
    }
  }
}

TEST(MonitorSweep, AblationSchemesAreCleanToo) {
  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.interval = Duration::millis(200);
  config.checkpoints = 2;
  config.verify = true;
  for (Scheme scheme : {Scheme::kCoordNBS, Scheme::kIndepMS}) {
    config.scheme = scheme;
    const auto result = harness::run_experiment(config);
    EXPECT_GT(result.local_checkpoints, 0u) << to_string(scheme);
    EXPECT_GT(result.invariant_checks, 0u) << to_string(scheme);
    EXPECT_EQ(result.invariant_violations, 0u) << to_string(scheme);
  }
}

// ---------------------------------------------------------------------------
// Positive controls: break the protocol, expect the checker to fire.
// ---------------------------------------------------------------------------

// Toy SPMD ring application (same shape as proto_test's): deterministic,
// message-per-iteration, digest-sensitive to any channel anomaly.
struct RingState {
  std::uint32_t iter = 0;
  std::uint64_t acc = 0;
};

chklib::AppFn make_ring_app(std::uint32_t iterations, double flops_per_iter) {
  return [iterations, flops_per_iter](chklib::AppContext& ctx) {
    auto& st = ctx.state<RingState>();
    if (ctx.fresh()) st = RingState{};
    ctx.register_value("iter", st.iter);
    ctx.register_value("acc", st.acc);
    ctx.ready();
    const Rank right = (ctx.rank() + 1) % ctx.nprocs();
    for (; st.iter < iterations; ++st.iter) {
      ctx.checkpoint_here();
      ctx.compute(flops_per_iter);
      ctx.send_value<std::uint32_t>(right, 1, st.iter);
      st.acc += ctx.recv_value<std::uint32_t>(chklib::kAnySource, 1);
    }
    const double digest = ctx.allreduce_sum(static_cast<double>(st.acc) +
                                            static_cast<double>(ctx.rank()));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

struct World {
  des::Simulator sim;
  std::unique_ptr<chklib::Runtime> rt;

  explicit World(std::size_t nodes = 8, std::uint64_t seed = 42) {
    auto mc = xplorer::MachineConfig::parsytec_xplorer();
    mc.num_nodes = nodes;
    rt = std::make_unique<chklib::Runtime>(sim, mc, seed);
  }
};

std::uint64_t count_checker(const Monitor& monitor, std::string_view checker) {
  const auto& violations = monitor.sink().violations();
  return static_cast<std::uint64_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const auto& v) { return v.checker == checker; }));
}

/// A sabotaged protocol: forwards everything to the real one, but re-stamps
/// post-checkpoint messages with the previous epoch — exactly the traffic a
/// correct coordinated protocol guarantees can never arrive after the
/// channel marker.
class LeakyHooks final : public chklib::ProtocolHooks {
 public:
  explicit LeakyHooks(chklib::ProtocolHooks* inner) : inner_(inner) {}

  void on_send(Rank src, Envelope& env) override {
    inner_->on_send(src, env);
    if (env.epoch > 0) --env.epoch;
  }
  void on_arrival(Rank dst, const Envelope& env) override { inner_->on_arrival(dst, env); }
  void on_deliver(des::Process& self, Rank dst, const Envelope& env) override {
    inner_->on_deliver(self, dst, env);
  }

 private:
  chklib::ProtocolHooks* inner_;
};

TEST(Quiescence, MessageLeakedAcrossTheFreezeGateIsCaught) {
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  chklib::CoordinatedProtocol proto(
      *w.rt, {.scheme = Scheme::kCoordNB, .interval = Duration::secs(8), .rounds = 2});
  Monitor monitor(*w.rt, Monitor::options_for(Scheme::kCoordNB, Policy::kRecord));
  monitor.install();
  proto.start();
  LeakyHooks leaky(w.rt->comm().hooks());
  w.rt->comm().set_hooks(&leaky);
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_GT(monitor.violations(), 0u);
  EXPECT_GT(count_checker(monitor, "quiescence"), 0u)
      << "the leaked pre-epoch arrival was not flagged";
}

TEST(Quiescence, CorrectProtocolHasNoViolations) {
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  chklib::CoordinatedProtocol proto(
      *w.rt, {.scheme = Scheme::kCoordNB, .interval = Duration::secs(8), .rounds = 2});
  Monitor monitor(*w.rt, Monitor::options_for(Scheme::kCoordNB, Policy::kRecord));
  monitor.install();
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_GT(monitor.checks(), 0u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.in_flight(), 0u);
}

TEST(Fifo, ReorderedArrivalIsCaught) {
  World w;
  Monitor monitor(*w.rt, Monitor::options_for(Scheme::kNone, Policy::kRecord));
  monitor.install();
  auto make_env = [](std::uint64_t seq) {
    Envelope env;
    env.src = 0;
    env.dst = 1;
    env.tag = 7;
    env.seq = seq;
    return env;
  };
  w.rt->comm().endpoint(1).deliver(make_env(5));
  w.rt->comm().endpoint(1).deliver(make_env(3));  // older than what arrived
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.sink().violations()[0].checker, "fifo");
}

TEST(Fifo, GapInTheArrivalStreamIsCaught) {
  World w;
  Monitor monitor(*w.rt, Monitor::options_for(Scheme::kNone, Policy::kRecord));
  monitor.install();
  auto make_env = [](std::uint64_t seq) {
    Envelope env;
    env.src = 2;
    env.dst = 4;
    env.seq = seq;
    return env;
  };
  w.rt->comm().endpoint(4).deliver(make_env(0));
  w.rt->comm().endpoint(4).deliver(make_env(2));  // seq 1 vanished
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.sink().violations()[0].checker, "fifo");
  EXPECT_NE(monitor.sink().violations()[0].message.find("lost"), std::string::npos);
}

TEST(Stagger, OverlappingBackgroundWritesAreCaughtWhenArmed) {
  // Coord_NBM buffers in memory and writes in the background WITHOUT
  // staggering, so with 8 ranks checkpointing in the same round the write
  // windows overlap. Arming the stagger checker against it must fire —
  // which is exactly why options_for() only arms it for the *S schemes
  // (the sweep above proves those stay clean).
  World w;
  w.rt->set_app("ring", make_ring_app(200, 1e5));
  chklib::CoordinatedProtocol proto(
      *w.rt, {.scheme = Scheme::kCoordNBM, .interval = Duration::secs(8), .rounds = 2});
  auto options = Monitor::options_for(Scheme::kCoordNBM, Policy::kRecord);
  options.check_stagger = true;
  Monitor monitor(*w.rt, options);
  monitor.install();
  proto.start();
  w.rt->start_apps();
  w.rt->run_to_completion();
  EXPECT_GT(count_checker(monitor, "stagger"), 0u);
}

// ---------------------------------------------------------------------------
// Recovery runs under the monitor.
// ---------------------------------------------------------------------------

harness::ExperimentConfig monitored_sor(Scheme scheme) {
  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.interval = Duration::millis(200);
  config.checkpoints = 0;
  config.verify = true;
  return config;
}

TEST(MonitorRecovery, CoordinatedFailureRunIsClean) {
  const auto normal = harness::run_normal(monitored_sor(Scheme::kNone));
  auto config = monitored_sor(Scheme::kCoordNB);
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + Duration::seconds(normal.exec_time_s * 0.55), 6};
  const auto result = harness::run_experiment(config);
  ASSERT_EQ(result.recoveries.size(), 1u);
  EXPECT_EQ(result.digest, normal.digest);
  EXPECT_GT(result.invariant_checks, 0u);
  EXPECT_EQ(result.invariant_violations, 0u);
}

TEST(MonitorRecovery, LoggedIndependentFailureRunIsClean) {
  const auto normal = harness::run_normal(monitored_sor(Scheme::kNone));
  auto config = monitored_sor(Scheme::kIndepM);
  config.message_logging = true;
  config.recovery_mode = LineMode::kOrphanFree;
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + Duration::seconds(normal.exec_time_s * 0.55), 6};
  const auto result = harness::run_experiment(config);
  ASSERT_EQ(result.recoveries.size(), 1u);
  EXPECT_EQ(result.digest, normal.digest);
  EXPECT_GT(result.invariant_checks, 0u);
  EXPECT_EQ(result.invariant_violations, 0u);
}

// ---------------------------------------------------------------------------
// DES determinism.
// ---------------------------------------------------------------------------

TEST(Determinism, SameConfigSameTrace) {
  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = Scheme::kCoordNBMS;
  config.interval = Duration::millis(200);
  config.checkpoints = 3;
  config.verify = true;
  const auto report = harness::check_determinism(config);
  EXPECT_TRUE(report.deterministic);
  EXPECT_EQ(report.first.trace_hash, report.second.trace_hash);
  EXPECT_NE(report.first.trace_hash, 0u);
}

TEST(Determinism, SeedChangesTheIndependentTrace) {
  auto config_for = [](std::uint64_t seed) {
    harness::ExperimentConfig config;
    config.label = "SOR";
    config.app = apps::make_sor({.n = 96, .iterations = 80});
    config.scheme = Scheme::kIndep;
    config.interval = Duration::millis(200);
    config.checkpoints = 3;
    config.seed = seed;
    return config;
  };
  const auto a = harness::run_experiment(config_for(2026));
  const auto b = harness::run_experiment(config_for(2027));
  EXPECT_EQ(a.digest, b.digest);            // the application result is seed-free
  EXPECT_NE(a.trace_hash, b.trace_hash);    // the jittered schedule is not
}

// ---------------------------------------------------------------------------
// Checkpoint image integrity (checksummed envelopes).
// ---------------------------------------------------------------------------

chklib::CheckpointImage sample_image() {
  chklib::CheckpointImage image;
  image.rank = 3;
  image.index = 7;
  image.captured_at_ns = 123'456'789;
  for (int i = 0; i < 64; ++i) image.state.push_back(static_cast<std::byte>(i * 3));
  image.seq.send_next.push_back({1, 42});
  image.seq.consumed_upto.push_back({2, 17});
  image.sends.push_back(SendRecord{1, 41, 6});
  image.recvs.push_back(RecvRecord{2, 16, 5, 6});
  Envelope env;
  env.src = 3;
  env.dst = 1;
  env.tag = 9;
  env.seq = 41;
  env.payload = {std::byte{0xAB}, std::byte{0xCD}};
  image.sent_log.messages.push_back(env);
  return image;
}

TEST(Integrity, ImageRoundTrips) {
  const auto image = sample_image();
  const auto blob = image.serialize();
  const auto loaded = chklib::CheckpointImage::deserialize(blob);
  EXPECT_EQ(loaded.rank, image.rank);
  EXPECT_EQ(loaded.index, image.index);
  EXPECT_EQ(loaded.captured_at_ns, image.captured_at_ns);
  EXPECT_EQ(loaded.state, image.state);
  ASSERT_EQ(loaded.sends.size(), 1u);
  EXPECT_EQ(loaded.sends[0].seq, 41u);
  ASSERT_EQ(loaded.recvs.size(), 1u);
  EXPECT_EQ(loaded.recvs[0].recv_interval, 6u);
  ASSERT_EQ(loaded.sent_log.messages.size(), 1u);
  EXPECT_EQ(loaded.sent_log.messages[0].payload, image.sent_log.messages[0].payload);
}

TEST(Integrity, CorruptedImageIsRejected) {
  auto blob = sample_image().serialize();
  blob[blob.size() / 2] ^= std::byte{0xFF};
  EXPECT_THROW((void)chklib::CheckpointImage::deserialize(blob), util::SerializeError);
}

TEST(Integrity, TruncatedImageIsRejected) {
  auto blob = sample_image().serialize();
  blob.resize(blob.size() - 3);
  EXPECT_THROW((void)chklib::CheckpointImage::deserialize(blob), util::SerializeError);
}

TEST(Integrity, WrongMagicIsRejected) {
  auto blob = sample_image().serialize();
  blob[0] ^= std::byte{0x01};
  EXPECT_THROW((void)chklib::CheckpointImage::deserialize(blob), util::SerializeError);
}

TEST(Integrity, ChannelLogIsChecksummedToo) {
  chklib::ChannelLog log;
  Envelope env;
  env.src = 0;
  env.dst = 5;
  env.seq = 12;
  env.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  log.messages.push_back(env);
  auto blob = log.serialize();
  const auto loaded = chklib::ChannelLog::deserialize(blob);
  ASSERT_EQ(loaded.messages.size(), 1u);
  EXPECT_EQ(loaded.messages[0].payload, env.payload);
  blob[blob.size() / 2] ^= std::byte{0x80};
  EXPECT_THROW((void)chklib::ChannelLog::deserialize(blob), util::SerializeError);
}

// ---------------------------------------------------------------------------
// Recovery-line oracle vs the production fixpoint.
// ---------------------------------------------------------------------------

TEST(Oracle, HandCraftedOrphan) {
  // p0 forgot a send that p1 remembers receiving: p1 must retract.
  std::vector<ProcessHistory> histories(2);
  histories[0].rank = 0;
  histories[0].saved = {1};
  histories[1].rank = 1;
  histories[1].saved = {1};
  histories[1].recvs = {RecvRecord{0, 5, 1, 0}};
  const auto oracle = chklib::verify::brute_force_line(histories, LineMode::kOrphanFree);
  EXPECT_EQ(oracle.line.index, (std::vector<std::uint32_t>{1, 0}));
  EXPECT_TRUE(oracle.max_is_consistent);
  EXPECT_EQ(oracle.lines_tested, 4u);
  EXPECT_EQ(oracle.domino_depth, (std::vector<std::uint32_t>{0, 1}));
  const auto fix = chklib::compute_recovery_line(histories, LineMode::kOrphanFree);
  EXPECT_EQ(fix.line.index, oracle.line.index);
}

TEST(Oracle, AgreesWithFixpointOnRandomizedHistories) {
  util::Rng rng(0x5EED2026);
  std::uint64_t agreements = 0;
  for (int round = 0; round < 1100; ++round) {
    const std::size_t n = 2 + rng.uniform_u64(3);  // 2..4 ranks
    std::vector<ProcessHistory> histories(n);
    for (std::size_t p = 0; p < n; ++p) {
      histories[p].rank = static_cast<Rank>(p);
      const std::size_t count = rng.uniform_u64(4);  // 0..3 checkpoints
      std::uint32_t index = 0;
      for (std::size_t k = 0; k < count; ++k) {
        // occasional gaps model garbage-collected checkpoints
        index += 1 + static_cast<std::uint32_t>(rng.uniform_u64(2));
        histories[p].saved.push_back(index);
      }
    }
    // Random messages: per-channel unique seqs; each side's record is
    // independently present (a missing record models traffic beyond the
    // last checkpoint or still in flight at the cut).
    std::vector<std::vector<std::uint64_t>> next_seq(n, std::vector<std::uint64_t>(n, 0));
    const std::size_t messages = rng.uniform_u64(26);
    for (std::size_t m = 0; m < messages; ++m) {
      const auto src = static_cast<std::size_t>(rng.uniform_u64(n));
      auto dst = static_cast<std::size_t>(rng.uniform_u64(n - 1));
      if (dst >= src) ++dst;
      const std::uint64_t seq = next_seq[src][dst]++;
      const std::uint32_t newest_src =
          histories[src].saved.empty() ? 0 : histories[src].saved.back();
      const std::uint32_t newest_dst =
          histories[dst].saved.empty() ? 0 : histories[dst].saved.back();
      const auto send_interval = static_cast<std::uint32_t>(rng.uniform_u64(newest_src + 2));
      const auto recv_interval = static_cast<std::uint32_t>(rng.uniform_u64(newest_dst + 2));
      if (rng.bernoulli(0.9)) {
        histories[src].sends.push_back(
            SendRecord{static_cast<Rank>(dst), seq, send_interval});
      }
      if (rng.bernoulli(0.8)) {
        histories[dst].recvs.push_back(
            RecvRecord{static_cast<Rank>(src), seq, send_interval, recv_interval});
      }
    }

    for (LineMode mode : {LineMode::kStrict, LineMode::kOrphanFree}) {
      const auto fix = chklib::compute_recovery_line(histories, mode);
      const auto oracle = chklib::verify::brute_force_line(histories, mode);
      ASSERT_EQ(fix.line.index, oracle.line.index)
          << "round " << round << ", mode " << to_string(mode);
      EXPECT_TRUE(oracle.max_is_consistent) << "round " << round;
      EXPECT_GE(oracle.consistent_lines, 1u);  // the origin is always consistent
      EXPECT_EQ(oracle.domino_depth, chklib::verify::domino_depths(histories, fix.line));
      ++agreements;
    }
  }
  EXPECT_GE(agreements, 2200u);
}

TEST(Oracle, StrictLineNeverExceedsOrphanFreeLine) {
  util::Rng rng(0xD0 | 0x1234);
  for (int round = 0; round < 200; ++round) {
    std::vector<ProcessHistory> histories(3);
    for (std::size_t p = 0; p < 3; ++p) {
      histories[p].rank = static_cast<Rank>(p);
      histories[p].saved = {1, 2};
    }
    std::vector<std::vector<std::uint64_t>> next_seq(3, std::vector<std::uint64_t>(3, 0));
    for (std::size_t m = 0; m < 12; ++m) {
      const auto src = static_cast<std::size_t>(rng.uniform_u64(3));
      auto dst = static_cast<std::size_t>(rng.uniform_u64(2));
      if (dst >= src) ++dst;
      const std::uint64_t seq = next_seq[src][dst]++;
      const auto send_interval = static_cast<std::uint32_t>(rng.uniform_u64(3));
      const auto recv_interval = static_cast<std::uint32_t>(rng.uniform_u64(3));
      histories[src].sends.push_back(SendRecord{static_cast<Rank>(dst), seq, send_interval});
      if (rng.bernoulli(0.7)) {
        histories[dst].recvs.push_back(
            RecvRecord{static_cast<Rank>(src), seq, send_interval, recv_interval});
      }
    }
    const auto strict = chklib::verify::brute_force_line(histories, LineMode::kStrict);
    const auto weak = chklib::verify::brute_force_line(histories, LineMode::kOrphanFree);
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_LE(strict.line.index[p], weak.line.index[p]) << "round " << round;
    }
  }
}

TEST(Oracle, RefusesExplosiveCandidateSpaces) {
  std::vector<ProcessHistory> histories(8);
  for (std::size_t p = 0; p < histories.size(); ++p) {
    histories[p].rank = static_cast<Rank>(p);
    for (std::uint32_t i = 1; i <= 40; ++i) histories[p].saved.push_back(i);
  }
  EXPECT_THROW((void)chklib::verify::brute_force_line(histories, LineMode::kStrict, 1000),
               std::invalid_argument);
}

}  // namespace
}  // namespace chk
