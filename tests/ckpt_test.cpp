// Tests for the checkpoint core: serialization, registry capture/restore,
// image round-trips, store naming/commit/GC bookkeeping.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "chklib/ckpt/image.hpp"
#include "chklib/ckpt/registry.hpp"
#include "chklib/ckpt/store.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"
#include "util/serialize.hpp"
#include "xplorer/machine.hpp"

namespace chk::chklib {
namespace {

TEST(Serialize, RoundTripsScalarsAndBlobs) {
  util::ByteWriter writer;
  writer.put<std::int32_t>(-7);
  writer.put<double>(3.25);
  writer.put_string("hello");
  writer.put_vector(std::vector<std::uint64_t>{1, 2, 3});
  util::ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.get<std::int32_t>(), -7);
  EXPECT_EQ(reader.get<double>(), 3.25);
  EXPECT_EQ(reader.get_string(), "hello");
  EXPECT_EQ(reader.get_vector<std::uint64_t>(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, TruncatedInputThrows) {
  util::ByteWriter writer;
  writer.put<std::uint64_t>(1000);  // a length prefix promising 1000 bytes
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW((void)reader.get_bytes(), util::SerializeError);
}

TEST(Registry, CaptureRestoreRoundTrip) {
  CheckpointRegistry registry;
  std::vector<double> grid(64);
  std::iota(grid.begin(), grid.end(), 0.0);
  std::uint32_t iter = 17;
  registry.register_vector("grid", grid);
  registry.register_value("iter", iter);
  EXPECT_EQ(registry.state_bytes(), 64 * sizeof(double) + sizeof(std::uint32_t));

  const auto blob = registry.capture();
  // mutate, then restore
  grid.assign(64, -1.0);
  iter = 999;
  registry.restore(blob);
  EXPECT_EQ(grid[5], 5.0);
  EXPECT_EQ(iter, 17u);
}

TEST(Registry, DuplicateNameRejected) {
  CheckpointRegistry registry;
  int x = 0;
  registry.register_value("x", x);
  EXPECT_THROW(registry.register_value("x", x), RegistryError);
}

TEST(Registry, RestoreMismatchThrows) {
  CheckpointRegistry a;
  int x = 1;
  a.register_value("x", x);
  const auto blob = a.capture();

  CheckpointRegistry b;
  double y = 0;
  b.register_value("x", y);  // same name, wrong size
  EXPECT_THROW(b.restore(blob), RegistryError);

  CheckpointRegistry c;
  int z = 0;
  c.register_value("z", z);  // wrong name
  EXPECT_THROW(c.restore(blob), RegistryError);
}

TEST(Registry, ClearForgetsRegions) {
  CheckpointRegistry registry;
  int x = 0;
  registry.register_value("x", x);
  registry.clear();
  EXPECT_EQ(registry.region_count(), 0u);
  registry.register_value("x", x);  // re-registration OK after clear
  EXPECT_EQ(registry.region_count(), 1u);
}

TEST(Image, SerializeDeserializeRoundTrip) {
  CheckpointImage image;
  image.rank = 5;
  image.index = 3;
  image.captured_at_ns = 123456789;
  image.state = {std::byte{1}, std::byte{2}, std::byte{3}};
  image.sends = {{2, 10, 1}, {4, 11, 1}};
  image.recvs = {{7, 5, 0, 1}};
  const auto blob = image.serialize();
  const auto copy = CheckpointImage::deserialize(blob);
  EXPECT_EQ(copy.rank, 5u);
  EXPECT_EQ(copy.index, 3u);
  EXPECT_EQ(copy.captured_at_ns, 123456789);
  EXPECT_EQ(copy.state, image.state);
  ASSERT_EQ(copy.sends.size(), 2u);
  EXPECT_EQ(copy.sends[1].dst, 4u);
  ASSERT_EQ(copy.recvs.size(), 1u);
  EXPECT_EQ(copy.recvs[0].src, 7u);
}

TEST(Image, BadMagicRejected) {
  std::vector<std::byte> garbage(64, std::byte{0});
  EXPECT_THROW((void)CheckpointImage::deserialize(garbage), util::SerializeError);
}

TEST(ChannelLogTest, RoundTripsEnvelopes) {
  ChannelLog log;
  Envelope env;
  env.src = 1;
  env.dst = 2;
  env.tag = 42;
  env.epoch = 7;
  env.seq = 99;
  env.payload = {std::byte{0xab}, std::byte{0xcd}};
  log.messages.push_back(env);
  const auto blob = log.serialize();
  const auto copy = ChannelLog::deserialize(blob);
  ASSERT_EQ(copy.messages.size(), 1u);
  EXPECT_EQ(copy.messages[0].src, 1u);
  EXPECT_EQ(copy.messages[0].tag, 42);
  EXPECT_EQ(copy.messages[0].payload, env.payload);
  EXPECT_EQ(log.payload_bytes(), 2u);
}

struct StoreFixture {
  des::Simulator sim;
  xplorer::Machine machine{sim, xplorer::MachineConfig::parsytec_xplorer()};
  CheckpointStore store{machine.storage()};
};

TEST(Store, KeysAreStable) {
  EXPECT_EQ(CheckpointStore::image_key(3, 12), "ckpt/p3/v00000012");
  EXPECT_EQ(CheckpointStore::log_key(3, 12), "ckpt/p3/v00000012.log");
}

TEST(Store, WriteLoadRoundTrip) {
  StoreFixture f;
  f.sim.spawn("p", [&](des::Process& self) {
    CheckpointImage image;
    image.rank = 2;
    image.index = 1;
    image.state = std::vector<std::byte>(500, std::byte{7});
    f.store.write_image_blocking(self, 2, image);
    EXPECT_TRUE(f.store.has_image(2, 1));
    const auto loaded = f.store.load_image_blocking(self, 2, 1);
    EXPECT_EQ(loaded.state, image.state);
  });
  EXPECT_EQ(f.sim.run().reason, des::StopReason::kIdle);
}

TEST(Store, CommitRecordAdvancesEpoch) {
  StoreFixture f;
  f.sim.spawn("p", [&](des::Process& self) {
    EXPECT_EQ(f.store.committed_epoch(), 0u);
    f.store.write_commit_blocking(self, 0, 1);
    EXPECT_EQ(f.store.committed_epoch(), 1u);
    f.store.write_commit_blocking(self, 0, 2);
    EXPECT_EQ(f.store.committed_epoch(), 2u);
  });
  f.sim.run();
}

TEST(Store, SavedIndicesSortedAndLogExcluded) {
  StoreFixture f;
  f.sim.spawn("p", [&](des::Process& self) {
    for (std::uint32_t v : {3u, 1u, 2u}) {
      CheckpointImage image;
      image.rank = 0;
      image.index = v;
      f.store.write_image_blocking(self, 0, image);
    }
    ChannelLog log;
    f.store.write_log_blocking(self, 0, 2, log);
    EXPECT_EQ(f.store.saved_indices(0), (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ(f.store.checkpoint_count(), 3u);
  });
  f.sim.run();
}

TEST(Store, EraseRemovesImageAndLog) {
  StoreFixture f;
  f.sim.spawn("p", [&](des::Process& self) {
    CheckpointImage image;
    image.rank = 1;
    image.index = 4;
    f.store.write_image_blocking(self, 1, image);
    f.store.write_log_blocking(self, 1, 4, ChannelLog{});
    EXPECT_GT(f.store.bytes_for(1), 0u);
    f.store.erase(1, 4);
    EXPECT_FALSE(f.store.has_image(1, 4));
    EXPECT_EQ(f.store.bytes_for(1), 0u);
  });
  f.sim.run();
}

TEST(Store, MissingLogIsNullopt) {
  StoreFixture f;
  f.sim.spawn("p", [&](des::Process& self) {
    CheckpointImage image;
    image.rank = 0;
    image.index = 1;
    f.store.write_image_blocking(self, 0, image);
    EXPECT_FALSE(f.store.load_log_blocking(self, 0, 1).has_value());
  });
  f.sim.run();
}

TEST(Store, PeekReadsWithoutSimTime) {
  StoreFixture f;
  f.sim.spawn("p", [&](des::Process& self) {
    CheckpointImage image;
    image.rank = 0;
    image.index = 1;
    image.sends = {{3, 8, 0}};
    f.store.write_image_blocking(self, 0, image);
    const auto t0 = self.now();
    const auto peeked = f.store.peek_image(0, 1);
    EXPECT_EQ(self.now(), t0);  // no simulated time consumed
    ASSERT_EQ(peeked.sends.size(), 1u);
    EXPECT_EQ(peeked.sends[0].dst, 3u);
  });
  f.sim.run();
}

}  // namespace
}  // namespace chk::chklib
