// Unit tests for the machine model: FIFO servers, topology/routing,
// network contention, node CPU model, stable storage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/process.hpp"
#include "des/simulator.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "xplorer/machine.hpp"
#include "xplorer/storage_fault.hpp"

namespace chk::xplorer {
namespace {

using des::Duration;
using des::Process;
using des::Simulator;
using des::TimePoint;

TEST(FifoServer, ServiceTimeIsLatencyPlusTransfer) {
  Simulator sim;
  FifoServer server(sim, "s", /*bytes_per_sec=*/1'000'000, Duration::millis(10));
  EXPECT_DOUBLE_EQ(server.service_time(500'000).to_seconds(), 0.51);
  EXPECT_DOUBLE_EQ(server.service_time(0).to_seconds(), 0.01);
}

TEST(FifoServer, JobsServeFifoAndAccumulateStats) {
  Simulator sim;
  FifoServer server(sim, "s", 1'000'000, Duration::zero());
  std::vector<double> completions;
  server.submit(1'000'000, [&] { completions.push_back(sim.now().to_seconds()); });
  server.submit(500'000, [&] { completions.push_back(sim.now().to_seconds()); });
  server.submit(500'000, [&] { completions.push_back(sim.now().to_seconds()); });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 1.5);
  EXPECT_DOUBLE_EQ(completions[2], 2.0);
  EXPECT_DOUBLE_EQ(server.busy_time().to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(server.wait_time().to_seconds(), 2.5);  // 0 + 1 + 1.5
  EXPECT_EQ(server.jobs_completed(), 3u);
  EXPECT_EQ(server.bytes_served(), 2'000'000u);
  EXPECT_TRUE(server.idle());
}

TEST(FifoServer, CompletionMaySubmitMore) {
  Simulator sim;
  FifoServer server(sim, "s", 1'000'000, Duration::zero());
  int chained = 0;
  server.submit(1000, [&] {
    ++chained;
    server.submit(1000, [&] { ++chained; });
  });
  sim.run();
  EXPECT_EQ(chained, 2);
}

TEST(Topology, Mesh2x4Routes) {
  const auto topo = Topology::build(TopologyKind::kMesh2D, 8);
  // 2x4 mesh: nodes 0..3 top row, 4..7 bottom row.
  EXPECT_EQ(topo.distance(0, 0), 0u);
  EXPECT_EQ(topo.distance(0, 1), 1u);
  EXPECT_EQ(topo.distance(0, 3), 3u);
  EXPECT_EQ(topo.distance(0, 7), 4u);
  EXPECT_EQ(topo.distance(4, 0), 1u);
  // route continuity: consecutive edges share endpoints
  const auto route = topo.route(0, 7);
  NodeId at = 0;
  for (std::size_t link : route) {
    EXPECT_EQ(topo.edge(link).from, at);
    at = topo.edge(link).to;
  }
  EXPECT_EQ(at, 7u);
}

TEST(Topology, RingRoutesShortestWay) {
  const auto topo = Topology::build(TopologyKind::kRing, 8);
  EXPECT_EQ(topo.distance(0, 1), 1u);
  EXPECT_EQ(topo.distance(0, 7), 1u);  // wraps
  EXPECT_EQ(topo.distance(0, 4), 4u);
  EXPECT_EQ(topo.distance(2, 6), 4u);
}

TEST(Topology, StarRoutesThroughHub) {
  const auto topo = Topology::build(TopologyKind::kStar, 5);
  EXPECT_EQ(topo.distance(1, 2), 2u);
  EXPECT_EQ(topo.distance(0, 3), 1u);
}

TEST(Topology, CrossbarIsDirect) {
  const auto topo = Topology::build(TopologyKind::kCrossbar, 6);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      if (i != j) {
        EXPECT_EQ(topo.distance(i, j), 1u);
      }
    }
  }
}

TEST(Topology, SingleNodeHasNoLinks) {
  const auto topo = Topology::build(TopologyKind::kMesh2D, 1);
  EXPECT_EQ(topo.num_links(), 0u);
  EXPECT_EQ(topo.distance(0, 0), 0u);
}

TEST(Topology, TwoNodeRingCollapses) {
  const auto topo = Topology::build(TopologyKind::kRing, 2);
  EXPECT_EQ(topo.num_links(), 2u);
  EXPECT_EQ(topo.distance(0, 1), 1u);
}

MachineConfig test_config(std::size_t nodes = 8) {
  MachineConfig config = MachineConfig::parsytec_xplorer();
  config.num_nodes = nodes;
  return config;
}

TEST(Network, DeliversWithLatencyAndBandwidth) {
  Simulator sim;
  MachineConfig config = test_config();
  config.link.bandwidth = 1'000'000;
  config.link.latency = Duration::millis(1);
  config.packet_bytes = 1 << 20;  // single packet
  Network net(sim, config);
  double delivered = -1;
  net.transfer(0, 1, 500'000, Traffic::kApplication,
               [&] { delivered = sim.now().to_seconds(); });
  sim.run();
  // one hop: latency 1ms + 0.5s transfer
  EXPECT_DOUBLE_EQ(delivered, 0.501);
  EXPECT_EQ(net.bytes_sent(Traffic::kApplication), 500'000u);
  EXPECT_EQ(net.transfers(Traffic::kApplication), 1u);
}

TEST(Network, MultiHopAccumulates) {
  Simulator sim;
  MachineConfig config = test_config();
  config.link.bandwidth = 1'000'000;
  config.link.latency = Duration::zero();
  config.packet_bytes = 1 << 20;
  Network net(sim, config);
  double delivered = -1;
  // 0 -> 3 is 3 hops in the 2x4 mesh
  net.transfer(0, 3, 100'000, Traffic::kApplication,
               [&] { delivered = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(delivered, 0.3, 1e-9);
}

TEST(Network, PacketizationPipelinesHops) {
  Simulator sim;
  MachineConfig config = test_config();
  config.link.bandwidth = 1'000'000;
  config.link.latency = Duration::zero();
  config.packet_bytes = 10'000;
  Network net(sim, config);
  double delivered = -1;
  net.transfer(0, 3, 100'000, Traffic::kApplication,
               [&] { delivered = sim.now().to_seconds(); });
  sim.run();
  // pipelined: ~ (packets + hops - 1) * per-packet time = (10+2)*0.01 = 0.12
  EXPECT_NEAR(delivered, 0.12, 1e-6);
}

TEST(Network, ContentionSlowsConcurrentTransfers) {
  Simulator sim;
  MachineConfig config = test_config();
  config.link.bandwidth = 1'000'000;
  config.link.latency = Duration::zero();
  config.packet_bytes = 1000;
  Network net(sim, config);
  std::vector<double> done;
  // two transfers sharing the 0->1 link
  net.transfer(0, 1, 100'000, Traffic::kApplication, [&] { done.push_back(sim.now().to_seconds()); });
  net.transfer(0, 1, 100'000, Traffic::kCheckpoint, [&] { done.push_back(sim.now().to_seconds()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // the link carries 200 KB total; last finisher at ~0.2s
  EXPECT_NEAR(done.back(), 0.2, 0.01);
}

TEST(Network, SelfTransferBypassesLinks) {
  Simulator sim;
  Network net(sim, test_config());
  bool delivered = false;
  net.transfer(2, 2, 1'000'000, Traffic::kApplication, [&] { delivered = true; });
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.total_link_busy(), Duration::zero());
}

TEST(Network, ZeroByteTransferStillDelivers) {
  Simulator sim;
  Network net(sim, test_config());
  bool delivered = false;
  net.transfer(0, 5, 0, Traffic::kControl, [&] { delivered = true; });
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST(Node, ComputeAdvancesByFlopRate) {
  Simulator sim;
  NodeConfig config;
  config.cpu_flop_rate = 1e6;
  Node node(sim, 0, config);
  sim.spawn("p", [&](Process& self) { node.compute(self, 2e6); });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(node.compute_time().to_seconds(), 2.0);
  EXPECT_EQ(node.interference_time(), Duration::zero());
}

TEST(Node, BackgroundIoStealsCpu) {
  Simulator sim;
  NodeConfig config;
  config.cpu_flop_rate = 1e6;
  config.background_io_cpu_steal = 0.2;
  Node node(sim, 0, config);
  sim.spawn("p", [&](Process& self) {
    node.begin_background_io();
    node.compute(self, 1e6);
    node.end_background_io();
    node.compute(self, 1e6);
  });
  sim.run();
  // first second of work takes 1/(1-0.2) = 1.25s, second takes 1s
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.25);
  EXPECT_DOUBLE_EQ(node.interference_time().to_seconds(), 0.25);
}

TEST(Node, MemCopyUsesCopyBandwidth) {
  Simulator sim;
  NodeConfig config;
  config.mem_copy_bw = 10e6;
  Node node(sim, 0, config);
  sim.spawn("p", [&](Process& self) { node.mem_copy(self, 5'000'000); });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 0.5);
}

TEST(Storage, WriteRoundTripsBytes) {
  Simulator sim;
  Machine machine(sim, test_config());
  std::vector<std::byte> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::byte>(i & 0xff);
  std::vector<std::byte> readback;
  sim.spawn("p", [&](Process& self) {
    machine.storage().write_blocking(self, 3, "ckpt/p3/v1", payload);
    EXPECT_TRUE(machine.storage().exists("ckpt/p3/v1"));
    readback = machine.storage().read_blocking(self, 3, "ckpt/p3/v1");
  });
  const auto result = sim.run();
  EXPECT_EQ(result.reason, des::StopReason::kIdle);
  EXPECT_EQ(readback, payload);
  EXPECT_EQ(machine.storage().total_bytes(), 1000u);
}

TEST(Storage, MissingKeyReadsEmpty) {
  Simulator sim;
  Machine machine(sim, test_config());
  std::size_t size = 999;
  sim.spawn("p", [&](Process& self) {
    size = machine.storage().read_blocking(self, 0, "nope").size();
  });
  sim.run();
  EXPECT_EQ(size, 0u);
}

TEST(Storage, WriteTimeScalesWithDistanceToHost) {
  // A node far from the host interface pays more network time.
  auto measure = [](NodeId from) {
    Simulator sim;
    MachineConfig config = test_config();
    Machine machine(sim, config);
    double elapsed = -1;
    sim.spawn("p", [&](Process& self) {
      machine.storage().write_blocking(self, from, "k", std::vector<std::byte>(100'000));
      elapsed = self.now().to_seconds();
    });
    sim.run();
    return elapsed;
  };
  EXPECT_GT(measure(7), measure(1));
  EXPECT_GT(measure(1), measure(0));
}

TEST(Storage, ConcurrentWritersContend) {
  // 8 simultaneous writers must take much longer per write than one alone.
  auto last_completion = [](std::size_t writers) {
    Simulator sim;
    Machine machine(sim, test_config());
    for (std::size_t n = 0; n < writers; ++n) {
      sim.spawn(std::string("w") + std::to_string(n), [&machine, n](Process& self) {
        machine.storage().write_blocking(self, n, std::string("ckpt/") + std::to_string(n),
                                         std::vector<std::byte>(200'000));
      });
    }
    sim.run();
    return sim.now().to_seconds();
  };
  const double solo = last_completion(1);
  const double all = last_completion(8);
  // Writes serialize at the disk/host-link bottleneck; pipelining overlaps
  // part of the mesh traversal, so the factor is a bit below 8.
  EXPECT_GT(all, solo * 4.0);
}

TEST(Storage, EraseReclaimsSpace) {
  Simulator sim;
  Machine machine(sim, test_config());
  sim.spawn("p", [&](Process& self) {
    machine.storage().write_blocking(self, 0, "a", std::vector<std::byte>(500));
    machine.storage().write_blocking(self, 0, "b", std::vector<std::byte>(700));
    EXPECT_EQ(machine.storage().total_bytes(), 1200u);
    machine.storage().erase("a");
    EXPECT_EQ(machine.storage().total_bytes(), 700u);
    EXPECT_EQ(machine.storage().peak_bytes(), 1200u);
  });
  sim.run();
}

TEST(Storage, OverwriteReplacesVersion) {
  Simulator sim;
  Machine machine(sim, test_config());
  sim.spawn("p", [&](Process& self) {
    machine.storage().write_blocking(self, 0, "k", std::vector<std::byte>(500));
    machine.storage().write_blocking(self, 0, "k", std::vector<std::byte>(300));
    EXPECT_EQ(machine.storage().total_bytes(), 300u);
    EXPECT_EQ(machine.storage().size("k"), 300u);
  });
  sim.run();
}

TEST(Storage, EraseAccountsReclaimedBytesExactly) {
  Simulator sim;
  Machine machine(sim, test_config());
  auto& storage = machine.storage();
  sim.spawn("p", [&](Process& self) {
    storage.write_blocking(self, 0, "ckpt/p0/v1", std::vector<std::byte>(400));
    storage.write_blocking(self, 0, "ckpt/p0/v2", std::vector<std::byte>(600));
    EXPECT_EQ(storage.bytes_reclaimed(), 0u);
    storage.erase("ckpt/p0/v1");
    EXPECT_EQ(storage.bytes_reclaimed(), 400u);
    // Erasing a missing key is a no-op for every counter.
    storage.erase("ckpt/p0/v1");
    storage.erase("never-written");
    EXPECT_EQ(storage.bytes_reclaimed(), 400u);
    EXPECT_EQ(storage.total_bytes(), 600u);
    storage.erase("ckpt/p0/v2");
    EXPECT_EQ(storage.bytes_reclaimed(), 1000u);
    EXPECT_EQ(storage.total_bytes(), 0u);
    // Overwrites replace the old version without counting as reclamation.
    storage.write_blocking(self, 0, "k", std::vector<std::byte>(100));
    storage.write_blocking(self, 0, "k", std::vector<std::byte>(50));
    EXPECT_EQ(storage.bytes_reclaimed(), 1000u);
    EXPECT_EQ(storage.total_bytes(), 50u);
    EXPECT_EQ(storage.keys_with_prefix("ckpt/").size(), 0u);
  });
  sim.run();
}

TEST(Storage, FailedWritesAreCountedSeparatelyFromCompletions) {
  Simulator sim;
  Machine machine(sim, test_config());
  auto& storage = machine.storage();
  StorageFaultConfig faults;
  faults.write_error = 0.999;
  storage.set_faults(faults, util::Rng(9));
  std::size_t failed = 0, ok = 0;
  sim.spawn("p", [&](Process& self) {
    for (int i = 0; i < 10; ++i) {
      const auto status = storage.write_blocking(self, 0, util::format("k{}", i),
                                                 std::vector<std::byte>(100));
      (status == IoStatus::kOk ? ok : failed) += 1;
    }
  });
  sim.run();
  EXPECT_EQ(failed + ok, 10u);
  EXPECT_GE(failed, 1u);
  EXPECT_EQ(storage.writes_failed(), failed);
  EXPECT_EQ(storage.writes_completed(), ok);
  // Failed writes never contribute durable bytes.
  EXPECT_EQ(storage.bytes_written(), ok * 100u);
  EXPECT_EQ(storage.total_bytes(), ok * 100u);
}

TEST(Storage, KeysWithPrefix) {
  Simulator sim;
  Machine machine(sim, test_config());
  sim.spawn("p", [&](Process& self) {
    machine.storage().write_blocking(self, 0, "ckpt/p0/v1", std::vector<std::byte>(10));
    machine.storage().write_blocking(self, 0, "ckpt/p0/v2", std::vector<std::byte>(10));
    machine.storage().write_blocking(self, 0, "ckpt/p1/v1", std::vector<std::byte>(10));
    EXPECT_EQ(machine.storage().keys_with_prefix("ckpt/p0/").size(), 2u);
    EXPECT_EQ(machine.storage().keys_with_prefix("ckpt/").size(), 3u);
    EXPECT_EQ(machine.storage().keys_with_prefix("zzz").size(), 0u);
  });
  sim.run();
}

}  // namespace
}  // namespace chk::xplorer
