// Tests for the obs/ observability subsystem: tracer determinism and
// non-perturbation, metrics histogram semantics, the per-rank overhead
// attribution identity across every scheme, the Chrome-trace export
// round-trip, and the recovery report's logged_sends contract.
#include <gtest/gtest.h>

#include <vector>

#include "apps/sor.hpp"
#include "harness/experiment.hpp"
#include "obs/attribution.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace chk::harness {
namespace {

ExperimentConfig small_sor(Scheme scheme = Scheme::kNone) {
  ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.interval = des::Duration::millis(200);
  config.checkpoints = 3;
  return config;
}

ExperimentConfig observed_sor(Scheme scheme) {
  auto config = small_sor(scheme);
  config.observe = true;
  return config;
}

constexpr Scheme kAllSchemes[] = {Scheme::kCoordNB, Scheme::kCoordNBS,
                                  Scheme::kCoordNBM, Scheme::kCoordNBMS,
                                  Scheme::kIndep,    Scheme::kIndepM,
                                  Scheme::kIndepMS};

// Tests that inspect recorded events need the compiled-in tracer; in a
// -DCHK_OBS=OFF build every emission site compiles to nothing and traces
// are empty by design.
#define CHK_REQUIRE_OBS() \
  if (!obs::kObsCompiled) GTEST_SKIP() << "built with CHK_OBS=OFF"

// ---- tracer determinism and non-perturbation --------------------------------

TEST(Tracer, SameSeedProducesIdenticalEventStreams) {
  CHK_REQUIRE_OBS();
  const auto a = run_experiment(observed_sor(Scheme::kCoordNBMS));
  const auto b = run_experiment(observed_sor(Scheme::kCoordNBMS));
  ASSERT_TRUE(a.obs && b.obs);
  EXPECT_GT(a.obs->trace.events.size(), 0u);
  EXPECT_EQ(a.obs->trace.hash, b.obs->trace.hash);
  EXPECT_EQ(a.obs->trace.events, b.obs->trace.events);
  EXPECT_EQ(a.obs->trace.serialize(), b.obs->trace.serialize());
}

TEST(Tracer, ObservationDoesNotPerturbTheSimulation) {
  for (Scheme scheme : kAllSchemes) {
    const auto off = run_experiment(small_sor(scheme));
    const auto on = run_experiment(observed_sor(scheme));
    EXPECT_EQ(off.trace_hash, on.trace_hash) << to_string(scheme);
    EXPECT_EQ(off.exec_time_s, on.exec_time_s) << to_string(scheme);
    EXPECT_EQ(off.events, on.events) << to_string(scheme);
    EXPECT_FALSE(off.obs.has_value());
    EXPECT_TRUE(on.obs.has_value());
  }
}

TEST(Tracer, SerializedHashMatchesRecomputedHash) {
  const auto result = run_experiment(observed_sor(Scheme::kIndepM));
  ASSERT_TRUE(result.obs);
  EXPECT_EQ(result.obs->trace.hash, obs::hash_events(result.obs->trace.events));
}

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, HistogramBucketEdges) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1.0 -> bucket 0
  h.observe(1.0);   // <= 1.0 -> bucket 0 (inclusive upper edge)
  h.observe(1.5);   // <= 2.0 -> bucket 1
  h.observe(4.0);   // <= 4.0 -> bucket 2
  h.observe(99.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0);
}

TEST(Metrics, HistogramRejectsNonIncreasingEdges) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, ObservedRunPublishesConsistentSnapshot) {
  CHK_REQUIRE_OBS();
  const auto result = run_experiment(observed_sor(Scheme::kCoordNB));
  ASSERT_TRUE(result.obs);
  const obs::MetricsSnapshot& snap = result.obs->metrics;
  EXPECT_EQ(snap.counters.at("run/events"), result.events);
  EXPECT_EQ(snap.counters.at("ckpt/local_checkpoints"), result.local_checkpoints);
  EXPECT_DOUBLE_EQ(snap.gauges.at("run/exec_time_s"), result.exec_time_s);
  EXPECT_DOUBLE_EQ(snap.gauges.at("overhead/app_blocked_s"), result.app_blocked_s);
  const auto& windows = snap.histograms.at("ckpt/window_s");
  EXPECT_GT(windows.total_count, 0u);
  EXPECT_NEAR(windows.sum, result.app_blocked_s, 1e-9);
}

// ---- attribution ------------------------------------------------------------

TEST(Attribution, BucketsSumToMeasuredOverheadForEveryScheme) {
  CHK_REQUIRE_OBS();
  for (Scheme scheme : kAllSchemes) {
    const auto result = run_experiment(observed_sor(scheme));
    ASSERT_TRUE(result.obs) << to_string(scheme);
    const obs::AttributionReport& report = result.obs->attribution;
    ASSERT_EQ(report.ranks.size(), 8u) << to_string(scheme);

    double blocked = 0, frozen = 0, interference = 0;
    for (const obs::RankBuckets& rank : report.ranks) {
      // The six window buckets partition each rank's blocking windows
      // (storage_retry_wait is zero here: no storage faults installed).
      EXPECT_NEAR(rank.sync_wait_s + rank.mem_copy_s + rank.stable_write_s +
                      rank.storage_contention_s + rank.logging_s +
                      rank.storage_retry_wait_s,
                  rank.blocked_total_s, 1e-9)
          << to_string(scheme);
      EXPECT_EQ(rank.storage_retry_wait_s, 0.0) << to_string(scheme);
      // svc_queue_wait_s is the svc workload's request-side bucket; batch
      // apps never emit it, and it sits outside the blocked windows.
      EXPECT_EQ(rank.svc_queue_wait_s, 0.0) << to_string(scheme);
      // membership_wait_s attributes view-exclusion episodes; with no
      // membership service installed the bucket must stay exactly zero.
      EXPECT_EQ(rank.membership_wait_s, 0.0) << to_string(scheme);
      EXPECT_NEAR(rank.bucket_sum_s(), rank.total_s(), 1e-9) << to_string(scheme);
      EXPECT_GE(rank.sync_wait_s, 0.0) << to_string(scheme);
      blocked += rank.blocked_total_s;
      frozen += rank.frozen_stall_s;
      interference += rank.interference_s;
    }
    // The totals row is the element-wise sum, and the trace-derived numbers
    // match the independently collected harness metrics exactly.
    EXPECT_NEAR(report.total.blocked_total_s, blocked, 1e-9);
    EXPECT_NEAR(report.total.blocked_total_s, result.app_blocked_s, 1e-9)
        << to_string(scheme);
    EXPECT_NEAR(report.total.frozen_stall_s, result.frozen_stall_s, 1e-9)
        << to_string(scheme);
    EXPECT_NEAR(report.total.interference_s, result.interference_s, 1e-9)
        << to_string(scheme);
    EXPECT_NEAR(report.total.total_s(),
                result.app_blocked_s + result.frozen_stall_s + result.interference_s,
                1e-9)
        << to_string(scheme);
  }
}

TEST(Attribution, CoordNbBreakdownReproducesThePaperShape) {
  // The paper's central conclusion: for the write-through coordinated
  // scheme the overhead is the checkpoint *saving* (stable write + storage
  // contention), not the synchronization.
  CHK_REQUIRE_OBS();
  const auto result = run_experiment(observed_sor(Scheme::kCoordNB));
  ASSERT_TRUE(result.obs);
  const obs::RankBuckets& total = result.obs->attribution.total;
  ASSERT_GT(total.total_s(), 0.0);
  const double saving = total.stable_write_s + total.storage_contention_s;
  EXPECT_GT(saving, 0.5 * total.total_s());
  EXPECT_LT(total.sync_wait_s, 0.10 * total.total_s());
  EXPECT_GT(saving, total.sync_wait_s);
  EXPECT_EQ(total.mem_copy_s, 0.0);  // write-through: no main-memory buffer
}

TEST(Attribution, BufferedSchemeTradesWritesForMemCopies) {
  // Coord_NBM blocks only for the main-memory copy; the stable write moves
  // to the background (interference), shrinking the blocked window.
  CHK_REQUIRE_OBS();
  const auto nb = run_experiment(observed_sor(Scheme::kCoordNB));
  const auto nbm = run_experiment(observed_sor(Scheme::kCoordNBM));
  ASSERT_TRUE(nb.obs && nbm.obs);
  const obs::RankBuckets& nb_total = nb.obs->attribution.total;
  const obs::RankBuckets& nbm_total = nbm.obs->attribution.total;
  EXPECT_GT(nbm_total.mem_copy_s, 0.0);
  EXPECT_EQ(nbm_total.stable_write_s + nbm_total.storage_contention_s, 0.0);
  EXPECT_GT(nbm_total.interference_s, 0.0);
  EXPECT_LT(nbm_total.blocked_total_s, nb_total.blocked_total_s);
}

// ---- export round-trip ------------------------------------------------------

TEST(Export, ChromeTraceRoundTripsLosslessly) {
  const auto result = run_experiment(observed_sor(Scheme::kIndepMS));
  ASSERT_TRUE(result.obs);
  const obs::Trace& original = result.obs->trace;

  const obs::json::Value doc = obs::to_chrome_trace(original, 8);
  const std::string text = doc.dump();
  const obs::json::Value reparsed = obs::json::Value::parse(text);
  const obs::Trace rebuilt = obs::parse_chrome_trace(reparsed);

  EXPECT_EQ(rebuilt.events, original.events);
  EXPECT_EQ(rebuilt.hash, original.hash);
}

TEST(Export, MetricsJsonCarriesEveryMetric) {
  const auto result = run_experiment(observed_sor(Scheme::kCoordNBMS));
  ASSERT_TRUE(result.obs);
  const obs::json::Value doc = obs::metrics_to_json(result.obs->metrics);
  const obs::json::Value parsed = obs::json::Value::parse(doc.dump());
  EXPECT_EQ(parsed.at("counters").at("run/events").as_int(),
            static_cast<std::int64_t>(result.events));
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("run/exec_time_s").as_double(),
                   result.exec_time_s);
  EXPECT_TRUE(parsed.at("histograms").contains("ckpt/window_s"));
}

// ---- recovery report contract (logged_sends lifecycle) ----------------------

TEST(Recovery, FinishedReportsHaveEmptyLoggedSends) {
  // logged_sends is replay scratch: it carries payloads from the stable
  // logs to the re-injection step and must be cleared before the report is
  // published — whether or not anything was replayed.
  const auto normal = run_experiment(small_sor());
  for (bool logging : {false, true}) {
    auto config = small_sor(logging ? Scheme::kIndepM : Scheme::kCoordNB);
    config.checkpoints = 0;
    if (logging) {
      config.message_logging = true;
      config.recovery_mode = chklib::LineMode::kOrphanFree;
    }
    config.failure = FailureSpec{
        des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.55), 6};
    const auto result = run_experiment(config);
    ASSERT_EQ(result.recoveries.size(), 1u);
    EXPECT_TRUE(result.recoveries[0].logged_sends.empty())
        << (logging ? "message logging" : "coordinated");
    EXPECT_EQ(result.digest, normal.digest);
  }
}

}  // namespace
}  // namespace chk::harness
