// Tests for the recovery-line algorithms on hand-crafted dependency
// structures: orphan detection, lost-message (strict) retraction, domino
// cascades, GC reclamation, non-contiguous saved sets.
#include <gtest/gtest.h>

#include "chklib/recovery/line.hpp"
#include "util/rng.hpp"

namespace chk::chklib {
namespace {

ProcessHistory history(Rank rank, std::vector<std::uint32_t> saved,
                       std::vector<SendRecord> sends = {},
                       std::vector<RecvRecord> recvs = {}) {
  ProcessHistory h;
  h.rank = rank;
  h.saved = std::move(saved);
  h.sends = std::move(sends);
  h.recvs = std::move(recvs);
  return h;
}

TEST(Line, NoMessagesLineIsNewest) {
  const std::vector<ProcessHistory> histories = {
      history(0, {1, 2, 3}),
      history(1, {1, 2}),
  };
  for (LineMode mode : {LineMode::kStrict, LineMode::kOrphanFree}) {
    const auto result = compute_recovery_line(histories, mode);
    EXPECT_EQ(result.line.index, (std::vector<std::uint32_t>{3, 2}));
    EXPECT_EQ(result.rollbacks, 0u);
  }
}

TEST(Line, NoCheckpointsMeansOrigin) {
  const std::vector<ProcessHistory> histories = {history(0, {}), history(1, {})};
  const auto result = compute_recovery_line(histories, LineMode::kStrict);
  EXPECT_TRUE(result.line.at_origin());
}

TEST(Line, OrphanForcesReceiverBack) {
  // p0 sent m in its interval 1 (send forgotten at line 1); p1 received m
  // in its interval 0 and checkpointed afterwards (receive remembered at
  // line 1) => orphan => p1 retracts to 0.
  const std::vector<ProcessHistory> histories = {
      history(0, {1}),
      history(1, {1}, {}, {RecvRecord{0, /*seq=*/5, /*send_interval=*/1, /*recv_interval=*/0}}),
  };
  const auto result = compute_recovery_line(histories, LineMode::kOrphanFree);
  EXPECT_EQ(result.line.index, (std::vector<std::uint32_t>{1, 0}));
  EXPECT_EQ(result.rollbacks, 1u);
}

TEST(Line, MatchedSendRecvIsConsistent) {
  // m sent in p0's interval 0 (remembered at line 1) and received in p1's
  // interval 0 (remembered at line 1): both sides remembered, no rollback.
  const std::vector<ProcessHistory> histories = {
      history(0, {1}, {SendRecord{1, 5, 0}}),
      history(1, {1}, {}, {RecvRecord{0, 5, 0, 0}}),
  };
  for (LineMode mode : {LineMode::kStrict, LineMode::kOrphanFree}) {
    const auto result = compute_recovery_line(histories, mode);
    EXPECT_EQ(result.line.index, (std::vector<std::uint32_t>{1, 1}));
  }
}

TEST(Line, LostMessageRetractsSenderInStrictMode) {
  // p0 sent m in interval 0 and checkpointed (send remembered); p1 never
  // saved a matching receive. Strict: p0 must forget the send (roll to 0).
  // Orphan-free: fine (a message log would replay m).
  const std::vector<ProcessHistory> histories = {
      history(0, {1}, {SendRecord{1, 5, 0}}),
      history(1, {1}),
  };
  const auto strict = compute_recovery_line(histories, LineMode::kStrict);
  EXPECT_EQ(strict.line.index, (std::vector<std::uint32_t>{0, 1}));
  const auto weak = compute_recovery_line(histories, LineMode::kOrphanFree);
  EXPECT_EQ(weak.line.index, (std::vector<std::uint32_t>{1, 1}));
}

TEST(Line, ReceiveAfterLineIsLostInStrictMode) {
  // p1 did record the receive, but only in interval 1 (after its line-1
  // checkpoint... recv_interval=1 >= L=1 means forgotten).
  const std::vector<ProcessHistory> histories = {
      history(0, {1}, {SendRecord{1, 5, 0}}),
      history(1, {1, 2}, {}, {RecvRecord{0, 5, 0, 1}}),
  };
  // p1's newest is 2: receive in interval 1 < 2 is remembered => consistent.
  const auto strict = compute_recovery_line(histories, LineMode::kStrict);
  EXPECT_EQ(strict.line.index, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Line, DominoCascadeToOrigin) {
  // Ping-pong with strictly interleaved checkpoints — the classic domino
  // picture. p0 ckpts after each send; p1's receives and sends straddle
  // its own checkpoints so every line choice exposes a crossing message.
  //
  // p0: send a (int 0), ckpt1, send b (int 1), ckpt2
  // p1: recv a (int 0), ckpt1 ... recv b (int 1), ckpt2, and replies
  //     r1 sent in p1 interval 0 received by p0 in interval 1 (volatile).
  const std::vector<ProcessHistory> histories = {
      history(0, {1, 2}, {SendRecord{1, 0, 0}, SendRecord{1, 1, 1}},
              {}),
      history(1, {1, 2}, {SendRecord{0, 0, 0}},
              {RecvRecord{0, 0, 0, 0}, RecvRecord{0, 1, 1, 1}}),
  };
  // Strict: p1's send (interval 0) was received by p0 in p0's interval 1
  // but p0 never saved that receive => p1 rolls to 0; then p0's send a
  // (interval 0, remembered at any L>=1) has p1's receive (interval 0)
  // forgotten (L1=0) => p0 rolls to 0.
  const auto strict = compute_recovery_line(histories, LineMode::kStrict);
  EXPECT_TRUE(strict.line.at_origin());
  EXPECT_GE(strict.rollbacks, 2u);
}

TEST(Line, OrphanChainPropagates) {
  // Three processes; orphan at the end of a chain pulls everyone down.
  // p2 received from p1 (send forgotten) => p2 rolls back; p1 received
  // from p0 in interval 0 with p0's send in interval 1 => p1 rolls back.
  const std::vector<ProcessHistory> histories = {
      history(0, {1}),
      history(1, {1}, {}, {RecvRecord{0, 3, /*send_interval=*/1, /*recv_interval=*/0}}),
      history(2, {1}, {}, {RecvRecord{1, 9, /*send_interval=*/1, /*recv_interval=*/0}}),
  };
  const auto result = compute_recovery_line(histories, LineMode::kOrphanFree);
  EXPECT_EQ(result.line.index, (std::vector<std::uint32_t>{1, 0, 0}));
}

TEST(Line, FloorSkipsGarbageCollectedIndices) {
  // p1 must retract below 5, but only {2, 5} are saved: floor lands on 2.
  const std::vector<ProcessHistory> histories = {
      history(0, {1}),
      history(1, {2, 5}, {}, {RecvRecord{0, 1, /*send_interval=*/1, /*recv_interval=*/4}}),
  };
  const auto result = compute_recovery_line(histories, LineMode::kOrphanFree);
  EXPECT_EQ(result.line.index, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Line, ReclaimableListsBelowLineOnly) {
  const std::vector<ProcessHistory> histories = {
      history(0, {1, 2, 3}),
      history(1, {1, 2}),
  };
  RecoveryLine line;
  line.index = {3, 2};
  const auto lists = reclaimable(histories, line);
  EXPECT_EQ(lists[0], (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(lists[1], (std::vector<std::uint32_t>{1}));
}

TEST(Line, AlignedCheckpointsSurviveHeavyTraffic) {
  // Messages always sent and received within the same interval number on
  // both sides (effectively coordinated) — line stays at the newest even
  // in strict mode.
  std::vector<SendRecord> sends0, sends1;
  std::vector<RecvRecord> recvs0, recvs1;
  for (std::uint32_t interval = 0; interval < 3; ++interval) {
    for (std::uint64_t k = 0; k < 10; ++k) {
      const std::uint64_t seq = interval * 10 + k;
      sends0.push_back({1, seq, interval});
      recvs1.push_back({0, seq, interval, interval});
      sends1.push_back({0, seq, interval});
      recvs0.push_back({1, seq, interval, interval});
    }
  }
  const std::vector<ProcessHistory> histories = {
      history(0, {1, 2, 3}, sends0, recvs0),
      history(1, {1, 2, 3}, sends1, recvs1),
  };
  const auto result = compute_recovery_line(histories, LineMode::kStrict);
  EXPECT_EQ(result.line.index, (std::vector<std::uint32_t>{3, 3}));
}

TEST(Line, StrictNeverAboveOrphanFree) {
  // Property: for a randomized record soup, strict line <= orphan-free line.
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ProcessHistory> histories;
    const std::size_t n = 3;
    for (Rank p = 0; p < n; ++p) {
      histories.push_back(history(p, {1, 2, 3}));
    }
    std::uint64_t seq = 0;
    for (int m = 0; m < 30; ++m) {
      const Rank src = static_cast<Rank>(rng.uniform_u64(n));
      Rank dst = static_cast<Rank>(rng.uniform_u64(n));
      if (dst == src) dst = (dst + 1) % n;
      const auto s = static_cast<std::uint32_t>(rng.uniform_u64(4));
      const auto r = static_cast<std::uint32_t>(rng.uniform_u64(4));
      ++seq;
      if (s < 3) histories[src].sends.push_back({dst, seq, s});
      if (r < 3 && rng.bernoulli(0.8)) histories[dst].recvs.push_back({src, seq, s, r});
    }
    const auto strict = compute_recovery_line(histories, LineMode::kStrict);
    const auto weak = compute_recovery_line(histories, LineMode::kOrphanFree);
    for (std::size_t p = 0; p < n; ++p) {
      EXPECT_LE(strict.line.index[p], weak.line.index[p]) << "trial " << trial;
    }
  }
}

TEST(Line, OrphanFreeLineHasNoOrphans) {
  // Property: the computed orphan-free line never leaves an orphan.
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ProcessHistory> histories;
    const std::size_t n = 4;
    for (Rank p = 0; p < n; ++p) histories.push_back(history(p, {1, 2}));
    std::uint64_t seq = 0;
    for (int m = 0; m < 40; ++m) {
      const Rank src = static_cast<Rank>(rng.uniform_u64(n));
      Rank dst = static_cast<Rank>(rng.uniform_u64(n));
      if (dst == src) dst = (dst + 1) % n;
      const auto s = static_cast<std::uint32_t>(rng.uniform_u64(3));
      const auto r = static_cast<std::uint32_t>(rng.uniform_u64(3));
      ++seq;
      histories[src].sends.push_back({dst, seq, s});
      if (r < 2) histories[dst].recvs.push_back({src, seq, s, r});
    }
    const auto result = compute_recovery_line(histories, LineMode::kOrphanFree);
    const auto& line = result.line.index;
    for (std::size_t q = 0; q < n; ++q) {
      for (const RecvRecord& rec : histories[q].recvs) {
        const bool orphan = rec.recv_interval < line[q] && rec.send_interval >= line[rec.src];
        EXPECT_FALSE(orphan) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace chk::chklib
