// Tests for the experiment harness and the paper-benchmark catalog, plus
// cross-scheme parameterized sweeps (every scheme must terminate, keep the
// result intact and produce sane metrics) and multi-failure recovery.
#include <gtest/gtest.h>

#include <set>

#include "apps/sor.hpp"
#include "chklib/proto/coordinated.hpp"
#include "harness/catalog.hpp"
#include "harness/experiment.hpp"

namespace chk::harness {
namespace {

ExperimentConfig small_sor(Scheme scheme = Scheme::kNone) {
  ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({.n = 96, .iterations = 80});
  config.scheme = scheme;
  config.interval = des::Duration::millis(200);
  config.checkpoints = 3;
  return config;
}

TEST(Catalog, Table1HasThePapersTwentyOneRows) {
  const auto rows = table1_rows();
  EXPECT_EQ(rows.size(), 21u);
  std::size_t ising = 0, sor = 0;
  std::set<std::string> labels;
  for (const auto& row : rows) {
    EXPECT_TRUE(labels.insert(row.label).second) << "duplicate " << row.label;
    ising += row.label.starts_with("ISING");
    sor += row.label.starts_with("SOR");
  }
  EXPECT_EQ(ising, 8u);
  EXPECT_EQ(sor, 6u);
}

TEST(Catalog, Table23HasNineRows) {
  const auto rows = table23_rows();
  EXPECT_EQ(rows.size(), 9u);
}

TEST(Catalog, FindRowByLabel) {
  EXPECT_EQ(find_row("NBODY-2048").label, "NBODY-2048");
  EXPECT_EQ(find_row("TSP").label, "TSP");
  EXPECT_THROW((void)find_row("NOPE"), std::invalid_argument);
}

TEST(Catalog, EveryRowRunsAndReportsADigest) {
  // Smoke over the whole catalog with the smallest machine-compatible
  // subset (run only a sample to keep test time low; the bench suite
  // exercises all rows).
  for (const char* label : {"ISING-256", "SOR-384", "GAUSS-768", "ASP-512"}) {
    ExperimentConfig config;
    const auto row = find_row(label);
    config.label = row.label;
    config.app = row.app;
    const auto result = run_normal(config);
    EXPECT_TRUE(result.digest.has_value()) << label;
    EXPECT_GT(result.exec_time_s, 0.0) << label;
  }
}

TEST(Experiment, NormalRunHasNoCheckpointMetrics) {
  const auto result = run_experiment(small_sor());
  EXPECT_EQ(result.local_checkpoints, 0u);
  EXPECT_EQ(result.control_messages, 0u);
  EXPECT_EQ(result.bytes_written, 0u);
  EXPECT_EQ(result.app_blocked_s, 0.0);
  EXPECT_GT(result.app_messages, 0u);
}

TEST(Experiment, MetricsAreInternallyConsistent) {
  const auto normal = run_experiment(small_sor());
  const auto result = run_experiment(small_sor(Scheme::kCoordNB));
  EXPECT_GE(result.exec_time_s, normal.exec_time_s);
  EXPECT_GT(result.local_checkpoints, 0u);
  EXPECT_GT(result.bytes_written, 0u);
  EXPECT_GT(result.checkpoint_net_bytes, 0u);
  EXPECT_GT(result.app_blocked_s, 0.0);
  // blocked time cannot exceed ranks x added wall time by much
  EXPECT_LT(result.app_blocked_s,
            (result.exec_time_s - normal.exec_time_s) * 8.0 + 1.0);
  EXPECT_EQ(result.digest, normal.digest);
}

class SchemeSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSweep, RunsVerifiesAndCollects) {
  const auto normal = run_experiment(small_sor());
  const auto result = run_experiment(small_sor(GetParam()));
  EXPECT_EQ(result.digest, normal.digest) << to_string(GetParam());
  EXPECT_GT(result.local_checkpoints, 0u);
  EXPECT_GE(result.exec_time_s, normal.exec_time_s);
}

TEST_P(SchemeSweep, SurvivesAFailure) {
  const auto normal = run_experiment(small_sor());
  auto config = small_sor(GetParam());
  config.checkpoints = 0;
  config.failure = FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.55), 6};
  const auto result = run_experiment(config);
  ASSERT_EQ(result.recoveries.size(), 1u) << to_string(GetParam());
  EXPECT_EQ(result.digest, normal.digest) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweep,
                         ::testing::Values(Scheme::kCoordNB, Scheme::kCoordNBS,
                                           Scheme::kCoordNBM, Scheme::kCoordNBMS,
                                           Scheme::kIndep, Scheme::kIndepM,
                                           Scheme::kIndepMS),
                         [](const ::testing::TestParamInfo<Scheme>& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '_') c = '0';
                           }
                           return name;
                         });

TEST(Experiment, TwoFailuresBackToBack) {
  const auto normal = run_experiment(small_sor());
  auto config = small_sor(Scheme::kCoordNB);
  config.checkpoints = 0;

  des::Simulator sim;
  chklib::Runtime runtime(sim, config.machine, config.seed);
  runtime.set_app(config.label, config.app);
  chklib::CoordinatedProtocol protocol(
      runtime, {.scheme = config.scheme, .interval = config.interval, .rounds = 0});
  chklib::RecoveryManager recovery(runtime, protocol);
  protocol.start();
  recovery.inject_failure_at(
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.3), 1);
  recovery.inject_failure_at(
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.9), 5);
  runtime.start_apps();
  runtime.run_to_completion();
  EXPECT_EQ(recovery.reports().size(), 2u);
  EXPECT_EQ(runtime.result_digest().value(), normal.digest.value());
}

TEST(Experiment, FailureAfterCompletionIsIgnored) {
  auto config = small_sor(Scheme::kCoordNB);
  config.failure = FailureSpec{des::TimePoint::origin() + des::Duration::secs(100'000), 0};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.recoveries.empty());
}

TEST(Experiment, DeterministicAcrossRunsAllSchemes) {
  for (Scheme scheme : {Scheme::kCoordNBMS, Scheme::kIndepM}) {
    const auto a = run_experiment(small_sor(scheme));
    const auto b = run_experiment(small_sor(scheme));
    EXPECT_EQ(a.exec_time_s, b.exec_time_s);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.digest, b.digest);
  }
}

TEST(Experiment, SeedChangesIndependentScheduleNotResult) {
  auto config_a = small_sor(Scheme::kIndep);
  auto config_b = small_sor(Scheme::kIndep);
  config_b.seed = config_a.seed + 1;
  const auto a = run_experiment(config_a);
  const auto b = run_experiment(config_b);
  EXPECT_EQ(a.digest, b.digest);          // application result is seed-free
  EXPECT_NE(a.exec_time_s, b.exec_time_s);  // checkpoint jitter differs
}

TEST(Experiment, EventLimitRaises) {
  auto config = small_sor();
  config.max_events = 10;
  EXPECT_THROW((void)run_experiment(config), des::SimError);
}

}  // namespace
}  // namespace chk::harness
